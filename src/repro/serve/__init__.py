"""Live-traffic replay: open-loop arrivals, backpressure, latency tails.

The production layer ROADMAP item 1 asked for — traces replayed as *live*
traffic with seeded arrival processes, bounded inter-stage queues with
admission control, and exact p50/p95/p99 per-stage latency plus
SLA-violation rate.  Everything runs on a deterministic virtual clock;
``repro.analysis.sweep`` exposes it as the ``"serve"`` metric and the CLI
as the ``serve`` subcommand.

Quickstart::

    from repro import ScratchPipeSystem, make_dataset, tiny_config
    from repro.serve import ArrivalSpec, ServeSpec, format_serve_report, replay

    cfg = tiny_config()
    trace = make_dataset(cfg, "medium", seed=0, num_batches=64)
    system = ScratchPipeSystem(cfg, DEFAULT_HARDWARE, cache_fraction=0.05)
    report = replay(system, trace, ServeSpec(arrivals=ArrivalSpec(rate=400.0)))
    print(format_serve_report(report))
"""

from repro.serve.arrivals import (
    ADMISSION_POLICIES,
    ARRIVAL_KINDS,
    ArrivalSpec,
    ArrivalSpecError,
    ServeSpec,
    arrival_times,
    parse_arrivals,
    unit_gaps,
)
from repro.serve.loop import SERVE_STAGES, AdmissionRejectedError, replay
from repro.serve.report import (
    PERCENTILES,
    ServeReport,
    exact_percentiles,
    format_serve_report,
)

__all__ = [
    "ADMISSION_POLICIES",
    "ARRIVAL_KINDS",
    "ArrivalSpec",
    "ArrivalSpecError",
    "ServeSpec",
    "arrival_times",
    "parse_arrivals",
    "unit_gaps",
    "SERVE_STAGES",
    "AdmissionRejectedError",
    "replay",
    "PERCENTILES",
    "ServeReport",
    "exact_percentiles",
    "format_serve_report",
]

"""Seeded open-loop arrival processes for the live-replay harness.

The paper's service setting — "millions of users, heavy traffic" — implies
batches *arrive* on their own clock instead of being fed back-to-back.
:class:`ArrivalSpec` describes that clock as an open-loop (arrivals ignore
system state) renewal process: exponential inter-arrival gaps whose mean is
modulated per arrival index, giving Poisson, bursty (on/off rate steps) and
diurnal (sinusoidal rate) traffic from one seeded generator.

Like every other spec in the repo (``ScenarioSpec``, ``SystemSpec``), the
specs here are frozen, hashable, picklable, and validate eagerly in
``__post_init__`` with a named ``ValueError`` subclass so sweep workers
never discover a bad spec mid-run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

#: Supported arrival-process kinds.
ARRIVAL_KINDS = ("poisson", "bursty", "diurnal")

#: Admission policies of :class:`ServeSpec`.
ADMISSION_POLICIES = ("queue", "reject")

#: Salt mixed into the arrival RNG stream so arrival gaps never collide
#: with trace/scenario streams derived from the same user seed.
_ARRIVAL_SALT = 0x5EB5


class ArrivalSpecError(ValueError):
    """An :class:`ArrivalSpec`/:class:`ServeSpec` field is out of range."""


@dataclass(frozen=True)
class ArrivalSpec:
    """An open-loop arrival process over virtual time.

    Attributes:
        kind: ``"poisson"`` (constant rate), ``"bursty"`` (rate multiplied
            by ``burst_factor`` for ``burst_duration`` out of every
            ``burst_period`` arrivals), or ``"diurnal"`` (rate modulated by
            ``1 + amplitude * sin(2*pi*i / diurnal_period)``).
        rate: Mean arrivals (batches) per virtual second outside bursts.
        burst_factor: Bursty only — rate multiplier inside a burst.
        burst_period: Bursty only — arrivals per on/off cycle.
        burst_duration: Bursty only — burst length in arrivals
            (``<= burst_period``).
        amplitude: Diurnal only — fractional modulation depth in ``[0, 1)``.
        diurnal_period: Diurnal only — arrivals per full sinusoid cycle.
    """

    kind: str = "poisson"
    rate: float = 1000.0
    burst_factor: float = 4.0
    burst_period: int = 64
    burst_duration: int = 8
    amplitude: float = 0.5
    diurnal_period: int = 256

    def __post_init__(self) -> None:
        if self.kind not in ARRIVAL_KINDS:
            raise ArrivalSpecError(
                f"kind must be one of {ARRIVAL_KINDS}, got {self.kind!r}"
            )
        if not (self.rate > 0.0 and math.isfinite(self.rate)):
            raise ArrivalSpecError(
                f"rate must be finite and > 0, got {self.rate!r}"
            )
        if self.burst_factor < 1.0:
            raise ArrivalSpecError(
                f"burst_factor must be >= 1, got {self.burst_factor!r}"
            )
        if self.burst_period < 1:
            raise ArrivalSpecError(
                f"burst_period must be >= 1, got {self.burst_period!r}"
            )
        if not 1 <= self.burst_duration <= self.burst_period:
            raise ArrivalSpecError(
                "burst_duration must be in [1, burst_period], got "
                f"{self.burst_duration!r} (period {self.burst_period!r})"
            )
        if not 0.0 <= self.amplitude < 1.0:
            raise ArrivalSpecError(
                f"amplitude must be in [0, 1), got {self.amplitude!r}"
            )
        if self.diurnal_period < 2:
            raise ArrivalSpecError(
                f"diurnal_period must be >= 2, got {self.diurnal_period!r}"
            )

    def rates(self, indices: np.ndarray) -> np.ndarray:
        """Instantaneous arrival rate at each arrival index."""
        indices = np.asarray(indices)
        if self.kind == "poisson":
            return np.full(indices.shape, self.rate, dtype=np.float64)
        if self.kind == "bursty":
            in_burst = (indices % self.burst_period) < self.burst_duration
            return np.where(in_burst, self.rate * self.burst_factor, self.rate)
        # diurnal
        phase = 2.0 * np.pi * indices / self.diurnal_period
        return self.rate * (1.0 + self.amplitude * np.sin(phase))


def unit_gaps(seed: int, n: int) -> np.ndarray:
    """``n`` unit-exponential inter-arrival gaps, deterministic in ``seed``.

    The same unit stream underlies every :class:`ArrivalSpec` kind —
    per-index rate modulation only rescales it — so conformance tests can
    invert the scaling and test the residuals against Exp(1) regardless
    of kind.
    """
    if n < 0:
        raise ArrivalSpecError(f"n must be >= 0, got {n}")
    rng = np.random.default_rng(
        np.random.SeedSequence((int(seed), _ARRIVAL_SALT))
    )
    return rng.exponential(1.0, size=n)


def arrival_times(spec: ArrivalSpec, seed: int, n: int) -> np.ndarray:
    """Virtual arrival times (seconds) of the first ``n`` batches.

    Unit-exponential gaps scaled by each index's mean gap ``1 / rate_i``
    and cumulatively summed — deterministic in ``(spec, seed, n)`` and a
    prefix property holds: the first ``k`` arrivals of an ``n``-batch
    replay equal the ``k``-batch replay's arrivals exactly.
    """
    gaps = unit_gaps(seed, n) / spec.rates(np.arange(n))
    return np.cumsum(gaps)


def parse_arrivals(text: str) -> ArrivalSpec:
    """Parse a CLI arrival string into an :class:`ArrivalSpec`.

    Accepted forms (all numbers positional, later ones optional)::

        poisson:<rate>
        bursty:<rate>[:<factor>[:<period>[:<duration>]]]
        diurnal:<rate>[:<amplitude>[:<period>]]
    """
    parts = text.split(":")
    kind = parts[0]
    if kind not in ARRIVAL_KINDS:
        raise ArrivalSpecError(
            f"unknown arrival kind {kind!r}; expected one of {ARRIVAL_KINDS}"
        )
    if len(parts) < 2:
        raise ArrivalSpecError(
            f"missing rate in {text!r}; expected e.g. '{kind}:1000'"
        )
    try:
        numbers = [float(p) for p in parts[1:]]
    except ValueError:
        raise ArrivalSpecError(f"non-numeric field in {text!r}") from None
    rate = numbers[0]
    extras = numbers[1:]
    if kind == "poisson":
        if extras:
            raise ArrivalSpecError(
                f"poisson takes only a rate, got extra fields in {text!r}"
            )
        return ArrivalSpec(kind="poisson", rate=rate)
    if kind == "bursty":
        if len(extras) > 3:
            raise ArrivalSpecError(f"too many fields in {text!r}")
        kwargs = {}
        if len(extras) >= 1:
            kwargs["burst_factor"] = extras[0]
        if len(extras) >= 2:
            kwargs["burst_period"] = int(extras[1])
        if len(extras) >= 3:
            kwargs["burst_duration"] = int(extras[2])
        return ArrivalSpec(kind="bursty", rate=rate, **kwargs)
    # diurnal
    if len(extras) > 2:
        raise ArrivalSpecError(f"too many fields in {text!r}")
    kwargs = {}
    if len(extras) >= 1:
        kwargs["amplitude"] = extras[0]
    if len(extras) >= 2:
        kwargs["diurnal_period"] = int(extras[1])
    return ArrivalSpec(kind="diurnal", rate=rate, **kwargs)


@dataclass(frozen=True)
class ServeSpec:
    """Full configuration of one live-replay serve run.

    Attributes:
        arrivals: The open-loop traffic process.
        queue_depth: Bounded buffer slots between consecutive pipeline
            stages — a batch finishing stage ``k`` blocks in place until
            the batch ``queue_depth`` ahead of it has started stage
            ``k + 1`` (blocking-after-service), so backpressure propagates
            upstream instead of queues growing without bound.
        admission_depth: Entry-queue slots ahead of the first stage;
            only consulted under the ``"reject"`` policy.
        admission: ``"queue"`` admits every arrival (it waits as long as
            it must); ``"reject"`` drops arrivals that find
            ``admission_depth`` batches already waiting, accounted as
            :class:`repro.serve.loop.AdmissionRejectedError` rejections.
        sla_seconds: Absolute end-to-end latency SLA; ``None`` derives it
            as ``sla_factor`` times the mean end-to-end *service* time of
            the measured batches (queueing-free latency).
        sla_factor: Multiplier for the derived SLA.
        seed: Arrival-stream seed (independent of the trace seed).
    """

    arrivals: ArrivalSpec = ArrivalSpec()
    queue_depth: int = 4
    admission_depth: int = 16
    admission: str = "queue"
    sla_seconds: Optional[float] = None
    sla_factor: float = 3.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.queue_depth < 1:
            raise ArrivalSpecError(
                f"queue_depth must be >= 1, got {self.queue_depth!r}"
            )
        if self.admission_depth < 1:
            raise ArrivalSpecError(
                f"admission_depth must be >= 1, got {self.admission_depth!r}"
            )
        if self.admission not in ADMISSION_POLICIES:
            raise ArrivalSpecError(
                f"admission must be one of {ADMISSION_POLICIES}, "
                f"got {self.admission!r}"
            )
        if self.sla_seconds is not None and not self.sla_seconds > 0.0:
            raise ArrivalSpecError(
                f"sla_seconds must be > 0, got {self.sla_seconds!r}"
            )
        if not self.sla_factor > 0.0:
            raise ArrivalSpecError(
                f"sla_factor must be > 0, got {self.sla_factor!r}"
            )

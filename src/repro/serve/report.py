"""Percentile latency reports of the live-replay harness.

Percentiles are *exact* nearest-rank order statistics
(``sorted[ceil(q * n) - 1]``) — no interpolation — so two replays of the
same spec produce bit-identical reports and checkpoint journals round-trip
them without float drift.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Sequence, Tuple
from repro.errors import ServeReportError

#: The quantiles every serve report carries, in order.
PERCENTILES = (0.50, 0.95, 0.99)


def exact_percentiles(
    values: Sequence[float], quantiles: Sequence[float] = PERCENTILES
) -> Tuple[float, ...]:
    """Nearest-rank percentiles of ``values`` (must be non-empty)."""
    if len(values) == 0:
        raise ServeReportError("cannot take percentiles of an empty series")
    ordered = sorted(float(v) for v in values)
    out = []
    for q in quantiles:
        if not 0.0 < q <= 1.0:
            raise ServeReportError(f"quantile must be in (0, 1], got {q!r}")
        rank = max(1, math.ceil(q * len(ordered)))
        out.append(ordered[rank - 1])
    return tuple(out)


@dataclass(frozen=True)
class ServeReport:
    """Outcome of one live-replay run.

    All latencies are virtual-clock seconds and include queueing and
    blocking delay, not just service time.  Percentile tuples are
    ``(p50, p95, p99)`` in the order of :data:`PERCENTILES`.

    Attributes:
        system: System name that served the traffic.
        offered: Batches the arrival process generated.
        admitted: Batches admitted into the pipeline.
        rejected: Batches dropped by the ``"reject"`` admission policy.
        completed: Batches that finished all stages (== admitted).
        measured: Batches past the warm-up prefix that the percentile /
            SLA statistics are computed over.
        warmup: Admitted batches excluded from the statistics.
        duration_s: Virtual time from the first arrival to the last
            departure.
        throughput_bps: Completed batches per virtual second.
        mean_latency: Mean end-to-end latency (arrival to final
            departure) over the measured batches.
        sla_seconds: The end-to-end SLA threshold in force.
        sla_violation_rate: Fraction of measured batches whose
            end-to-end latency exceeded ``sla_seconds``.
        stage_percentiles: ``{stage: (p50, p95, p99)}`` residence time per
            priced stage (queueing + service + blocking).
        end_to_end: ``(p50, p95, p99)`` end-to-end latency.
    """

    system: str
    offered: int
    admitted: int
    rejected: int
    completed: int
    measured: int
    warmup: int
    duration_s: float
    throughput_bps: float
    mean_latency: float
    sla_seconds: float
    sla_violation_rate: float
    stage_percentiles: Dict[str, Tuple[float, float, float]]
    end_to_end: Tuple[float, float, float]


def format_serve_report(report: ServeReport) -> str:
    """Render a :class:`ServeReport` as aligned tables.

    Column labels follow the repo-wide convention of saying what the
    number *is* (``mean_latency``, pXX) and which warm-up window produced
    it, so the figure is self-describing.
    """
    from repro.analysis.report import banner, format_table

    lines = [
        banner(
            f"Live replay — {report.system}, "
            f"{report.offered} offered batches, warmup={report.warmup}"
        )
    ]
    scale = 1e3  # seconds -> ms
    stage_rows = [
        [stage] + [f"{p * scale:.3f}" for p in percentiles]
        for stage, percentiles in report.stage_percentiles.items()
    ]
    stage_rows.append(
        ["end_to_end"] + [f"{p * scale:.3f}" for p in report.end_to_end]
    )
    lines.append(
        format_table(
            ["stage", "p50 ms", "p95 ms", "p99 ms"],
            stage_rows,
        )
    )
    lines.append(
        format_table(
            ["admitted", "rejected", "mean_latency ms",
             "throughput/s", "SLA ms", "SLA violations"],
            [[
                str(report.admitted),
                str(report.rejected),
                f"{report.mean_latency * scale:.3f}",
                f"{report.throughput_bps:.2f}",
                f"{report.sla_seconds * scale:.3f}",
                f"{report.sla_violation_rate:.4f}",
            ]],
        )
    )
    return "\n".join(lines)

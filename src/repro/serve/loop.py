"""Virtual-clock live-replay loop: open-loop traffic through ScratchPipe.

The steady-state timing model (``repro.systems.scratchpipe_system``) answers
"how fast does one iteration go when batches are always ready?".  This
module answers the production question the paper motivates but never
measures: with batches *arriving* on their own clock, how long does each
one wait, and what do the latency **tails** look like?

The replay is a tandem queue over the five priced pipeline stages
(``PRICED_STAGE_OFFSETS`` order) with blocking-after-service semantics:
each consecutive stage pair shares a bounded buffer of ``queue_depth``
slots, so a batch finishing stage ``k`` holds the stage until the batch
``queue_depth`` ahead of it has started stage ``k + 1`` — backpressure
propagates upstream exactly as it would through bounded inter-stage queues.
Everything runs on a virtual clock: no sleeping, no wall-time, bit-identical
results for the same ``(system, trace, ServeSpec, warmup)``.

Service times are priced from the functional cache simulation over the
contiguous trace (``stream_cache_stats`` -> ``cache_stage_times``), so under
the ``"reject"`` admission policy a dropped batch still advances the cache
state — rejection models the queueing consequence, not a functional skip.
"""

from __future__ import annotations

import bisect
from typing import Optional, Union

import numpy as np

from repro.errors import ServeConfigError
from repro.core.pipeline import PRICED_STAGE_OFFSETS
from repro.serve.arrivals import ArrivalSpec, ServeSpec, arrival_times
from repro.serve.report import PERCENTILES, ServeReport, exact_percentiles
from repro.systems.base import InsufficientSteadyStateError
from repro.systems.stages import cache_stage_times

#: Priced stages in pipeline order (Load is unpriced).
SERVE_STAGES = tuple(PRICED_STAGE_OFFSETS)


class AdmissionRejectedError(RuntimeError):
    """A batch arrived to a full entry queue under the reject policy.

    The replay loop raises and accounts these internally — they surface
    as the ``rejected`` count of :class:`repro.serve.report.ServeReport`
    rather than aborting the run.  Exposed so callers building their own
    admission layers can reuse the same named signal.
    """

    def __init__(self, batch_index: int, arrival_s: float, depth: int):
        super().__init__(
            f"batch {batch_index} rejected at t={arrival_s:.6f}s: "
            f"entry queue full ({depth} waiting)"
        )
        self.batch_index = batch_index
        self.arrival_s = arrival_s
        self.depth = depth


def _service_times(system, trace, num_batches: int) -> np.ndarray:
    """Per-batch per-stage service seconds, shape ``(n, len(SERVE_STAGES))``.

    Stage prices come from the same ``cache_stage_times`` the steady-state
    model uses, plus the hardware's per-stage sync overhead.
    """
    if not hasattr(system, "stream_cache_stats"):
        raise TypeError(
            f"system {getattr(system, 'name', system)!r} does not stream "
            "cache statistics; live replay drives the ScratchPipe pipeline"
        )
    sync = system.hardware.stage_sync_s
    rows = []
    for stats in system.stream_cache_stats(trace, num_batches):
        priced = cache_stage_times(system.cost, stats, system.future_window)
        rows.append([priced[stage].seconds + sync for stage in SERVE_STAGES])
    return np.asarray(rows, dtype=np.float64)


def replay(
    system,
    trace,
    serve: Union[ServeSpec, ArrivalSpec, None] = None,
    num_batches: Optional[int] = None,
    warmup: int = 0,
) -> ServeReport:
    """Replay ``trace`` through ``system`` as open-loop live traffic.

    Args:
        system: A ``ScratchPipeSystem`` (anything exposing
            ``stream_cache_stats``/``cost``/``future_window``/``hardware``).
        trace: Random-access batch source (``TraceSource`` / dataset).
        serve: A :class:`ServeSpec`, a bare :class:`ArrivalSpec` (wrapped
            with default queueing), or ``None`` for all defaults.
        num_batches: Trace prefix to offer (default: whole trace).
        warmup: Admitted batches excluded from percentile/SLA statistics
            (they still occupy the pipeline).  Like every steady-state
            reduction, a replay whose admitted count is ``<= warmup``
            raises :class:`InsufficientSteadyStateError` rather than
            silently reporting warmup-contaminated tails.

    Returns:
        A :class:`ServeReport` with exact per-stage and end-to-end
        p50/p95/p99 latency and the SLA-violation rate.
    """
    if serve is None:
        spec = ServeSpec()
    elif isinstance(serve, ArrivalSpec):
        spec = ServeSpec(arrivals=serve)
    else:
        spec = serve
    n = len(trace) if num_batches is None else num_batches
    if n < 1:
        raise ServeConfigError(f"num_batches must be >= 1, got {n}")
    if warmup < 0:
        raise ServeConfigError(f"warmup must be >= 0, got {warmup}")

    service = _service_times(system, trace, n)
    arrivals = arrival_times(spec.arrivals, spec.seed, n)
    num_stages = len(SERVE_STAGES)
    depth = spec.queue_depth
    reject = spec.admission == "reject"

    # Per-admitted-batch schedules (virtual seconds).
    adm_arrival: list = []   # arrival time of each admitted batch
    adm_index: list = []     # original trace index
    starts: list = []        # starts[a][k] — service start at stage k
    deps: list = []          # deps[a][k] — departure (buffer slot freed)
    entries: list = []       # entries[a][k] — joined the stage-k queue
    rejections: list = []    # AdmissionRejectedError per dropped batch

    for i in range(n):
        t = float(arrivals[i])
        if reject:
            # Entry-queue occupancy: admitted batches that arrived but
            # have not started Plan yet.  starts[.][0] is non-decreasing,
            # so a bisect counts the still-waiting suffix.
            start0 = [s[0] for s in starts]
            waiting = len(start0) - bisect.bisect_right(start0, t)
            if waiting >= spec.admission_depth:
                rejections.append(AdmissionRejectedError(i, t, waiting))
                continue
        a = len(adm_arrival)
        adm_arrival.append(t)
        adm_index.append(i)
        row_start = [0.0] * num_stages
        row_comp = [0.0] * num_stages
        row_dep = [0.0] * num_stages
        row_entry = [0.0] * num_stages
        for k in range(num_stages):
            entry = t if k == 0 else row_dep[k - 1]
            start = entry if a == 0 else max(entry, deps[a - 1][k])
            comp = start + float(service[i][k])
            if k == num_stages - 1 or a < depth:
                dep = comp
            else:
                # Blocking-after-service: the slot ahead of stage k+1
                # frees when the batch `depth` ahead starts that stage.
                dep = max(comp, starts[a - depth][k + 1])
            row_entry[k] = entry
            row_start[k] = start
            row_comp[k] = comp
            row_dep[k] = dep
        starts.append(row_start)
        deps.append(row_dep)
        entries.append(row_entry)

    admitted = len(adm_arrival)
    if admitted <= warmup:
        raise InsufficientSteadyStateError(
            f"replay admitted {admitted} batches but warmup={warmup}: "
            "no measured batches remain; offer more traffic or lower "
            "the warmup"
        )

    measured = range(warmup, admitted)
    e2e = [deps[a][num_stages - 1] - adm_arrival[a] for a in measured]
    stage_percentiles = {}
    for k, stage in enumerate(SERVE_STAGES):
        residence = [deps[a][k] - entries[a][k] for a in measured]
        stage_percentiles[stage] = exact_percentiles(residence, PERCENTILES)

    service_e2e = [float(service[adm_index[a]].sum()) for a in measured]
    if spec.sla_seconds is not None:
        sla = float(spec.sla_seconds)
    else:
        sla = spec.sla_factor * (sum(service_e2e) / len(service_e2e))
    violations = sum(1 for v in e2e if v > sla)

    duration = deps[-1][num_stages - 1] - adm_arrival[0]
    return ServeReport(
        system=getattr(system, "name", str(system)),
        offered=n,
        admitted=admitted,
        rejected=len(rejections),
        completed=admitted,
        measured=len(e2e),
        warmup=warmup,
        duration_s=float(duration),
        throughput_bps=float(admitted / duration) if duration > 0 else 0.0,
        mean_latency=float(sum(e2e) / len(e2e)),
        sla_seconds=float(sla),
        sla_violation_rate=float(violations / len(e2e)),
        stage_percentiles=stage_percentiles,
        end_to_end=exact_percentiles(e2e, PERCENTILES),
    )

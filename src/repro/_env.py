"""The single process-environment accessor for :mod:`repro`.

Every ``os.environ`` read or write inside ``src/repro`` flows through this
module — the ``env-discipline`` lint rule (:mod:`repro.lint`) rejects
direct access anywhere else.  Funnelling the ambient environment through
one seam keeps the configuration surface auditable (``grep read_env`` is
the complete inventory of knobs), makes tests able to fake the whole
environment at one chokepoint, and stops sweep workers from growing
hidden parent/worker configuration skew.

The accessors deliberately stay thin wrappers: no caching, no type
coercion beyond what the caller asks for.  Caching environment reads
would silently break the cross-process fault-plan handoff in
:mod:`repro.testing.faults`, which round-trips plans through the
environment of freshly spawned workers.
"""

from __future__ import annotations

import os
from typing import Optional

__all__ = [
    "read_env",
    "read_env_flag",
    "write_env",
    "remove_env",
]


def read_env(name: str, default: Optional[str] = None) -> Optional[str]:
    """Read one environment variable (the ``os.environ.get`` seam)."""
    return os.environ.get(name, default)


def read_env_flag(name: str, default: bool = False) -> bool:
    """Read a 0/1 boolean knob; empty or unset falls back to ``default``."""
    raw = os.environ.get(name, "")
    if raw == "":
        return default
    return bool(int(raw))


def write_env(name: str, value: str) -> None:
    """Set one environment variable (inherited by later child processes)."""
    os.environ[name] = value


def remove_env(name: str) -> None:
    """Unset one environment variable; a no-op when already unset."""
    os.environ.pop(name, None)

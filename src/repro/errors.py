"""The named error taxonomy shared across :mod:`repro`.

The repo's contract (enforced statically by the ``error-taxonomy`` rule
in :mod:`repro.lint`) is that no module under ``src/repro`` raises a bare
``ValueError``/``RuntimeError``/``KeyError``: every failure gets a named
class a caller can catch precisely, with a message naming the offending
value.  Each class here subclasses the builtin it refines, so callers
(and tests) written against the builtin keep working — the taxonomy only
*adds* precision.

Placement: errors whose home package predates this module stay where
they were defined (``InvalidSystemSpecError`` in :mod:`repro.api.specs`,
``InvalidZipfExponentError`` in :mod:`repro.data.distributions`, the
``SweepError`` family in :mod:`repro.analysis.sweep`, …) because they are
public API surface.  Everything introduced by the taxonomy burn-down
lives here: this module imports nothing from :mod:`repro`, so any module
— including :mod:`repro.model` and :mod:`repro.core` at the bottom of
the import graph — can depend on it without cycles.
"""

from __future__ import annotations

__all__ = [
    # model
    "ModelConfigError",
    "ModelShapeError",
    "ModelStateError",
    "OptimizerConfigError",
    "CheckpointFormatError",
    # core
    "HitMapConfigError",
    "UncachedKeyError",
    "HoldMaskConfigError",
    "PipelineConfigError",
    "ExecutorConfigError",
    "ExecutorUnavailableError",
    "ExecutorWorkerError",
    "ScratchpadConfigError",
    "ScratchpadStateError",
    "PlanCoverageError",
    "ReplacementConfigError",
    "ReplacementStateError",
    "TimelineConfigError",
    # data
    "DistributionConfigError",
    "ConformanceInputError",
    "DatasetSpecError",
    "TraceSourceError",
    "LoaderConfigError",
    "TraceFormatError",
    "TsvFormatError",
    "TraceStatsError",
    # hardware
    "HardwareSpecError",
    # serve
    "ServeConfigError",
    "ServeReportError",
    # systems
    "SystemConfigError",
    "SystemInputError",
    # analysis
    "ExperimentConfigError",
    "SweepConfigError",
    # testing
    "FaultSpecError",
    # lint
    "LintUsageError",
    "LintBaselineError",
    "LintRuleError",
]


# ----------------------------------------------------------------------
# repro.model
# ----------------------------------------------------------------------
class ModelConfigError(ValueError):
    """A :class:`~repro.model.config.ModelConfig` field is out of range."""


class ModelShapeError(ValueError):
    """Model inputs/parameters disagree on shape or required features."""


class ModelStateError(RuntimeError):
    """A model method was called out of order (e.g. step before backward)."""


class OptimizerConfigError(ValueError):
    """An optimizer hyper-parameter (lr, num_rows, …) is invalid."""


class CheckpointFormatError(ValueError):
    """A checkpoint payload is malformed or inconsistent with the model."""


# ----------------------------------------------------------------------
# repro.core
# ----------------------------------------------------------------------
class HitMapConfigError(ValueError):
    """Hit-Map geometry or query arguments are invalid."""


class UncachedKeyError(KeyError):
    """A Hit-Map translate was asked for keys that are not cached."""


class HoldMaskConfigError(ValueError):
    """Hold-mask geometry or slot arguments are invalid."""


class PipelineConfigError(ValueError):
    """Pipeline construction arguments are invalid."""


class ExecutorConfigError(ValueError):
    """A stage executor was requested by an unknown name, registered
    twice, or configured with invalid arguments."""


class ExecutorUnavailableError(RuntimeError):
    """The requested stage executor cannot run on this platform (the
    overlapped backend needs the ``fork`` start method)."""


class ExecutorWorkerError(RuntimeError):
    """A Plan-ahead worker process died or broke the message protocol."""


class ScratchpadConfigError(ValueError):
    """Scratchpad geometry/storage arguments are invalid."""


class ScratchpadStateError(RuntimeError):
    """A scratchpad operation was invoked in an unusable state."""


class PlanCoverageError(KeyError):
    """A batch requested IDs the corresponding plan does not cover."""


class ReplacementConfigError(ValueError):
    """Replacement-policy construction arguments are invalid."""


class ReplacementStateError(RuntimeError):
    """A replacement policy was driven outside its operating contract."""


class TimelineConfigError(ValueError):
    """Timeline rendering arguments are invalid."""


# ----------------------------------------------------------------------
# repro.data
# ----------------------------------------------------------------------
class DistributionConfigError(ValueError):
    """Distribution parameters (num_rows, fractions, …) are invalid."""


class ConformanceInputError(ValueError):
    """A statistical-conformance helper received unusable inputs."""


class DatasetSpecError(ValueError):
    """A dataset/locality request names unknown or inconsistent values."""


class TraceSourceError(ValueError):
    """A trace source was constructed or driven with invalid arguments."""


class LoaderConfigError(ValueError):
    """Loader lookahead/offset arguments are invalid."""


class TraceFormatError(ValueError):
    """A compiled/archived trace file violates the on-disk format."""


class TsvFormatError(ValueError):
    """A TSV trace violates the expected Criteo-style layout."""


class TraceStatsError(ValueError):
    """A trace-statistics helper received unusable inputs."""


# ----------------------------------------------------------------------
# repro.hardware
# ----------------------------------------------------------------------
class HardwareSpecError(ValueError):
    """A hardware model (memory, interconnect, energy, timing) argument
    is invalid."""


# ----------------------------------------------------------------------
# repro.serve
# ----------------------------------------------------------------------
class ServeConfigError(ValueError):
    """Live-replay arguments (num_batches, warmup, …) are invalid."""


class ServeReportError(ValueError):
    """A serve-report reduction (percentiles, …) received unusable data."""


# ----------------------------------------------------------------------
# repro.systems
# ----------------------------------------------------------------------
class SystemConfigError(ValueError):
    """System construction arguments are invalid."""


class SystemInputError(ValueError):
    """A system run was handed a trace/batch missing required content."""


# ----------------------------------------------------------------------
# repro.analysis
# ----------------------------------------------------------------------
class ExperimentConfigError(ValueError):
    """Experiment/figure arguments are invalid."""


class SweepConfigError(ValueError):
    """Sweep grid/point construction arguments are invalid."""


# ----------------------------------------------------------------------
# repro.testing
# ----------------------------------------------------------------------
class FaultSpecError(ValueError):
    """A fault-injection plan/spec field is invalid."""


# ----------------------------------------------------------------------
# repro.lint
# ----------------------------------------------------------------------
class LintUsageError(ValueError):
    """The linter was invoked with invalid paths, rules, or options."""


class LintBaselineError(ValueError):
    """A lint baseline file is malformed."""


class LintRuleError(ValueError):
    """Lint-rule registration conflict or lookup of an unknown rule."""

"""Command-line interface: regenerate any paper experiment from a shell.

Usage::

    python -m repro.cli fig13 --batches 12 --fractions 0.02 0.10
    python -m repro.cli --workers 4 fig13 --fractions 0.02 0.10
    python -m repro.cli fig15a --dims 64 128
    python -m repro.cli table1
    python -m repro.cli fig6
    python -m repro.cli overhead
    python -m repro.cli compare --locality medium --cache 0.02
    python -m repro.cli --scenario fast-drift fig13 --fractions 0.02
    python -m repro.cli --drift-rate 16 compare --locality high
    python -m repro.cli driftsweep --rates 0 1 16 64
    python -m repro.cli scenarios
    python -m repro.cli systems
    python -m repro.cli --cache-spec table0=0.04,rest=0.02 compare
    python -m repro.cli hetero --rhos 0 0.5 --splits 0.02 table0=0.04,rest=0.02
    python -m repro.cli trace criteo-sample
    python -m repro.cli ingest criteo-sample --out sample.rtrc
    python -m repro.cli --trace sample.rtrc fig13 --fractions 0.05
    python -m repro.cli serve --arrivals poisson:16
    python -m repro.cli serve --fractions 0.02 0.1 --rates 8 16 24

Every subcommand prints the same rows/series the corresponding paper table
or figure reports, using the calibrated analytic timing model.  The global
``--scenario`` / ``--drift-rate`` flags re-run any figure under a
time-varying workload (see :mod:`repro.data.scenarios`); omitting them
keeps the stationary legacy traces bit-identical.  Systems are always
constructed through ``repro.api.build_system``: ``--system`` picks any
registered design (or a full JSON ``SystemSpec``) and ``--cache-spec``
describes uniform or per-table heterogeneous caches.

Real traces: ``--trace <name-or-path>`` replays a trace file (a named
trace such as ``criteo-sample``, a Criteo-style TSV, or a compiled
``.rtrc`` produced by the ``ingest`` subcommand) through any
trace-consuming figure; ``trace`` inspects and verifies a file.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from pathlib import Path
from typing import List, Optional

import numpy as np

from repro.analysis.cost import cost_saving
from repro.errors import ExperimentConfigError
from repro.analysis.experiments import (
    ExperimentSetup,
    effective_warmup,
    fig6_hit_rate,
    fig12b_scratchpipe_latency,
    fig13_speedup,
    fig14_energy,
    fig15a_dim_sensitivity,
    fig15b_lookup_sensitivity,
    heterogeneous_cache,
    overhead_vi_d,
    replacement_policy_sensitivity,
    serve_latency_grid,
    table1_cost,
)
from repro.analysis.experiments import drift_sensitivity, scenario_comparison
from repro.analysis.report import banner, format_breakdown, format_table
from repro.analysis.sweep import SweepGridError, grid_options
from repro.api import (
    CacheSpec,
    InvalidSystemSpecError,
    RegistryError,
    SystemSpec,
    as_system_spec,
    format_cache_spec,
    parse_cache_spec,
    registered_policies,
    system_entries,
    system_entry,
)
from repro.data.datasets import LOCALITY_CLASSES
from repro.data.io import (
    InvalidTraceFileSpecError,
    TraceVerificationError,
    compile_trace,
    sha256_file,
)
from repro.data.fetch import KNOWN_TRACES, resolve_trace
from repro.model.config import ModelConfig
from repro.data.scenarios import (
    SCENARIO_PRESETS,
    DriftSpec,
    ScenarioSpec,
    ScenarioSpecError,
    scenario_by_name,
)
from repro.serve import (
    ArrivalSpecError,
    ServeSpec,
    format_serve_report,
    parse_arrivals,
)


def _scenario(args: argparse.Namespace) -> "ScenarioSpec | None":
    spec = None
    try:
        if getattr(args, "scenario", None):
            spec = scenario_by_name(args.scenario)
        if getattr(args, "drift_rate", None) is not None:
            base = spec or ScenarioSpec()
            import dataclasses

            # Rate 0 is the documented drift-free baseline (as in
            # drift_sensitivity), not an error.
            drift = DriftSpec(rate=args.drift_rate) if args.drift_rate else None
            spec = dataclasses.replace(base, drift=drift)
    except ScenarioSpecError as error:
        raise SystemExit(f"invalid scenario: {error}") from None
    return spec


def _trace_file(args: argparse.Namespace):
    """Resolve the global ``--trace`` flag (None when absent)."""
    text = getattr(args, "trace", None)
    if not text:
        return None
    if getattr(args, "scenario", None) or (
        getattr(args, "drift_rate", None) is not None
    ):
        raise SystemExit(
            "--trace replays a recorded trace; the synthetic "
            "--scenario/--drift-rate processes cannot be applied on top"
        )
    try:
        return resolve_trace(text)
    except (InvalidTraceFileSpecError, FileNotFoundError) as error:
        raise SystemExit(f"invalid --trace: {error}") from None


#: Locality label used for points replaying a real trace file.
TRACE_LOCALITY = "trace"


def _setup(args: argparse.Namespace) -> ExperimentSetup:
    executor = getattr(args, "executor", None) or "serial"
    trace_file = _trace_file(args)
    try:
        if trace_file is None:
            return ExperimentSetup(
                num_batches=args.batches, scenario=_scenario(args),
                executor=executor,
            )
        config = trace_file.configure(ModelConfig())
    except ExperimentConfigError as error:
        raise SystemExit(f"invalid --executor: {error}") from None
    except (InvalidTraceFileSpecError, ValueError) as error:
        raise SystemExit(f"invalid --trace geometry: {error}") from None
    try:
        return ExperimentSetup(
            config=config, num_batches=args.batches, trace_file=trace_file,
            executor=executor,
        )
    except ExperimentConfigError as error:
        raise SystemExit(f"invalid --executor: {error}") from None


def _localities(args: argparse.Namespace, default=LOCALITY_CLASSES):
    """Locality axis: the four classes, or one label for a file trace."""
    return (TRACE_LOCALITY,) if getattr(args, "trace", None) else tuple(default)


def _reject_scenario_flags(args: argparse.Namespace, what: str) -> None:
    """Fail loudly where a scenario cannot apply, instead of silently
    printing stationary numbers under a scenario-labelled invocation."""
    if (getattr(args, "scenario", None)
            or getattr(args, "drift_rate", None) is not None):
        raise SystemExit(
            f"{what} does not consume traces, so the global "
            "--scenario/--drift-rate flags do not apply to it"
        )


def _cache_spec(args: argparse.Namespace) -> "CacheSpec | None":
    """Parse the global ``--cache-spec`` flag (None when absent)."""
    text = getattr(args, "cache_spec", None)
    if not text:
        return None
    try:
        return parse_cache_spec(text)
    except InvalidSystemSpecError as error:
        raise SystemExit(f"invalid --cache-spec: {error}") from None


def _dynamic_spec(
    args: argparse.Namespace, fraction: float, system: str = "scratchpipe"
) -> SystemSpec:
    """The spec of the dynamic system a command studies.

    Precedence: ``--system`` (name or JSON) picks the design, then — for
    designs that take a cache — ``--cache-spec`` overrides its cache and
    the command's ``--cache`` fraction fills a still-missing one.
    Cache-less designs (hybrid baselines, multi_gpu) build as-is.
    """
    try:
        if getattr(args, "system", None):
            spec = as_system_spec(args.system)
        else:
            spec = SystemSpec(system=system)
        if system_entry(spec.system).requires_cache:
            cache = _cache_spec(args) or spec.cache
            if cache is None:
                cache = CacheSpec(fraction=fraction)
            spec = dataclasses.replace(spec, cache=cache)
        elif _cache_spec(args) is not None:
            raise SystemExit(
                f"system {spec.system!r} takes no cache; "
                "--cache-spec does not apply to it"
            )
        executor = getattr(args, "executor", None)
        if executor:
            spec = dataclasses.replace(
                spec,
                pipeline=dataclasses.replace(spec.pipeline, executor=executor),
            )
        return spec
    except (InvalidSystemSpecError, RegistryError) as error:
        raise SystemExit(f"invalid system spec: {error}") from None


def cmd_fig6(args: argparse.Namespace) -> None:
    """Figure 6: static hit rate vs cache size."""
    _reject_scenario_flags(args, "fig6 (analytic hit-rate curves)")
    fractions, curves = fig6_hit_rate(
        cache_fractions=np.linspace(0.02, 1.0, args.points)
    )
    print(banner("Figure 6: static-cache hit rate vs cache size"))
    header = ["dataset"] + [f"{f:.0%}" for f in fractions[:: max(1, args.points // 8)]]
    rows = []
    for name, curve in curves.items():
        picks = curve[:: max(1, args.points // 8)]
        rows.append([name] + [f"{v:.2f}" for v in picks])
    print(format_table(header, rows))


def cmd_fig12b(args: argparse.Namespace) -> None:
    """Figure 12(b): ScratchPipe per-stage latency."""
    out = fig12b_scratchpipe_latency(
        _setup(args), cache_fractions=tuple(args.fractions),
        workers=args.workers, localities=_localities(args),
    )
    print(banner(
        "Figure 12(b): ScratchPipe per-stage mean_latency "
        f"(warmup={effective_warmup(args.batches)})"
    ))
    for locality, sizes in out.items():
        for size, stages in sizes.items():
            print(format_breakdown(f"{locality:7s} cache={size:4s}", stages))


def cmd_fig13(args: argparse.Namespace) -> None:
    """Figure 13: end-to-end speedups."""
    points = fig13_speedup(
        _setup(args), cache_fractions=tuple(args.fractions),
        workers=args.workers, localities=_localities(args),
    )
    _print_speedup_points(
        "Figure 13: speedup normalised to static cache", points,
        point_label="locality",
    )


def _print_speedup_points(
    title: str, points, point_label: str = "sweep point"
) -> None:
    print(banner(title))
    rows = []
    for p in points:
        s = p.speedups()
        rows.append([
            p.locality, f"{p.cache_fraction:.0%}", f"{s['hybrid']:.2f}",
            "1.00", f"{s['strawman']:.2f}", f"{s['scratchpipe']:.2f}",
        ])
    print(format_table(
        [point_label, "cache", "hybrid", "static", "strawman", "scratchpipe"],
        rows,
    ))


def cmd_fig15a(args: argparse.Namespace) -> None:
    """Figure 15(a): embedding-dimension sensitivity."""
    points = fig15a_dim_sensitivity(
        dims=tuple(args.dims), cache_fraction=args.cache, base=_setup(args),
        workers=args.workers,
    )
    _print_speedup_points("Figure 15(a): embedding-dimension sensitivity", points)


def cmd_fig15b(args: argparse.Namespace) -> None:
    """Figure 15(b): lookups-per-table sensitivity."""
    points = fig15b_lookup_sensitivity(
        lookups=tuple(args.lookups), cache_fraction=args.cache,
        base=_setup(args), workers=args.workers,
    )
    _print_speedup_points("Figure 15(b): lookups-per-table sensitivity", points)


def cmd_policies(args: argparse.Namespace) -> None:
    """Section VI-E: replacement-policy sensitivity."""
    out = replacement_policy_sensitivity(
        _setup(args), cache_fraction=args.cache, workers=args.workers,
        localities=_localities(args),
    )
    print(banner(
        "Section VI-E: replacement-policy sensitivity (mean_latency "
        f"ms/iter, warmup={effective_warmup(args.batches)})"
    ))
    policies = sorted(next(iter(out.values())))
    print(format_table(
        ["locality"] + policies,
        [
            [loc] + [f"{per_policy[p] * 1e3:.2f}" for p in policies]
            for loc, per_policy in out.items()
        ],
    ))


def cmd_fig14(args: argparse.Namespace) -> None:
    """Figure 14: energy of static cache vs ScratchPipe."""
    out = fig14_energy(
        _setup(args), cache_fraction=args.cache,
        localities=_localities(args),
    )
    print(banner("Figure 14: energy per iteration (J)"))
    rows = [
        [loc, f"{e['static_cache']:.1f}", f"{e['scratchpipe']:.1f}"]
        for loc, e in out.items()
    ]
    print(format_table(["locality", "static cache", "scratchpipe"], rows))


def cmd_table1(args: argparse.Namespace) -> None:
    """Table I: AWS training cost comparison."""
    rows = table1_cost(
        _setup(args), cache_fraction=args.cache,
        localities=_localities(args),
    )
    print(banner("Table I: training cost over 1M iterations"))
    cells = []
    for sp, mg in rows:
        cells.append(sp.formatted())
        cells.append(mg.formatted())
    print(format_table(
        ["Dataset", "System", "AWS Instance", "Price/hr", "Iter. Time",
         "1M Iter. Cost"],
        cells,
    ))
    savings = [cost_saving(sp, mg) for sp, mg in rows]
    print(f"\naverage saving {np.mean(savings):.1f}x, max {max(savings):.1f}x")


def cmd_overhead(args: argparse.Namespace) -> None:
    """Section VI-D: scratchpad memory overhead."""
    _reject_scenario_flags(args, "overhead (storage sizing)")
    out = overhead_vi_d()
    print(banner("Section VI-D: GPU scratchpad overhead"))
    print(format_table(
        ["component", "MB"],
        [[k, f"{v / 1e6:.0f}"] for k, v in out.items()],
    ))


def cmd_compare(args: argparse.Namespace) -> None:
    """Head-to-head latency of the designs on one trace.

    ``--cache-spec`` replaces the uniform ``--cache`` fraction for every
    cached design (including heterogeneous per-table splits); ``--system``
    appends an extra spec-built row to the comparison.
    """
    if args.locality not in LOCALITY_CLASSES and not args.trace:
        raise SystemExit(
            f"unknown locality {args.locality!r}; pick from {LOCALITY_CLASSES}"
        )
    setup = _setup(args)
    trace = setup.trace(args.locality)
    cache = _cache_spec(args) or CacheSpec(fraction=args.cache)
    specs = {
        "hybrid": SystemSpec(system="hybrid"),
        "static_cache": SystemSpec(system="static_cache", cache=cache),
        "strawman": SystemSpec(system="strawman", cache=cache),
        "scratchpipe": SystemSpec(system="scratchpipe", cache=cache),
    }
    if getattr(args, "system", None):
        extra = _dynamic_spec(args, args.cache)
        specs[f"custom ({extra.system})"] = extra
    # The sequential baselines have no pipeline fill to exclude; the
    # pipelined designs warm up over (at most) the trace the run affords.
    pipelined_warmup = effective_warmup(args.batches)
    warmups = {"hybrid": 0, "static_cache": 0}
    results = {}
    for name, spec in specs.items():
        try:
            system = setup.build(spec)
        except InvalidSystemSpecError as error:
            raise SystemExit(f"invalid system spec for {name}: {error}") from None
        results[name] = system.run_trace(trace).mean_latency(
            warmups.get(name, pipelined_warmup)
        )
    if cache.is_uniform and cache.fraction is not None:
        cache_label = f"{cache.fraction:.0%} cache"
    else:
        cache_label = format_cache_spec(cache)
    print(banner(
        f"System comparison — {args.locality}, {cache_label}, "
        f"mean_latency (warmup={pipelined_warmup}; baselines 0)"
    ))
    print(format_table(
        ["system", "mean_latency ms/iter", "vs static"],
        [
            [name, f"{t * 1e3:.2f}", f"{results['static_cache'] / t:.2f}x"]
            for name, t in results.items()
        ],
    ))


def cmd_serve(args: argparse.Namespace) -> None:
    """Live-traffic replay: p50/p95/p99 latency + SLA-violation report.

    One (cache, rate) cell prints the full per-stage percentile report;
    ``--fractions``/``--rates`` sweep a {cache fraction x arrival rate}
    grid through ``run_grid`` (so ``--workers``, ``--checkpoint`` and
    ``--resume`` behave exactly like every other figure).
    """
    if args.locality not in LOCALITY_CLASSES and not args.trace:
        raise SystemExit(
            f"unknown locality {args.locality!r}; pick from {LOCALITY_CLASSES}"
        )
    setup = _setup(args)
    try:
        arrivals = parse_arrivals(args.arrivals)
        serve = ServeSpec(
            arrivals=arrivals,
            queue_depth=args.queue_depth,
            admission_depth=args.admission_depth,
            admission=args.admission,
            sla_seconds=args.sla / 1e3 if args.sla is not None else None,
        )
    except ArrivalSpecError as error:
        raise SystemExit(f"invalid serve configuration: {error}") from None
    locality = _localities(args, default=(args.locality,))[0]
    fractions = tuple(args.fractions) if args.fractions else (args.cache,)
    rates = tuple(args.rates) if args.rates else (arrivals.rate,)
    out = serve_latency_grid(
        arrivals, setup, cache_fractions=fractions, rates=rates,
        locality=locality, serve=serve, workers=args.workers,
    )
    if len(out) == 1:
        print(format_serve_report(next(iter(out.values()))))
        return
    warmup = effective_warmup(args.batches)
    print(banner(
        f"Live replay — {locality}, {args.arrivals}, "
        f"end_to_end latency percentiles, warmup={warmup}"
    ))
    print(format_table(
        ["cache", "rate/s", "p50 ms", "p95 ms", "p99 ms",
         "SLA violations", "rejected"],
        [
            [f"{fraction:.0%}", f"{rate:g}"]
            + [f"{p * 1e3:.3f}" for p in report.end_to_end]
            + [f"{report.sla_violation_rate:.4f}", str(report.rejected)]
            for (fraction, rate), report in out.items()
        ],
    ))


def cmd_driftsweep(args: argparse.Namespace) -> None:
    """Hit rate vs hot-set drift rate (locality-sensitivity study)."""
    out = drift_sensitivity(
        _setup(args),
        drift_rates=tuple(args.rates),
        cache_fraction=args.cache,
        localities=tuple(args.localities),
        workers=args.workers,
        cache=_cache_spec(args),
    )
    print(banner("ScratchPipe hit rate vs hot-set drift rate (rows/batch)"))
    rates = tuple(args.rates)
    print(format_table(
        ["locality"] + [f"rate={r:g}" for r in rates],
        [
            [loc] + [f"{per_rate[r]:.1%}" for r in rates]
            for loc, per_rate in out.items()
        ],
    ))


def cmd_scenarios(args: argparse.Namespace) -> None:
    """ScratchPipe behaviour across the named scenario presets."""
    if args.scenario or args.drift_rate is not None:
        raise SystemExit(
            "the scenarios subcommand compares every preset; the global "
            "--scenario/--drift-rate flags do not apply to it"
        )
    specs = {name: SCENARIO_PRESETS[name] for name in sorted(SCENARIO_PRESETS)}
    out = scenario_comparison(
        specs,
        _setup(args),
        cache_fraction=args.cache,
        locality=args.locality,
        workers=args.workers,
        cache=_cache_spec(args),
    )
    print(banner(
        f"Scenario matrix — {args.locality} base locality, "
        f"{args.cache:.0%} cache, "
        f"mean_latency (warmup={effective_warmup(args.batches)})"
    ))
    print(format_table(
        ["scenario", "mean_latency ms/iter", "plan hit rate"],
        [
            [name, f"{row['mean_latency'] * 1e3:.2f}",
             f"{row['hit_rate']:.1%}"]
            for name, row in out.items()
        ],
    ))


def cmd_systems(args: argparse.Namespace) -> None:
    """List every registered system and replacement policy."""
    _reject_scenario_flags(args, "systems (registry listing)")
    print(banner("Registered systems (repro.api)"))
    print(format_table(
        ["name", "class", "cache", "description"],
        [
            [entry.name, entry.cls.__name__,
             "required" if entry.requires_cache else "-",
             entry.description]
            for entry in system_entries()
        ],
    ))
    print(f"\nreplacement policies: {', '.join(registered_policies())}")
    print("build any of these via --system <name>, a JSON SystemSpec, or "
          "repro.api.build_system(...)")


def cmd_hetero(args: argparse.Namespace) -> None:
    """Heterogeneous per-table caches under cross-table correlation."""
    setup = _setup(args)
    try:
        splits = {text: parse_cache_spec(text) for text in args.splits}
    except InvalidSystemSpecError as error:
        raise SystemExit(f"invalid --splits entry: {error}") from None
    override = _cache_spec(args)
    if override is not None:
        splits[format_cache_spec(override)] = override
    out = heterogeneous_cache(
        setup,
        rhos=tuple(args.rhos),
        cache_specs=splits or None,
        locality=args.locality,
        workers=args.workers,
    )
    print(banner(
        f"Hit rate vs correlation rho x per-table cache split — "
        f"{args.locality} base locality"
    ))
    rhos = tuple(args.rhos)
    print(format_table(
        ["cache split"] + [f"rho={rho:g}" for rho in rhos],
        [
            [name] + [f"{cells[rho]['hit_rate']:.1%}" for rho in rhos]
            for name, cells in out.items()
        ],
    ))
    print("\nper-table hit rates at the largest rho:")
    top_rho = rhos[-1]
    print(format_table(
        ["cache split", "per-table hit rate"],
        [
            [name,
             " ".join(f"{rate:.1%}" for rate in cells[top_rho]["per_table"])]
            for name, cells in out.items()
        ],
    ))


def cmd_lint(args: argparse.Namespace) -> None:
    """Run the AST invariant linter (same engine as python -m repro.lint)."""
    _reject_scenario_flags(args, "lint (static analysis, no workload)")
    from repro.lint.cli import run_lint

    code = run_lint(args)
    if code:
        raise SystemExit(code)


def cmd_validate(args: argparse.Namespace) -> None:
    """Cross-validate the analytic model against the functional simulator."""
    _reject_scenario_flags(args, "validate (fixed cross-check workloads)")
    from repro.analysis.validation import run_validation_suite
    from repro.model.config import ModelConfig

    config = ModelConfig(
        num_tables=2,
        rows_per_table=400_000,
        embedding_dim=32,
        lookups_per_table=4,
        batch_size=256,
        bottom_mlp=(64, 32),
        top_mlp=(64, 1),
    )
    reports = run_validation_suite(config, _setup(args).hardware)
    print(banner("Analytic model vs functional simulator"))
    print(format_table(
        ["quantity", "predicted", "measured", "abs error"],
        [
            [name, f"{r.predicted:.4g}", f"{r.measured:.4g}",
             f"{r.absolute_error:.4g}"]
            for name, r in reports.items()
        ],
    ))


def cmd_timeline(args: argparse.Namespace) -> None:
    """Render the Figure 10 pipeline schedule with stage utilisation."""
    from repro.core.timeline import PipelineTimeline, render_ascii
    from repro.systems.stages import cache_stage_times

    if args.locality not in LOCALITY_CLASSES and not args.trace:
        raise SystemExit(
            f"unknown locality {args.locality!r}; pick from {LOCALITY_CLASSES}"
        )
    setup = _setup(args)
    spec = _dynamic_spec(args, args.cache)
    try:
        system = setup.build(spec)
    except InvalidSystemSpecError as error:
        raise SystemExit(f"invalid system spec: {error}") from None
    if not hasattr(system, "simulate_cache"):
        raise SystemExit(
            f"timeline needs a pipelined dynamic-cache system; "
            f"{spec.system!r} does not stream the metadata pipeline"
        )
    stats = system.simulate_cache(setup.trace(args.locality))
    stage_seconds = [
        {k: v.seconds for k, v in
         cache_stage_times(system.cost, s, system.future_window).items()}
        for s in stats
    ]
    timeline = PipelineTimeline(
        stage_seconds=stage_seconds, sync_seconds=setup.hardware.stage_sync_s
    )
    print(banner(f"Pipeline schedule — {args.locality}, {args.cache:.0%} cache"))
    print(render_ascii(timeline.cycles(), max_cycles=12))
    print(f"\nsteady-state cycle: "
          f"{timeline.steady_state_cycle_seconds() * 1e3:.2f} ms; "
          f"bottleneck: {timeline.bottleneck_stage()}")
    print(format_table(
        ["stage", "utilisation"],
        [[s, f"{u:.1%}"] for s, u in timeline.stage_utilisation().items()],
    ))


def _resolve_trace_arg(args: argparse.Namespace):
    try:
        return resolve_trace(
            args.source, max_batches=getattr(args, "max_batches", None)
        )
    except (InvalidTraceFileSpecError, FileNotFoundError) as error:
        raise SystemExit(f"invalid trace: {error}") from None


def _spec_with_geometry(args: argparse.Namespace, spec):
    """Apply the ingest geometry flags onto a resolved TraceFileSpec."""
    overrides = {
        "batch_size": args.batch_size,
        "num_tables": args.tables,
        "lookups_per_table": args.lookups,
        "rows_per_table": args.rows,
    }
    overrides = {k: v for k, v in overrides.items() if v is not None}
    if not overrides:
        return spec
    try:
        return dataclasses.replace(spec, **overrides)
    except InvalidTraceFileSpecError as error:
        raise SystemExit(f"invalid geometry: {error}") from None


def cmd_ingest(args: argparse.Namespace) -> None:
    """Compile a trace file into the binary memmap format."""
    _reject_scenario_flags(args, "ingest (format compilation)")
    spec = _spec_with_geometry(args, _resolve_trace_arg(args))
    try:
        config = spec.configure(ModelConfig())
        source = spec.open(config)
    except (InvalidTraceFileSpecError, TraceVerificationError,
            ValueError) as error:
        raise SystemExit(f"cannot open trace: {error}") from None
    out = args.out
    if out is None:
        stem = args.source.rsplit("/", 1)[-1].rsplit(".", 1)[0]
        out = f"{stem}.rtrc"
    path = compile_trace(source, out)
    digest = sha256_file(path)
    print(banner(f"compiled {args.source} -> {path}"))
    print(format_table(
        ["field", "value"],
        [
            ["batches", str(len(source))],
            ["geometry",
             f"{config.num_tables} tables x {config.batch_size} batch x "
             f"{config.lookups_per_table} lookups"],
            ["rows_per_table", str(config.rows_per_table)],
            ["bytes", str(path.stat().st_size)],
            ["sha256", digest],
        ],
    ))
    print("\nreplay it with:  python -m repro.cli --trace "
          f"{path} fig13 --fractions 0.05")


def cmd_trace(args: argparse.Namespace) -> None:
    """Inspect (and verify) a trace file or list the known traces."""
    _reject_scenario_flags(args, "trace (file inspection)")
    if args.source is None:
        print(banner("Known traces (repro.data.fetch.KNOWN_TRACES)"))
        print(format_table(
            ["name", "format", "pinned", "description"],
            [
                [entry.name, entry.spec.format,
                 "yes" if entry.spec.sha256 else "-",
                 entry.description]
                for entry in KNOWN_TRACES.values()
            ],
        ))
        return
    spec = _resolve_trace_arg(args)
    try:
        spec.verify()
        verified = "verified" if spec.sha256 else "unpinned"
    except TraceVerificationError as error:
        raise SystemExit(f"verification failed: {error}") from None
    try:
        config = spec.configure(ModelConfig())
        source = spec.open(config)
    except (InvalidTraceFileSpecError, ValueError) as error:
        raise SystemExit(f"cannot open trace: {error}") from None
    print(banner(f"trace {args.source}"))
    # An unpinned multi-GB file is not re-hashed just for display; pin it
    # (or run `ingest`, which prints the digest) to see a sha256 here.
    print(format_table(
        ["field", "value"],
        [
            ["path", spec.path],
            ["format", spec.resolved_format()],
            ["sha256", spec.sha256 or "(unpinned)"],
            ["verification", verified],
            ["batches", str(len(source))],
            ["geometry",
             f"{config.num_tables} tables x {config.batch_size} batch x "
             f"{config.lookups_per_table} lookups"],
            ["rows_per_table", str(config.rows_per_table)],
        ],
    ))


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro", description="ScratchPipe reproduction experiments"
    )
    parser.add_argument("--batches", type=int, default=14,
                        help="trace length per experiment point")
    parser.add_argument("--workers", type=int, default=1,
                        help="processes for sweep grids (1 = serial "
                             "reference path; results are identical for "
                             "any worker count)")
    parser.add_argument("--scenario", default=None,
                        choices=sorted(SCENARIO_PRESETS),
                        help="run the experiment under a named "
                             "time-varying workload scenario")
    parser.add_argument("--drift-rate", type=float, default=None,
                        help="shortcut: add hot-set drift at this rate "
                             "(rows/batch) to the scenario")
    parser.add_argument("--system", default=None,
                        help="registered system name or JSON SystemSpec "
                             "(compare/timeline; see the systems "
                             "subcommand for names)")
    parser.add_argument("--executor", default=None,
                        help="stage-execution backend: 'serial' (default) "
                             "or 'overlapped' (Plan N+future on worker "
                             "processes).  Applies to figure commands and "
                             "to compare/timeline; every backend is "
                             "bit-identical, so figure output never "
                             "depends on this flag")
    parser.add_argument("--trace", default=None,
                        help="replay a real trace file through the "
                             "experiment: a known name (see the trace "
                             "subcommand), a Criteo-style TSV, or a "
                             "compiled trace from `ingest`")
    parser.add_argument("--cache-spec", default=None,
                        help="cache spec shorthand, e.g. "
                             "'table0=0.04,rest=0.02' — per-table "
                             "heterogeneous caches for the dynamic-cache "
                             "commands (compare/timeline/driftsweep/"
                             "scenarios/hetero)")
    parser.add_argument("--checkpoint", default=None, metavar="PATH",
                        help="journal completed sweep points to this "
                             "JSONL file; a re-run with the same "
                             "checkpoint skips them (long-running grids "
                             "survive interrupts)")
    parser.add_argument("--resume", action="store_true",
                        help="require an existing --checkpoint journal "
                             "and continue it (guards against a typo'd "
                             "path silently starting from scratch)")
    parser.add_argument("--point-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-point wall-clock budget for parallel "
                             "grids; a stalled worker is killed and the "
                             "point retried")
    parser.add_argument("--point-retries", type=int, default=None,
                        metavar="N",
                        help="failed attempts a sweep point may retry "
                             "before quarantine (default 2)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("fig6", help="static hit-rate curves")
    p.add_argument("--points", type=int, default=50)
    p.set_defaults(func=cmd_fig6)

    p = sub.add_parser("fig12b", help="ScratchPipe stage latency")
    p.add_argument("--fractions", type=float, nargs="+", default=[0.02])
    p.set_defaults(func=cmd_fig12b, supports_trace=True)

    p = sub.add_parser("fig13", help="end-to-end speedups")
    p.add_argument("--fractions", type=float, nargs="+", default=[0.02])
    p.set_defaults(func=cmd_fig13, supports_trace=True)

    p = sub.add_parser("fig15a", help="embedding-dimension sensitivity")
    p.add_argument("--dims", type=int, nargs="+", default=[64, 128, 256])
    p.add_argument("--cache", type=float, default=0.02)
    p.set_defaults(func=cmd_fig15a)

    p = sub.add_parser("fig15b", help="lookups-per-table sensitivity")
    p.add_argument("--lookups", type=int, nargs="+", default=[1, 20, 50])
    # 10%: the 50-lookup point's hazard floor (~4.1%) exceeds the 2%
    # fraction the fixed-geometry figures default to.
    p.add_argument("--cache", type=float, default=0.10)
    p.set_defaults(func=cmd_fig15b)

    p = sub.add_parser("policies", help="replacement-policy sensitivity")
    p.add_argument("--cache", type=float, default=0.02)
    p.set_defaults(func=cmd_policies, supports_trace=True)

    p = sub.add_parser("fig14", help="energy comparison")
    p.add_argument("--cache", type=float, default=0.02)
    p.set_defaults(func=cmd_fig14, supports_trace=True)

    p = sub.add_parser("table1", help="AWS cost comparison")
    p.add_argument("--cache", type=float, default=0.02)
    p.set_defaults(func=cmd_table1, supports_trace=True)

    p = sub.add_parser("overhead", help="scratchpad memory overhead")
    p.set_defaults(func=cmd_overhead)

    p = sub.add_parser("compare", help="the designs head-to-head on one trace")
    p.add_argument("--locality", default="medium")
    p.add_argument("--cache", type=float, default=0.02)
    p.set_defaults(func=cmd_compare, supports_system=True,
                   supports_cache_spec=True, supports_trace=True)

    p = sub.add_parser("serve",
                       help="live-traffic replay: p50/p95/p99 latency + "
                            "SLA-violation rate")
    # Default rate sits just under the paper-scale ScratchPipe capacity
    # (~21 iterations/s at 47.8 ms/iter), where queueing tails are
    # informative rather than pure overload.
    p.add_argument("--arrivals", default="poisson:16",
                   help="arrival process: poisson:<rate>, "
                        "bursty:<rate>[:factor[:period[:duration]]], or "
                        "diurnal:<rate>[:amplitude[:period]]")
    p.add_argument("--locality", default="medium")
    p.add_argument("--cache", type=float, default=0.02)
    p.add_argument("--fractions", type=float, nargs="+", default=None,
                   help="cache-fraction axis of the serve grid "
                        "(default: just --cache)")
    p.add_argument("--rates", type=float, nargs="+", default=None,
                   help="arrival-rate axis of the serve grid "
                        "(default: just the --arrivals rate)")
    p.add_argument("--queue-depth", type=int, default=4,
                   help="bounded buffer slots between pipeline stages")
    p.add_argument("--admission-depth", type=int, default=16,
                   help="entry-queue slots (reject policy only)")
    p.add_argument("--admission", choices=("queue", "reject"),
                   default="queue")
    p.add_argument("--sla", type=float, default=None, metavar="MS",
                   help="end-to-end SLA in milliseconds (default: 3x the "
                        "mean end-to-end service time)")
    p.set_defaults(func=cmd_serve, supports_trace=True)

    p = sub.add_parser("driftsweep", help="hit rate vs hot-set drift rate")
    p.add_argument("--rates", type=float, nargs="+",
                   default=[0.0, 1.0, 4.0, 16.0, 64.0])
    p.add_argument("--cache", type=float, default=0.02)
    p.add_argument("--localities", nargs="+", default=["medium", "high"])
    p.set_defaults(func=cmd_driftsweep, supports_cache_spec=True)

    p = sub.add_parser("scenarios", help="scenario-matrix comparison")
    p.add_argument("--cache", type=float, default=0.02)
    p.add_argument("--locality", default="medium")
    p.set_defaults(func=cmd_scenarios, supports_cache_spec=True)

    p = sub.add_parser("hetero",
                       help="hit rate vs {correlation rho x per-table "
                            "cache split}")
    p.add_argument("--rhos", type=float, nargs="+",
                   default=[0.0, 0.25, 0.5, 0.75])
    p.add_argument("--splits", nargs="+", default=[],
                   help="cache-spec shorthands to compare "
                        "(default: budget-matched uniform vs "
                        "table0=0.04,rest=0.02)")
    p.add_argument("--locality", default="medium")
    p.set_defaults(func=cmd_hetero, supports_cache_spec=True)

    p = sub.add_parser("systems", help="list registered systems + policies")
    p.set_defaults(func=cmd_systems)

    p = sub.add_parser("validate", help="model-vs-simulator cross-checks")
    p.set_defaults(func=cmd_validate)

    p = sub.add_parser("lint",
                       help="AST invariant linter (determinism, "
                            "spec-purity, error taxonomy, shm/env "
                            "discipline)")
    from repro.lint.cli import build_parser as _build_lint_parser
    _build_lint_parser(p)
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser("timeline", help="pipeline schedule + utilisation")
    p.add_argument("--locality", default="random")
    p.add_argument("--cache", type=float, default=0.02)
    p.set_defaults(func=cmd_timeline, supports_system=True,
                   supports_cache_spec=True, supports_trace=True)

    p = sub.add_parser("ingest",
                       help="compile a TSV/named trace into the binary "
                            "memmap format")
    p.add_argument("source",
                   help="known trace name (e.g. criteo-sample) or file path")
    p.add_argument("--out", default=None,
                   help="destination (default: <source stem>.rtrc)")
    p.add_argument("--batch-size", type=int, default=None)
    p.add_argument("--tables", type=int, default=None)
    p.add_argument("--lookups", type=int, default=None)
    p.add_argument("--rows", type=int, default=None,
                   help="hash-bucket rows per table")
    p.add_argument("--max-batches", type=int, default=None)
    p.set_defaults(func=cmd_ingest)

    p = sub.add_parser("trace",
                       help="inspect/verify a trace file (no argument: "
                            "list known traces)")
    p.add_argument("source", nargs="?", default=None,
                   help="known trace name or file path")
    p.add_argument("--max-batches", type=int, default=None)
    p.set_defaults(func=cmd_trace)

    return parser


def main(argv: Optional[List[str]] = None) -> None:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    if args.system and not getattr(args, "supports_system", False):
        raise SystemExit(
            f"{args.command} does not build a single spec-driven system; "
            "--system does not apply to it"
        )
    if args.cache_spec and not getattr(args, "supports_cache_spec", False):
        raise SystemExit(
            f"{args.command} sweeps its own cache sizes; "
            "--cache-spec does not apply to it"
        )
    if args.trace and not getattr(args, "supports_trace", False):
        raise SystemExit(
            f"{args.command} does not replay a single trace; "
            "--trace does not apply to it"
        )
    if args.resume:
        if not args.checkpoint:
            raise SystemExit("--resume requires --checkpoint PATH")
        if not Path(args.checkpoint).exists():
            raise SystemExit(
                f"--resume: checkpoint journal {args.checkpoint} does not "
                "exist (drop --resume to start a fresh journal there)"
            )
    overrides = {}
    if args.checkpoint:
        overrides["checkpoint"] = args.checkpoint
    if args.point_timeout is not None:
        overrides["timeout"] = args.point_timeout
    if args.point_retries is not None:
        overrides["max_retries"] = args.point_retries
    try:
        with grid_options(**overrides):
            args.func(args)
    except SweepGridError as error:
        print(error.report.format(), file=sys.stderr)
        raise SystemExit(1)


if __name__ == "__main__":
    main()

"""Pluggable stage executors for the ScratchPipe pipeline.

The pipeline's cycle loop — which stage of which in-flight batch runs
when — is an execution *strategy*, separable from the stage
implementations themselves (``ScratchPipePipeline._do_plan`` and
friends).  This module turns that strategy into a registry of named
executors so systems, sweeps, the CLI and the live-replay harness can
pick one per run:

* ``serial`` (the default everywhere) runs every stage of every cycle in
  the calling process, in the exact order the seed implementation used.
  It is the bit-identical oracle the others are tested against.
* ``overlapped`` realises the paper's premise — Plan for batch
  ``N + future`` runs *ahead*, concurrently with Collect/Insert/Train of
  earlier batches — by sharding the per-table Plan work across dedicated
  worker processes (ScratchPipe instantiates one cache-manager per
  table, Section VI-G, so per-table Plan streams are independent by
  construction).  Plan results travel back by message passing — an
  ownership handoff of each batch's plan rows, never shared memory, so
  there is no segment to leak — and the parent retires
  Collect/Exchange/Insert/Train in the serial cycle order.  Bounded
  queues are the plan-ahead window: a planner at most
  ``_PLAN_AHEAD_DEPTH`` batches ahead blocks until the parent catches
  up.

Determinism contract: for a given pipeline, ``overlapped`` yields
bit-identical per-batch statistics, plans, losses, hazard-violation
lists and final table/scratchpad contents to ``serial``, for any worker
count.  This holds because each table's Plan stream is a pure function
of that table's initial scratchpad state and the batch sequence, and
tables never share Plan state.

The registry mirrors ``repro.core.replacement``'s policy registry:
``@register_executor`` to add one, ``make_executor(name)`` to
instantiate.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
from queue import Empty
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Protocol, Sequence, Tuple, Type

from repro._env import read_env
from repro.errors import (
    ExecutorConfigError,
    ExecutorUnavailableError,
    ExecutorWorkerError,
)
from repro.testing.faults import fault_point

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.pipeline import BatchCacheStats, ScratchPipePipeline


class Executor(Protocol):
    """One execution strategy for a :class:`ScratchPipePipeline`."""

    name: str

    def stream(
        self,
        pipeline: "ScratchPipePipeline",
        num_batches: int,
        losses: Optional[List[float]],
    ) -> Iterator["BatchCacheStats"]:
        """Run ``num_batches`` batches, yielding stats as batches retire.

        Called by ``ScratchPipePipeline.stream`` *after* argument
        validation; implementations may assume ``num_batches`` is in
        range.
        """
        ...


# repro-lint: disable=worker-capture -- import-time registry, rebuilt
# identically in every process on module import.
_EXECUTORS: Dict[str, Type] = {}


def register_executor(name: str):
    """Class decorator registering an :class:`Executor` under ``name``."""

    def decorate(cls: Type) -> Type:
        if name in _EXECUTORS:
            raise ExecutorConfigError(
                f"executor {name!r} is already registered "
                f"({_EXECUTORS[name].__qualname__})"
            )
        cls.name = name
        _EXECUTORS[name] = cls
        return cls

    return decorate


def registered_executors() -> Tuple[str, ...]:
    """Registered executor names, sorted."""
    return tuple(sorted(_EXECUTORS))


def make_executor(name: str) -> Executor:
    """Instantiate the executor registered under ``name``."""
    try:
        cls = _EXECUTORS[name]
    except KeyError:
        raise ExecutorConfigError(
            f"unknown executor {name!r}; registered: "
            f"{', '.join(registered_executors())}"
        ) from None
    return cls()


@register_executor("serial")
class SerialExecutor:
    """Every stage in the calling process, in seed cycle order."""

    name = "serial"

    def stream(self, pipeline, num_batches, losses):
        return pipeline._stream_cycles(num_batches, losses)


# ----------------------------------------------------------------------
# The overlapped executor
# ----------------------------------------------------------------------

#: How many batches a planner may run ahead of the parent's retirement
#: (the per-shard queue bound).  Matches the spirit of the paper's
#: bounded look-ahead: deep enough to hide retirement stalls, shallow
#: enough that a planner never races the whole trace ahead.
_PLAN_AHEAD_DEPTH = 8

#: Parent-side queue poll interval while waiting on a planner.
_POLL_S = 0.05

#: Default liveness bound: if a planner delivers nothing for this long
#: the run fails with :class:`ExecutorWorkerError` instead of hanging.
_DEFAULT_TIMEOUT_S = 300.0


def _worker_count(num_tables: int) -> int:
    """Planner-process count: ``REPRO_EXECUTOR_WORKERS`` or a CPU-bound
    default, clamped to one worker per table."""
    raw = read_env("REPRO_EXECUTOR_WORKERS")
    if raw is None:
        count = min(4, os.cpu_count() or 1)
    else:
        try:
            count = int(raw)
        except ValueError:
            raise ExecutorConfigError(
                f"REPRO_EXECUTOR_WORKERS must be an integer, got {raw!r}"
            ) from None
        if count < 1:
            raise ExecutorConfigError(
                f"REPRO_EXECUTOR_WORKERS must be >= 1, got {count}"
            )
    return max(1, min(count, num_tables))


def _liveness_timeout() -> float:
    """Seconds of planner silence tolerated before declaring a hang."""
    raw = read_env("REPRO_EXECUTOR_TIMEOUT_S")
    if raw is None:
        return _DEFAULT_TIMEOUT_S
    try:
        value = float(raw)
    except ValueError:
        raise ExecutorConfigError(
            f"REPRO_EXECUTOR_TIMEOUT_S must be a number, got {raw!r}"
        ) from None
    if value <= 0:
        raise ExecutorConfigError(
            f"REPRO_EXECUTOR_TIMEOUT_S must be > 0, got {value}"
        )
    return value


def _shard_tables(num_tables: int, workers: int) -> List[Tuple[int, ...]]:
    """Contiguous, near-equal table shards — ascending across shards so
    concatenating per-shard results in shard order preserves table
    order."""
    base, extra = divmod(num_tables, workers)
    shards: List[Tuple[int, ...]] = []
    start = 0
    for index in range(workers):
        size = base + (1 if index < extra else 0)
        if size:
            shards.append(tuple(range(start, start + size)))
            start += size
    return shards


def _shippable(error: BaseException):
    """The exception itself if it pickles, else a descriptive string.

    ``Queue.put`` pickles lazily on its feeder thread; an unpicklable
    exception would be dropped there and the parent would only see a
    silent worker death.  Probing up front keeps the failure named.
    """
    try:
        pickle.dumps(error)
    except Exception:
        return f"{type(error).__name__}: {error}"
    return error


def _encode_plan(plan) -> tuple:
    return (
        plan.unique_ids,
        plan.slots,
        plan.hit_mask,
        plan.miss_ids,
        plan.fill_slots,
        plan.evicted_ids,
    )


def _planner_worker(pipeline, shard_index: int, tables, num_batches: int, queue) -> None:
    """Plan-ahead worker: plans its table shard for every batch, in order.

    Runs in a forked child, so ``pipeline`` (scratchpads, monitor, batch
    cache) is a private copy-on-write snapshot of the parent's
    construction-time state — exactly the state a serial run would plan
    against, since Plan is the only stage that touches it.
    """
    from repro.core.pipeline import HazardError

    try:
        monitor = pipeline.monitor
        functional = pipeline._functional
        for index in range(num_batches):
            fault_point("pipeline.executor", detail=f"plan:{index}:shard:{shard_index}")
            fault_point("pipeline.stage", detail=f"plan:{index}")
            batch = pipeline._get_batch(index)
            future_batches = pipeline._future_batches(index)
            payload = []
            flagged: List[Tuple[int, str]] = []
            for table in tables:
                before = len(monitor.violations) if monitor is not None else 0
                try:
                    plan = pipeline._plan_table(table, batch, future_batches)
                    if monitor is not None:
                        monitor.on_plan(index + 1, table, plan)
                except HazardError as error:
                    queue.put(("hazard", index, table, str(error)))
                    return
                if monitor is not None:
                    flagged.extend(
                        (table, message)
                        for message in monitor.violations[before:]
                    )
                if functional:
                    payload.append(_encode_plan(plan))
                else:
                    payload.append(
                        (plan.num_unique, plan.num_hits,
                         plan.num_misses, plan.num_writebacks)
                    )
            queue.put(("plan", index, payload, flagged))
            pipeline._evict_batches_before(index + 1)
            if monitor is not None:
                monitor.on_cycle_end(index + 1)
        queue.put(
            (
                "done",
                [
                    (table, pipeline.scratchpads[table].hit_map.export_state())
                    for table in tables
                ],
            )
        )
    except BaseException as error:
        queue.put(("error", _shippable(error)))


class _PlanReceiver:
    """Parent-side demux of the per-shard planner queues."""

    def __init__(self, workers, queues, shards, timeout_s: float) -> None:
        self._workers = workers
        self._queues = queues
        self._shards = shards
        self._timeout_s = timeout_s

    def _next(self, shard_index: int):
        queue = self._queues[shard_index]
        worker = self._workers[shard_index]
        waited = 0.0
        item = None
        while item is None:
            try:
                item = queue.get(timeout=_POLL_S)
            except Empty:
                if not worker.is_alive():
                    # One last drain: the feeder thread may have flushed
                    # a final message between our poll and the death.
                    try:
                        item = queue.get(timeout=_POLL_S)
                    except Empty:
                        tables = self._shards[shard_index]
                        raise ExecutorWorkerError(
                            f"plan-ahead worker {shard_index} (tables "
                            f"{tables[0]}..{tables[-1]}) died with exit "
                            f"code {worker.exitcode} before delivering "
                            f"its next plan"
                        ) from None
                else:
                    waited += _POLL_S
                    if waited >= self._timeout_s:
                        raise ExecutorWorkerError(
                            f"plan-ahead worker {shard_index} produced no "
                            f"message for ~{self._timeout_s:.0f}s "
                            f"(REPRO_EXECUTOR_TIMEOUT_S); treating the "
                            f"run as hung"
                        )
        if item[0] == "error":
            payload = item[1]
            if isinstance(payload, BaseException):
                raise payload
            raise ExecutorWorkerError(
                f"plan-ahead worker {shard_index} failed: {payload}"
            )
        return item

    def receive(self, batch_index: int):
        """Collect batch ``batch_index``'s per-table results from every
        shard.

        Returns ``(payloads, flagged, hazard)`` — payloads and
        non-strict violation messages concatenated in table order, and
        the strict-mode hazard message (lowest table wins, matching the
        serial table-scan order) or ``None``.
        """
        payloads: List[tuple] = []
        flagged: List[Tuple[int, str]] = []
        hazards: List[Tuple[int, str]] = []
        for shard_index in range(len(self._workers)):
            item = self._next(shard_index)
            kind = item[0]
            if kind == "hazard":
                if item[1] != batch_index:
                    raise ExecutorWorkerError(
                        f"plan-ahead worker {shard_index} broke protocol: "
                        f"hazard for batch {item[1]} while the parent is "
                        f"at batch {batch_index}"
                    )
                hazards.append((item[2], item[3]))
                continue
            if kind != "plan" or item[1] != batch_index:
                raise ExecutorWorkerError(
                    f"plan-ahead worker {shard_index} broke protocol: "
                    f"expected plan for batch {batch_index}, got "
                    f"{kind!r} for {item[1]!r}"
                )
            payloads.extend(item[2])
            flagged.extend(item[3])
        if hazards:
            _, message = min(hazards)
            return [], [], message
        return payloads, flagged, None

    def finish(self) -> List[Tuple[int, object]]:
        """Collect every shard's final ``("done", states)`` message."""
        states: List[Tuple[int, object]] = []
        for shard_index in range(len(self._workers)):
            item = self._next(shard_index)
            if item[0] != "done":
                raise ExecutorWorkerError(
                    f"plan-ahead worker {shard_index} broke protocol: "
                    f"expected done, got {item[0]!r}"
                )
            states.extend(item[1])
        return states

    def shutdown(self) -> None:
        """Terminate planners and release queue resources (idempotent)."""
        for worker in self._workers:
            if worker.is_alive():
                worker.terminate()
        for worker in self._workers:
            worker.join(timeout=5.0)
        for queue in self._queues:
            queue.close()
            queue.cancel_join_thread()


@register_executor("overlapped")
class OverlappedExecutor:
    """Plan N+future on dedicated worker processes, retire on the parent.

    Requires the ``fork`` start method (workers inherit the pipeline's
    construction-time state copy-on-write; nothing is pickled on the way
    in) and a non-daemonic calling process.  Plan results come back as
    messages — full plan-row ownership handoff in functional mode,
    compact per-table counters in metadata mode — so no shared-memory
    segments exist to leak.  After the run the parent adopts each
    worker's final Hit-Map contents, keeping post-run scratchpad
    observations (occupancy, cached keys) identical to a serial run's.
    """

    name = "overlapped"

    def stream(self, pipeline, num_batches, losses):
        from repro.core.pipeline import STAGES, HazardError, _InFlight

        if "fork" not in multiprocessing.get_all_start_methods():
            raise ExecutorUnavailableError(
                "the overlapped executor needs the 'fork' start method, "
                "which this platform does not offer"
            )
        if multiprocessing.current_process().daemon:
            raise ExecutorUnavailableError(
                "the overlapped executor cannot spawn plan-ahead workers "
                "from a daemonic process"
            )
        context = multiprocessing.get_context("fork")
        shards = _shard_tables(
            pipeline.config.num_tables,
            _worker_count(pipeline.config.num_tables),
        )
        timeout_s = _liveness_timeout()
        queues = [context.Queue(maxsize=_PLAN_AHEAD_DEPTH) for _ in shards]
        workers = [
            context.Process(
                target=_planner_worker,
                args=(pipeline, shard_index, tables, num_batches, queue),
                daemon=True,
                name=f"repro-planner-{shard_index}",
            )
            for shard_index, (tables, queue) in enumerate(zip(shards, queues))
        ]
        receiver = _PlanReceiver(workers, queues, shards, timeout_s)
        monitor = pipeline.monitor
        functional = pipeline._functional
        try:
            for worker in workers:
                worker.start()
            in_flight: Dict[int, _InFlight] = {}
            stats_by_batch: Dict[int, "BatchCacheStats"] = {}
            last_cycle = num_batches - 1 + len(STAGES) - 1
            for cycle in range(last_cycle + 1):
                retired = None
                train_idx = cycle - 5
                if 0 <= train_idx < num_batches:
                    if functional:
                        record = in_flight.pop(train_idx)
                        loss = pipeline._do_train(record)
                        if loss is not None and losses is not None:
                            losses.append(loss)
                        retired = pipeline._stats_for(record)
                    else:
                        retired = stats_by_batch.pop(train_idx)
                insert_idx = cycle - 4
                if functional and 0 <= insert_idx < num_batches:
                    pipeline._do_insert(in_flight[insert_idx])
                collect_idx = cycle - 2
                if functional and 0 <= collect_idx < num_batches:
                    pipeline._do_collect(in_flight[collect_idx])
                plan_idx = cycle - 1
                if 0 <= plan_idx < num_batches:
                    payloads, flagged, hazard = receiver.receive(plan_idx)
                    if monitor is not None:
                        monitor.violations.extend(
                            message for _, message in flagged
                        )
                    if hazard is not None:
                        if monitor is not None:
                            monitor.violations.append(hazard)
                        raise HazardError(hazard)
                    if functional:
                        in_flight[plan_idx].plans.extend(
                            _decode_plan(fields) for fields in payloads
                        )
                    else:
                        stats_by_batch[plan_idx] = _stats_from_counters(
                            pipeline, plan_idx, payloads
                        )
                if functional:
                    if cycle < num_batches:
                        in_flight[cycle] = _InFlight(
                            batch=pipeline._get_batch(cycle)
                        )
                    oldest = min(in_flight) if in_flight else num_batches
                    pipeline._evict_batches_before(oldest)
                if monitor is not None:
                    monitor.on_cycle_end(cycle)
                if retired is not None:
                    yield retired
            for table, key_of_slot in receiver.finish():
                pipeline.scratchpads[table].hit_map.adopt_state(key_of_slot)
        finally:
            receiver.shutdown()


def _decode_plan(fields: tuple):
    from repro.core.scratchpad import TablePlan

    return TablePlan(*fields)


def _stats_from_counters(
    pipeline, batch_index: int, counters: Sequence[Tuple[int, int, int, int]]
):
    from repro.core.pipeline import BatchCacheStats

    unique = tuple(c[0] for c in counters)
    hits = tuple(c[1] for c in counters)
    misses = tuple(c[2] for c in counters)
    return BatchCacheStats(
        batch_index=batch_index,
        total_lookups=pipeline.config.lookups_per_batch,
        unique_ids=sum(unique),
        hits=sum(hits),
        misses=sum(misses),
        writebacks=sum(c[3] for c in counters),
        per_table_misses=misses,
        per_table_hits=hits,
        per_table_unique=unique,
    )

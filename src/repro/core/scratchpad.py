"""The GPU scratchpad: Storage array + Hit-Map + Hold mask (Section IV-D).

One :class:`GpuScratchpad` manages the cache of a single embedding table —
ScratchPipe instantiates one cache-manager per table (Section VI-G).  The
scratchpad can run in two modes:

* **functional** (``with_storage=True``): a real numpy Storage array holds
  embedding rows, enabling bit-exact training through the cache;
* **metadata-only** (``with_storage=False``): only the index structures are
  simulated — sufficient for hit/miss/victim statistics at the paper's full
  10-million-row scale, where materialising 40 GB of weights is pointless.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.errors import (
    PlanCoverageError,
    ScratchpadConfigError,
    ScratchpadStateError,
)
from repro.core.hitmap import EMPTY, HitMap
from repro.core.holdmask import HoldMask
from repro.core.replacement import (
    CachePressureError,
    ReplacementPolicy,
    make_policy,
)
from repro.model.config import ModelConfig


@dataclass(frozen=True)
class TablePlan:
    """The [Plan] stage's decisions for one table of one mini-batch.

    Attributes:
        unique_ids: Sorted unique sparse IDs the batch gathers.
        slots: Scratchpad slot of each unique ID (parallel to
            ``unique_ids``); every ID has a slot after planning — that is the
            always-hit guarantee.
        hit_mask: True where the ID was already cached before this plan.
        miss_ids: IDs that must be fetched from the CPU table ([Collect]).
        fill_slots: Slot assigned to each missed ID (parallel to
            ``miss_ids``); filled at [Insert].
        evicted_ids: Sparse ID displaced from each fill slot (``EMPTY`` where
            the slot was vacant); written back to the CPU table at [Insert].
    """

    unique_ids: np.ndarray
    slots: np.ndarray
    hit_mask: np.ndarray
    miss_ids: np.ndarray
    fill_slots: np.ndarray
    evicted_ids: np.ndarray

    @property
    def num_unique(self) -> int:
        """Unique IDs gathered by the batch for this table."""
        return int(self.unique_ids.size)

    @property
    def num_hits(self) -> int:
        """Unique IDs already cached at plan time.

        Every unique ID is either a hit or a miss, so this is derived in
        O(1) rather than re-reducing ``hit_mask`` per consumer.
        """
        return int(self.unique_ids.size - self.miss_ids.size)

    @property
    def num_misses(self) -> int:
        """Unique IDs that must be prefetched from CPU memory."""
        return int(self.miss_ids.size)

    @property
    def num_writebacks(self) -> int:
        """Dirty victims that must be written back to the CPU table."""
        return int(np.count_nonzero(self.evicted_ids != EMPTY))

    def slots_for(self, ids: np.ndarray) -> np.ndarray:
        """Map arbitrary (possibly repeated) batch IDs to their slots.

        Every ID must appear in ``unique_ids`` — guaranteed for the batch
        this plan was built from.
        """
        flat = np.asarray(ids, dtype=np.int64).reshape(-1)
        positions = np.searchsorted(self.unique_ids, flat)
        if positions.max(initial=-1) >= self.unique_ids.size or not np.array_equal(
            self.unique_ids[positions], flat
        ):
            raise PlanCoverageError("plan does not cover all requested IDs")
        return self.slots[positions].reshape(np.asarray(ids).shape)


@dataclass
class GpuScratchpad:
    """Always-hit software cache for one embedding table.

    Attributes:
        num_slots: Storage capacity in rows.
        num_rows: Row count of the table being cached (the sparse-ID
            universe of the Hit-Map).
        dim: Embedding dimension (used only when storage is materialised).
        past_window: Hold-mask past window (3 in the paper's pipeline).
        policy_name: Replacement policy (``"lru"``/``"lfu"``/``"random"``).
        with_storage: Materialise a numpy Storage array.
        legacy_select: Run victim selection through the full-scan oracle
            policies instead of the incremental candidate queues (see
            ``repro.core.replacement``); ``None`` defers to the
            ``REPRO_LEGACY_SELECT`` environment hook.
        table_index: Which table this scratchpad caches, threaded into
            cache-pressure diagnostics (``None`` for standalone use).
    """

    num_slots: int
    num_rows: int
    dim: int = 0
    past_window: int = 3
    policy_name: str = "lru"
    with_storage: bool = False
    legacy_select: Optional[bool] = None
    table_index: Optional[int] = None
    hit_map: HitMap = field(init=False)
    hold_mask: HoldMask = field(init=False)
    policy: ReplacementPolicy = field(init=False)
    storage: Optional[np.ndarray] = field(init=False, default=None)
    _plan_cycle: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        if self.with_storage and self.dim < 1:
            raise ScratchpadConfigError("dim must be >= 1 when storage is materialised")
        self.hit_map = HitMap(self.num_slots, self.num_rows)
        self.hold_mask = HoldMask(self.num_slots, past_window=self.past_window)
        self.policy = make_policy(
            self.policy_name, self.num_slots, legacy=self.legacy_select
        )
        self.policy.bind_hold_mask(self.hold_mask)
        if self.with_storage:
            self.storage = np.zeros((self.num_slots, self.dim), dtype=np.float32)

    def reset(self) -> None:
        """Return to the freshly constructed state without reallocating.

        The Hit-Map's dense ID-indexed index is the scratchpad's dominant
        allocation (``num_rows`` entries per table — hundreds of MB at paper
        scale), so sweep runners reuse one scratchpad per (system, scale)
        grid instead of rebuilding it per point.
        """
        self.hit_map.reset()
        self.hold_mask.reset()
        self.policy.reset()
        if self.storage is not None:
            self.storage.fill(0.0)
        self._plan_cycle = 0

    # ------------------------------------------------------------------
    # [Plan] stage logic (Algorithm 1, vectorised, with future window)
    # ------------------------------------------------------------------
    def plan_batch(
        self,
        batch_ids: np.ndarray,
        future_ids: Optional[np.ndarray] = None,
        *,
        presorted_unique: bool = False,
    ) -> TablePlan:
        """Run the Plan stage for one table of one mini-batch.

        Args:
            batch_ids: The batch's lookup IDs for this table (any shape;
                duplicates allowed).
            future_ids: Lookup IDs of the next ``future_window`` batches
                (the lookahead that removes RAW-4); ``None`` or empty
                disables future protection.  With ``presorted_unique`` this
                may be a *list* of per-batch sorted-unique ID arrays, which
                skips concatenating them.
            presorted_unique: Fast path for the pipelined caller:
                ``batch_ids`` is already the sorted-unique int64 ID set of
                the batch (``MiniBatch.unique_table_ids``) and ``future_ids``
                holds such per-batch sorted-unique sets.
                Skips the per-call ``np.unique`` passes; the resulting plan
                is bit-identical to the slow path's.

        Returns:
            A :class:`TablePlan` that later stages consume.

        The call advances the hold mask (one batch enters [Plan] per
        pipeline cycle), queries the Hit-Map, protects hit slots and
        future-window slots, selects hazard-free victims for the misses and
        eagerly updates the Hit-Map — Storage remains untouched until
        [Insert], per the delayed-update discipline.
        """
        self.hold_mask.advance()
        self._plan_cycle += 1

        if presorted_unique:
            unique_ids = batch_ids
        else:
            unique_ids = np.unique(
                np.asarray(batch_ids, dtype=np.int64).reshape(-1)
            )
        slots, hit_mask = self.hit_map.query(unique_ids, presorted_unique=True)

        # Protect this batch's hits for the whole sliding window.
        hit_slots = slots[hit_mask]
        self.hold_mask.hold_trusted(hit_slots)

        not_hit = ~hit_mask
        miss_ids = unique_ids[not_hit]
        fill_slots = np.empty(0, dtype=np.int64)
        evicted_ids = np.empty(0, dtype=np.int64)
        if miss_ids.size:
            # Transient protection of slots the next future_window batches
            # need (removes RAW-4: never evict what an upcoming batch
            # expects cached).  Computed only when victims are needed — the
            # lookahead has no other effect.  Duplicates across the
            # per-batch unique sets only re-flag slots, so deduplication
            # across batches is pointless.
            try:
                if self.policy.legacy:
                    transient_slots = self._future_held_slots(
                        future_ids, presorted_unique
                    )
                    eligible = self.hold_mask.eligible_mask()
                    if transient_slots is not None and transient_slots.size:
                        eligible[transient_slots] = False
                    fill_slots = self.policy.select(eligible, miss_ids.size)
                else:
                    fill_slots = self.policy.select_eligible(
                        miss_ids.size,
                        self._future_raw_slots(future_ids, presorted_unique),
                    )
            except CachePressureError as error:
                table = (
                    f"table {self.table_index}"
                    if self.table_index is not None
                    else "table ?"
                )
                raise CachePressureError(
                    f"[Plan] cache pressure at {table}, "
                    f"plan cycle {self._plan_cycle}: {error}"
                ) from None
            evicted_ids = self.hit_map.assign_many(
                miss_ids, fill_slots, validate=False
            )
            self.hold_mask.hold_trusted(fill_slots)
            slots[not_hit] = fill_slots

        used_slots = slots
        self.policy.record_use(used_slots, self._plan_cycle)

        return TablePlan(
            unique_ids=unique_ids,
            slots=slots,
            hit_mask=hit_mask,
            miss_ids=miss_ids,
            fill_slots=fill_slots,
            evicted_ids=evicted_ids,
        )

    def _future_raw_slots(self, future_ids, presorted_unique: bool):
        """Future-window slots as raw per-part lookups (may contain -1).

        The incremental policies arm transient protection straight from
        these (uncached future IDs map to -1, which lands on the exclusion
        stamp's sacrificial element), skipping the hit filtering and
        concatenation the boolean-mask path needs.
        """
        if future_ids is None or len(future_ids) == 0:
            return None
        if presorted_unique:
            if isinstance(future_ids, (list, tuple)):
                return [
                    self.hit_map.slots_raw(keys, presorted_unique=True)
                    for keys in future_ids
                ]
            # Back-compat: one pre-concatenated array is not globally
            # sorted, so take the full range validation.
            return [self.hit_map.slots_raw(future_ids)]
        future_keys = np.unique(
            np.asarray(future_ids, dtype=np.int64).reshape(-1)
        )
        return [self.hit_map.slots_raw(future_keys, presorted_unique=True)]

    def _future_held_slots(
        self, future_ids, presorted_unique: bool
    ) -> Optional[np.ndarray]:
        """Slots the future-window batches will hit (may repeat), or None."""
        if future_ids is None or len(future_ids) == 0:
            return None
        if presorted_unique:
            if isinstance(future_ids, (list, tuple)):
                # Per-batch sorted-unique sets: the O(1) first/last range
                # check applies per part.
                parts = [(keys, True) for keys in future_ids]
            else:
                # Back-compat: one pre-concatenated array is not globally
                # sorted, so take the full range validation.
                parts = [(future_ids, False)]
            held = []
            for keys, sorted_part in parts:
                future_slots, future_hits = self.hit_map.query(
                    keys, presorted_unique=sorted_part
                )
                hit_slots = future_slots[future_hits]
                if hit_slots.size:
                    held.append(hit_slots)
            if not held:
                return None
            return held[0] if len(held) == 1 else np.concatenate(held)
        future_keys = np.unique(np.asarray(future_ids, dtype=np.int64).reshape(-1))
        future_slots, future_hits = self.hit_map.query(future_keys)
        hit_slots = future_slots[future_hits]
        return hit_slots if hit_slots.size else None

    # ------------------------------------------------------------------
    # Storage access (functional mode only)
    # ------------------------------------------------------------------
    def _require_storage(self) -> np.ndarray:
        if self.storage is None:
            raise ScratchpadStateError(
                "scratchpad was built metadata-only (with_storage=False)"
            )
        return self.storage

    def read_slots(self, slots: np.ndarray) -> np.ndarray:
        """Read embedding rows out of Storage ([Collect] victim reads,
        [Train] gathers)."""
        return self._require_storage()[slots]

    def read_slots_into(self, slots: np.ndarray, out: np.ndarray) -> np.ndarray:
        """Gather embedding rows into a caller-provided buffer.

        Lets the pipeline stage victim rows into its preallocated ring
        buffers instead of allocating a fresh copy per cycle.
        """
        np.take(self._require_storage(), slots, axis=0, out=out)
        return out

    def write_slots(self, slots: np.ndarray, values: np.ndarray) -> None:
        """Write embedding rows into Storage ([Insert] fills,
        [Parameter Update] writes)."""
        self._require_storage()[slots] = values

    def occupancy(self) -> float:
        """Fraction of slots holding a cached embedding."""
        return self.hit_map.occupancy()


def per_table(value, num_tables: int, what: str) -> tuple:
    """Broadcast a scalar (or validate a per-table sequence) to a tuple.

    The per-table sizing hook every scratchpad builder shares: a scalar
    (slot count, policy name, ``None``) applies uniformly; a sequence must
    name exactly one value per table — the heterogeneous-cache path sizes
    each table's Hit-Map/Hold-mask/policy independently.
    """
    if isinstance(value, (str, int, np.integer)) or value is None:
        return (value,) * num_tables
    values = tuple(value)
    if len(values) != num_tables:
        raise ScratchpadConfigError(
            f"per-table {what} needs one value per table "
            f"({num_tables}), got {len(values)}"
        )
    return values


def required_slots(config: ModelConfig, window_batches: int = 6) -> int:
    """Worst-case Storage rows per table for a hazard-free window.

    Section VI-D: the Storage array must hold the embeddings of all
    mini-batches inside the sliding window even if none of their IDs
    overlap — ``lookups_per_table * batch_size * window_batches`` rows per
    table (the paper's 960 MB figure is this bound times row bytes summed
    over tables).
    """
    if window_batches < 1:
        raise ScratchpadConfigError(f"window_batches must be >= 1, got {window_batches}")
    per_batch = config.lookups_per_table * config.batch_size
    return min(per_batch * window_batches, config.rows_per_table)


def hazard_floor_slots(config: ModelConfig, past_window: int = 3) -> int:
    """Hard per-table cache floor of the hold-mask hazard window.

    At [Plan] time the hold mask keeps the slots of the ``past_window``
    in-flight batches ineligible while the current batch claims victims
    for its misses — so a cache smaller than ``past_window + 1`` batches
    of worst-case unique IDs can deadlock with ``CachePressureError`` on
    any trace whose consecutive batches do not overlap.  ``build_system``
    rejects such specs up front with a named error (the ROADMAP's
    "hazard-window floor"; ≈1.6 % of the table at the paper's default
    geometry, which is why 2 % is the smallest fraction the figures
    sweep).  Sizes between this floor and the full 6-batch
    :func:`required_slots` bound are workload-dependent: they run out of
    eligible victims only if the trace's future-window protection also
    fills the cache.
    """
    if past_window < 0:
        raise ScratchpadConfigError(f"past_window must be >= 0, got {past_window}")
    return required_slots(config, window_batches=past_window + 1)


def worst_case_storage_bytes(config: ModelConfig, window_batches: int = 6) -> int:
    """Worst-case Storage bytes across all tables (the paper's 960 MB)."""
    per_table = config.lookups_per_table * config.batch_size * window_batches
    return config.num_tables * per_table * config.row_bytes

"""The GPU scratchpad: Storage array + Hit-Map + Hold mask (Section IV-D).

One :class:`GpuScratchpad` manages the cache of a single embedding table —
ScratchPipe instantiates one cache-manager per table (Section VI-G).  The
scratchpad can run in two modes:

* **functional** (``with_storage=True``): a real numpy Storage array holds
  embedding rows, enabling bit-exact training through the cache;
* **metadata-only** (``with_storage=False``): only the index structures are
  simulated — sufficient for hit/miss/victim statistics at the paper's full
  10-million-row scale, where materialising 40 GB of weights is pointless.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.hitmap import EMPTY, HitMap
from repro.core.holdmask import HoldMask
from repro.core.replacement import ReplacementPolicy, make_policy
from repro.model.config import ModelConfig


@dataclass(frozen=True)
class TablePlan:
    """The [Plan] stage's decisions for one table of one mini-batch.

    Attributes:
        unique_ids: Sorted unique sparse IDs the batch gathers.
        slots: Scratchpad slot of each unique ID (parallel to
            ``unique_ids``); every ID has a slot after planning — that is the
            always-hit guarantee.
        hit_mask: True where the ID was already cached before this plan.
        miss_ids: IDs that must be fetched from the CPU table ([Collect]).
        fill_slots: Slot assigned to each missed ID (parallel to
            ``miss_ids``); filled at [Insert].
        evicted_ids: Sparse ID displaced from each fill slot (``EMPTY`` where
            the slot was vacant); written back to the CPU table at [Insert].
    """

    unique_ids: np.ndarray
    slots: np.ndarray
    hit_mask: np.ndarray
    miss_ids: np.ndarray
    fill_slots: np.ndarray
    evicted_ids: np.ndarray

    @property
    def num_unique(self) -> int:
        """Unique IDs gathered by the batch for this table."""
        return int(self.unique_ids.size)

    @property
    def num_hits(self) -> int:
        """Unique IDs already cached at plan time."""
        return int(self.hit_mask.sum())

    @property
    def num_misses(self) -> int:
        """Unique IDs that must be prefetched from CPU memory."""
        return int(self.miss_ids.size)

    @property
    def num_writebacks(self) -> int:
        """Dirty victims that must be written back to the CPU table."""
        return int(np.count_nonzero(self.evicted_ids != EMPTY))

    def slots_for(self, ids: np.ndarray) -> np.ndarray:
        """Map arbitrary (possibly repeated) batch IDs to their slots.

        Every ID must appear in ``unique_ids`` — guaranteed for the batch
        this plan was built from.
        """
        flat = np.asarray(ids, dtype=np.int64).reshape(-1)
        positions = np.searchsorted(self.unique_ids, flat)
        if positions.max(initial=-1) >= self.unique_ids.size or not np.array_equal(
            self.unique_ids[positions], flat
        ):
            raise KeyError("plan does not cover all requested IDs")
        return self.slots[positions].reshape(np.asarray(ids).shape)


@dataclass
class GpuScratchpad:
    """Always-hit software cache for one embedding table.

    Attributes:
        num_slots: Storage capacity in rows.
        num_rows: Row count of the table being cached (the sparse-ID
            universe of the Hit-Map).
        dim: Embedding dimension (used only when storage is materialised).
        past_window: Hold-mask past window (3 in the paper's pipeline).
        policy_name: Replacement policy (``"lru"``/``"lfu"``/``"random"``).
        with_storage: Materialise a numpy Storage array.
    """

    num_slots: int
    num_rows: int
    dim: int = 0
    past_window: int = 3
    policy_name: str = "lru"
    with_storage: bool = False
    hit_map: HitMap = field(init=False)
    hold_mask: HoldMask = field(init=False)
    policy: ReplacementPolicy = field(init=False)
    storage: Optional[np.ndarray] = field(init=False, default=None)
    _plan_cycle: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        if self.with_storage and self.dim < 1:
            raise ValueError("dim must be >= 1 when storage is materialised")
        self.hit_map = HitMap(self.num_slots, self.num_rows)
        self.hold_mask = HoldMask(self.num_slots, past_window=self.past_window)
        self.policy = make_policy(self.policy_name, self.num_slots)
        if self.with_storage:
            self.storage = np.zeros((self.num_slots, self.dim), dtype=np.float32)

    # ------------------------------------------------------------------
    # [Plan] stage logic (Algorithm 1, vectorised, with future window)
    # ------------------------------------------------------------------
    def plan_batch(
        self,
        batch_ids: np.ndarray,
        future_ids: Optional[np.ndarray] = None,
        *,
        presorted_unique: bool = False,
    ) -> TablePlan:
        """Run the Plan stage for one table of one mini-batch.

        Args:
            batch_ids: The batch's lookup IDs for this table (any shape;
                duplicates allowed).
            future_ids: Union of the lookup IDs of the next
                ``future_window`` batches (the lookahead that removes
                RAW-4); ``None`` or empty disables future protection.
            presorted_unique: Fast path for the pipelined caller:
                ``batch_ids`` is already the sorted-unique int64 ID set of
                the batch (``MiniBatch.unique_table_ids``) and ``future_ids``
                is a concatenation of such per-batch sorted-unique sets.
                Skips the per-call ``np.unique`` passes; the resulting plan
                is bit-identical to the slow path's.

        Returns:
            A :class:`TablePlan` that later stages consume.

        The call advances the hold mask (one batch enters [Plan] per
        pipeline cycle), queries the Hit-Map, protects hit slots and
        future-window slots, selects hazard-free victims for the misses and
        eagerly updates the Hit-Map — Storage remains untouched until
        [Insert], per the delayed-update discipline.
        """
        self.hold_mask.advance()
        self._plan_cycle += 1

        if presorted_unique:
            unique_ids = batch_ids
        else:
            unique_ids = np.unique(
                np.asarray(batch_ids, dtype=np.int64).reshape(-1)
            )
        slots, hit_mask = self.hit_map.query(unique_ids, presorted_unique=True)

        # Protect this batch's hits for the whole sliding window.
        hit_slots = slots[hit_mask]
        self.hold_mask.hold(hit_slots)

        # Transient protection of slots the next future_window batches need
        # (removes RAW-4: never evict what an upcoming batch expects cached).
        transient = np.zeros(self.num_slots, dtype=bool)
        if future_ids is not None and len(future_ids) > 0:
            if presorted_unique:
                # Duplicates across the concatenated per-batch unique sets
                # only re-set transient bits — deduplication is pointless.
                future_keys = future_ids
            else:
                future_keys = np.unique(
                    np.asarray(future_ids, dtype=np.int64).reshape(-1)
                )
            # The concatenation is not globally sorted, so take the full
            # min/max range validation here (O(n), trivial next to the
            # np.unique sort this path avoids).
            future_slots, future_hits = self.hit_map.query(future_keys)
            transient[future_slots[future_hits]] = True

        miss_ids = unique_ids[~hit_mask]
        fill_slots = np.empty(0, dtype=np.int64)
        evicted_ids = np.empty(0, dtype=np.int64)
        if miss_ids.size:
            eligible = self.hold_mask.eligible_mask() & ~transient
            fill_slots = self.policy.select(eligible, miss_ids.size)
            evicted_ids = self.hit_map.assign_many(miss_ids, fill_slots)
            self.hold_mask.hold(fill_slots)
            slots[~hit_mask] = fill_slots

        used_slots = slots
        self.policy.record_use(used_slots, self._plan_cycle)

        return TablePlan(
            unique_ids=unique_ids,
            slots=slots,
            hit_mask=hit_mask,
            miss_ids=miss_ids,
            fill_slots=fill_slots,
            evicted_ids=evicted_ids,
        )

    # ------------------------------------------------------------------
    # Storage access (functional mode only)
    # ------------------------------------------------------------------
    def _require_storage(self) -> np.ndarray:
        if self.storage is None:
            raise RuntimeError(
                "scratchpad was built metadata-only (with_storage=False)"
            )
        return self.storage

    def read_slots(self, slots: np.ndarray) -> np.ndarray:
        """Read embedding rows out of Storage ([Collect] victim reads,
        [Train] gathers)."""
        return self._require_storage()[slots]

    def write_slots(self, slots: np.ndarray, values: np.ndarray) -> None:
        """Write embedding rows into Storage ([Insert] fills,
        [Parameter Update] writes)."""
        self._require_storage()[slots] = values

    def occupancy(self) -> float:
        """Fraction of slots holding a cached embedding."""
        return self.hit_map.occupancy()


def required_slots(config: ModelConfig, window_batches: int = 6) -> int:
    """Worst-case Storage rows per table for a hazard-free window.

    Section VI-D: the Storage array must hold the embeddings of all
    mini-batches inside the sliding window even if none of their IDs
    overlap — ``lookups_per_table * batch_size * window_batches`` rows per
    table (the paper's 960 MB figure is this bound times row bytes summed
    over tables).
    """
    if window_batches < 1:
        raise ValueError(f"window_batches must be >= 1, got {window_batches}")
    per_batch = config.lookups_per_table * config.batch_size
    return min(per_batch * window_batches, config.rows_per_table)


def worst_case_storage_bytes(config: ModelConfig, window_batches: int = 6) -> int:
    """Worst-case Storage bytes across all tables (the paper's 960 MB)."""
    per_table = config.lookups_per_table * config.batch_size * window_batches
    return config.num_tables * per_table * config.row_bytes

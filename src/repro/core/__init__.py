"""Core ScratchPipe machinery: Hit-Map, Hold mask, scratchpad, pipeline."""

from repro.core.hitmap import EMPTY, HitMap
from repro.core.holdmask import HoldMask
from repro.core.pipeline import (
    BatchCacheStats,
    HazardError,
    HazardMonitor,
    PipelineResult,
    PipelineTrainer,
    ScratchPipePipeline,
    PLAN_TO_COLLECT,
    PLAN_TO_INSERT,
    PLAN_TO_TRAIN,
    PRICED_STAGE_OFFSETS,
    STAGES,
)
from repro.core.replacement import (
    CachePressureError,
    LfuPolicy,
    LruPolicy,
    RandomPolicy,
    ReplacementPolicy,
    make_policy,
)
from repro.core.scratchpad import (
    GpuScratchpad,
    TablePlan,
    required_slots,
    worst_case_storage_bytes,
)
from repro.core.strawman import StrawmanCache, make_strawman_scratchpads
from repro.core.timeline import (
    CycleOccupancy,
    PipelineTimeline,
    render_ascii,
    schedule,
)

__all__ = [
    "EMPTY",
    "HitMap",
    "HoldMask",
    "BatchCacheStats",
    "HazardError",
    "HazardMonitor",
    "PipelineResult",
    "PipelineTrainer",
    "ScratchPipePipeline",
    "PLAN_TO_COLLECT",
    "PLAN_TO_INSERT",
    "PLAN_TO_TRAIN",
    "PRICED_STAGE_OFFSETS",
    "STAGES",
    "CachePressureError",
    "LfuPolicy",
    "LruPolicy",
    "RandomPolicy",
    "ReplacementPolicy",
    "make_policy",
    "GpuScratchpad",
    "TablePlan",
    "required_slots",
    "worst_case_storage_bytes",
    "StrawmanCache",
    "make_strawman_scratchpads",
    "CycleOccupancy",
    "PipelineTimeline",
    "render_ascii",
    "schedule",
]

"""Pipeline timeline: per-cycle stage occupancy and utilisation analysis.

Renders the execution schedule of Figure 10 — which mini-batch occupies
which stage in every cycle — and computes occupancy/utilisation statistics
from priced stage latencies.  Useful for understanding *why* the pipelined
iteration time equals the bottleneck stage, and for the Figure 9-style
hazard-window diagrams in documentation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from repro.errors import TimelineConfigError
from repro.core.pipeline import STAGES

#: Stages that are priced (Load is overlapped host work).
PRICED_STAGES = ("plan", "collect", "exchange", "insert", "train")


@dataclass(frozen=True)
class CycleOccupancy:
    """Which batch occupies each stage during one cycle.

    Attributes:
        cycle: Cycle index.
        batches: Stage name -> batch index (absent = stage idle/empty).
        cycle_seconds: Wall-clock length of this cycle (the slowest occupied
            stage plus sync), when stage latencies were provided.
    """

    cycle: int
    batches: Dict[str, int]
    cycle_seconds: float = 0.0


def schedule(num_batches: int) -> List[CycleOccupancy]:
    """The pure occupancy schedule: batch ``b`` is at stage ``s`` in cycle
    ``b + index(s)``."""
    if num_batches < 1:
        raise TimelineConfigError(f"num_batches must be >= 1, got {num_batches}")
    cycles = []
    last_cycle = num_batches - 1 + len(STAGES) - 1
    for cycle in range(last_cycle + 1):
        occupancy = {}
        for offset, stage in enumerate(STAGES):
            batch = cycle - offset
            if 0 <= batch < num_batches:
                occupancy[stage] = batch
        cycles.append(CycleOccupancy(cycle=cycle, batches=occupancy))
    return cycles


@dataclass
class PipelineTimeline:
    """Timing-annotated pipeline schedule.

    Args:
        stage_seconds: Per-batch stage latencies — ``stage_seconds[b][s]``
            is batch ``b``'s latency at stage ``s`` (missing stages cost 0).
        sync_seconds: Per-cycle synchronisation overhead.
    """

    stage_seconds: Sequence[Mapping[str, float]]
    sync_seconds: float = 0.0

    def __post_init__(self) -> None:
        if not self.stage_seconds:
            raise TimelineConfigError("stage_seconds must cover at least one batch")

    @property
    def num_batches(self) -> int:
        """Batches covered by the timeline."""
        return len(self.stage_seconds)

    def cycles(self) -> List[CycleOccupancy]:
        """Occupancy plus per-cycle wall-clock time."""
        out = []
        for entry in schedule(self.num_batches):
            seconds = 0.0
            for stage, batch in entry.batches.items():
                if stage == "load":
                    continue
                seconds = max(
                    seconds, self.stage_seconds[batch].get(stage, 0.0)
                )
            if entry.batches:
                seconds += self.sync_seconds
            out.append(CycleOccupancy(entry.cycle, entry.batches, seconds))
        return out

    def total_seconds(self) -> float:
        """End-to-end wall-clock time including fill/drain."""
        return sum(c.cycle_seconds for c in self.cycles())

    def steady_state_cycle_seconds(self) -> float:
        """Mean cycle time over the fully-occupied (steady-state) cycles."""
        full = [
            c.cycle_seconds
            for c in self.cycles()
            if len(c.batches) == len(STAGES)
        ]
        if not full:  # trace shorter than the pipeline depth
            return self.total_seconds() / max(1, self.num_batches)
        return sum(full) / len(full)

    def stage_utilisation(self) -> Dict[str, float]:
        """Fraction of occupied-cycle time each stage is actually busy.

        The bottleneck stage approaches 1.0; heavily overlapped stages sit
        far below — quantifying how much latency the pipeline hides.
        """
        busy: Dict[str, float] = {s: 0.0 for s in PRICED_STAGES}
        wall = 0.0
        for entry in self.cycles():
            wall += entry.cycle_seconds
            for stage, batch in entry.batches.items():
                if stage == "load":
                    continue
                busy[stage] += self.stage_seconds[batch].get(stage, 0.0)
        if wall == 0.0:
            return {s: 0.0 for s in PRICED_STAGES}
        return {s: busy[s] / wall for s in PRICED_STAGES}

    def bottleneck_stage(self) -> str:
        """The stage with the highest utilisation."""
        utilisation = self.stage_utilisation()
        return max(utilisation, key=utilisation.get)


def render_ascii(
    cycles: Sequence[CycleOccupancy], max_cycles: Optional[int] = 16
) -> str:
    """Render the schedule as the Figure 10-style staircase diagram."""
    shown = list(cycles[:max_cycles]) if max_cycles else list(cycles)
    width = 10
    header = "cycle".ljust(7) + "".join(s.ljust(width) for s in STAGES)
    lines = [header, "-" * len(header)]
    for entry in shown:
        cells = [
            (f"B{entry.batches[s]}" if s in entry.batches else ".").ljust(width)
            for s in STAGES
        ]
        lines.append(str(entry.cycle).ljust(7) + "".join(cells))
    if max_cycles and len(cycles) > max_cycles:
        lines.append(f"... ({len(cycles) - max_cycles} more cycles)")
    return "\n".join(lines)

"""The straw-man architecture: dynamic cache without pipelining (Section IV-B).

The straw-man executes the four cache-management steps
(``Query -> Collect -> Exchange -> Insert``) and the training steps
*sequentially* for every mini-batch (Figure 8).  With no concurrent
mini-batches in flight there are no RAW hazards to manage, so the hold
window only needs to protect the current batch (``past_window = 0``) and no
future lookahead is required.  Its cache-management latency sits squarely on
the critical path — which is precisely the limitation the pipelined
ScratchPipe removes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import ScratchpadConfigError
from repro.core.hitmap import EMPTY
from repro.core.pipeline import BatchCacheStats, PipelineTrainer
from repro.core.scratchpad import GpuScratchpad, TablePlan, per_table
from repro.data.trace import MiniBatch
from repro.model.config import ModelConfig


def make_strawman_scratchpads(
    config: ModelConfig,
    num_slots,
    policy_name="lru",
    with_storage: bool = False,
    legacy_select: Optional[bool] = None,
) -> List[GpuScratchpad]:
    """Build per-table scratchpads configured for sequential execution.

    ``num_slots``/``policy_name`` accept a uniform scalar or a per-table
    sequence (the heterogeneous-cache path).  The hold-mask past window is
    fixed at 0 — sequential execution has no concurrent batches to
    protect, and a larger window would only restrict victim choice.
    """
    slots = per_table(num_slots, config.num_tables, "num_slots")
    policies = per_table(policy_name, config.num_tables, "policy_name")
    return [
        GpuScratchpad(
            num_slots=slots[table],
            num_rows=config.rows_per_table,
            dim=config.embedding_dim,
            past_window=0,
            policy_name=policies[table],
            with_storage=with_storage,
            legacy_select=legacy_select,
            table_index=table,
        )
        for table in range(config.num_tables)
    ]


@dataclass
class StrawmanCache:
    """Sequential dynamic-cache runtime (the paper's straw-man design point).

    Args:
        config: Model geometry.
        scratchpads: Per-table caches (``past_window`` should be 0; larger
            windows are legal but needlessly restrict victim choice).
        cpu_tables: Master tables for functional runs, or ``None`` for
            metadata-only statistics.
        trainer: Train-stage callback, or ``None``.
    """

    config: ModelConfig
    scratchpads: Sequence[GpuScratchpad]
    cpu_tables: Optional[List[np.ndarray]] = None
    trainer: Optional[PipelineTrainer] = None
    _losses: List[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(self.scratchpads) != self.config.num_tables:
            raise ScratchpadConfigError(
                f"need one scratchpad per table ({self.config.num_tables}), "
                f"got {len(self.scratchpads)}"
            )
        self._functional = self.cpu_tables is not None

    @property
    def losses(self) -> List[float]:
        """Losses of every trained batch, in order."""
        return self._losses

    def _exchange_and_insert(self, plans: List[TablePlan]) -> None:
        for table, plan in enumerate(plans):
            if plan.fill_slots.size == 0:
                continue
            scratchpad = self.scratchpads[table]
            # [Collect]: read missed rows from the CPU table and victim rows
            # from the scratchpad.
            missed_rows = self.cpu_tables[table][plan.miss_ids].copy()
            victim_rows = scratchpad.read_slots(plan.fill_slots).copy()
            # [Exchange] is a PCIe transfer (priced by the timing layer);
            # [Insert] lands both sides.
            dirty = plan.evicted_ids != EMPTY
            if dirty.any():
                self.cpu_tables[table][plan.evicted_ids[dirty]] = victim_rows[dirty]
            scratchpad.write_slots(plan.fill_slots, missed_rows)

    def run_batch(self, batch: MiniBatch) -> BatchCacheStats:
        """Process one mini-batch through all steps of Figure 8."""
        plans: List[TablePlan] = []
        for table, scratchpad in enumerate(self.scratchpads):
            # [Query]: sequential execution needs no future lookahead; the
            # batch's cached sorted-unique IDs feed the plan directly.
            plans.append(
                scratchpad.plan_batch(
                    batch.unique_table_ids(table), None, presorted_unique=True
                )
            )
        if self._functional:
            self._exchange_and_insert(plans)
        if self.trainer is not None:
            self._losses.append(self.trainer.train(batch, plans, self.scratchpads))
        return BatchCacheStats(
            batch_index=batch.index,
            total_lookups=self.config.lookups_per_batch,
            unique_ids=sum(p.num_unique for p in plans),
            hits=sum(p.num_hits for p in plans),
            misses=sum(p.num_misses for p in plans),
            writebacks=sum(p.num_writebacks for p in plans),
            per_table_misses=tuple(p.num_misses for p in plans),
            per_table_hits=tuple(p.num_hits for p in plans),
            per_table_unique=tuple(p.num_unique for p in plans),
        )

    def run(self, dataset_batches: object, num_batches: Optional[int] = None) -> List[BatchCacheStats]:
        """Process ``num_batches`` sequentially; returns per-batch stats."""
        total = len(dataset_batches)
        if num_batches is None:
            num_batches = total
        if not 0 < num_batches <= total:
            raise ScratchpadConfigError(
                f"num_batches must be in [1, {total}], got {num_batches}"
            )
        return [
            self.run_batch(dataset_batches.batch(i)) for i in range(num_batches)
        ]

"""The Hit-Map: ScratchPipe's (key, value) cache index (Section IV-D).

The Hit-Map maps an embedding's original sparse feature ID (key) to the
index of its cached copy inside the scratchpad's Storage array (value).
A defining property of ScratchPipe's design is that the Hit-Map is updated
*eagerly at [Plan] time* while the Storage array is updated lazily when the
batch reaches [Insert] — the Hit-Map therefore always reflects the Storage
state several pipeline cycles in the future (Figure 11's "delayed and
asynchronous" update discipline).  This class implements only the index;
the delay semantics live in the pipeline, which simply refrains from
touching Storage until the right stage.

Implementation note: the paper implements the map as a GPU hash table; here
it is a dense ID-indexed array (the ID universe — the table's row count —
is known), which makes the query/assign paths fully vectorised.  At the
paper's scale this costs 4 bytes per table row (40 MB per 10M-row table),
comparable to the "<1 GB" the paper budgets for its Hit-Map (Section VI-D).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np
from repro.errors import HitMapConfigError, UncachedKeyError

#: Sentinel meaning "no key cached in this slot" / "key not cached".
EMPTY = -1

#: Translation-cache capacity (see ``HitMap``): the pipeline keeps at
#: most the current batch's set plus the two future-window sets live, so
#: four entries cover it with one spare for edge patterns.
_TLB_CAPACITY = 4

#: Patch-vs-invalidate break-even (see ``HitMap._patch_tlb``): a cached
#: translation is patched in place only while the assignment's update set
#: is at least this many times smaller than the cached set; otherwise the
#: entry is invalidated and re-gathered on its next lookup.  A binary
#: probe costs a few times a gathered element (log-factor plus the extra
#: passes), so 4 keeps patching strictly on the winning side.
_TLB_PATCH_FACTOR = 4


@dataclass
class HitMap:
    """Bidirectional ID<->slot index for one embedding table's cache.

    Attributes:
        num_slots: Capacity of the Storage array this map indexes.
        num_rows: Size of the sparse-ID universe (the table's row count).

    A software-managed TLB sits in front of the dense index for the
    [Plan] hot path: each batch's sorted-unique ID set is looked up
    *three times* across consecutive plans (as the future-window
    lookahead of the two preceding plans, then as its own plan's query),
    each a cache-hostile random gather over the row-count-sized index.
    ``slots_raw``/``query`` with ``presorted_unique=True`` key a tiny
    translation cache on the identity of the ID array (the pipeline
    reuses one ndarray per batch per table), and every ``assign_many``
    either patches the cached translations in place (a ``searchsorted``
    probe of the update keys into the sorted cached set — far cheaper
    than re-gathering when the update set is small) or, when the update
    set is too large for patching to win, invalidates them so the next
    lookup re-gathers.  The third lookup (the plan's own ``query``)
    retires the entry.  Cached translations are served as shared
    read-only views, valid until the next map mutation.
    """

    num_slots: int
    num_rows: int
    _slot_of_key: np.ndarray = field(init=False, repr=False)
    _key_of_slot: np.ndarray = field(init=False, repr=False)
    _size: int = field(init=False, default=0, repr=False)
    # id(keys) -> (keys, cached int32 slot translations).  Holding the
    # keys array itself both pins the id against reuse and lets patches
    # probe membership without touching the dense index.
    _tlb: Dict[int, Tuple[np.ndarray, np.ndarray]] = field(
        init=False, repr=False, default_factory=dict
    )

    def __post_init__(self) -> None:
        if self.num_slots < 1:
            raise HitMapConfigError(f"num_slots must be >= 1, got {self.num_slots}")
        if self.num_rows < 1:
            raise HitMapConfigError(f"num_rows must be >= 1, got {self.num_rows}")
        # int32 slots: caches beyond 2**31 rows are far past GPU capacity.
        # Keys likewise fit int32 whenever the ID universe does (the only
        # case where they would not); halving the element width halves the
        # random-access traffic of the assign/displace hot path.
        self._slot_of_key = np.full(self.num_rows, EMPTY, dtype=np.int32)
        key_dtype = (
            np.int32 if self.num_rows <= np.iinfo(np.int32).max else np.int64
        )
        self._key_of_slot = np.full(self.num_slots, EMPTY, dtype=key_dtype)

    def __len__(self) -> int:
        return self._size

    def __contains__(self, key: int) -> bool:
        return self._slot_of_key[int(key)] != EMPTY

    def slot_of(self, key: int) -> Optional[int]:
        """Slot caching ``key``, or ``None`` on a miss."""
        slot = int(self._slot_of_key[int(key)])
        return None if slot == EMPTY else slot

    def key_of(self, slot: int) -> int:
        """Key cached in ``slot`` (``EMPTY`` if vacant)."""
        return int(self._key_of_slot[slot])

    @property
    def key_of_slot_array(self) -> np.ndarray:
        """The dense slot->key index (``EMPTY`` where vacant), uncopied.

        Exposed for the Plan stage's transient-exclusion fast path; callers
        must treat the array as read-only.
        """
        return self._key_of_slot

    def query(
        self, keys: np.ndarray, *, presorted_unique: bool = False
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Probe many keys at once.

        Args:
            keys: int64 array of (typically unique) sparse feature IDs.
                Out-of-range IDs raise :class:`ValueError` — numpy would
                otherwise silently wrap negative indices and fault on large
                ones, turning a corrupt trace into wrong hit statistics.
            presorted_unique: The caller vouches that ``keys`` is an int64
                array straight out of a prior ``np.unique`` pass (sorted,
                in-range).  Skips the dtype conversion and reduces the
                range validation to an O(1) first/last check — the [Plan]
                hot path uses this.

        Returns:
            ``(slots, hit_mask)`` — ``slots[i]`` is the cached slot of
            ``keys[i]`` or ``EMPTY``; ``hit_mask[i]`` is True on a hit.
        """
        if presorted_unique:
            if keys.size and (keys[0] < 0 or keys[-1] >= self.num_rows):
                raise HitMapConfigError(
                    f"key out of range [0, {self.num_rows}): "
                    f"[{int(keys[0])}, {int(keys[-1])}]"
                )
            # A query is the *last* lookup of a batch's ID set (its own
            # plan): serve and retire the TLB entry in one step.
            entry = self._tlb.pop(id(keys), None)
            if entry is not None:
                slots = entry[1].astype(np.int64)
                return slots, slots != EMPTY
        else:
            keys = np.asarray(keys, dtype=np.int64)
            if keys.size and (
                int(keys.min()) < 0 or int(keys.max()) >= self.num_rows
            ):
                raise HitMapConfigError(
                    f"key out of range [0, {self.num_rows}): "
                    f"min {int(keys.min())}, max {int(keys.max())}"
                )
        slots = self._slot_of_key[keys].astype(np.int64)
        return slots, slots != EMPTY

    def slots_raw(
        self, keys: np.ndarray, *, presorted_unique: bool = False
    ) -> np.ndarray:
        """Bare slot lookup: ``EMPTY`` (-1) where a key is uncached.

        Skips the int64 cast and hit-mask computation of :meth:`query` —
        the Plan stage's future-window lookahead only needs raw slot
        indices to arm transient protection (``-1`` entries are inert
        there).

        With ``presorted_unique`` the translation is cached in the TLB
        keyed on the ID array's identity and served on repeat lookups;
        the returned array is a shared read-only view, valid only until
        the next map mutation (the lookahead consumes it immediately).
        """
        if presorted_unique:
            if keys.size and (keys[0] < 0 or keys[-1] >= self.num_rows):
                raise HitMapConfigError(
                    f"key out of range [0, {self.num_rows}): "
                    f"[{int(keys[0])}, {int(keys[-1])}]"
                )
            entry = self._tlb.get(id(keys))
            if entry is not None:
                return entry[1]
            result = self._slot_of_key[keys]
            if keys.size:
                self._tlb[id(keys)] = (keys, result)
                if len(self._tlb) > _TLB_CAPACITY:
                    self._tlb.pop(next(iter(self._tlb)))
            return result
        else:
            keys = np.asarray(keys, dtype=np.int64)
            if keys.size and (
                int(keys.min()) < 0 or int(keys.max()) >= self.num_rows
            ):
                raise HitMapConfigError(
                    f"key out of range [0, {self.num_rows}): "
                    f"min {int(keys.min())}, max {int(keys.max())}"
                )
        return self._slot_of_key[keys]

    def assign_many(
        self, keys: np.ndarray, slots: np.ndarray, *, validate: bool = True
    ) -> np.ndarray:
        """Install ``keys[i]`` in ``slots[i]``, returning the displaced keys.

        Displaced keys (``EMPTY`` where the slot was vacant) are removed
        from the map — mirroring [Plan] scheduling evictions whose
        write-backs complete later, at [Insert].

        Args:
            keys: Unique, currently-uncached sparse IDs.
            slots: Distinct target slots (same length as ``keys``).
            validate: Check the not-already-cached / slot-range invariants.
                The [Plan] hot path passes ``False`` — its keys are the miss
                subset of the query it just ran and its slots come straight
                from the replacement policy, so the O(len(keys)) re-checks
                are pure overhead there.

        Raises:
            ValueError: On already-cached keys or out-of-range slots
                (only with ``validate=True``).
        """
        keys = np.asarray(keys, dtype=np.int64)
        slots = np.asarray(slots, dtype=np.int64)
        if keys.shape != slots.shape:
            raise HitMapConfigError(
                f"keys {keys.shape} and slots {slots.shape} length mismatch"
            )
        if keys.size == 0:
            return np.empty(0, dtype=np.int64)
        if validate:
            if (self._slot_of_key[keys] != EMPTY).any():
                raise HitMapConfigError(
                    "some keys are already cached; query before assign"
                )
            if slots.min() < 0 or slots.max() >= self.num_slots:
                raise HitMapConfigError(f"slot index out of range [0, {self.num_slots})")
        # Fancy indexing already yields a fresh array — safe to hand out.
        displaced = self._key_of_slot[slots]
        valid = displaced != EMPTY
        self._slot_of_key[displaced[valid]] = EMPTY
        # Pre-cast once: scattering int64 values into the int32 index would
        # otherwise convert element by element.
        slots32 = slots.astype(np.int32)
        self._slot_of_key[keys] = slots32
        self._key_of_slot[slots] = keys
        self._size += int(keys.size - valid.sum())
        if self._tlb:
            self._patch_tlb(keys, slots32, displaced[valid])
        return displaced

    def _patch_tlb(
        self, keys: np.ndarray, slots32: np.ndarray, evicted_keys: np.ndarray
    ) -> None:
        """Apply one assignment to every live cached translation.

        ``keys``/``slots32`` are the just-installed pairs (keys were
        uncached) and ``evicted_keys`` the real displaced keys (were
        cached) — disjoint sets, so patch order is immaterial.  Each
        update key is probed into the (sorted) cached set, so a patch
        costs O(updates * log(cached)) — cheap for the high-locality
        traffic the TLB targets, where the miss set is a sliver of the
        batch.  When the update set rivals the cached set in size the
        patch would cost more than the dense-index gather it avoids, so
        the entry is invalidated instead and the next lookup re-gathers
        (no worse than an uncached lookup).
        """
        budget = _TLB_PATCH_FACTOR * (keys.size + evicted_keys.size)
        stale = [
            entry_id
            for entry_id, (cached_keys, _) in self._tlb.items()
            if cached_keys.size <= budget
        ]
        for entry_id in stale:
            del self._tlb[entry_id]
        for cached_keys, cached_slots in self._tlb.values():
            top = cached_keys.size - 1
            if evicted_keys.size:
                positions = np.minimum(
                    np.searchsorted(cached_keys, evicted_keys), top
                )
                hit = cached_keys[positions] == evicted_keys
                cached_slots[positions[hit]] = EMPTY
            positions = np.minimum(np.searchsorted(cached_keys, keys), top)
            hit = cached_keys[positions] == keys
            cached_slots[positions[hit]] = slots32[hit]

    def assign(self, key: int, slot: int) -> int:
        """Scalar convenience wrapper around :meth:`assign_many`."""
        displaced = self.assign_many(
            np.array([key], dtype=np.int64), np.array([slot], dtype=np.int64)
        )
        return int(displaced[0])

    def reset(self) -> None:
        """Empty the map without reallocating its dense index.

        Clearing only the occupied entries keeps the cost O(num_slots)
        rather than O(num_rows) — the whole point of reusing the map is
        that the ``num_rows``-sized index (the dominant allocation at paper
        scale) survives across runs.
        """
        occupied = self._key_of_slot != EMPTY
        self._slot_of_key[self._key_of_slot[occupied]] = EMPTY
        self._key_of_slot.fill(EMPTY)
        self._size = 0
        self._tlb.clear()

    def export_state(self) -> np.ndarray:
        """Snapshot the slot->key index for cross-process adoption.

        The slot->key array alone determines the whole map (the dense
        key->slot index is its inverse), so it is the entire payload the
        overlapped executor's planner workers ship home.
        """
        return self._key_of_slot.copy()

    def adopt_state(self, key_of_slot: np.ndarray) -> None:
        """Replace this map's contents with an exported snapshot.

        Used by the overlapped executor: the parent's Hit-Maps are stale
        after a run (planning happened in worker processes), so each
        worker's final :meth:`export_state` is adopted to keep post-run
        observations identical to a serial run's.
        """
        key_of_slot = np.asarray(key_of_slot, dtype=np.int64)
        if key_of_slot.shape != (self.num_slots,):
            raise HitMapConfigError(
                f"adopted state must have shape ({self.num_slots},), "
                f"got {key_of_slot.shape}"
            )
        self.reset()
        occupied = key_of_slot != EMPTY
        self._key_of_slot[:] = key_of_slot
        self._slot_of_key[key_of_slot[occupied]] = np.flatnonzero(
            occupied
        ).astype(np.int32)
        self._size = int(np.count_nonzero(occupied))

    def free_slot_mask(self) -> np.ndarray:
        """Boolean mask of vacant slots."""
        return self._key_of_slot == EMPTY

    def occupancy(self) -> float:
        """Fraction of slots currently holding a key."""
        return self._size / self.num_slots

    def keys(self) -> np.ndarray:
        """All cached keys (unsorted beyond slot order)."""
        cached = self._key_of_slot[self._key_of_slot != EMPTY]
        return cached.copy()

    def slots_of_keys(self, keys: np.ndarray) -> np.ndarray:
        """Slots of keys that are known to be cached (raises otherwise)."""
        slots, hits = self.query(keys)
        if not hits.all():
            raise UncachedKeyError("some keys are not cached")
        return slots

"""Victim-selection (replacement) policies for the GPU scratchpad.

The Plan stage needs ``k`` victims per miss burst, chosen from the slots the
Hold mask leaves eligible.  The paper's default policy is LRU, with random
and LFU evaluated in the Section VI-E sensitivity study.  All policies here
are vectorised: one call selects the whole burst.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Type

import numpy as np


class CachePressureError(RuntimeError):
    """Raised when fewer eligible slots exist than victims are needed.

    ScratchPipe requires the Storage array to be provisioned for the
    worst-case working set of the sliding window (Section VI-D); hitting
    this error means the cache is undersized for the workload — compute the
    bound with :func:`repro.core.scratchpad.required_slots`.
    """


@dataclass
class ReplacementPolicy:
    """Base class holding per-slot usage metadata.

    Attributes:
        num_slots: Number of Storage slots managed.
    """

    num_slots: int
    _last_use: np.ndarray = field(init=False, repr=False)
    _use_count: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.num_slots < 1:
            raise ValueError(f"num_slots must be >= 1, got {self.num_slots}")
        # Never-used slots sort first under LRU so vacancies fill eagerly.
        self._last_use = np.full(self.num_slots, -1, dtype=np.int64)
        self._use_count = np.zeros(self.num_slots, dtype=np.int64)

    def record_use(self, slots: np.ndarray, cycle: int) -> None:
        """Note that ``slots`` were referenced by the batch planned at ``cycle``."""
        slots = np.asarray(slots, dtype=np.int64)
        if slots.size == 0:
            return
        self._last_use[slots] = cycle
        self._use_count[slots] += 1

    def select(self, eligible: np.ndarray, count: int) -> np.ndarray:
        """Choose ``count`` victim slots among ``eligible`` (boolean mask).

        Returns an int64 array of ``count`` distinct slot indices.

        Raises:
            CachePressureError: If fewer than ``count`` slots are eligible.
        """
        raise NotImplementedError

    def _candidates(self, eligible: np.ndarray, count: int) -> np.ndarray:
        candidates = np.flatnonzero(eligible)
        if candidates.size < count:
            raise CachePressureError(
                f"need {count} victims but only {candidates.size} of "
                f"{self.num_slots} slots are eligible; enlarge the scratchpad "
                "(see repro.core.scratchpad.required_slots)"
            )
        return candidates

    def _take_smallest(
        self, candidates: np.ndarray, scores: np.ndarray, count: int
    ) -> np.ndarray:
        """Pick the ``count`` candidates with the smallest scores."""
        if count == 0:
            return np.empty(0, dtype=np.int64)
        candidate_scores = scores[candidates]
        if count >= candidates.size:
            return candidates
        picked = np.argpartition(candidate_scores, count - 1)[:count]
        return candidates[picked]


@dataclass
class LruPolicy(ReplacementPolicy):
    """Evict the least-recently-used eligible slots (the paper's default)."""

    def select(self, eligible: np.ndarray, count: int) -> np.ndarray:
        candidates = self._candidates(eligible, count)
        return self._take_smallest(candidates, self._last_use, count)


@dataclass
class LfuPolicy(ReplacementPolicy):
    """Evict the least-frequently-used eligible slots."""

    def select(self, eligible: np.ndarray, count: int) -> np.ndarray:
        candidates = self._candidates(eligible, count)
        return self._take_smallest(candidates, self._use_count, count)


@dataclass
class RandomPolicy(ReplacementPolicy):
    """Evict uniformly random eligible slots (sensitivity study baseline)."""

    seed: int = 0
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        super().__post_init__()
        self._rng = np.random.default_rng(self.seed)

    def select(self, eligible: np.ndarray, count: int) -> np.ndarray:
        candidates = self._candidates(eligible, count)
        if count == 0:
            return np.empty(0, dtype=np.int64)
        # Prefer vacant (never used) slots first, like LRU does, so that the
        # cache warms deterministically; randomness applies to true evictions.
        vacant = candidates[self._last_use[candidates] < 0]
        if vacant.size >= count:
            return vacant[:count]
        used = candidates[self._last_use[candidates] >= 0]
        extra = self._rng.choice(used, size=count - vacant.size, replace=False)
        return np.concatenate([vacant, extra])


_POLICIES: Dict[str, Type[ReplacementPolicy]] = {
    "lru": LruPolicy,
    "lfu": LfuPolicy,
    "random": RandomPolicy,
}


def make_policy(name: str, num_slots: int) -> ReplacementPolicy:
    """Build a replacement policy by name (``"lru"``/``"lfu"``/``"random"``)."""
    try:
        policy_cls = _POLICIES[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown policy {name!r}; expected one of {sorted(_POLICIES)}"
        ) from None
    return policy_cls(num_slots=num_slots)

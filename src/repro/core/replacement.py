"""Victim-selection (replacement) policies for the GPU scratchpad.

The Plan stage needs ``k`` victims per miss burst, chosen from the slots the
Hold mask leaves eligible.  The paper's default policy is LRU, with random
and LFU evaluated in the Section VI-E sensitivity study.

Selection semantics
-------------------
``LruPolicy``/``LfuPolicy`` return the ``count`` eligible slots that are
smallest under the lexicographic order ``(score, slot index)``, in ascending
order — score is the last-use cycle for LRU and the use count for LFU.
Never-used slots carry the smallest scores, so vacancies fill eagerly and
deterministically.  ``RandomPolicy`` fills sorted vacant slots first (so the
cache warms deterministically) and only then draws uniformly random victims
among the used eligible slots.

The tie-break *by slot index* is deliberate: the seed implementation used
``np.argpartition``, whose choice among equal scores is an introselect
implementation detail — impossible to reproduce with any structure that does
not rescan every slot, and not stable across numpy versions.  Pinning the
order makes victim choice a well-defined cache semantic that both the scan
and the incremental implementations below realise bit-identically.

Two implementations of the same semantics
-----------------------------------------
* ``legacy=True`` — the seed-style full scan: rebuild the candidate list
  from a boolean eligibility mask and sort, O(num_slots) per call.  Retained
  as the oracle for the equivalence property tests (the same pattern as the
  pipeline's legacy ``HazardMonitor``).
* ``legacy=False`` (default) — an incrementally maintained score-bucketed
  candidate queue (:class:`_CandidateBuckets`): ``record_use`` appends the
  touched slots to the bucket of their new score, and ``select_eligible``
  pops victims from the lowest buckets, checking eligibility per candidate
  with O(1) hold-stamp compares.  Stale entries (slots whose score moved on)
  are dropped lazily when encountered, so the per-cycle cost tracks the
  slots actually touched — O(misses) — instead of ``num_slots``.

``REPRO_LEGACY_SELECT=1`` in the environment flips every policy built by
:func:`make_policy` to the scan oracle (a whole-run verification hook).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Type

import numpy as np
from repro._env import read_env_flag
from repro.errors import ReplacementConfigError, ReplacementStateError

#: Chunk floor for the bucket walk: candidates are validated in slices of at
#: least this many entries so the amortised numpy call overhead stays small.
_MIN_CHUNK = 64

_EMPTY_SLOTS = np.empty(0, dtype=np.int64)


class CachePressureError(RuntimeError):
    """Raised when fewer eligible slots exist than victims are needed.

    ScratchPipe requires the Storage array to be provisioned for the
    worst-case working set of the sliding window (Section VI-D); hitting
    this error means the cache is undersized for the workload — compute the
    bound with :func:`repro.core.scratchpad.required_slots`.
    """


class _SlotExclusion:
    """Versioned transient-slot marking (no per-call clearing pass).

    The stamp array carries one sacrificial trailing element so callers can
    arm raw Hit-Map lookups directly: ``EMPTY`` (-1) slots — future IDs
    that are not cached and so protect nothing — land on the extra element
    instead of a real slot.
    """

    __slots__ = ("_stamp", "_version")

    def __init__(self, num_slots: int) -> None:
        self._stamp = np.zeros(num_slots + 1, dtype=np.int32)
        self._version = 0

    def arm(self, parts) -> None:
        """Mark the slots of ``parts`` (a list of index arrays, -1 allowed)
        as transiently protected for this selection."""
        self._version += 1
        for slots in parts:
            self._stamp[slots] = self._version

    def mask(self, slots: np.ndarray) -> np.ndarray:
        """Boolean mask: True where the slot was armed this version."""
        return self._stamp[slots] == self._version


class _CandidateBuckets:
    """Incremental (score -> sorted candidate slots) queue.

    Entries live in the bucket of the score they were pushed with; a slot
    whose score has since changed is *stale* and is discarded the first time
    a pop walk encounters it (its live entry sits in a later-pushed bucket).
    Selection is a pure query: popped candidates stay in their bucket until
    their score changes, so repeated pops with unchanged state return the
    same victims — exactly like the scan oracle.

    Buckets store lists of sorted, ascending-disjoint array parts so that
    consuming the head of a large bucket (the initial all-vacant free list)
    never copies its tail.  Total work is amortised O(1) per pushed entry:
    stale and consumed entries are touched at most twice, and periodic
    rebuilds (triggered by push volume) bound the memory of long runs.
    """

    def __init__(self, scores: np.ndarray, num_slots: int) -> None:
        self._scores = scores
        self._num_slots = num_slots
        self._rebuild_threshold = max(8 * num_slots, 1 << 19)
        self.rebuild()

    def rebuild(self) -> None:
        """Drop all entries and re-derive one live entry per slot."""
        scores = self._scores
        order = np.argsort(scores, kind="stable")
        ordered = scores[order]
        boundaries = np.flatnonzero(ordered[1:] != ordered[:-1]) + 1
        chunks = np.split(order, boundaries)
        keys = ordered[np.concatenate(([0], boundaries))]
        self._parts: Dict[int, List[np.ndarray]] = {
            int(key): [chunk] for key, chunk in zip(keys, chunks)
        }
        self._pending: Dict[int, List[np.ndarray]] = {}
        self._min_key = int(keys[0])
        self._max_key = int(keys[-1])
        self._pushed = 0

    def push(self, key: int, slots: np.ndarray) -> None:
        """Record that ``slots`` now score ``key`` (their prior entries go
        stale).  ``slots`` must not contain duplicates."""
        self._pending.setdefault(key, []).append(slots)
        if key < self._min_key:
            self._min_key = key
        if key > self._max_key:
            self._max_key = key
        self._pushed += slots.size
        if self._pushed >= self._rebuild_threshold:
            self.rebuild()

    def pop(
        self,
        count: int,
        release_stamps: np.ndarray,
        clock: int,
        exclude,
        stop_key: Optional[int] = None,
    ) -> Tuple[np.ndarray, int]:
        """Collect up to ``count`` eligible slots in (score, slot) order.

        A candidate is eligible when its hold stamp has expired
        (``release_stamps[slot] <= clock``) and ``exclude`` (``None`` or an
        object with a ``mask(slots)`` method, e.g. :class:`_SlotExclusion`)
        does not veto it.  ``stop_key`` bounds the walk (inclusive);
        ``None`` walks every bucket.  Returns ``(victims, found)`` where
        ``found < count`` means the walked buckets hold only ``found``
        eligible slots in total.
        """
        taken: List[np.ndarray] = []
        got = 0
        scores = self._scores
        key = self._min_key
        last_key = self._max_key if stop_key is None else min(stop_key, self._max_key)
        advance_min = True
        while got < count and key <= last_key:
            parts = self._parts.get(key)
            pending = self._pending.pop(key, None)
            if pending is not None:
                flat = (parts or []) + pending
                parts = [np.sort(np.concatenate(flat)) if len(flat) > 1
                         else np.sort(flat[0])]
            if not parts:
                if advance_min:
                    self._min_key = key + 1
                key += 1
                continue
            new_parts: List[np.ndarray] = []
            need = count - got
            for index, part in enumerate(parts):
                if need == 0:
                    new_parts.extend(parts[index:])
                    break
                position = 0
                while position < part.size and need > 0:
                    chunk = part[position:position + max(_MIN_CHUNK, 2 * need)]
                    position += chunk.size
                    fresh = chunk[scores[chunk] == key]
                    if not fresh.size:
                        continue
                    new_parts.append(fresh)
                    # Validate eligibility in need-sized slices: the first
                    # slice usually satisfies the walk (stale entries are
                    # gone, holds rarely bite), so the stamp/exclusion
                    # gathers touch ~need elements instead of the whole
                    # chunk.
                    fresh_pos = 0
                    while fresh_pos < fresh.size and need > 0:
                        sub = fresh[fresh_pos:fresh_pos + need]
                        fresh_pos += sub.size
                        eligible = sub[release_stamps[sub] <= clock]
                        if exclude is not None and eligible.size:
                            eligible = eligible[~exclude.mask(eligible)]
                        if eligible.size:
                            grab = eligible[:need]
                            taken.append(grab)
                            got += grab.size
                            need -= grab.size
                if position < part.size:
                    new_parts.append(part[position:])
            if new_parts:
                self._parts[key] = new_parts
                advance_min = False
            else:
                self._parts.pop(key, None)
                if advance_min:
                    self._min_key = key + 1
            key += 1
        if not taken:
            return _EMPTY_SLOTS, got
        if len(taken) == 1:
            return taken[0], got
        return np.concatenate(taken), got


@dataclass
class ReplacementPolicy:
    """Base class holding per-slot usage metadata.

    Attributes:
        num_slots: Number of Storage slots managed.
        legacy: Use the full-scan selection path (the equivalence-test
            oracle) instead of the incremental candidate queue.
    """

    num_slots: int
    legacy: bool = False
    _last_use: np.ndarray = field(init=False, repr=False)
    _buckets: Optional[_CandidateBuckets] = field(
        init=False, default=None, repr=False
    )
    _slot_exclusion: Optional[_SlotExclusion] = field(
        init=False, default=None, repr=False
    )
    _hold_mask: Optional[object] = field(init=False, default=None, repr=False)

    def __post_init__(self) -> None:
        if self.num_slots < 1:
            raise ReplacementConfigError(f"num_slots must be >= 1, got {self.num_slots}")
        # Never-used slots sort first so vacancies fill eagerly.
        # int32 scores: plan cycles and use counts stay far below 2**31,
        # and the score gathers are the candidate walk's hottest traffic.
        self._last_use = np.full(self.num_slots, -1, dtype=np.int32)

    # ------------------------------------------------------------------
    # Shared plumbing
    # ------------------------------------------------------------------
    def _scores(self) -> np.ndarray:
        """Per-slot victim score (smaller = evicted first)."""
        raise NotImplementedError

    def bind_hold_mask(self, hold_mask) -> None:
        """Attach the :class:`~repro.core.holdmask.HoldMask` whose stamps
        the incremental path consults for per-candidate eligibility."""
        self._hold_mask = hold_mask

    def record_use(self, slots: np.ndarray, cycle: int) -> None:
        """Note that ``slots`` (unique indices) were referenced by the batch
        planned at ``cycle``."""
        slots = np.asarray(slots, dtype=np.int64)
        if slots.size == 0:
            return
        self._last_use[slots] = cycle
        if self._buckets is not None:
            self._push_used(slots, cycle)

    def _push_used(self, slots: np.ndarray, cycle: int) -> None:
        self._buckets.push(cycle, slots)

    def reset(self) -> None:
        """Forget all usage state, returning to the as-constructed state."""
        self._last_use.fill(-1)
        if self._buckets is not None:
            self._buckets.rebuild()

    # ------------------------------------------------------------------
    # Scan path (the ``legacy=True`` oracle)
    # ------------------------------------------------------------------
    def select(self, eligible: np.ndarray, count: int) -> np.ndarray:
        """Choose ``count`` victim slots among ``eligible`` (boolean mask).

        Full-scan implementation of the canonical (score, slot) semantics;
        returns an int64 array of ``count`` distinct slots in selection
        order.

        Raises:
            CachePressureError: If fewer than ``count`` slots are eligible.
        """
        candidates = self._candidates(eligible, count)
        return self._take_smallest(candidates, self._scores(), count)

    def _candidates(self, eligible: np.ndarray, count: int) -> np.ndarray:
        candidates = np.flatnonzero(eligible)
        if candidates.size < count:
            raise CachePressureError(
                f"need {count} victims but only {candidates.size} of "
                f"{self.num_slots} slots are eligible; enlarge the scratchpad "
                "(see repro.core.scratchpad.required_slots)"
            )
        return candidates

    @staticmethod
    def _take_smallest(
        candidates: np.ndarray, scores: np.ndarray, count: int
    ) -> np.ndarray:
        """The ``count`` candidates smallest under (score, slot index).

        ``candidates`` ascends by construction (``flatnonzero``), so a
        stable argsort on the scores realises the lexicographic order.
        """
        if count == 0:
            return _EMPTY_SLOTS
        order = np.argsort(scores[candidates], kind="stable")
        return candidates[order[:count]]

    # ------------------------------------------------------------------
    # Incremental path (the default)
    # ------------------------------------------------------------------
    def _ensure_incremental(self) -> _CandidateBuckets:
        if self._hold_mask is None:
            raise ReplacementStateError(
                "select_eligible() needs a bound HoldMask; call "
                "bind_hold_mask() first (or use legacy=True with select())"
            )
        if self._buckets is None:
            self._buckets = _CandidateBuckets(self._scores(), self.num_slots)
        return self._buckets

    def _exclusion_for(self, transient):
        """Normalise the transient argument into an exclusion object.

        Accepts ``None``, an array of transient slot indices (duplicates
        allowed), a list of such arrays (``-1`` entries are ignored — they
        mark uncached future IDs), or any object exposing ``mask(slots)``.
        """
        if transient is None:
            return None
        if hasattr(transient, "mask"):
            return transient
        if isinstance(transient, (list, tuple)):
            parts = [part for part in transient if part.size]
        else:
            slots = np.asarray(transient, dtype=np.int64)
            parts = [slots] if slots.size else []
        if not parts:
            return None
        if self._slot_exclusion is None:
            self._slot_exclusion = _SlotExclusion(self.num_slots)
        self._slot_exclusion.arm(parts)
        return self._slot_exclusion

    def select_eligible(self, count: int, transient=None) -> np.ndarray:
        """Choose ``count`` victims without scanning ``num_slots``.

        Eligibility is "hold stamp expired and not transiently protected"
        (the Plan stage's future-window lookahead); ``transient`` is an
        array of protected slots or an exclusion object (see
        :meth:`_exclusion_for`).  Bit-identical to ``select()`` over the
        eligibility mask the bound hold mask and the transient set describe.
        """
        if count == 0:
            return _EMPTY_SLOTS
        buckets = self._ensure_incremental()
        hold = self._hold_mask
        exclude = self._exclusion_for(transient)
        victims, got = buckets.pop(
            count, hold.release_stamps, hold.clock, exclude
        )
        if got < count:
            # The store may simply have drained: policies that skip
            # per-use pushes (LRU's used-after-rebuild slots always rank
            # after every still-valid entry) recover the missing candidates
            # by rebuilding from the score arrays.  Pops are pure, so the
            # retry is clean; a dry walk after a rebuild is real pressure.
            buckets.rebuild()
            victims, got = buckets.pop(
                count, hold.release_stamps, hold.clock, exclude
            )
        if got < count:
            raise CachePressureError(
                f"need {count} victims but only {got} of "
                f"{self.num_slots} slots are eligible; enlarge the scratchpad "
                "(see repro.core.scratchpad.required_slots)"
            )
        return victims


@dataclass
class LruPolicy(ReplacementPolicy):
    """Evict the least-recently-used eligible slots (the paper's default)."""

    def _scores(self) -> np.ndarray:
        return self._last_use


@dataclass
class LfuPolicy(ReplacementPolicy):
    """Evict the least-frequently-used eligible slots."""

    _use_count: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        super().__post_init__()
        self._use_count = np.zeros(self.num_slots, dtype=np.int32)

    def _scores(self) -> np.ndarray:
        return self._use_count

    def record_use(self, slots: np.ndarray, cycle: int) -> None:
        slots = np.asarray(slots, dtype=np.int64)
        if slots.size == 0:
            return
        self._last_use[slots] = cycle
        self._use_count[slots] += 1
        if self._buckets is not None:
            self._push_used(slots, cycle)

    def _push_used(self, slots: np.ndarray, cycle: int) -> None:
        # Unlike LRU, one batch lands in several buckets: group the touched
        # slots by their incremented use count.
        counts = self._use_count[slots]
        order = np.argsort(counts, kind="stable")
        ordered_counts = counts[order]
        ordered_slots = slots[order]
        boundaries = np.flatnonzero(ordered_counts[1:] != ordered_counts[:-1]) + 1
        starts = np.concatenate(([0], boundaries))
        ends = np.concatenate((boundaries, [ordered_slots.size]))
        for start, end in zip(starts, ends):
            self._buckets.push(int(ordered_counts[start]), ordered_slots[start:end])

    def reset(self) -> None:
        self._use_count.fill(0)
        super().reset()


@dataclass
class RandomPolicy(ReplacementPolicy):
    """Evict uniformly random eligible slots (sensitivity study baseline).

    Vacant (never-used) slots are consumed first, in ascending slot order —
    an explicit contract so the cache warm-up is deterministic; randomness
    applies only to true evictions.  The incremental path serves the vacant
    phase from the candidate free list in O(count); the random-eviction tail
    falls back to a full scan, because drawing without replacement from the
    eligible-used population with ``Generator.choice`` consumes the RNG as a
    function of the whole population — any shortcut would change every
    sensitivity-figure draw.
    """

    seed: int = 0
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        super().__post_init__()
        self._rng = np.random.default_rng(self.seed)

    def _scores(self) -> np.ndarray:
        return self._last_use

    def _push_used(self, slots: np.ndarray, cycle: int) -> None:
        # The incremental path only ever consumes the vacant free list
        # (bucket -1); used slots never return to it, so pushing their new
        # scores would only feed buckets nobody pops.
        pass

    def reset(self) -> None:
        super().reset()
        self._rng = np.random.default_rng(self.seed)

    def select(self, eligible: np.ndarray, count: int) -> np.ndarray:
        candidates = self._candidates(eligible, count)
        if count == 0:
            return _EMPTY_SLOTS
        # ``candidates`` ascends, so the vacant subset is already in the
        # pinned warm-up order (smallest slot index first).
        vacant = candidates[self._last_use[candidates] < 0]
        if vacant.size >= count:
            return vacant[:count]
        used = candidates[self._last_use[candidates] >= 0]
        extra = self._rng.choice(used, size=count - vacant.size, replace=False)
        return np.concatenate([vacant, extra])

    def select_eligible(self, count: int, transient=None) -> np.ndarray:
        if count == 0:
            return _EMPTY_SLOTS
        buckets = self._ensure_incremental()
        hold = self._hold_mask
        exclude = self._exclusion_for(transient)
        vacant, got = buckets.pop(
            count, hold.release_stamps, hold.clock, exclude, stop_key=-1
        )
        if got >= count:
            return vacant
        # Random-eviction tail: materialise the sorted eligible-used
        # population the scan oracle would draw from (see class docs).
        eligible_used = (hold.release_stamps <= hold.clock) & (
            self._last_use >= 0
        )
        used = np.flatnonzero(eligible_used)
        if exclude is not None and used.size:
            used = used[~exclude.mask(used)]
        if got + used.size < count:
            raise CachePressureError(
                f"need {count} victims but only {got + used.size} of "
                f"{self.num_slots} slots are eligible; enlarge the scratchpad "
                "(see repro.core.scratchpad.required_slots)"
            )
        extra = self._rng.choice(used, size=count - got, replace=False)
        return np.concatenate([vacant, extra])


#: Name -> class registry the ``repro.api`` plugin surface extends via
#: :func:`register_policy`; the builtins below seed it at import time.
# repro-lint: disable=worker-capture -- import-time registry: the
# builtin @register_policy decorators below repopulate it identically in
# every process on module import.
_POLICIES: Dict[str, Type[ReplacementPolicy]] = {}


def register_policy(name: str):
    """Class decorator registering a :class:`ReplacementPolicy` by name.

    The registered name becomes valid everywhere a policy name is consumed:
    :func:`make_policy`, ``GpuScratchpad(policy_name=...)`` and the
    ``repro.api`` spec layer (``CacheSpec.policy``).  Registration is
    first-wins-forbidden: re-registering an existing name raises, so a
    plugin cannot silently shadow a builtin.
    """
    key = name.lower()

    def decorate(cls: Type[ReplacementPolicy]) -> Type[ReplacementPolicy]:
        existing = _POLICIES.get(key)
        if existing is not None and existing is not cls:
            raise ReplacementConfigError(
                f"policy {key!r} is already registered to "
                f"{existing.__name__}"
            )
        _POLICIES[key] = cls
        return cls

    return decorate


def registered_policies() -> Tuple[str, ...]:
    """Sorted names of every registered replacement policy."""
    return tuple(sorted(_POLICIES))


def policy_class(name: str) -> Type[ReplacementPolicy]:
    """Resolve a registered policy class by (case-insensitive) name."""
    try:
        return _POLICIES[name.lower()]
    except KeyError:
        raise ReplacementConfigError(
            f"unknown policy {name!r}; expected one of {sorted(_POLICIES)}"
        ) from None


register_policy("lru")(LruPolicy)
register_policy("lfu")(LfuPolicy)
register_policy("random")(RandomPolicy)


def make_policy(
    name: str, num_slots: int, legacy: Optional[bool] = None
) -> ReplacementPolicy:
    """Build a replacement policy by registered name (``"lru"``/``"lfu"``/
    ``"random"`` plus anything added via :func:`register_policy`).

    ``legacy=None`` (the default) reads ``REPRO_LEGACY_SELECT`` from the
    environment, so a whole run can be flipped to the scan oracle for
    verification without threading a flag through every constructor.
    """
    policy_cls = policy_class(name)
    if legacy is None:
        legacy = read_env_flag("REPRO_LEGACY_SELECT")
    return policy_cls(num_slots=num_slots, legacy=legacy)

"""ScratchPipe's 6-stage pipelined executor (Section IV-C, Figure 10).

Stages: ``Load -> Plan -> Collect -> Exchange -> Insert -> Train``.  Batch
``b`` occupies stage ``s`` at cycle ``b + s``; one batch completes per cycle
at steady state.  The executor performs the *functional* data movement
(CPU-table reads, scratchpad fills, victim write-backs, training) and
returns per-stage row counts that the timing layer prices.

A :class:`HazardMonitor` can be attached to verify the paper's central
correctness argument: with past window 3 and future window 2, no two
in-flight mini-batches ever touch the same scratchpad slot or CPU table row
in a conflicting order (RAW-1..4 of Figure 8).  Tests shrink the windows to
show the monitor *does* catch the hazards the windows exist to prevent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Protocol, Sequence, Tuple

import numpy as np

from repro.errors import ExecutorConfigError, PipelineConfigError
from repro.core.executor import make_executor, registered_executors
from repro.core.hitmap import EMPTY
from repro.core.scratchpad import GpuScratchpad, TablePlan
from repro.data.trace import MiniBatch
from repro.model.config import ModelConfig
from repro.testing.faults import fault_point

#: Stage names in pipeline order.
STAGES = ("load", "plan", "collect", "exchange", "insert", "train")

#: Pipeline distance from a batch's [Plan] to its [Collect].
PLAN_TO_COLLECT = 1
#: Pipeline distance from a batch's [Plan] to its [Insert].
PLAN_TO_INSERT = 3
#: Pipeline distance from a batch's [Plan] to its [Train].
PLAN_TO_TRAIN = 4

#: Pipeline offsets of the *priced* stages (batch ``b`` is at stage ``s``
#: in cycle ``b + offset``); Load is unpriced — it overlaps host-side
#: dataset reads.  Shared by the steady-state cycle-time model
#: (``repro.systems.scratchpipe_system``) and the live-replay tandem
#: queue (``repro.serve``).
PRICED_STAGE_OFFSETS = {
    "plan": 1,
    "collect": 2,
    "exchange": 3,
    "insert": 4,
    "train": 5,
}


class PipelineTrainer(Protocol):
    """Callback the [Train] stage invokes for one mini-batch.

    Implementations gather rows from the scratchpads using the plans, run
    the dense network forward/backward and scatter updated rows back —
    entirely "at GPU memory speed" in the paper's terms.
    """

    def train(
        self,
        batch: MiniBatch,
        plans: Sequence[TablePlan],
        scratchpads: Sequence[GpuScratchpad],
    ) -> float:
        """Train on one batch; returns the loss."""
        ...


@dataclass(frozen=True)
class BatchCacheStats:
    """Per-batch cache statistics summed over tables.

    Attributes:
        batch_index: Trace position of the batch.
        total_lookups: All gathers issued (including duplicates).
        unique_ids: Unique rows gathered.
        hits: Unique rows already cached at [Plan].
        misses: Unique rows fetched from CPU ([Collect]/[Exchange]/[Insert]).
        writebacks: Dirty victims returned to the CPU table.
        per_table_misses: Miss count per table (for per-table timing).
        per_table_hits: Hit count per table (empty on legacy constructors;
            heterogeneous per-table caches are judged table by table).
        per_table_unique: Unique-ID count per table (pairs with
            ``per_table_hits`` to give per-table hit rates).
    """

    batch_index: int
    total_lookups: int
    unique_ids: int
    hits: int
    misses: int
    writebacks: int
    per_table_misses: Tuple[int, ...]
    per_table_hits: Tuple[int, ...] = ()
    per_table_unique: Tuple[int, ...] = ()

    @property
    def hit_rate(self) -> float:
        """Unique-ID hit rate of the [Plan] stage's Hit-Map queries."""
        if self.unique_ids == 0:
            return 1.0
        return self.hits / self.unique_ids


class HazardError(AssertionError):
    """Raised by :class:`HazardMonitor` on a detected RAW violation."""


#: "No write pending" sentinel for the vectorised pending-cycle arrays;
#: any real write cycle compares greater.  Cycle counts fit int32 with room
#: to spare, and halving the element width halves the random-access traffic
#: on these (row-count-sized) arrays.
_NO_WRITE = np.iinfo(np.int32).min

#: RAW-4 bookkeeping stays a dense per-row cycle array up to this many
#: rows (32 MB of int32 per table); beyond it the table migrates to the
#: compact write-back ring.  Dense gathers win handily while the array
#: fits cache-adjacent memory; the ring caps memory at paper-scale row
#: universes where a dense array per table would dominate the footprint.
_DENSE_WRITEBACK_ROWS = 1 << 23


@dataclass
class HazardMonitor:
    """Detects RAW hazards among concurrently in-flight mini-batches.

    Tracks, per table, the scratchpad slots each in-flight batch will write
    (at [Insert] and [Train]) and the pending CPU-table write-backs, then
    checks every [Plan]'s victim choices and every [Collect]'s CPU reads
    against them.  ``strict=True`` raises :class:`HazardError` immediately;
    otherwise violations accumulate in :attr:`violations`.

    The default implementation keeps one int32 numpy array per table
    recording the cycle at which the last scheduled write to each *slot*
    lands (a check is a fancy-indexed comparison against the reading
    cycle; retirement is lazy — a recorded cycle in the past never
    compares as pending again).  The CPU-row write-backs of RAW-4 get
    the same dense treatment while the table's row IDs stay below
    ``_DENSE_WRITEBACK_ROWS`` — a gather over a few-MB array beats any
    per-entry probing at that size.  The first larger row ID migrates
    that table, permanently, to a compact ring of ``(insert_cycle,
    sorted dirty rows)`` entries: only the plans of the last
    ``PLAN_TO_INSERT - PLAN_TO_COLLECT`` cycles can have a write-back
    still in flight, so the ring holds a handful of small sorted arrays
    and the check is a few ``searchsorted`` membership probes over the
    miss IDs — no 40 MB-per-table allocation at the paper's 10M-row
    scale.  The ring relies on the pipeline's contract that per-table
    ``on_plan`` cycles are non-decreasing (each table is planned once
    per cycle, in cycle order), which lets retired entries be pruned as
    soon as they fall behind the reading cycle.  ``legacy=True``
    selects the original per-element dict bookkeeping, retained solely
    as the oracle for the equivalence tests; all paths flag identical
    violations in identical order.
    """

    strict: bool = True
    legacy: bool = False
    violations: List[str] = field(default_factory=list)
    # Vectorised state: table -> int32 pending-write cycle per slot and
    # per row (small row universes), and table -> ring of (insert_cycle,
    # sorted dirty row IDs) entries for the in-flight CPU write-backs of
    # tables migrated past ``_DENSE_WRITEBACK_ROWS``.
    _slot_write_cycles: Dict[int, np.ndarray] = field(default_factory=dict)
    _writeback_cycles: Dict[int, np.ndarray] = field(default_factory=dict)
    _recent_writebacks: Dict[int, List[Tuple[int, np.ndarray]]] = field(
        default_factory=dict
    )
    # Legacy state: (table, slot) -> cycle of the last scheduled write not
    # yet retired, and (table, row_id) -> cycle the write-back lands.
    _pending_slot_writes: Dict[Tuple[int, int], int] = field(default_factory=dict)
    _pending_writebacks: Dict[Tuple[int, int], int] = field(default_factory=dict)

    def _flag(self, message: str) -> None:
        self.violations.append(message)
        if self.strict:
            raise HazardError(message)

    @staticmethod
    def _grown(store: Dict[int, np.ndarray], table: int, min_size: int) -> np.ndarray:
        """Fetch ``store[table]``, growing it geometrically to ``min_size``."""
        array = store.get(table)
        if array is None:
            array = np.full(max(min_size, 1024), _NO_WRITE, dtype=np.int32)
            store[table] = array
        elif array.size < min_size:
            grown = np.full(max(min_size, 4 * array.size), _NO_WRITE, dtype=np.int32)
            grown[: array.size] = array
            store[table] = array = grown
        return array

    def _migrate_writebacks(
        self, table: int, collect_cycle: int
    ) -> List[Tuple[int, np.ndarray]]:
        """Convert a table's dense RAW-4 state into ring entries.

        Runs once, on the first row ID at or past
        ``_DENSE_WRITEBACK_ROWS``; only write-backs still in flight
        (landing at or after ``collect_cycle``) are carried over.
        ``flatnonzero`` yields ascending rows, so each group is already
        the sorted array the ring's probes require, and ascending cycle
        order preserves the freshest-write-wins probe sequence.
        """
        dense = self._writeback_cycles.pop(table, None)
        entries: List[Tuple[int, np.ndarray]] = []
        if dense is not None:
            live = np.flatnonzero(dense >= collect_cycle)
            live_cycles = dense[live]
            for cycle in np.unique(live_cycles):
                entries.append(
                    (int(cycle), live[live_cycles == cycle].astype(np.int64))
                )
        return entries

    def on_plan(self, cycle: int, table: int, plan: TablePlan) -> None:
        """Validate and register one table-plan produced at ``cycle``."""
        if self.legacy:
            self._on_plan_legacy(cycle, table, plan)
            return
        collect_cycle = cycle + PLAN_TO_COLLECT
        insert_cycle = cycle + PLAN_TO_INSERT
        train_cycle = cycle + PLAN_TO_TRAIN

        fill_slots = np.asarray(plan.fill_slots, dtype=np.int64).reshape(-1)
        slots = np.asarray(plan.slots, dtype=np.int64).reshape(-1)
        miss_ids = np.asarray(plan.miss_ids, dtype=np.int64).reshape(-1)
        evicted = np.asarray(plan.evicted_ids, dtype=np.int64).reshape(-1)

        max_slot = max(fill_slots.max(initial=-1), slots.max(initial=-1))
        slot_writes = self._grown(self._slot_write_cycles, table, int(max_slot) + 1)

        # RAW-2/3: a victim slot read at [Collect] must have no in-flight
        # write scheduled at or after the read.
        if fill_slots.size:
            pending = slot_writes[fill_slots]
            for i in np.flatnonzero(pending >= collect_cycle):
                self._flag(
                    f"RAW-2/3: slot {int(fill_slots[i])} of table {table} "
                    f"chosen as victim (read at cycle {collect_cycle}) "
                    f"while an in-flight batch writes it at cycle "
                    f"{int(pending[i])}"
                )

        # RAW-4: a missed ID read from the CPU table at [Collect] must not
        # have a write-back landing at or after the read.
        max_row = int(max(miss_ids.max(initial=-1), evicted.max(initial=-1)))
        if table not in self._recent_writebacks and (
            max_row < _DENSE_WRITEBACK_ROWS
        ):
            row_writes = (
                self._grown(self._writeback_cycles, table, max_row + 1)
                if max_row >= 0
                else None
            )
            if miss_ids.size:
                pending = row_writes[miss_ids]
                for i in np.flatnonzero(pending >= collect_cycle):
                    self._flag(
                        f"RAW-4: row {int(miss_ids[i])} of table {table} read "
                        f"from the CPU table at cycle {collect_cycle} while its "
                        f"write-back lands at cycle {int(pending[i])}"
                    )
        else:
            # Ring mode: entries whose write-back lands before this plan's
            # [Collect] can never flag again (per-table cycles are
            # non-decreasing), so they are pruned; survivors are probed
            # oldest-first so the freshest write-back wins, matching the
            # dense array's last-scatter semantics.
            entries = self._recent_writebacks.get(table)
            if entries is None:
                entries = self._migrate_writebacks(table, collect_cycle)
            row_writes = None
            live = [entry for entry in entries if entry[0] >= collect_cycle]
            self._recent_writebacks[table] = entries = live
            if entries and miss_ids.size:
                pending = np.full(miss_ids.size, _NO_WRITE, dtype=np.int64)
                for insert_at, rows in entries:
                    positions = np.minimum(
                        np.searchsorted(rows, miss_ids), rows.size - 1
                    )
                    pending[rows[positions] == miss_ids] = insert_at
                for i in np.flatnonzero(pending >= collect_cycle):
                    self._flag(
                        f"RAW-4: row {int(miss_ids[i])} of table {table} read "
                        f"from the CPU table at cycle {collect_cycle} while its "
                        f"write-back lands at cycle {int(pending[i])}"
                    )

        # Register this batch's future writes.  Every planned slot ends at
        # the [Train] write cycle: fill slots' earlier [Insert] writes are
        # superseded (fill_slots is a subset of slots), and no in-flight
        # batch can have scheduled a later write — the latest write any
        # previous plan registered is its own train cycle, which is
        # strictly earlier.  A plain scatter therefore matches the legacy
        # ``max(existing, train_cycle)`` bookkeeping exactly.
        if slots.size:
            slot_writes[slots] = train_cycle
        if evicted.size:
            dirty = evicted[: fill_slots.size]
            dirty = dirty[dirty != EMPTY]
            if dirty.size:
                if row_writes is not None:
                    row_writes[dirty] = insert_cycle
                else:
                    self._recent_writebacks.setdefault(table, []).append(
                        (insert_cycle, np.sort(dirty))
                    )

    def _on_plan_legacy(self, cycle: int, table: int, plan: TablePlan) -> None:
        """Original dict-based bookkeeping (equivalence-test oracle)."""
        collect_cycle = cycle + PLAN_TO_COLLECT
        insert_cycle = cycle + PLAN_TO_INSERT
        train_cycle = cycle + PLAN_TO_TRAIN

        for slot in plan.fill_slots:
            pending = self._pending_slot_writes.get((table, int(slot)))
            if pending is not None and pending >= collect_cycle:
                self._flag(
                    f"RAW-2/3: slot {int(slot)} of table {table} chosen as "
                    f"victim (read at cycle {collect_cycle}) while an "
                    f"in-flight batch writes it at cycle {pending}"
                )

        for row in plan.miss_ids:
            pending = self._pending_writebacks.get((table, int(row)))
            if pending is not None and pending >= collect_cycle:
                self._flag(
                    f"RAW-4: row {int(row)} of table {table} read from the "
                    f"CPU table at cycle {collect_cycle} while its "
                    f"write-back lands at cycle {pending}"
                )

        for slot in plan.fill_slots:
            self._pending_slot_writes[(table, int(slot))] = insert_cycle
        for slot in plan.slots:
            existing = self._pending_slot_writes.get((table, int(slot)), -1)
            self._pending_slot_writes[(table, int(slot))] = max(
                existing, train_cycle
            )
        for row, evicted in zip(plan.fill_slots, plan.evicted_ids):
            if int(evicted) != EMPTY:
                self._pending_writebacks[(table, int(evicted))] = insert_cycle

    def on_cycle_end(self, cycle: int) -> None:
        """Retire writes that have now happened.

        The vectorised implementation retires lazily (pending cycles in the
        past never flag), so this is a no-op there; the legacy oracle prunes
        its dicts eagerly.
        """
        if not self.legacy:
            return
        self._pending_slot_writes = {
            k: v for k, v in self._pending_slot_writes.items() if v > cycle
        }
        self._pending_writebacks = {
            k: v for k, v in self._pending_writebacks.items() if v > cycle
        }


@dataclass
class _InFlight:
    """State of one mini-batch travelling down the pipeline."""

    batch: MiniBatch
    plans: List[TablePlan] = field(default_factory=list)
    collected_rows: List[np.ndarray] = field(default_factory=list)
    victim_rows: List[np.ndarray] = field(default_factory=list)


class _TableStaging:
    """Preallocated per-table ring of miss/victim staging buffers.

    Functional runs used to heap-allocate fresh copies of the miss rows and
    victim rows for every table of every cycle.  A batch's staging is alive
    only from its [Collect] to its [Insert], so at most
    ``PLAN_TO_INSERT - PLAN_TO_COLLECT + 1`` batches ever hold staging at
    once — a ring of that depth, indexed by batch number, lets every cycle
    reuse the buffers of a retired batch (growing them geometrically the
    first time a bigger miss burst comes through).  [Insert] of batch ``b``
    runs before [Collect] of batch ``b+2`` within a cycle, so a slot is
    always drained before the ring wraps back onto it.
    """

    __slots__ = ("depth", "_collected", "_victims")

    def __init__(self, depth: int) -> None:
        self.depth = depth
        self._collected: List[Optional[np.ndarray]] = [None] * depth
        self._victims: List[Optional[np.ndarray]] = [None] * depth

    @staticmethod
    def _view(
        buffers: List[Optional[np.ndarray]],
        slot: int,
        rows: int,
        dim: int,
        dtype: np.dtype,
    ) -> np.ndarray:
        buffer = buffers[slot]
        if (
            buffer is None
            or buffer.shape[0] < rows
            or buffer.shape[1] != dim
            or buffer.dtype != dtype
        ):
            capacity = rows if buffer is None else max(rows, 2 * buffer.shape[0])
            buffer = np.empty((max(capacity, 1), dim), dtype=dtype)
            buffers[slot] = buffer
        return buffer[:rows]

    def collected_view(
        self, batch_index: int, rows: int, dim: int, dtype: np.dtype
    ) -> np.ndarray:
        """Staging for the CPU-table rows batch ``batch_index`` collects."""
        return self._view(self._collected, batch_index % self.depth, rows, dim, dtype)

    def victims_view(
        self, batch_index: int, rows: int, dim: int, dtype: np.dtype
    ) -> np.ndarray:
        """Staging for the victim rows batch ``batch_index`` reads out."""
        return self._view(self._victims, batch_index % self.depth, rows, dim, dtype)


@dataclass
class PipelineResult:
    """Outcome of a pipeline run.

    Attributes:
        cache_stats: Per-batch cache statistics, in trace order.
        losses: Per-batch training losses (empty in metadata-only runs).
        train_hit_rate: Hit rate observed *at the Train stage* — the paper's
            always-hit guarantee demands this be exactly 1.0.
    """

    cache_stats: List[BatchCacheStats]
    losses: List[float]
    train_hit_rate: float


@dataclass
class ScratchPipePipeline:
    """The pipelined ScratchPipe runtime for one training job.

    Args:
        config: Model geometry.
        scratchpads: One per table (functional or metadata-only, but all the
            same mode).
        dataset_batches: Random-access source of mini-batches (anything with
            ``batch(i)`` and ``__len__``, e.g. a ``SyntheticDataset``).
        cpu_tables: Master embedding tables in "CPU memory" (list of
            ``(rows, dim)`` arrays), or ``None`` for metadata-only runs.
        trainer: The [Train] stage callback, or ``None`` to skip training.
        future_window: How many upcoming batches [Plan] protects (2 in the
            paper: the [Insert]-to-[Collect] distance).
        monitor: Optional hazard monitor.
        unique_cache: Plan from each batch's cached per-table sorted-unique
            ID sets (computed once per batch, reused by its own Plan and by
            the future windows of the two preceding Plans) instead of
            re-``np.unique``-ing the raw lookup arrays per table per cycle.
            Produces bit-identical plans; ``False`` reproduces the original
            per-cycle recomputation and exists for the equivalence tests
            and the perf harness's before/after comparison.
        executor: Execution strategy, by registered name
            (:mod:`repro.core.executor`): ``"serial"`` runs every stage in
            the calling process; ``"overlapped"`` runs Plan N+future on
            dedicated worker processes while Collect/Insert/Train retire
            here.  All executors produce bit-identical results.
    """

    config: ModelConfig
    scratchpads: Sequence[GpuScratchpad]
    dataset_batches: object
    cpu_tables: Optional[List[np.ndarray]] = None
    trainer: Optional[PipelineTrainer] = None
    future_window: int = 2
    monitor: Optional[HazardMonitor] = None
    unique_cache: bool = True
    executor: str = "serial"

    def __post_init__(self) -> None:
        if self.executor not in registered_executors():
            raise ExecutorConfigError(
                f"unknown executor {self.executor!r}; registered: "
                f"{', '.join(registered_executors())}"
            )
        if len(self.scratchpads) != self.config.num_tables:
            raise PipelineConfigError(
                f"need one scratchpad per table ({self.config.num_tables}), "
                f"got {len(self.scratchpads)}"
            )
        if self.cpu_tables is not None and len(self.cpu_tables) != self.config.num_tables:
            raise PipelineConfigError("cpu_tables must have one array per table")
        if self.future_window < 0:
            raise PipelineConfigError(f"future_window must be >= 0, got {self.future_window}")
        self._functional = self.cpu_tables is not None
        # Batch cache: synthetic datasets regenerate batches on demand, and
        # each batch is needed by [Load] plus the future windows of the two
        # preceding [Plan]s — materialise each index once.
        self._batch_cache: Dict[int, MiniBatch] = {}
        # Ring of reusable staging buffers for functional-mode [Collect];
        # a batch's staging lives until its own [Insert] drains it.
        self._staging: List[_TableStaging] = [
            _TableStaging(PLAN_TO_INSERT - PLAN_TO_COLLECT + 1)
            for _ in range(self.config.num_tables)
        ] if self._functional else []

    # ------------------------------------------------------------------
    # Stage implementations
    # ------------------------------------------------------------------
    def _get_batch(self, index: int) -> MiniBatch:
        if index not in self._batch_cache:
            self._batch_cache[index] = self.dataset_batches.batch(index)
        return self._batch_cache[index]

    def _evict_batches_before(self, index: int) -> None:
        for stale in [k for k in self._batch_cache if k < index]:
            del self._batch_cache[stale]

    def _future_batches(self, index: int) -> List[MiniBatch]:
        """The batches the plan of batch ``index`` must protect."""
        n = len(self.dataset_batches)
        return [
            self._get_batch(index + offset)
            for offset in range(1, self.future_window + 1)
            if index + offset < n
        ]

    def _plan_table(
        self, table: int, batch: MiniBatch, future_batches: List[MiniBatch]
    ) -> TablePlan:
        """Plan one table of one batch (the per-table unit of Plan work —
        also the unit the overlapped executor shards across workers)."""
        scratchpad = self.scratchpads[table]
        future_ids: Optional[object] = None
        if self.unique_cache:
            # Each batch's sorted-unique IDs are computed once (cached
            # on the MiniBatch) and shared between its own Plan and the
            # future windows of the two preceding Plans.  The per-batch
            # sets are handed over as a list — the Plan stage only
            # flags their slots, so neither concatenating nor
            # deduplicating across batches would change anything.
            if future_batches:
                future_ids = [
                    b.unique_table_ids(table) for b in future_batches
                ]
            return scratchpad.plan_batch(
                batch.unique_table_ids(table),
                future_ids,
                presorted_unique=True,
            )
        if future_batches:
            future_ids = np.concatenate(
                [b.table_ids(table) for b in future_batches]
            )
        return scratchpad.plan_batch(batch.sparse_ids[table], future_ids)

    def _do_plan(self, record: _InFlight, cycle: int) -> None:
        batch = record.batch
        future_batches = self._future_batches(batch.index)
        for table in range(self.config.num_tables):
            plan = self._plan_table(table, batch, future_batches)
            record.plans.append(plan)
            if self.monitor is not None:
                self.monitor.on_plan(cycle, table, plan)

    def _do_collect(self, record: _InFlight) -> None:
        if not self._functional:
            return
        index = record.batch.index
        for table, plan in enumerate(record.plans):
            staging = self._staging[table]
            cpu_table = self.cpu_tables[table]
            collected = staging.collected_view(
                index, plan.miss_ids.size, cpu_table.shape[1], cpu_table.dtype
            )
            np.take(cpu_table, plan.miss_ids, axis=0, out=collected)
            record.collected_rows.append(collected)
            scratchpad = self.scratchpads[table]
            victims = staging.victims_view(
                index, plan.fill_slots.size, scratchpad.dim,
                np.dtype(np.float32),
            )
            scratchpad.read_slots_into(plan.fill_slots, victims)
            record.victim_rows.append(victims)

    def _do_insert(self, record: _InFlight) -> None:
        if not self._functional:
            return
        for table, plan in enumerate(record.plans):
            dirty = plan.evicted_ids != EMPTY
            if dirty.any():
                self.cpu_tables[table][plan.evicted_ids[dirty]] = (
                    record.victim_rows[table][dirty]
                )
            if plan.fill_slots.size:
                self.scratchpads[table].write_slots(
                    plan.fill_slots, record.collected_rows[table]
                )
            # The staging views are ring-owned: dropping the references is
            # enough, the buffers themselves are reused by a later batch.
            record.collected_rows[table] = np.empty(0, dtype=np.float32)
            record.victim_rows[table] = np.empty(0, dtype=np.float32)

    def _do_train(self, record: _InFlight) -> Optional[float]:
        if self.trainer is None:
            return None
        return self.trainer.train(record.batch, record.plans, self.scratchpads)

    def _stats_for(self, record: _InFlight) -> BatchCacheStats:
        plans = record.plans
        return BatchCacheStats(
            batch_index=record.batch.index,
            total_lookups=self.config.lookups_per_batch,
            unique_ids=sum(p.num_unique for p in plans),
            hits=sum(p.num_hits for p in plans),
            misses=sum(p.num_misses for p in plans),
            writebacks=sum(p.num_writebacks for p in plans),
            per_table_misses=tuple(p.num_misses for p in plans),
            per_table_hits=tuple(p.num_hits for p in plans),
            per_table_unique=tuple(p.num_unique for p in plans),
        )

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def stream(
        self,
        num_batches: Optional[int] = None,
        losses: Optional[List[float]] = None,
    ) -> Iterator[BatchCacheStats]:
        """Run the pipeline, yielding each batch's stats as it retires.

        The streaming twin of :meth:`run`: identical cycle-by-cycle
        behaviour (``run`` is implemented on top of this generator), but
        per-batch statistics are handed to the caller instead of
        accumulated, so a million-batch scenario flows through in constant
        memory — the pipeline itself only ever holds its six in-flight
        batches.  Batches retire in trace order.

        Args:
            num_batches: Prefix length (default: whole trace).
            losses: Optional caller-owned list that receives each
                functional-mode training loss.  Kept per-invocation (not
                on the pipeline object) so interleaved or abandoned
                streams cannot contaminate one another.

        Which process runs which stage is delegated to the configured
        :attr:`executor` (``repro.core.executor``); every backend yields
        bit-identical statistics in identical order.
        """
        total = len(self.dataset_batches)
        if num_batches is None:
            num_batches = total
        if not 0 < num_batches <= total:
            raise PipelineConfigError(
                f"num_batches must be in [1, {total}], got {num_batches}"
            )
        yield from make_executor(self.executor).stream(self, num_batches, losses)

    def _stream_cycles(
        self,
        num_batches: int,
        losses: Optional[List[float]] = None,
    ) -> Iterator[BatchCacheStats]:
        """The serial cycle loop (the ``"serial"`` executor's body)."""
        in_flight: Dict[int, _InFlight] = {}

        last_cycle = num_batches - 1 + len(STAGES) - 1
        for cycle in range(last_cycle + 1):
            # Oldest stage first; window disjointness (verified by the
            # monitor) makes intra-cycle order immaterial for correctness.
            train_idx = cycle - 5
            retired: Optional[BatchCacheStats] = None
            if 0 <= train_idx < num_batches:
                record = in_flight.pop(train_idx)
                loss = self._do_train(record)
                if loss is not None and losses is not None:
                    losses.append(loss)
                retired = self._stats_for(record)
            insert_idx = cycle - 4
            if 0 <= insert_idx < num_batches:
                self._do_insert(in_flight[insert_idx])
            # Exchange (cycle - 3) moves data over PCIe; functionally the
            # staged buffers are already host-side copies, so it is a no-op
            # here and a priced stage in the timing layer.
            collect_idx = cycle - 2
            if 0 <= collect_idx < num_batches:
                self._do_collect(in_flight[collect_idx])
            plan_idx = cycle - 1
            if 0 <= plan_idx < num_batches:
                fault_point("pipeline.stage", detail=f"plan:{plan_idx}")
                self._do_plan(in_flight[plan_idx], cycle)
            if cycle < num_batches:
                in_flight[cycle] = _InFlight(batch=self._get_batch(cycle))
            oldest = min(in_flight) if in_flight else num_batches
            self._evict_batches_before(oldest)
            if self.monitor is not None:
                self.monitor.on_cycle_end(cycle)
            if retired is not None:
                yield retired

    def run(self, num_batches: Optional[int] = None) -> PipelineResult:
        """Run the pipeline over ``num_batches`` (default: whole trace)."""
        losses: List[float] = []
        cache_stats = list(self.stream(num_batches, losses=losses))
        return PipelineResult(
            cache_stats=cache_stats,
            losses=losses,
            # Every Train-stage gather is served by a planned slot, so the
            # Train-stage hit rate is 1.0 by construction; reported so that
            # tests assert the guarantee rather than assume it.
            train_hit_rate=1.0 if cache_stats else 0.0,
        )

"""The Hold mask: ScratchPipe's sliding-window hazard guard (Section IV-C/D).

Each scratchpad Storage slot carries a small bitmask.  When a mini-batch is
processed at [Plan], every slot the batch will use at [Train] gets a fresh
hold bit; the mask shifts right by one each time a new batch enters [Plan].
A slot is an eviction candidate only while its mask is zero — i.e. none of
the mini-batches inside the sliding window asked to hold it.

Bit-lifetime convention
-----------------------
``past_window = W`` means a hold set at batch *j*'s Plan remains visible
during the Plans of batches *j+1 .. j+W* (and vanishes at *j+W+1*).  The
paper requires W = 3: when batch *i* plans, the batches at [Collect],
[Exchange] and [Insert] (i.e. *i-1*, *i-2*, *i-3*) must keep their slots —
batch *i-3* is still going to write those slots at [Parameter Update] in
the very cycle batch *i* reads its victims at [Collect] (RAW-2).  We set the
fresh bit at position ``W`` (value ``1 << W``) *after* advancing, so it
survives exactly W subsequent advances.  (Algorithm 1 in the paper sets
``2 ** (width-1)`` with width 3, which protects only two past batches; its
caption notes the pseudo-code is simplified.  The deviation is deliberate
and covered by the hazard-freedom property tests.)

The *future* window (next two batches) is handled transiently by the Plan
stage — future batches have not set persistent bits yet, so Plan computes
their held slots on the fly from the lookahead IDs (see ``core.plan``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class HoldMask:
    """Per-slot circular hold bitmask.

    Attributes:
        num_slots: Number of Storage slots tracked.
        past_window: How many *subsequent* Plans a hold stays visible for.
            The paper's pipeline uses 3 (distance from [Collect] to [Train]).
    """

    num_slots: int
    past_window: int = 3
    _bits: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.num_slots < 1:
            raise ValueError(f"num_slots must be >= 1, got {self.num_slots}")
        if not 0 <= self.past_window <= 62:
            raise ValueError(
                f"past_window must be in [0, 62], got {self.past_window}"
            )
        self._bits = np.zeros(self.num_slots, dtype=np.uint64)

    @property
    def fresh_bit(self) -> int:
        """Bit value a newly planned batch sets on its slots."""
        return 1 << self.past_window

    def advance(self) -> None:
        """Slide the window by one mini-batch (right-shift every mask)."""
        self._bits >>= np.uint64(1)

    def hold(self, slots: np.ndarray) -> None:
        """Mark ``slots`` as used by the batch currently at [Plan]."""
        slots = np.asarray(slots, dtype=np.int64)
        if slots.size == 0:
            return
        if slots.min() < 0 or slots.max() >= self.num_slots:
            raise ValueError("slot index out of range")
        self._bits[slots] |= np.uint64(self.fresh_bit)

    def is_held(self, slots: np.ndarray) -> np.ndarray:
        """Boolean array: True where a slot is inside the sliding window."""
        return self._bits[np.asarray(slots, dtype=np.int64)] != 0

    def held_mask(self) -> np.ndarray:
        """Boolean mask over all slots: True = protected from eviction."""
        return self._bits != 0

    def eligible_mask(self) -> np.ndarray:
        """Boolean mask over all slots: True = eviction candidate."""
        return self._bits == 0

    def held_count(self) -> int:
        """Number of currently protected slots."""
        return int(np.count_nonzero(self._bits))

    def raw_bits(self) -> np.ndarray:
        """Copy of the underlying bit array (for tests/inspection)."""
        return self._bits.copy()

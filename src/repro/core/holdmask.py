"""The Hold mask: ScratchPipe's sliding-window hazard guard (Section IV-C/D).

Each scratchpad Storage slot is protected while any mini-batch inside the
sliding window asked to hold it.  When a mini-batch is processed at [Plan],
every slot the batch will use at [Train] gets a fresh hold; the window
slides by one each time a new batch enters [Plan].  A slot is an eviction
candidate only while no mini-batch inside the sliding window holds it.

Hold-lifetime convention
------------------------
``past_window = W`` means a hold set at batch *j*'s Plan remains visible
during the Plans of batches *j+1 .. j+W* (and vanishes at *j+W+1*).  The
paper requires W = 3: when batch *i* plans, the batches at [Collect],
[Exchange] and [Insert] (i.e. *i-1*, *i-2*, *i-3*) must keep their slots —
batch *i-3* is still going to write those slots at [Parameter Update] in
the very cycle batch *i* reads its victims at [Collect] (RAW-2).
(Algorithm 1 in the paper sets ``2 ** (width-1)`` with width 3, which
protects only two past batches; its caption notes the pseudo-code is
simplified.  The deviation is deliberate and covered by the hazard-freedom
property tests.)

Representation
--------------
The seed implementation kept a literal per-slot bitmask and right-shifted
*every* slot's bits on each ``advance()`` — O(num_slots) per pipeline cycle
even when nothing changed.  This version stores a per-slot *release stamp*
(version counter): ``hold(slots)`` writes ``clock + W + 1`` into the
touched slots and ``advance()`` just increments the clock, so the cost of
window maintenance is O(slots actually held) rather than O(num_slots).  A
slot is held exactly while ``release_at[slot] > clock`` — the same
semantics as "any bit still set" in the shifted-bitmask form, because only
the *latest* hold of a slot ever decides when it becomes eligible again.
Replacement policies test candidate eligibility with O(1) stamp compares
instead of consuming a full boolean rescan of the slot array.

The *future* window (next two batches) is handled transiently by the Plan
stage — future batches have not set persistent holds yet, so Plan computes
their held slots on the fly from the lookahead IDs (see ``core.scratchpad``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from repro.errors import HoldMaskConfigError


@dataclass
class HoldMask:
    """Per-slot sliding-window hold tracker.

    Attributes:
        num_slots: Number of Storage slots tracked.
        past_window: How many *subsequent* Plans a hold stays visible for.
            The paper's pipeline uses 3 (distance from [Collect] to [Train]).
    """

    num_slots: int
    past_window: int = 3
    _release_at: np.ndarray = field(init=False, repr=False)
    _clock: int = field(init=False, default=0, repr=False)

    def __post_init__(self) -> None:
        if self.num_slots < 1:
            raise HoldMaskConfigError(f"num_slots must be >= 1, got {self.num_slots}")
        if not 0 <= self.past_window <= 62:
            raise HoldMaskConfigError(
                f"past_window must be in [0, 62], got {self.past_window}"
            )
        # int32: the clock advances once per mini-batch, far below 2**31.
        self._release_at = np.zeros(self.num_slots, dtype=np.int32)

    @property
    def fresh_bit(self) -> int:
        """Bit value a newly planned batch sets on its slots (in the
        canonical bitmask form returned by :meth:`raw_bits`)."""
        return 1 << self.past_window

    @property
    def clock(self) -> int:
        """Number of ``advance()`` calls so far (one per pipeline cycle)."""
        return self._clock

    @property
    def release_stamps(self) -> np.ndarray:
        """Per-slot release stamps: slot ``s`` is held while
        ``release_stamps[s] > clock``.  Exposed (without copying) for the
        incremental replacement policies' O(1) eligibility checks; callers
        must treat the array as read-only.
        """
        return self._release_at

    def advance(self) -> None:
        """Slide the window by one mini-batch."""
        self._clock += 1

    def hold(self, slots: np.ndarray) -> None:
        """Mark ``slots`` as used by the batch currently at [Plan]."""
        slots = np.asarray(slots, dtype=np.int64)
        if slots.size == 0:
            return
        if slots.min() < 0 or slots.max() >= self.num_slots:
            raise HoldMaskConfigError("slot index out of range")
        self._release_at[slots] = self._clock + self.past_window + 1

    def hold_trusted(self, slots: np.ndarray) -> None:
        """:meth:`hold` minus input validation, for internal hot paths
        whose callers guarantee in-range int64 slot indices."""
        if slots.size:
            self._release_at[slots] = self._clock + self.past_window + 1

    def is_held(self, slots: np.ndarray) -> np.ndarray:
        """Boolean array: True where a slot is inside the sliding window."""
        return self._release_at[np.asarray(slots, dtype=np.int64)] > self._clock

    def held_mask(self) -> np.ndarray:
        """Boolean mask over all slots: True = protected from eviction."""
        return self._release_at > self._clock

    def eligible_mask(self) -> np.ndarray:
        """Boolean mask over all slots: True = eviction candidate."""
        return self._release_at <= self._clock

    def held_count(self) -> int:
        """Number of currently protected slots."""
        return int(np.count_nonzero(self._release_at > self._clock))

    def raw_bits(self) -> np.ndarray:
        """Canonical bitmask form of the hold state (for tests/inspection).

        A slot whose hold survives ``r`` more advances reports ``1 << (r-1)``
        — the single bit the latest hold would occupy in the seed's shifted
        bitmask (earlier, already-superseded holds carried no information:
        only the latest hold decides eligibility).
        """
        remaining = np.maximum(self._release_at - self._clock, 0)
        bits = np.zeros(self.num_slots, dtype=np.uint64)
        held = remaining > 0
        bits[held] = np.uint64(1) << (remaining[held] - 1).astype(np.uint64)
        return bits

    def reset(self) -> None:
        """Forget every hold, returning to the freshly constructed state."""
        self._release_at.fill(0)
        self._clock = 0

"""``build_system`` — the single factory every consumer assembles through.

Every figure, sweep grid, CLI command and example constructs systems by
handing a :class:`~repro.api.specs.SystemSpec` (or a registered name, or
the CLI's name-or-JSON string) to :func:`build_system`.  The factory
resolves the registered class and delegates to its
``from_spec(spec, config, hardware)`` constructor, so a uniform spec
builds a system bit-identical to the legacy positional constructor it
replaces, and a heterogeneous per-table cache spec flows through the same
door.
"""

from __future__ import annotations

from typing import Union

from repro.api.registry import RegistryError, system_entry
from repro.api.specs import InvalidSystemSpecError, SystemSpec
from repro.hardware.spec import HardwareSpec
from repro.model.config import ModelConfig
from repro.systems.base import TrainingSystem


def as_system_spec(spec: Union[SystemSpec, str]) -> SystemSpec:
    """Coerce a spec, a registered name, or a JSON string to a SystemSpec."""
    if isinstance(spec, SystemSpec):
        return spec
    if isinstance(spec, str):
        text = spec.strip()
        if text.startswith("{"):
            return SystemSpec.from_json(text)
        return SystemSpec(system=text)
    raise InvalidSystemSpecError(
        f"expected a SystemSpec, a registered system name, or a JSON spec; "
        f"got {type(spec).__name__}"
    )


def build_system(
    spec: Union[SystemSpec, str],
    config: ModelConfig,
    hardware: HardwareSpec,
) -> TrainingSystem:
    """Realise a :class:`SystemSpec` against a concrete config + hardware.

    Raises :class:`InvalidSystemSpecError` (never a late construction
    error) when the spec names an unknown system, omits a required cache,
    or carries a cache for a cache-less baseline.
    """
    spec = as_system_spec(spec)
    try:
        entry = system_entry(spec.system)
    except RegistryError as error:
        raise InvalidSystemSpecError(str(error)) from None
    if entry.requires_cache and spec.cache is None:
        raise InvalidSystemSpecError(
            f"system {spec.system!r} requires a cache spec "
            "(SystemSpec.cache is None)"
        )
    if not entry.requires_cache and spec.cache is not None:
        raise InvalidSystemSpecError(
            f"system {spec.system!r} takes no cache, but the spec carries "
            "one — drop SystemSpec.cache or pick a cached design"
        )
    if not entry.uses_num_gpus and spec.num_gpus != 1:
        raise InvalidSystemSpecError(
            f"system {spec.system!r} is single-GPU but the spec asks for "
            f"num_gpus={spec.num_gpus} — the field would be silently "
            "ignored; pick a multi-GPU design or drop it"
        )
    if spec.cache is not None:
        # Hazard-window floor: a dynamic cache sized below the design's
        # hold-mask window can exhaust hazard-free victims mid-run.  With
        # the geometry now in hand, reject undersized uniform or per-table
        # splits here — a named spec error at construction instead of a
        # CachePressureError deep inside a run.
        floor = entry.cls.min_cache_slots(spec, config)
        spec.cache.resolve(
            config.num_tables,
            config.rows_per_table,
            min_slots=floor,
            floor_what=f"{spec.system} hazard-window floor",
        )
    return entry.cls.from_spec(spec, config, hardware)

"""Declarative system specifications: the system-side twin of ScenarioSpec.

PR 3 made *workloads* declarative: a :class:`~repro.data.scenarios.ScenarioSpec`
is a frozen, hashable, picklable value that sweep workers rebuild traces
from.  This module gives *systems* the same treatment.  A
:class:`SystemSpec` composes

* a :class:`CacheSpec` — cache capacity as a fraction or an absolute slot
  count, replacement policy, and optional **per-table overrides** (the
  heterogeneous-cache path: "table 0 gets 4 % LRU, the rest get 0.5 %
  random");
* a :class:`ScratchpadSpec` — hold-mask past window, storage
  materialisation, legacy-select oracle flag;
* a :class:`PipelineSpec` — future-window lookahead depth and the
  unique-ID cache switch;

plus the registered system name and a GPU count.  Every field is validated
eagerly in ``__post_init__`` with a named :class:`InvalidSystemSpecError`
(mirroring PR 3's ``InvalidZipfExponentError`` pattern), so a bad policy
name or future window fails at spec construction — not deep inside system
assembly.  :func:`repro.api.build_system` realises a spec against a
``(ModelConfig, HardwareSpec)`` pair.

Specs carry no arrays and no model geometry: they are a few dozen bytes,
hash/eq-stable, picklable (a ``SweepPoint`` ships ``(SystemSpec,
ScenarioSpec)`` pairs to worker processes) and round-trip losslessly
through JSON (:meth:`SystemSpec.to_json`) and the CLI shorthand
(:func:`parse_cache_spec` / :func:`format_cache_spec`).
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field, replace
from typing import Dict, Mapping, Optional, Tuple

from repro.core.replacement import registered_policies


class InvalidSystemSpecError(ValueError):
    """A system specification with out-of-range or inconsistent fields."""


_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*$")


def _validate_system_name(name: object) -> None:
    if not isinstance(name, str) or not _NAME_RE.match(name):
        raise InvalidSystemSpecError(
            "system name must be a lowercase identifier "
            f"([a-z][a-z0-9_]*), got {name!r}"
        )


@dataclass(frozen=True)
class ResolvedTableCache:
    """One table's cache, resolved against a concrete model geometry."""

    table: int
    slots: int
    policy: str
    fraction: Optional[float] = None


@dataclass(frozen=True)
class CacheSpec:
    """Capacity + policy of the dynamic cache, uniform or per-table.

    Exactly one of ``fraction``/``slots`` sizes the cache:

    Attributes:
        fraction: Cache size as a fraction of ``rows_per_table`` in
            ``(0, 1]`` (the legacy ``cache_fraction``); resolved per table
            as ``max(1, int(fraction * rows_per_table))`` — bit-identical
            to the positional constructors.
        slots: Absolute slot count (>= 1) instead of a fraction.
        policy: Registered replacement-policy name (``"lru"``/``"lfu"``/
            ``"random"`` plus plugins).
        tables: Per-table overrides as a sorted tuple of
            ``(table_index, CacheSpec)`` pairs; override specs must
            themselves be uniform (no nested overrides).  Tables without an
            override use this spec's own fraction/slots/policy (the
            ``rest=`` entry of the CLI shorthand).  A mapping passed here
            is normalised to the sorted tuple, so hash/eq are stable.
    """

    fraction: Optional[float] = None
    slots: Optional[int] = None
    policy: str = "lru"
    tables: Tuple[Tuple[int, "CacheSpec"], ...] = ()

    def __post_init__(self) -> None:
        if (self.fraction is None) == (self.slots is None):
            raise InvalidSystemSpecError(
                "cache spec needs exactly one of fraction or slots, got "
                f"fraction={self.fraction!r} slots={self.slots!r}"
            )
        if self.fraction is not None:
            if isinstance(self.fraction, bool) or not isinstance(
                self.fraction, (int, float)
            ):
                raise InvalidSystemSpecError(
                    f"cache fraction must be a number, got {self.fraction!r}"
                )
            if not 0.0 < float(self.fraction) <= 1.0:
                raise InvalidSystemSpecError(
                    f"cache_fraction must be in (0, 1], got {self.fraction}"
                )
        if self.slots is not None:
            if isinstance(self.slots, bool) or not isinstance(self.slots, int):
                raise InvalidSystemSpecError(
                    f"cache slots must be an int, got {self.slots!r}"
                )
            if self.slots < 1:
                raise InvalidSystemSpecError(
                    f"cache slots must be >= 1, got {self.slots}"
                )
        if not isinstance(self.policy, str):
            raise InvalidSystemSpecError(
                f"policy must be a string, got {self.policy!r}"
            )
        if self.policy.lower() not in registered_policies():
            # A plugin policy may simply not have been discovered yet —
            # entry-point loading is lazy.  Trigger discovery once and
            # re-check before rejecting.
            from repro.api.registry import discover_plugins

            discover_plugins()
        known = registered_policies()
        if self.policy.lower() not in known:
            raise InvalidSystemSpecError(
                f"unknown policy {self.policy!r}; expected one of "
                f"{sorted(known)}"
            )
        # Canonical lowercase form so semantically identical specs compare
        # and hash equal (the sweep memoises systems by spec).
        object.__setattr__(self, "policy", self.policy.lower())
        # Normalise overrides (mapping or iterable of pairs) to the sorted
        # tuple canonical form so equal specs hash equal.
        overrides = self.tables
        if isinstance(overrides, Mapping):
            overrides = tuple(overrides.items())
        else:
            overrides = tuple(
                (index, spec) for index, spec in tuple(overrides)
            )
        overrides = tuple(sorted(overrides, key=lambda pair: pair[0]))
        object.__setattr__(self, "tables", overrides)
        seen = set()
        for index, spec in overrides:
            if isinstance(index, bool) or not isinstance(index, int) or index < 0:
                raise InvalidSystemSpecError(
                    f"table override index must be an int >= 0, got {index!r}"
                )
            if index in seen:
                raise InvalidSystemSpecError(
                    f"duplicate cache override for table {index}"
                )
            seen.add(index)
            if not isinstance(spec, CacheSpec):
                raise InvalidSystemSpecError(
                    f"table {index} override must be a CacheSpec, "
                    f"got {type(spec).__name__}"
                )
            if spec.tables:
                raise InvalidSystemSpecError(
                    f"table {index} override must be uniform "
                    "(no nested per-table overrides)"
                )

    @property
    def is_uniform(self) -> bool:
        """True iff every table shares this spec's fraction/slots/policy."""
        return not self.tables

    def table_spec(self, table: int) -> "CacheSpec":
        """The (uniform) spec governing one table."""
        for index, spec in self.tables:
            if index == table:
                return spec
        return self if self.is_uniform else replace(self, tables=())

    def num_slots(self, rows_per_table: int) -> int:
        """Resolved slot count of the default ("rest") entry."""
        if self.slots is not None:
            return self.slots
        return max(1, int(self.fraction * rows_per_table))

    def resolve(
        self,
        num_tables: int,
        rows_per_table: int,
        *,
        min_slots: Optional[int] = None,
        floor_what: str = "hazard-window floor",
    ) -> Tuple[ResolvedTableCache, ...]:
        """Per-table ``(slots, policy)`` against a concrete geometry.

        Raises :class:`InvalidSystemSpecError` when an override names a
        table outside ``[0, num_tables)`` — the first moment the table
        count is known — or, with ``min_slots``, when any table's resolved
        capacity falls below that floor (``build_system`` passes the
        system's hazard-window floor here, so undersized splits fail with
        a named spec error at construction instead of a mid-run
        ``CachePressureError``).
        """
        for index, _ in self.tables:
            if index >= num_tables:
                raise InvalidSystemSpecError(
                    f"cache override names table {index} but the model has "
                    f"only {num_tables} tables"
                )
        resolved = []
        for table in range(num_tables):
            spec = self.table_spec(table)
            slots = spec.num_slots(rows_per_table)
            if min_slots is not None and slots < min_slots:
                sizing = (
                    f"fraction {spec.fraction!r}"
                    if spec.fraction is not None
                    else "absolute slots"
                )
                raise InvalidSystemSpecError(
                    f"cache for table {table} resolves to {slots} slots "
                    f"({sizing} of {rows_per_table} rows), below the "
                    f"{floor_what} of {min_slots} slots at this geometry — "
                    "it could exhaust hazard-free victims mid-run; grow the "
                    f"table's cache to at least {min_slots} slots "
                    f"({min_slots / rows_per_table:.4g} of the table)"
                )
            resolved.append(
                ResolvedTableCache(
                    table=table,
                    slots=slots,
                    policy=spec.policy,
                    fraction=spec.fraction,
                )
            )
        return tuple(resolved)

    # ------------------------------------------------------------------
    # Lossless dict / JSON round-trip
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-JSON-types dict; inverse of :meth:`from_dict`."""
        out: dict = {"policy": self.policy}
        if self.fraction is not None:
            out["fraction"] = self.fraction
        if self.slots is not None:
            out["slots"] = self.slots
        if self.tables:
            out["tables"] = {
                str(index): spec.to_dict() for index, spec in self.tables
            }
        return out

    @classmethod
    def from_dict(cls, data: Mapping) -> "CacheSpec":
        """Rebuild a spec from :meth:`to_dict` output (strict keys)."""
        if not isinstance(data, Mapping):
            raise InvalidSystemSpecError(
                f"cache spec must be a mapping, got {type(data).__name__}"
            )
        unknown = set(data) - {"fraction", "slots", "policy", "tables"}
        if unknown:
            raise InvalidSystemSpecError(
                f"unknown cache spec fields: {sorted(unknown)}"
            )
        tables = data.get("tables") or {}
        if not isinstance(tables, Mapping):
            raise InvalidSystemSpecError(
                "cache spec 'tables' must map table index -> cache spec"
            )
        overrides = []
        for key, sub in tables.items():
            try:
                index = int(key)
            except (TypeError, ValueError):
                raise InvalidSystemSpecError(
                    f"table override key must be an integer, got {key!r}"
                ) from None
            overrides.append((index, cls.from_dict(sub)))
        return cls(
            fraction=data.get("fraction"),
            slots=data.get("slots"),
            policy=data.get("policy", "lru"),
            tables=tuple(overrides),
        )


@dataclass(frozen=True)
class ScratchpadSpec:
    """Scratchpad index configuration shared by every table's cache manager.

    Attributes:
        past_window: Hold-mask past window (3 in the paper's pipeline).
            The sequential straw-man has no concurrent batches to protect
            and always runs 0, ignoring this field.
        with_storage: Materialise a real Storage array (functional mode)
            instead of metadata-only index structures.
        legacy_select: Route victim selection through the full-scan oracle
            policies; ``None`` defers to the ``REPRO_LEGACY_SELECT``
            environment hook.
    """

    past_window: int = 3
    with_storage: bool = False
    legacy_select: Optional[bool] = None

    def __post_init__(self) -> None:
        if isinstance(self.past_window, bool) or not isinstance(
            self.past_window, int
        ) or self.past_window < 0:
            raise InvalidSystemSpecError(
                f"past_window must be an int >= 0, got {self.past_window!r}"
            )
        if not isinstance(self.with_storage, bool):
            raise InvalidSystemSpecError(
                f"with_storage must be a bool, got {self.with_storage!r}"
            )
        if self.legacy_select is not None and not isinstance(
            self.legacy_select, bool
        ):
            raise InvalidSystemSpecError(
                "legacy_select must be True, False or None, got "
                f"{self.legacy_select!r}"
            )

    def to_dict(self) -> dict:
        return {
            "past_window": self.past_window,
            "with_storage": self.with_storage,
            "legacy_select": self.legacy_select,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "ScratchpadSpec":
        unknown = set(data) - {"past_window", "with_storage", "legacy_select"}
        if unknown:
            raise InvalidSystemSpecError(
                f"unknown scratchpad spec fields: {sorted(unknown)}"
            )
        return cls(
            past_window=data.get("past_window", 3),
            with_storage=data.get("with_storage", False),
            legacy_select=data.get("legacy_select"),
        )


@dataclass(frozen=True)
class PipelineSpec:
    """Pipeline staging configuration.

    Attributes:
        future_window: Upcoming batches [Plan] protects (2 in the paper:
            the [Insert]-to-[Collect] distance).
        unique_cache: Plan from per-batch cached sorted-unique ID sets
            (the PR 1 fast path; ``False`` reproduces the seed's per-cycle
            recomputation for equivalence runs).
        executor: Stage-execution backend, by registered name
            (``repro.core.executor``): ``"serial"`` (default) or
            ``"overlapped"`` (Plan N+future on dedicated worker
            processes).  All backends are bit-identical; the choice is
            purely a throughput strategy.
    """

    future_window: int = 2
    unique_cache: bool = True
    executor: str = "serial"

    def __post_init__(self) -> None:
        if isinstance(self.future_window, bool) or not isinstance(
            self.future_window, int
        ) or self.future_window < 0:
            raise InvalidSystemSpecError(
                f"future_window must be an int >= 0, got "
                f"{self.future_window!r}"
            )
        if not isinstance(self.unique_cache, bool):
            raise InvalidSystemSpecError(
                f"unique_cache must be a bool, got {self.unique_cache!r}"
            )
        from repro.core.executor import registered_executors

        if self.executor not in registered_executors():
            raise InvalidSystemSpecError(
                f"unknown executor {self.executor!r}; registered: "
                f"{', '.join(registered_executors())}"
            )

    def to_dict(self) -> dict:
        return {
            "future_window": self.future_window,
            "unique_cache": self.unique_cache,
            "executor": self.executor,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "PipelineSpec":
        unknown = set(data) - {"future_window", "unique_cache", "executor"}
        if unknown:
            raise InvalidSystemSpecError(
                f"unknown pipeline spec fields: {sorted(unknown)}"
            )
        return cls(
            future_window=data.get("future_window", 2),
            unique_cache=data.get("unique_cache", True),
            executor=data.get("executor", "serial"),
        )


@dataclass(frozen=True)
class SystemSpec:
    """A complete, declarative system description.

    The spec combines with a :class:`~repro.model.config.ModelConfig` and
    :class:`~repro.hardware.spec.HardwareSpec` only at
    :func:`repro.api.build_system` time — it carries no geometry, so one
    spec describes the same design point at any scale.

    Attributes:
        system: Registered system name (see ``repro.api.registered_systems``).
            Name *existence* is checked at build time so specs for plugin
            systems can be constructed before the plugin loads; every other
            field validates eagerly here.
        cache: Dynamic-cache configuration, or ``None`` for cache-less
            systems (hybrid baselines, the pure multi-GPU system).
        scratchpad: Scratchpad index configuration.
        pipeline: Pipeline staging configuration.
        num_gpus: GPU count for the multi-GPU design points.
            ``build_system`` rejects ``num_gpus != 1`` for single-GPU
            designs (registry ``uses_num_gpus`` metadata) rather than
            silently ignoring the field.
    """

    system: str = "scratchpipe"
    cache: Optional[CacheSpec] = None
    scratchpad: ScratchpadSpec = field(default_factory=ScratchpadSpec)
    pipeline: PipelineSpec = field(default_factory=PipelineSpec)
    num_gpus: int = 1

    def __post_init__(self) -> None:
        _validate_system_name(self.system)
        if self.cache is not None and not isinstance(self.cache, CacheSpec):
            raise InvalidSystemSpecError(
                f"cache must be a CacheSpec or None, got "
                f"{type(self.cache).__name__}"
            )
        if not isinstance(self.scratchpad, ScratchpadSpec):
            raise InvalidSystemSpecError(
                "scratchpad must be a ScratchpadSpec, got "
                f"{type(self.scratchpad).__name__}"
            )
        if not isinstance(self.pipeline, PipelineSpec):
            raise InvalidSystemSpecError(
                f"pipeline must be a PipelineSpec, got "
                f"{type(self.pipeline).__name__}"
            )
        if isinstance(self.num_gpus, bool) or not isinstance(
            self.num_gpus, int
        ) or self.num_gpus < 1:
            raise InvalidSystemSpecError(
                f"num_gpus must be an int >= 1, got {self.num_gpus!r}"
            )

    def with_cache(self, cache: Optional[CacheSpec]) -> "SystemSpec":
        """The same system over a different cache configuration."""
        return replace(self, cache=cache)

    def with_system(self, system: str) -> "SystemSpec":
        """The same configuration under a different registered system."""
        return replace(self, system=system)

    # ------------------------------------------------------------------
    # Lossless dict / JSON round-trip
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-JSON-types dict; inverse of :meth:`from_dict`."""
        return {
            "system": self.system,
            "cache": None if self.cache is None else self.cache.to_dict(),
            "scratchpad": self.scratchpad.to_dict(),
            "pipeline": self.pipeline.to_dict(),
            "num_gpus": self.num_gpus,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "SystemSpec":
        """Rebuild a spec from :meth:`to_dict` output (strict keys)."""
        if not isinstance(data, Mapping):
            raise InvalidSystemSpecError(
                f"system spec must be a mapping, got {type(data).__name__}"
            )
        unknown = set(data) - {
            "system", "cache", "scratchpad", "pipeline", "num_gpus"
        }
        if unknown:
            raise InvalidSystemSpecError(
                f"unknown system spec fields: {sorted(unknown)}"
            )
        cache = data.get("cache")
        return cls(
            system=data.get("system", "scratchpipe"),
            cache=None if cache is None else CacheSpec.from_dict(cache),
            scratchpad=ScratchpadSpec.from_dict(data.get("scratchpad", {})),
            pipeline=PipelineSpec.from_dict(data.get("pipeline", {})),
            num_gpus=data.get("num_gpus", 1),
        )

    def to_json(self) -> str:
        """Compact JSON form (the CLI's ``--system`` also accepts it)."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "SystemSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise InvalidSystemSpecError(
                f"system spec is not valid JSON: {error}"
            ) from None
        return cls.from_dict(data)


def uniform_system_spec(
    system: str,
    cache_fraction: Optional[float] = None,
    policy: str = "lru",
    future_window: int = 2,
    num_gpus: int = 1,
) -> SystemSpec:
    """Synthesize the spec a legacy positional constructor describes.

    ``cache_fraction=None`` yields a cache-less spec (hybrid baselines).
    This is the shim the deprecated positional constructors and the
    spec-less ``SweepPoint`` fields funnel through, so legacy call sites
    and spec-driven ones construct byte-identical systems.
    """
    cache = None
    if cache_fraction is not None:
        cache = CacheSpec(fraction=cache_fraction, policy=policy)
    return SystemSpec(
        system=system,
        cache=cache,
        pipeline=PipelineSpec(future_window=future_window),
        num_gpus=num_gpus,
    )


# ----------------------------------------------------------------------
# CLI shorthand: "table0=0.04,rest=0.005" <-> CacheSpec
# ----------------------------------------------------------------------
def _format_entry(spec: CacheSpec) -> str:
    if spec.fraction is not None:
        value = repr(float(spec.fraction))
    else:
        value = f"{spec.slots}s"
    if spec.policy != "lru":
        value += f":{spec.policy}"
    return value


def _parse_entry(text: str, context: str) -> CacheSpec:
    value, _, policy = text.partition(":")
    value = value.strip()
    policy = policy.strip() or "lru"
    fraction: Optional[float] = None
    slots: Optional[int] = None
    if value.endswith("s") and value[:-1].isdigit():
        slots = int(value[:-1])
    else:
        try:
            fraction = float(value)
        except ValueError:
            raise InvalidSystemSpecError(
                f"cannot parse cache size {value!r} in {context!r}; expected "
                "a fraction like 0.04 or an absolute slot count like 4096s"
            ) from None
    return CacheSpec(fraction=fraction, slots=slots, policy=policy)


def parse_cache_spec(text: str) -> CacheSpec:
    """Parse the CLI cache shorthand into a :class:`CacheSpec`.

    Grammar: comma-separated ``key=size[:policy]`` entries where ``key`` is
    ``rest`` (the default applied to all tables without an override) or
    ``tableN``/``N`` (a per-table override), and ``size`` is a fraction
    (``0.04``) or an absolute slot count (``4096s``).  A bare
    ``size[:policy]`` with no key is shorthand for ``rest=``.  Examples::

        0.02                      # uniform 2 % LRU
        0.02:random               # uniform 2 % random
        table0=0.04,rest=0.005    # heterogeneous: table 0 gets 4 %
        0=4096s:lfu,rest=0.01     # table 0: 4096 slots LFU, rest 1 % LRU
    """
    parts = [part.strip() for part in str(text).split(",") if part.strip()]
    if not parts:
        raise InvalidSystemSpecError(f"empty cache spec {text!r}")
    default: Optional[CacheSpec] = None
    overrides: Dict[int, CacheSpec] = {}
    for part in parts:
        key, eq, value = part.partition("=")
        if not eq:
            key, value = "rest", part
        key = key.strip().lower()
        entry = _parse_entry(value.strip(), part)
        if key in ("rest", "default", "*"):
            if default is not None:
                raise InvalidSystemSpecError(
                    f"cache spec {text!r} has more than one rest= entry"
                )
            default = entry
            continue
        if key.startswith("table"):
            key = key[len("table"):]
        if not key.isdigit():
            raise InvalidSystemSpecError(
                f"cannot parse cache spec entry {part!r}; keys are 'rest' "
                "or 'tableN'"
            )
        index = int(key)
        if index in overrides:
            raise InvalidSystemSpecError(
                f"duplicate cache override for table {index}"
            )
        overrides[index] = entry
    if default is None:
        raise InvalidSystemSpecError(
            f"cache spec {text!r} needs a rest=<size> entry naming the "
            "default for tables without an override"
        )
    return replace(default, tables=tuple(sorted(overrides.items())))


def format_cache_spec(spec: CacheSpec) -> str:
    """Inverse of :func:`parse_cache_spec` — lossless round-trip.

    ``parse_cache_spec(format_cache_spec(spec)) == spec`` for every
    :class:`CacheSpec` (fractions are emitted via ``repr`` so float
    precision survives).
    """
    parts = [f"table{index}={_format_entry(sub)}" for index, sub in spec.tables]
    parts.append(f"rest={_format_entry(spec)}")
    return ",".join(parts)

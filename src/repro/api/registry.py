"""Plugin registries: named training systems and replacement policies.

Systems register with the :func:`register_system` class decorator::

    from repro.api import register_system
    from repro.systems.base import TrainingSystem

    @register_system("my_design", requires_cache=True)
    class MyDesign(TrainingSystem):
        name = "my_design"
        @classmethod
        def from_spec(cls, spec, config, hardware): ...

and are then buildable through ``repro.api.build_system`` (and by name
from the CLI and sweep grids).  Replacement policies use
:func:`repro.core.replacement.register_policy` (re-exported here) and
become valid ``CacheSpec.policy`` values.

Third-party packages can auto-register via entry points — group
``"repro.systems"`` or ``"repro.policies"``, each entry loading a module
or object whose import performs the registration (a loaded class with a
``name`` attribute is registered directly).  Discovery runs lazily the
first time the registry is queried and never fails the host process: a
broken plugin is skipped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.core.replacement import (  # noqa: F401  (re-exported surface)
    register_policy,
    registered_policies,
)

#: Entry-point groups scanned by :func:`discover_plugins`.
SYSTEM_ENTRY_POINT_GROUP = "repro.systems"
POLICY_ENTRY_POINT_GROUP = "repro.policies"


class RegistryError(ValueError):
    """Registration conflict or lookup of an unknown registered name."""


@dataclass(frozen=True)
class SystemEntry:
    """Registry record of one buildable system.

    Attributes:
        name: Registered name (``SystemSpec.system`` values).
        cls: The system class; must expose
            ``from_spec(spec, config, hardware)``.
        requires_cache: Whether ``SystemSpec.cache`` is mandatory (the
            dynamic- and static-cache designs) or must be absent (the
            cache-less baselines).
        uses_num_gpus: Whether the builder consumes ``SystemSpec.num_gpus``;
            single-GPU designs reject specs with ``num_gpus != 1`` instead
            of silently ignoring the field.
        description: One-line summary shown by ``repro.cli systems``.
    """

    name: str
    cls: type
    requires_cache: bool = False
    uses_num_gpus: bool = False
    description: str = ""


# repro-lint: disable=worker-capture -- import-time registry: populated
# by decorators when repro.systems imports, so every process (parent or
# spawn worker) rebuilds the identical mapping on first import.
_SYSTEMS: Dict[str, SystemEntry] = {}
# repro-lint: disable=worker-capture -- one-shot discovery latch; each
# process runs its own entry-point scan, which is idempotent.
_discovered = False


def register_system(
    name: Optional[str] = None,
    *,
    requires_cache: bool = False,
    uses_num_gpus: bool = False,
    description: Optional[str] = None,
) -> Callable[[type], type]:
    """Class decorator registering a system under ``name``.

    ``name`` defaults to the class's ``name`` attribute; ``description``
    defaults to the first line of the class docstring.  Re-registering an
    existing name (with a different class) raises :class:`RegistryError` —
    plugins cannot silently shadow builtins.
    """

    def decorate(cls: type) -> type:
        entry_name = name or getattr(cls, "name", None)
        if not entry_name or not isinstance(entry_name, str):
            raise RegistryError(
                f"{cls.__name__} needs a registry name (decorator argument "
                "or a 'name' class attribute)"
            )
        existing = _SYSTEMS.get(entry_name)
        if existing is not None and existing.cls is not cls:
            raise RegistryError(
                f"system {entry_name!r} is already registered to "
                f"{existing.cls.__name__}"
            )
        summary = description
        if summary is None:
            doc = (cls.__doc__ or "").strip()
            summary = doc.splitlines()[0] if doc else ""
        _SYSTEMS[entry_name] = SystemEntry(
            name=entry_name,
            cls=cls,
            requires_cache=requires_cache,
            uses_num_gpus=uses_num_gpus,
            description=summary,
        )
        return cls

    return decorate


def system_entry(name: str) -> SystemEntry:
    """Look up one registered system (triggers plugin discovery)."""
    discover_plugins()
    try:
        return _SYSTEMS[name]
    except KeyError:
        raise RegistryError(
            f"unknown system {name!r}; registered systems: "
            f"{', '.join(registered_systems())}"
        ) from None


def registered_systems() -> Tuple[str, ...]:
    """Sorted names of every registered system (triggers discovery)."""
    discover_plugins()
    return tuple(sorted(_SYSTEMS))


def system_entries() -> Tuple[SystemEntry, ...]:
    """All registry records, sorted by name (triggers discovery)."""
    discover_plugins()
    return tuple(_SYSTEMS[name] for name in sorted(_SYSTEMS))


def discover_plugins() -> None:
    """Load entry-point plugins once (idempotent, failure-tolerant)."""
    global _discovered
    if _discovered:
        return
    _discovered = True
    try:
        # Importing the systems package registers every builtin design
        # point.  Lazy (not at module import) so that system modules can
        # themselves import this registry without a cycle.
        import repro.systems  # noqa: F401
    except Exception:  # pragma: no cover - never expected for builtins
        pass
    try:
        from importlib import metadata
    except ImportError:  # pragma: no cover - py<3.8 only
        return
    for group in (SYSTEM_ENTRY_POINT_GROUP, POLICY_ENTRY_POINT_GROUP):
        try:
            points = metadata.entry_points()
            if hasattr(points, "select"):  # py3.10+ selectable API
                group_points = points.select(group=group)
            else:  # pragma: no cover - py3.9 mapping API
                group_points = points.get(group, [])
        except Exception:  # pragma: no cover - broken metadata
            continue
        for point in group_points:
            try:
                loaded = point.load()
            except Exception:  # pragma: no cover - broken plugin
                continue
            # Importing the target usually registers via decorators; a
            # loaded class with a ``name`` is also registered directly so
            # plugins can point at bare classes.
            if isinstance(loaded, type) and getattr(loaded, "name", None):
                try:
                    if group == SYSTEM_ENTRY_POINT_GROUP:
                        if loaded.name not in _SYSTEMS:
                            register_system(loaded.name)(loaded)
                    elif loaded.name not in registered_policies():
                        register_policy(loaded.name)(loaded)
                except ValueError:  # pragma: no cover - plugin conflict
                    continue

"""``repro.api`` — declarative system assembly.

The composition surface the CLI, the experiment entry points and the sweep
runner all share:

* **Specs** — :class:`SystemSpec` (composing :class:`CacheSpec`,
  :class:`ScratchpadSpec`, :class:`PipelineSpec`): frozen, hashable,
  picklable descriptions of a design point, validated eagerly with named
  :class:`InvalidSystemSpecError`\\ s and round-tripping losslessly through
  JSON and the CLI ``table0=0.04,rest=0.005`` shorthand.
* **Registry** — :func:`register_system` / :func:`register_policy`
  decorators plus entry-point discovery (groups ``"repro.systems"`` /
  ``"repro.policies"``), so plugins join the same namespace the builtins
  live in.
* **Factory** — :func:`build_system`, the single door every consumer
  constructs systems through.

Quickstart::

    from repro.api import CacheSpec, SystemSpec, build_system
    from repro.hardware import DEFAULT_HARDWARE
    from repro.model import ModelConfig

    spec = SystemSpec(
        system="scratchpipe",
        cache=CacheSpec(fraction=0.005,
                        tables={0: CacheSpec(fraction=0.04)}),
    )
    system = build_system(spec, ModelConfig(), DEFAULT_HARDWARE)
    result = system.run_trace(trace)
"""

from repro.api.specs import (
    CacheSpec,
    InvalidSystemSpecError,
    PipelineSpec,
    ResolvedTableCache,
    ScratchpadSpec,
    SystemSpec,
    format_cache_spec,
    parse_cache_spec,
    uniform_system_spec,
)
from repro.api.registry import (
    POLICY_ENTRY_POINT_GROUP,
    SYSTEM_ENTRY_POINT_GROUP,
    RegistryError,
    SystemEntry,
    discover_plugins,
    register_policy,
    register_system,
    registered_policies,
    registered_systems,
    system_entries,
    system_entry,
)
from repro.api.factory import as_system_spec, build_system

__all__ = [
    "CacheSpec",
    "InvalidSystemSpecError",
    "PipelineSpec",
    "ResolvedTableCache",
    "ScratchpadSpec",
    "SystemSpec",
    "format_cache_spec",
    "parse_cache_spec",
    "uniform_system_spec",
    "as_system_spec",
    "build_system",
    "POLICY_ENTRY_POINT_GROUP",
    "SYSTEM_ENTRY_POINT_GROUP",
    "RegistryError",
    "SystemEntry",
    "discover_plugins",
    "register_policy",
    "register_system",
    "registered_policies",
    "registered_systems",
    "system_entries",
    "system_entry",
]

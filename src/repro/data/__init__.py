"""Data substrate: access distributions, dataset profiles, traces, loaders."""

from repro.data.datasets import (
    ALIBABA,
    CRITEO_TABLE_EXPONENTS,
    CRITEO,
    DATASET_PROFILES,
    HIGH_LOCALITY,
    KAGGLE_ANIME,
    LOCALITY_CLASSES,
    LOW_LOCALITY,
    MEDIUM_LOCALITY,
    MOVIELENS,
    RANDOM_LOCALITY,
    DatasetProfile,
    criteo_table_distributions,
    dataset_by_name,
    locality_distribution,
)
from repro.data.distributions import (
    AccessDistribution,
    UniformDistribution,
    ZipfDistribution,
    fit_zipf_exponent,
    permuted,
)
from repro.data.io import TraceFile, save_trace
from repro.data.loader import LookaheadLoader
from repro.data.stats import (
    TraceStats,
    lru_hit_rate_curve,
    reuse_distances,
    trace_stats,
    working_set_curve,
)
from repro.data.trace import MiniBatch, SyntheticDataset, make_dataset

__all__ = [
    "ALIBABA",
    "CRITEO",
    "DATASET_PROFILES",
    "HIGH_LOCALITY",
    "KAGGLE_ANIME",
    "LOCALITY_CLASSES",
    "LOW_LOCALITY",
    "MEDIUM_LOCALITY",
    "MOVIELENS",
    "RANDOM_LOCALITY",
    "DatasetProfile",
    "dataset_by_name",
    "CRITEO_TABLE_EXPONENTS",
    "criteo_table_distributions",
    "locality_distribution",
    "AccessDistribution",
    "UniformDistribution",
    "ZipfDistribution",
    "fit_zipf_exponent",
    "permuted",
    "TraceFile",
    "save_trace",
    "LookaheadLoader",
    "TraceStats",
    "lru_hit_rate_curve",
    "reuse_distances",
    "trace_stats",
    "working_set_curve",
    "MiniBatch",
    "SyntheticDataset",
    "make_dataset",
]

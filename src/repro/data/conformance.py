"""Statistical conformance checks for workload generators.

Every scenario generator ships with a seeded test asserting that its
empirical access frequencies match the configured process.  The helpers
here implement the two classic goodness-of-fit statistics — Pearson's
chi-squared over binned rank counts and the Kolmogorov–Smirnov distance
over the rank CDF — plus their critical values, self-contained on numpy so
the test suite does not grow a scipy dependency.

The chi-squared quantile uses the Wilson–Hilferty cube-root approximation
(accurate to a few per mil for the degrees of freedom these tests use); the
KS critical value is the standard asymptotic ``sqrt(-ln(alpha/2) / (2n))``.
Both are used with small ``alpha`` (default 1e-6) so the seeded tests sit
far from the rejection boundary: a passing generator passes forever, and a
broken one (wrong exponent, off-by-one hot set, mis-scaled burst share)
fails by orders of magnitude.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np
from repro.errors import ConformanceInputError


@dataclass(frozen=True)
class GofResult:
    """Outcome of a goodness-of-fit check.

    Attributes:
        statistic: The computed test statistic.
        critical: Rejection threshold at the configured significance.
        ok: ``statistic <= critical``.
    """

    statistic: float
    critical: float

    @property
    def ok(self) -> bool:
        return self.statistic <= self.critical


def normal_quantile(p: float) -> float:
    """Standard-normal quantile via the Acklam rational approximation.

    Absolute error < 1.2e-9 over (0, 1) — more than enough for test
    thresholds.
    """
    if not 0.0 < p < 1.0:
        raise ConformanceInputError(f"p must be in (0, 1), got {p}")
    a = (-3.969683028665376e+01, 2.209460984245205e+02,
         -2.759285104469687e+02, 1.383577518672690e+02,
         -3.066479806614716e+01, 2.506628277459239e+00)
    b = (-5.447609879822406e+01, 1.615858368580409e+02,
         -1.556989798598866e+02, 6.680131188771972e+01,
         -1.328068155288572e+01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01,
         -2.400758277161838e+00, -2.549732539343734e+00,
         4.374664141464968e+00, 2.938163982698783e+00)
    d = (7.784695709041462e-03, 3.224671290700398e-01,
         2.445134137142996e+00, 3.754408661907416e+00)
    p_low = 0.02425
    if p < p_low:
        q = math.sqrt(-2.0 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q
                + c[5]) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
    if p > 1.0 - p_low:
        q = math.sqrt(-2.0 * math.log(1.0 - p))
        return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q
                 + c[5]) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
    q = p - 0.5
    r = q * q
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r
            + a[5]) * q / (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r
                            + b[4]) * r + 1.0)


def chi_squared_critical(dof: int, alpha: float = 1e-6) -> float:
    """Upper-``alpha`` chi-squared quantile (Wilson–Hilferty)."""
    if dof < 1:
        raise ConformanceInputError(f"dof must be >= 1, got {dof}")
    z = normal_quantile(1.0 - alpha)
    h = 2.0 / (9.0 * dof)
    return dof * (1.0 - h + z * math.sqrt(h)) ** 3


def bin_tail(
    counts: np.ndarray, probs: np.ndarray, min_expected: float, total: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Merge trailing cells until every expected count is adequate.

    Pearson's statistic needs expected counts of at least ~5 per cell;
    power-law rank distributions have huge low-probability tails, so the
    cold cells are merged (in the given order) into aggregate bins.
    """
    expected = probs * total
    out_counts = []
    out_probs = []
    acc_c = 0.0
    acc_p = 0.0
    for c, p, e in zip(counts, probs, expected):
        acc_c += c
        acc_p += p
        if acc_p * total >= min_expected:
            out_counts.append(acc_c)
            out_probs.append(acc_p)
            acc_c = 0.0
            acc_p = 0.0
    if acc_p > 0:
        if out_counts:
            out_counts[-1] += acc_c
            out_probs[-1] += acc_p
        else:
            out_counts.append(acc_c)
            out_probs.append(acc_p)
    return np.asarray(out_counts, dtype=np.float64), np.asarray(
        out_probs, dtype=np.float64
    )


def chi_squared_gof(
    observed_counts: Sequence[float],
    expected_probs: Sequence[float],
    alpha: float = 1e-6,
    min_expected: float = 5.0,
) -> GofResult:
    """Pearson chi-squared test of counts against a discrete model.

    ``expected_probs`` must cover the full sample space (sum to 1 up to
    floating error); sparse tails are merged via :func:`bin_tail`.
    """
    counts = np.asarray(observed_counts, dtype=np.float64)
    probs = np.asarray(expected_probs, dtype=np.float64)
    if counts.shape != probs.shape:
        raise ConformanceInputError(
            f"shape mismatch: counts {counts.shape} vs probs {probs.shape}"
        )
    total_p = probs.sum()
    if not math.isclose(total_p, 1.0, rel_tol=0, abs_tol=1e-6):
        raise ConformanceInputError(f"expected_probs must sum to 1, got {total_p}")
    total = counts.sum()
    if total <= 0:
        raise ConformanceInputError("observed_counts must contain samples")
    counts, probs = bin_tail(counts, probs, min_expected, int(total))
    if counts.size < 2:
        raise ConformanceInputError(
            "fewer than two bins after merging; increase the sample size"
        )
    expected = probs * total
    statistic = float(((counts - expected) ** 2 / expected).sum())
    return GofResult(
        statistic=statistic,
        critical=chi_squared_critical(counts.size - 1, alpha),
    )


def ks_critical(n: int, alpha: float = 1e-6) -> float:
    """Asymptotic two-sided Kolmogorov–Smirnov critical distance."""
    if n < 1:
        raise ConformanceInputError(f"n must be >= 1, got {n}")
    return math.sqrt(-math.log(alpha / 2.0) / (2.0 * n))


def ks_gof(
    samples: np.ndarray, model_cdf: np.ndarray, alpha: float = 1e-6
) -> GofResult:
    """KS distance of integer samples against a model CDF over [0, K).

    ``model_cdf[k]`` is ``P(X <= k)``.  For discrete models the KS test is
    conservative (the true rejection rate is below ``alpha``), which is the
    safe direction for a regression test.
    """
    samples = np.asarray(samples).reshape(-1)
    if samples.size == 0:
        raise ConformanceInputError("samples must be non-empty")
    k = len(model_cdf)
    counts = np.bincount(samples, minlength=k)
    if counts.size > k:
        raise ConformanceInputError("samples exceed the model's support")
    empirical_cdf = np.cumsum(counts) / samples.size
    statistic = float(np.abs(empirical_cdf - np.asarray(model_cdf)).max())
    return GofResult(
        statistic=statistic, critical=ks_critical(samples.size, alpha)
    )

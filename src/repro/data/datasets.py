"""Synthetic stand-ins for the paper's four real-world dataset profiles.

The paper characterises embedding-access locality on Alibaba User Behavior,
Kaggle Anime, MovieLens and Criteo (Figures 3 and 6) and distils them into
four benchmark traces: Random, Low, Medium and High locality (Section V).
Real traces are not redistributable, so — exactly as the paper's own
methodology does — we encode each dataset as a fitted power-law profile.

Anchor points:
    * Criteo:   hottest 2% of rows -> >80% of accesses  (Section III-A)
    * Alibaba:  hottest 2% of rows -> 8.5% of accesses  (Section III-A)
    * MovieLens / Kaggle Anime: intermediate locality between the two
      extremes (Figure 6(b)(c) show knees between Alibaba's and Criteo's).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import DatasetSpecError
from repro.data.distributions import (
    AccessDistribution,
    UniformDistribution,
    ZipfDistribution,
    fit_zipf_exponent,
)

#: Locality class names used throughout the evaluation (x-axes of
#: Figures 5, 12, 13, 14, 15 and the rows of Table I).
RANDOM_LOCALITY = "random"
LOW_LOCALITY = "low"
MEDIUM_LOCALITY = "medium"
HIGH_LOCALITY = "high"

LOCALITY_CLASSES: Tuple[str, ...] = (
    RANDOM_LOCALITY,
    LOW_LOCALITY,
    MEDIUM_LOCALITY,
    HIGH_LOCALITY,
)


@dataclass(frozen=True)
class DatasetProfile:
    """A named dataset whose access pattern is a fitted power law.

    Attributes:
        name: Dataset name as used in the paper's figures.
        zipf_exponent: Fitted exponent; ``None`` means uniform (random).
        locality_class: Which of the paper's four benchmark classes the
            dataset exemplifies.
    """

    name: str
    zipf_exponent: float
    locality_class: str

    def distribution(self, num_rows: int) -> AccessDistribution:
        """Instantiate the access distribution over a table of ``num_rows``."""
        return ZipfDistribution(num_rows=num_rows, exponent=self.zipf_exponent)


# Exponents fitted from the paper's quoted anchor points.
_ALIBABA_EXPONENT = fit_zipf_exponent(0.02, 0.085)  # ~0.369 -> low locality
_CRITEO_EXPONENT = fit_zipf_exponent(0.02, 0.82)  # ~0.949 -> high locality
_MOVIELENS_EXPONENT = 0.65  # medium locality knee (Figure 6(c))
_ANIME_EXPONENT = 0.78  # medium-high knee (Figure 6(b))

ALIBABA = DatasetProfile("Alibaba", _ALIBABA_EXPONENT, LOW_LOCALITY)
KAGGLE_ANIME = DatasetProfile("Kaggle Anime", _ANIME_EXPONENT, MEDIUM_LOCALITY)
MOVIELENS = DatasetProfile("MovieLens", _MOVIELENS_EXPONENT, MEDIUM_LOCALITY)
CRITEO = DatasetProfile("Criteo", _CRITEO_EXPONENT, HIGH_LOCALITY)

#: The four dataset profiles of Figure 3, in figure order.
DATASET_PROFILES: Tuple[DatasetProfile, ...] = (
    ALIBABA,
    KAGGLE_ANIME,
    MOVIELENS,
    CRITEO,
)

#: Exponents for the four benchmark locality classes (Section V).  ``None``
#: marks the Random trace (uniform IDs).
_LOCALITY_EXPONENTS: Dict[str, float] = {
    LOW_LOCALITY: _ALIBABA_EXPONENT,
    MEDIUM_LOCALITY: _MOVIELENS_EXPONENT,
    HIGH_LOCALITY: _CRITEO_EXPONENT,
}


def locality_distribution(locality: str, num_rows: int) -> AccessDistribution:
    """Build the access distribution for one of the four benchmark classes.

    Args:
        locality: One of ``"random"``, ``"low"``, ``"medium"``, ``"high"``.
        num_rows: Embedding-table size the distribution ranges over.
    """
    if locality == RANDOM_LOCALITY:
        return UniformDistribution(num_rows=num_rows)
    try:
        exponent = _LOCALITY_EXPONENTS[locality]
    except KeyError:
        raise DatasetSpecError(
            f"unknown locality {locality!r}; expected one of {LOCALITY_CLASSES}"
        ) from None
    return ZipfDistribution(num_rows=num_rows, exponent=exponent)


#: Per-table Zipf exponents of a Criteo-like multi-table model.  Figure 6(d)
#: plots hit-rate curves for individual Criteo tables (0, 9, 10, 11, 19, 20,
#: 21) with visibly different knees: some tables are almost single-item hot,
#: others carry a long tail.  These exponents span that observed spread.
CRITEO_TABLE_EXPONENTS: Dict[int, float] = {
    0: 0.97,
    9: 0.93,
    10: 0.88,
    11: 0.82,
    19: 0.72,
    20: 0.60,
    21: 0.45,
}


def criteo_table_distributions(
    num_rows: int, tables: Tuple[int, ...] = tuple(CRITEO_TABLE_EXPONENTS)
) -> Dict[int, AccessDistribution]:
    """Per-table access distributions of the Criteo-like profile.

    Args:
        num_rows: Rows per table.
        tables: Which of the profiled table IDs to build.
    """
    out: Dict[int, AccessDistribution] = {}
    for table in tables:
        try:
            exponent = CRITEO_TABLE_EXPONENTS[table]
        except KeyError:
            known = sorted(CRITEO_TABLE_EXPONENTS)
            raise DatasetSpecError(
                f"no profiled exponent for table {table}; known: {known}"
            ) from None
        out[table] = ZipfDistribution(num_rows=num_rows, exponent=exponent)
    return out


def dataset_by_name(name: str) -> DatasetProfile:
    """Look up one of the four dataset profiles by (case-insensitive) name."""
    for profile in DATASET_PROFILES:
        if profile.name.lower() == name.lower():
            return profile
    known = ", ".join(p.name for p in DATASET_PROFILES)
    raise DatasetSpecError(f"unknown dataset {name!r}; expected one of: {known}")

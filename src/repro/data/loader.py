"""Mini-batch loader with lookahead — the source of ScratchPipe's "future".

The paper's key observation (Section IV-A) is that the training dataset
records the sparse feature IDs of *all* upcoming iterations, so a runtime
can inspect future mini-batches before they are trained on.  The
:class:`LookaheadLoader` exposes exactly that capability: sequential
iteration for the training loop plus ``future_batch`` / ``window_ids`` for
the [Plan] stage's sliding window, all transparent to the model code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

import numpy as np

from repro.errors import LoaderConfigError
from repro.data.trace import MiniBatch, SyntheticDataset


@dataclass
class LookaheadLoader:
    """Sequential loader over a dataset with bounded forward visibility.

    Args:
        dataset: The randomly-accessible training dataset.
        lookahead: How many batches beyond the current one the runtime may
            inspect.  ScratchPipe's default pipeline needs the Plan stage to
            see ``future_window`` (2) batches ahead, plus the pipeline depth
            between Load and Plan; the loader enforces the configured bound
            so tests can verify the runtime never peeks further than it
            declared.
    """

    dataset: SyntheticDataset
    lookahead: int = 8

    def __post_init__(self) -> None:
        if self.lookahead < 0:
            raise LoaderConfigError(f"lookahead must be >= 0, got {self.lookahead}")
        self._cursor = 0
        self._cache: dict[int, MiniBatch] = {}

    def __len__(self) -> int:
        return len(self.dataset)

    @property
    def cursor(self) -> int:
        """Index of the next batch :meth:`next_batch` will return."""
        return self._cursor

    def _fetch(self, index: int) -> MiniBatch:
        if index not in self._cache:
            self._cache[index] = self.dataset.batch(index)
        return self._cache[index]

    def _evict_behind(self, index: int) -> None:
        for stale in [k for k in self._cache if k < index]:
            del self._cache[stale]

    def next_batch(self) -> MiniBatch:
        """Consume and return the next batch in trace order."""
        if self._cursor >= len(self.dataset):
            raise StopIteration("trace exhausted")
        batch = self._fetch(self._cursor)
        self._cursor += 1
        self._evict_behind(self._cursor - 1)
        return batch

    def future_batch(self, offset: int) -> Optional[MiniBatch]:
        """Peek at the batch ``offset`` positions past the cursor.

        ``offset=0`` is the batch :meth:`next_batch` would return next.
        Returns ``None`` past the end of the trace.

        Raises:
            ValueError: If ``offset`` exceeds the declared lookahead bound.
        """
        if offset < 0:
            raise LoaderConfigError(f"offset must be >= 0, got {offset}")
        if offset > self.lookahead:
            raise LoaderConfigError(
                f"offset {offset} exceeds declared lookahead {self.lookahead}"
            )
        index = self._cursor + offset
        if index >= len(self.dataset):
            return None
        return self._fetch(index)

    def window_ids(self, table: int, offsets: List[int]) -> np.ndarray:
        """Union of one table's lookup IDs across several future offsets.

        Used by the Plan stage to build the future-window hold set.
        Offsets pointing past the trace end contribute nothing.
        """
        pieces = []
        for offset in offsets:
            batch = self.future_batch(offset)
            if batch is not None:
                pieces.append(batch.table_ids(table))
        if not pieces:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate(pieces))

    def __iter__(self) -> Iterator[MiniBatch]:
        while self._cursor < len(self.dataset):
            yield self.next_batch()

"""Trace persistence: archives, the compiled binary format, and trace specs.

Real deployments train from dataset files on disk — which is precisely the
property ScratchPipe exploits ("the training dataset records exactly which
indices to utilize ... for all upcoming training iterations").  This module
owns every on-disk trace representation:

* ``.npz`` archives (:func:`save_trace` / :class:`TraceFile`) — the
  compressed interchange form used by the on-disk sweep cache;
* the **compiled binary format** (:func:`compile_trace` /
  :class:`CompiledTraceSource`) — a small JSON header plus a packed int32
  ID array, memmapped for zero-copy O(1) random access in any order.
  Compiling a TSV once removes parsing (and the TSV reader's
  rewind-on-backward-seek) from every later experiment;
* :class:`TraceFileSpec` — a frozen, hashable, picklable description of a
  trace **file** (path + sha256 pin + geometry mapping), the file-backed
  twin of :class:`~repro.data.scenarios.ScenarioSpec`: sweep grids and
  ``ExperimentSetup`` address real traces through it, so file-backed
  points ship through the existing spec-only worker dispatch.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Union

import numpy as np

from repro.errors import TraceFormatError
from repro.data.trace import (
    MaterialisedDataset,
    MiniBatch,
    TraceSource,
    make_dataset,
)
from repro.model.config import ModelConfig

#: Format marker stored inside every trace archive.
FORMAT_VERSION = 1


class InvalidTraceFileSpecError(ValueError):
    """A trace-file specification with out-of-range or inconsistent fields."""


class TraceVerificationError(ValueError):
    """A trace file whose content does not match its pinned sha256."""


def sha256_file(path: Union[str, Path], chunk_bytes: int = 1 << 20) -> str:
    """Streaming sha256 of a file (lowercase hex digest)."""
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        while True:
            block = fh.read(chunk_bytes)
            if not block:
                break
            digest.update(block)
    return digest.hexdigest()


def save_trace(
    path: Union[str, Path],
    batches: List[MiniBatch],
    config: ModelConfig,
) -> None:
    """Write a list of mini-batches to ``path`` as a compressed ``.npz``.

    Args:
        path: Destination file (``.npz`` appended by numpy if missing).
        batches: Batches in trace order; all must share the batch geometry
            of ``config`` and agree on whether dense features are present.
    """
    if not batches:
        raise TraceFormatError("cannot save an empty trace")
    has_dense = batches[0].dense is not None
    for batch in batches:
        if batch.sparse_ids.shape != batches[0].sparse_ids.shape:
            raise TraceFormatError("all batches must share one sparse-ID shape")
        if (batch.dense is not None) != has_dense:
            raise TraceFormatError("all batches must agree on dense presence")

    payload = {
        "format_version": np.int64(FORMAT_VERSION),
        "num_tables": np.int64(config.num_tables),
        "rows_per_table": np.int64(config.rows_per_table),
        "lookups_per_table": np.int64(config.lookups_per_table),
        "batch_size": np.int64(config.batch_size),
        "sparse_ids": np.stack([b.sparse_ids for b in batches]),
    }
    if has_dense:
        payload["dense"] = np.stack([b.dense for b in batches])
        payload["labels"] = np.stack([b.labels for b in batches])
    np.savez_compressed(Path(path), **payload)


class TraceFile(TraceSource):
    """A saved trace, exposing the :class:`TraceSource` protocol.

    Drop-in replacement for :class:`repro.data.trace.SyntheticDataset` in
    every system/pipeline API, including chunk-wise streaming.
    """

    def __init__(
        self, path: Union[str, Path], max_batches: Optional[int] = None
    ):
        archive = np.load(Path(path))
        version = int(archive["format_version"])
        if version != FORMAT_VERSION:
            raise TraceFormatError(
                f"unsupported trace format {version}; expected {FORMAT_VERSION}"
            )
        self._sparse = archive["sparse_ids"]
        self._dense = archive["dense"] if "dense" in archive else None
        self._labels = archive["labels"] if "labels" in archive else None
        if max_batches is not None:
            if max_batches < 1:
                raise TraceFormatError(
                    f"max_batches must be >= 1, got {max_batches}"
                )
            self._sparse = self._sparse[:max_batches]
            if self._dense is not None:
                self._dense = self._dense[:max_batches]
            if self._labels is not None:
                self._labels = self._labels[:max_batches]
        self.num_tables = int(archive["num_tables"])
        self.rows_per_table = int(archive["rows_per_table"])
        self.lookups_per_table = int(archive["lookups_per_table"])
        self.batch_size = int(archive["batch_size"])

    def __len__(self) -> int:
        return self._sparse.shape[0]

    def batch(self, index: int) -> MiniBatch:
        """Materialise batch ``index`` from the archive."""
        if not 0 <= index < len(self):
            raise IndexError(f"batch index {index} out of range [0, {len(self)})")
        return MiniBatch(
            index=index,
            sparse_ids=self._sparse[index],
            dense=None if self._dense is None else self._dense[index],
            labels=None if self._labels is None else self._labels[index],
        )

    def __getitem__(self, index: int) -> MiniBatch:
        return self.batch(index)

    def batches(self) -> List[MiniBatch]:
        """Materialise every batch of the archive, in trace order."""
        return [self.batch(i) for i in range(len(self))]

    def validate_against(self, config: ModelConfig) -> None:
        """Raise if the archive's geometry does not match ``config``."""
        mismatches = []
        if self.num_tables != config.num_tables:
            mismatches.append("num_tables")
        if self.rows_per_table != config.rows_per_table:
            mismatches.append("rows_per_table")
        if self.lookups_per_table != config.lookups_per_table:
            mismatches.append("lookups_per_table")
        if self.batch_size != config.batch_size:
            mismatches.append("batch_size")
        if mismatches:
            raise TraceFormatError(
                "trace/config geometry mismatch on: " + ", ".join(mismatches)
            )


# ----------------------------------------------------------------------
# On-disk memoisation of synthetic traces
# ----------------------------------------------------------------------
def trace_cache_path(
    cache_dir: Union[str, Path],
    config: ModelConfig,
    locality: str,
    seed: int,
    num_batches: int,
) -> Path:
    """Deterministic archive path for one synthetic-trace specification.

    The key hashes the full model geometry plus the trace parameters, so
    any change to either lands in a fresh file.
    """
    spec = repr((config, locality, seed, num_batches))
    digest = hashlib.sha1(spec.encode()).hexdigest()[:20]
    return Path(cache_dir) / f"trace-{digest}.npz"


def materialise_cached(
    config: ModelConfig,
    locality: str,
    seed: int,
    num_batches: int,
    cache_dir: Union[str, Path],
) -> MaterialisedDataset:
    """Materialise a synthetic trace, memoised to ``cache_dir`` on disk.

    The first caller generates the trace and publishes it with an atomic
    rename; later callers (including other worker processes of a sweep
    pool) load the archive instead of re-sampling the distributions.  The
    round-trip is lossless, so the loaded dataset is bit-identical to a
    freshly generated one.
    """
    path = trace_cache_path(cache_dir, config, locality, seed, num_batches)
    if path.exists():
        archive = TraceFile(path)
        archive.validate_against(config)
        return MaterialisedDataset.from_batches(config, archive.batches())
    dataset = MaterialisedDataset(
        make_dataset(config, locality, seed=seed, num_batches=num_batches)
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    scratch = path.with_name(f".{path.stem}.{os.getpid()}.npz")
    try:
        save_trace(scratch, list(dataset), config)
        os.replace(scratch, path)
    except OSError:
        # Publishing the cache entry is best-effort; the dataset itself is
        # already materialised in memory.
        scratch.unlink(missing_ok=True)
    return dataset


# ----------------------------------------------------------------------
# Compiled binary trace format
# ----------------------------------------------------------------------
#: File magic of the compiled format (versioned: bump the final byte on
#: layout changes).
COMPILED_MAGIC = b"REPRO-CTRACE\x01"

#: Alignment of the data section (memmap-friendly, covers any dtype).
_DATA_ALIGN = 64


def _compiled_header(path: Union[str, Path]) -> dict:
    """Read and validate a compiled trace's JSON header."""
    with open(path, "rb") as fh:
        magic = fh.read(len(COMPILED_MAGIC))
        if magic != COMPILED_MAGIC:
            raise TraceFormatError(
                f"{path} is not a compiled trace (bad magic {magic!r}); "
                "compile one with repro.data.io.compile_trace or "
                "`python -m repro.cli ingest`"
            )
        (header_len,) = np.frombuffer(fh.read(8), dtype="<u8")
        header = json.loads(fh.read(int(header_len)).decode("utf-8"))
    header["data_start"] = _aligned_data_start(int(header_len))
    return header


def _aligned_data_start(header_len: int) -> int:
    prelude = len(COMPILED_MAGIC) + 8 + header_len
    return (prelude + _DATA_ALIGN - 1) // _DATA_ALIGN * _DATA_ALIGN


def compile_trace(
    source: TraceSource,
    path: Union[str, Path],
    num_batches: Optional[int] = None,
    chunk_batches: int = 256,
) -> Path:
    """Compile any :class:`TraceSource` into the binary memmap format.

    Streams the source through its chunked interface (constant memory in
    the trace length), packs the sparse IDs as int32 and publishes the
    file with an atomic rename, so readers never observe a half-written
    trace.  Dense features and labels, when the source carries them, are
    appended as float32 arrays in a second streaming pass.

    Args:
        source: Any trace source (``TsvTraceSource``, synthetic, scenario).
        path: Destination file.
        num_batches: Compile only the first ``num_batches`` batches.
        chunk_batches: Batches per streamed chunk.

    Returns:
        The destination path.
    """
    config = source.config
    total = len(source)
    num_batches = total if num_batches is None else min(num_batches, total)
    if num_batches < 1:
        raise TraceFormatError(f"num_batches must be >= 1, got {num_batches}")
    if config.rows_per_table > np.iinfo(np.int32).max:
        raise TraceFormatError(
            f"rows_per_table {config.rows_per_table} exceeds the int32 ID "
            "range of the compiled format"
        )
    # Sources that declare dense-ness (the synthetic/scenario/TSV
    # sources) skip the batch-0 probe, so a TSV really is parsed only
    # once; opaque sources pay one probe parse of their first block.
    with_dense = getattr(source, "with_dense", None)
    if with_dense is None:
        with_dense = source.batch(0).dense is not None
    dense_width = config.num_dense_features if with_dense else 0
    sparse_shape = (
        num_batches, config.num_tables, config.batch_size,
        config.lookups_per_table,
    )
    arrays = {
        "sparse_ids": {"offset": 0, "dtype": "<i4", "shape": list(sparse_shape)},
    }
    cursor = int(np.prod(sparse_shape)) * 4
    if with_dense:
        dense_shape = (num_batches, config.batch_size, dense_width)
        arrays["dense"] = {
            "offset": cursor, "dtype": "<f4", "shape": list(dense_shape),
        }
        cursor += int(np.prod(dense_shape)) * 4
        labels_shape = (num_batches, config.batch_size)
        arrays["labels"] = {
            "offset": cursor, "dtype": "<f4", "shape": list(labels_shape),
        }
    header = {
        "format_version": FORMAT_VERSION,
        "num_batches": num_batches,
        "num_tables": config.num_tables,
        "rows_per_table": config.rows_per_table,
        "lookups_per_table": config.lookups_per_table,
        "batch_size": config.batch_size,
        "num_dense_features": config.num_dense_features,
        "with_dense": with_dense,
        "arrays": arrays,
        "source": type(source).__name__,
    }
    header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
    data_start = _aligned_data_start(len(header_bytes))

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    scratch = path.with_name(f".{path.name}.{os.getpid()}.part")

    def _check_batch(batch: MiniBatch, index: int) -> None:
        if batch.sparse_ids.shape != sparse_shape[1:]:
            raise TraceFormatError(
                f"batch {index} has sparse shape {batch.sparse_ids.shape}; "
                f"expected {sparse_shape[1:]}"
            )
        low = int(batch.sparse_ids.min())
        high = int(batch.sparse_ids.max())
        if low < 0 or high >= config.rows_per_table:
            raise TraceFormatError(
                f"batch {index} carries IDs outside "
                f"[0, {config.rows_per_table}): min {low}, max {high}"
            )
        if (batch.dense is not None) != with_dense:
            raise TraceFormatError("all batches must agree on dense presence")
        if with_dense:
            if batch.dense.shape != (config.batch_size, dense_width):
                raise TraceFormatError(
                    f"batch {index} has dense shape {batch.dense.shape}; "
                    f"expected {(config.batch_size, dense_width)}"
                )
            if batch.labels is None or batch.labels.shape != (
                config.batch_size,
            ):
                shape = None if batch.labels is None else batch.labels.shape
                raise TraceFormatError(
                    f"batch {index} has labels shape {shape}; dense-bearing "
                    f"traces need labels of shape {(config.batch_size,)}"
                )

    def _chunks():
        consumed = 0
        source.reset()
        for chunk in source.iter_chunks(
            chunk_batches=min(chunk_batches, num_batches)
        ):
            take = chunk[: num_batches - consumed]
            if take:
                yield consumed, take
            consumed += len(take)
            if consumed >= num_batches:
                return

    try:
        with open(scratch, "wb") as fh:
            fh.write(COMPILED_MAGIC)
            fh.write(np.uint64(len(header_bytes)).tobytes())
            fh.write(header_bytes)
            fh.write(
                b"\x00" * (
                    data_start - len(COMPILED_MAGIC) - 8 - len(header_bytes)
                )
            )
            # Single pass over the source: every section's extent is known
            # up front, so each array keeps its own write cursor and the
            # file is seek-positioned per chunk — a TSV source is parsed
            # (and its tokens hashed) exactly once, dense or not.
            cursors = {
                name: data_start + meta["offset"]
                for name, meta in arrays.items()
            }

            def _append(name: str, payload: np.ndarray, dtype: str) -> None:
                raw = np.ascontiguousarray(payload, dtype=dtype).tobytes()
                fh.seek(cursors[name])
                fh.write(raw)
                cursors[name] += len(raw)

            for start, chunk in _chunks():
                for offset, batch in enumerate(chunk):
                    _check_batch(batch, start + offset)
                    _append("sparse_ids", batch.sparse_ids, "<i4")
                    if with_dense:
                        _append("dense", batch.dense, "<f4")
                        _append("labels", batch.labels, "<f4")
            # Every section must land exactly on its computed extent —
            # a mismatch means a mis-shaped batch slipped through and the
            # file would read back garbage.
            for name, meta in arrays.items():
                expected = (
                    data_start + meta["offset"]
                    + int(np.prod(meta["shape"])) * 4
                )
                if cursors[name] != expected:
                    raise TraceFormatError(
                        f"compiled section {name!r} ended at byte "
                        f"{cursors[name]}, expected {expected}"
                    )
        os.replace(scratch, path)
    finally:
        scratch.unlink(missing_ok=True)
    return path


class CompiledTraceSource(TraceSource):
    """Zero-copy reader of a compiled binary trace.

    ``batch(i)`` slices a read-only memmap — O(1) for **any** access
    order (no cursor, no rewind, no parsing), so backward seeks that cost
    the TSV reader a full re-read are free here.  The per-batch views
    share the int32 on-disk representation; consumers treat
    ``MiniBatch.sparse_ids`` as immutable, which the read-only mapping now
    also enforces.

    Args:
        path: Compiled trace file (see :func:`compile_trace`).
        config: Optional geometry to validate against (raises on
            mismatch).  When omitted, a config is reconstructed from the
            header's geometry with default model hyper-parameters (the
            trace content depends only on the geometry).
        max_batches: Cap the exposed trace length.
    """

    def __init__(
        self,
        path: Union[str, Path],
        config: Optional[ModelConfig] = None,
        max_batches: Optional[int] = None,
    ) -> None:
        self.path = str(path)
        header = _compiled_header(path)
        version = int(header["format_version"])
        if version != FORMAT_VERSION:
            raise TraceFormatError(
                f"unsupported compiled-trace version {version}; "
                f"expected {FORMAT_VERSION}"
            )
        self.header = header
        self.num_tables = int(header["num_tables"])
        self.rows_per_table = int(header["rows_per_table"])
        self.lookups_per_table = int(header["lookups_per_table"])
        self.batch_size = int(header["batch_size"])
        self.with_dense = bool(header["with_dense"])
        self._num_batches = int(header["num_batches"])
        if max_batches is not None:
            if max_batches < 1:
                raise TraceFormatError(
                    f"max_batches must be >= 1, got {max_batches}"
                )
            self._num_batches = min(self._num_batches, max_batches)
        if config is None:
            config = ModelConfig().scaled(
                num_tables=self.num_tables,
                rows_per_table=self.rows_per_table,
                lookups_per_table=self.lookups_per_table,
                batch_size=self.batch_size,
                num_dense_features=int(
                    header.get("num_dense_features", 13)
                ),
            )
        self.config = config
        self.validate_against(config)
        data_start = header["data_start"]
        self._sparse = self._map("sparse_ids", data_start)
        self._dense = (
            self._map("dense", data_start) if self.with_dense else None
        )
        self._labels = (
            self._map("labels", data_start) if self.with_dense else None
        )

    def _map(self, name: str, data_start: int) -> np.ndarray:
        meta = self.header["arrays"][name]
        return np.memmap(
            self.path,
            dtype=np.dtype(meta["dtype"]),
            mode="r",
            offset=data_start + int(meta["offset"]),
            shape=tuple(meta["shape"]),
        )

    def validate_against(self, config: ModelConfig) -> None:
        """Raise if the compiled geometry does not match ``config``."""
        mismatches = []
        if self.num_tables != config.num_tables:
            mismatches.append("num_tables")
        if self.rows_per_table != config.rows_per_table:
            mismatches.append("rows_per_table")
        if self.lookups_per_table != config.lookups_per_table:
            mismatches.append("lookups_per_table")
        if self.batch_size != config.batch_size:
            mismatches.append("batch_size")
        if mismatches:
            raise TraceFormatError(
                "compiled trace/config geometry mismatch on: "
                + ", ".join(mismatches)
            )

    def __len__(self) -> int:
        return self._num_batches

    def batch(self, index: int) -> MiniBatch:
        if not 0 <= index < self._num_batches:
            raise IndexError(
                f"batch index {index} out of range [0, {self._num_batches})"
            )
        return MiniBatch(
            index=index,
            sparse_ids=self._sparse[index],
            dense=None if self._dense is None else self._dense[index],
            labels=None if self._labels is None else self._labels[index],
        )


# ----------------------------------------------------------------------
# TraceFileSpec — the spec-addressable description of a trace file
# ----------------------------------------------------------------------
#: Formats a TraceFileSpec can name; ``auto`` sniffs magic/extension.
TRACE_FILE_FORMATS = ("auto", "compiled", "tsv", "npz")

_SHA256_RE = re.compile(r"^[0-9a-f]{64}$")


def sniff_trace_format(path: Union[str, Path]) -> str:
    """Detect a trace file's format from its magic bytes / extension."""
    with open(path, "rb") as fh:
        head = fh.read(len(COMPILED_MAGIC))
    if head == COMPILED_MAGIC:
        return "compiled"
    if head[:2] == b"PK" or str(path).endswith(".npz"):
        return "npz"
    return "tsv"


@dataclass(frozen=True)
class TraceFileSpec:
    """Frozen, hashable, picklable description of one trace file.

    The file-backed twin of :class:`~repro.data.scenarios.ScenarioSpec`:
    a few dozen bytes naming *which bytes on disk* (path + optional sha256
    pin) and *how they map onto a model geometry* (batch size, table
    count, lookups, hash-bucket rows, dense handling).  Sweep grids and
    ``ExperimentSetup`` carry the spec — never the trace — so file-backed
    experiment points ride the existing spec-only worker dispatch and
    shared-memory trace publication unchanged.

    Attributes:
        path: Trace file location.
        format: One of :data:`TRACE_FILE_FORMATS` (``auto`` sniffs).
        sha256: Optional content pin; :meth:`open` refuses a file whose
            digest differs (:class:`TraceVerificationError`).
        max_batches: Cap the trace length (also bounds the TSV counting
            pass at construction).
        with_dense / num_dense_columns / allow_dense_pad: Dense-feature
            mapping, forwarded to :class:`~repro.data.tsv.TsvTraceSource`.
        batch_size / num_tables / lookups_per_table / rows_per_table:
            Geometry mapping applied to the base config by
            :meth:`configure` (``None`` keeps the base value).  For
            compiled files the geometry is read from the header and any
            override must agree with it.
    """

    path: str
    format: str = "auto"
    sha256: Optional[str] = None
    max_batches: Optional[int] = None
    with_dense: bool = False
    num_dense_columns: int = 13
    allow_dense_pad: bool = False
    batch_size: Optional[int] = None
    num_tables: Optional[int] = None
    lookups_per_table: Optional[int] = None
    rows_per_table: Optional[int] = None

    def __post_init__(self) -> None:
        if not isinstance(self.path, str):
            object.__setattr__(self, "path", str(self.path))
        if not self.path:
            raise InvalidTraceFileSpecError("trace spec needs a path")
        if self.format not in TRACE_FILE_FORMATS:
            raise InvalidTraceFileSpecError(
                f"unknown trace format {self.format!r}; expected one of "
                f"{TRACE_FILE_FORMATS}"
            )
        if self.sha256 is not None:
            digest = str(self.sha256).lower()
            if not _SHA256_RE.match(digest):
                raise InvalidTraceFileSpecError(
                    f"sha256 must be a 64-char hex digest, got {self.sha256!r}"
                )
            object.__setattr__(self, "sha256", digest)
        for name in (
            "max_batches", "batch_size", "num_tables", "lookups_per_table",
            "rows_per_table",
        ):
            value = getattr(self, name)
            if value is None:
                continue
            if isinstance(value, bool) or not isinstance(value, int) or value < 1:
                raise InvalidTraceFileSpecError(
                    f"{name} must be an int >= 1 or None, got {value!r}"
                )
        if self.num_dense_columns < 0:
            raise InvalidTraceFileSpecError(
                "num_dense_columns must be >= 0, got "
                f"{self.num_dense_columns}"
            )

    # ------------------------------------------------------------------
    def resolved_format(self) -> str:
        """The concrete format (sniffing the file when ``auto``)."""
        if self.format != "auto":
            return self.format
        return sniff_trace_format(self.path)

    def verify(self) -> None:
        """Check the sha256 pin (no-op when unpinned)."""
        if self.sha256 is None:
            return
        actual = sha256_file(self.path)
        if actual != self.sha256:
            raise TraceVerificationError(
                f"{self.path} sha256 mismatch: expected {self.sha256}, "
                f"got {actual}"
            )

    def configure(self, base: ModelConfig) -> ModelConfig:
        """The model geometry this trace drives, derived from ``base``.

        Compiled files are authoritative about their geometry: overrides
        must agree with the header.  TSV/npz files apply the spec's
        geometry overrides to ``base``.
        """
        overrides = {
            name: value
            for name, value in (
                ("batch_size", self.batch_size),
                ("num_tables", self.num_tables),
                ("lookups_per_table", self.lookups_per_table),
                ("rows_per_table", self.rows_per_table),
            )
            if value is not None
        }
        fmt = self.resolved_format()
        if fmt in ("compiled", "npz"):
            # Both on-disk formats are authoritative about their geometry;
            # overrides may restate it but not contradict it.
            if fmt == "compiled":
                header = _compiled_header(self.path)
            else:
                archive = np.load(Path(self.path))
                header = {
                    name: int(archive[name])
                    for name in (
                        "batch_size", "num_tables", "lookups_per_table",
                        "rows_per_table",
                    )
                }
            for name, value in overrides.items():
                if int(header[name]) != value:
                    raise InvalidTraceFileSpecError(
                        f"spec {name}={value} conflicts with the {fmt} "
                        f"header's {name}={header[name]} for {self.path}"
                    )
            overrides = {
                name: int(header[name])
                for name in (
                    "batch_size", "num_tables", "lookups_per_table",
                    "rows_per_table",
                )
            }
        return base.scaled(**overrides) if overrides else base

    def open(self, config: Optional[ModelConfig] = None) -> TraceSource:
        """Verify and open the trace against a concrete geometry.

        ``config`` defaults to :meth:`configure` applied to the default
        :class:`ModelConfig`, and must match what the file can realise.
        """
        self.verify()
        if config is None:
            config = self.configure(ModelConfig())
        fmt = self.resolved_format()
        if fmt == "compiled":
            source = CompiledTraceSource(
                self.path, config=config, max_batches=self.max_batches
            )
            if self.with_dense and not source.with_dense:
                raise InvalidTraceFileSpecError(
                    f"spec asks for dense features but {self.path} was "
                    "compiled without them"
                )
            return source
        if fmt == "tsv":
            from repro.data.tsv import TsvTraceSource

            return TsvTraceSource(
                self.path,
                config,
                num_dense_columns=self.num_dense_columns,
                with_dense=self.with_dense,
                max_batches=self.max_batches,
                allow_dense_pad=self.allow_dense_pad,
            )
        archive = TraceFile(self.path, max_batches=self.max_batches)
        archive.validate_against(config)
        if self.with_dense and archive.batch(0).dense is None:
            raise InvalidTraceFileSpecError(
                f"spec asks for dense features but {self.path} carries none"
            )
        archive.config = config
        return archive

    def materialise(
        self,
        config: Optional[ModelConfig] = None,
        num_batches: Optional[int] = None,
    ) -> MaterialisedDataset:
        """Open and pin (a prefix of) the trace in memory.

        The single mapping from a trace-file spec to the replayable
        dataset the experiment layer consumes — both the figure entry
        points and the sweep workers resolve file-backed points through
        it, so they cannot drift apart.  ``num_batches`` caps the prefix
        (clamped to the file's length).
        """
        source = self.open(config)
        total = len(source)
        cap = total if num_batches is None else min(num_batches, total)
        return MaterialisedDataset(source, num_batches=cap)

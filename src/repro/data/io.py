"""Trace persistence: save/load mini-batch traces as ``.npz`` archives.

Real deployments train from dataset files on disk — which is precisely the
property ScratchPipe exploits ("the training dataset records exactly which
indices to utilize ... for all upcoming training iterations").  This module
round-trips generated traces to disk so experiments are replayable and
shareable, and so the look-forward loader can be demonstrated over a real
file rather than a generator.
"""

from __future__ import annotations

import hashlib
import os
from pathlib import Path
from typing import List, Union

import numpy as np

from repro.data.trace import (
    MaterialisedDataset,
    MiniBatch,
    TraceSource,
    make_dataset,
)
from repro.model.config import ModelConfig

#: Format marker stored inside every trace archive.
FORMAT_VERSION = 1


def save_trace(
    path: Union[str, Path],
    batches: List[MiniBatch],
    config: ModelConfig,
) -> None:
    """Write a list of mini-batches to ``path`` as a compressed ``.npz``.

    Args:
        path: Destination file (``.npz`` appended by numpy if missing).
        batches: Batches in trace order; all must share the batch geometry
            of ``config`` and agree on whether dense features are present.
    """
    if not batches:
        raise ValueError("cannot save an empty trace")
    has_dense = batches[0].dense is not None
    for batch in batches:
        if batch.sparse_ids.shape != batches[0].sparse_ids.shape:
            raise ValueError("all batches must share one sparse-ID shape")
        if (batch.dense is not None) != has_dense:
            raise ValueError("all batches must agree on dense presence")

    payload = {
        "format_version": np.int64(FORMAT_VERSION),
        "num_tables": np.int64(config.num_tables),
        "rows_per_table": np.int64(config.rows_per_table),
        "lookups_per_table": np.int64(config.lookups_per_table),
        "batch_size": np.int64(config.batch_size),
        "sparse_ids": np.stack([b.sparse_ids for b in batches]),
    }
    if has_dense:
        payload["dense"] = np.stack([b.dense for b in batches])
        payload["labels"] = np.stack([b.labels for b in batches])
    np.savez_compressed(Path(path), **payload)


class TraceFile(TraceSource):
    """A saved trace, exposing the :class:`TraceSource` protocol.

    Drop-in replacement for :class:`repro.data.trace.SyntheticDataset` in
    every system/pipeline API, including chunk-wise streaming.
    """

    def __init__(self, path: Union[str, Path]):
        archive = np.load(Path(path))
        version = int(archive["format_version"])
        if version != FORMAT_VERSION:
            raise ValueError(
                f"unsupported trace format {version}; expected {FORMAT_VERSION}"
            )
        self._sparse = archive["sparse_ids"]
        self._dense = archive["dense"] if "dense" in archive else None
        self._labels = archive["labels"] if "labels" in archive else None
        self.num_tables = int(archive["num_tables"])
        self.rows_per_table = int(archive["rows_per_table"])
        self.lookups_per_table = int(archive["lookups_per_table"])
        self.batch_size = int(archive["batch_size"])

    def __len__(self) -> int:
        return self._sparse.shape[0]

    def batch(self, index: int) -> MiniBatch:
        """Materialise batch ``index`` from the archive."""
        if not 0 <= index < len(self):
            raise IndexError(f"batch index {index} out of range [0, {len(self)})")
        return MiniBatch(
            index=index,
            sparse_ids=self._sparse[index],
            dense=None if self._dense is None else self._dense[index],
            labels=None if self._labels is None else self._labels[index],
        )

    def __getitem__(self, index: int) -> MiniBatch:
        return self.batch(index)

    def batches(self) -> List[MiniBatch]:
        """Materialise every batch of the archive, in trace order."""
        return [self.batch(i) for i in range(len(self))]

    def validate_against(self, config: ModelConfig) -> None:
        """Raise if the archive's geometry does not match ``config``."""
        mismatches = []
        if self.num_tables != config.num_tables:
            mismatches.append("num_tables")
        if self.rows_per_table != config.rows_per_table:
            mismatches.append("rows_per_table")
        if self.lookups_per_table != config.lookups_per_table:
            mismatches.append("lookups_per_table")
        if self.batch_size != config.batch_size:
            mismatches.append("batch_size")
        if mismatches:
            raise ValueError(
                "trace/config geometry mismatch on: " + ", ".join(mismatches)
            )


# ----------------------------------------------------------------------
# On-disk memoisation of synthetic traces
# ----------------------------------------------------------------------
def trace_cache_path(
    cache_dir: Union[str, Path],
    config: ModelConfig,
    locality: str,
    seed: int,
    num_batches: int,
) -> Path:
    """Deterministic archive path for one synthetic-trace specification.

    The key hashes the full model geometry plus the trace parameters, so
    any change to either lands in a fresh file.
    """
    spec = repr((config, locality, seed, num_batches))
    digest = hashlib.sha1(spec.encode()).hexdigest()[:20]
    return Path(cache_dir) / f"trace-{digest}.npz"


def materialise_cached(
    config: ModelConfig,
    locality: str,
    seed: int,
    num_batches: int,
    cache_dir: Union[str, Path],
) -> MaterialisedDataset:
    """Materialise a synthetic trace, memoised to ``cache_dir`` on disk.

    The first caller generates the trace and publishes it with an atomic
    rename; later callers (including other worker processes of a sweep
    pool) load the archive instead of re-sampling the distributions.  The
    round-trip is lossless, so the loaded dataset is bit-identical to a
    freshly generated one.
    """
    path = trace_cache_path(cache_dir, config, locality, seed, num_batches)
    if path.exists():
        archive = TraceFile(path)
        archive.validate_against(config)
        return MaterialisedDataset.from_batches(config, archive.batches())
    dataset = MaterialisedDataset(
        make_dataset(config, locality, seed=seed, num_batches=num_batches)
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    scratch = path.with_name(f".{path.stem}.{os.getpid()}.npz")
    try:
        save_trace(scratch, list(dataset), config)
        os.replace(scratch, path)
    except OSError:
        # Publishing the cache entry is best-effort; the dataset itself is
        # already materialised in memory.
        scratch.unlink(missing_ok=True)
    return dataset

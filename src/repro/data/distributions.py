"""Access-probability distributions over embedding table rows.

The paper's methodology (Section V, Benchmarks) derives probability density
functions from the sorted access counts of four real datasets (Figure 3) and
uses them to synthesise traces with Random / Low / Medium / High locality.
We parameterise the same long-tail family analytically.

A ``ZipfDistribution`` with exponent ``s`` assigns rank ``r`` (0-based) a
probability proportional to ``(r + 1) ** -s``.  For ``0 < s < 1`` the
cumulative hit mass of the hottest fraction ``f`` of rows approaches
``f ** (1 - s)`` for large tables, which is exactly the family of hit-rate
curves Figure 6 plots.  Exponents for the named datasets are fitted from the
two anchor points the paper quotes (Section III-A): Criteo's hottest 2% of
rows receive >80% of accesses while Alibaba's hottest 2% receive only 8.5%.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from repro.errors import DistributionConfigError


class InvalidZipfExponentError(ValueError):
    """A Zipf exponent outside the analytic sampler's (0, 1) domain.

    ``alpha <= 0`` breaks the power-law normalisation (``alpha = 0``
    degenerates every rank weight to the same value and the closed-form
    hit-rate/pdf expressions to 0/NaN), and ``alpha >= 1`` makes the
    continuous inverse-CDF transform ``u ** (1 / (1 - alpha))`` blow up.
    Raised by name so callers can distinguish a bad workload parameter from
    other configuration errors.
    """


class AccessDistribution:
    """Interface: a probability distribution over ``num_rows`` row IDs."""

    num_rows: int

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` row IDs as an int64 array."""
        raise NotImplementedError

    def rank_of_uniform(self, u: np.ndarray) -> np.ndarray:
        """Map uniform(0,1) draws to row ranks through the inverse CDF.

        Exposing the transform separately from :meth:`sample` lets scenario
        processes share one array of uniforms across tables (correlated
        lookups) while each table keeps its own skew.
        """
        raise NotImplementedError

    def hit_rate(self, cache_fraction: float) -> float:
        """Fraction of accesses captured by caching the hottest
        ``cache_fraction`` of rows (an analytic static-cache hit rate)."""
        raise NotImplementedError

    def sorted_pdf(self, n_points: int) -> np.ndarray:
        """Probability mass of the ``n_points`` hottest ranks (descending)."""
        raise NotImplementedError


@dataclass(frozen=True)
class UniformDistribution(AccessDistribution):
    """The paper's "Random" trace: IDs drawn uniformly at random."""

    num_rows: int

    def __post_init__(self) -> None:
        if self.num_rows < 1:
            raise DistributionConfigError(f"num_rows must be >= 1, got {self.num_rows}")

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        return rng.integers(0, self.num_rows, size=n, dtype=np.int64)

    def rank_of_uniform(self, u: np.ndarray) -> np.ndarray:
        ranks = np.floor(self.num_rows * u)
        return np.minimum(ranks, self.num_rows - 1).astype(np.int64)

    def hit_rate(self, cache_fraction: float) -> float:
        return float(np.clip(cache_fraction, 0.0, 1.0))

    def sorted_pdf(self, n_points: int) -> np.ndarray:
        n_points = min(n_points, self.num_rows)
        return np.full(n_points, 1.0 / self.num_rows)


@dataclass(frozen=True)
class ZipfDistribution(AccessDistribution):
    """Power-law (Zipf-like) distribution over row ranks.

    ``P(rank r) ~ (r + 1) ** -s`` with ``0 < s < 1``.  Sampling uses the
    continuous inverse-CDF approximation ``rank = floor(N * u ** (1/(1-s)))``
    which is exact in the large-``N`` limit and O(1) per sample — essential
    for the paper's ten-million-row tables.

    Rank equals row ID here (row 0 is the hottest); downstream code never
    depends on hot rows being contiguous, and traces can be permuted with
    :func:`permuted` when tests want to break that correlation.
    """

    num_rows: int
    exponent: float

    def __post_init__(self) -> None:
        if self.num_rows < 1:
            raise DistributionConfigError(f"num_rows must be >= 1, got {self.num_rows}")
        if not np.isfinite(self.exponent) or not 0.0 < self.exponent < 1.0:
            raise InvalidZipfExponentError(
                "exponent must be in (0, 1) for the analytic sampler, "
                f"got {self.exponent}"
            )

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        return self.rank_of_uniform(rng.random(n))

    def rank_of_uniform(self, u: np.ndarray) -> np.ndarray:
        ranks = np.floor(self.num_rows * u ** (1.0 / (1.0 - self.exponent)))
        return np.minimum(ranks, self.num_rows - 1).astype(np.int64)

    def rank_pmf(self, ranks: np.ndarray) -> np.ndarray:
        """Exact probability mass the sampler assigns to each given rank.

        The inverse-CDF transform lands on rank ``r`` iff
        ``u in [(r/N)^(1-s), ((r+1)/N)^(1-s))``, so the induced pmf is
        ``((r+1)^(1-s) - r^(1-s)) / N^(1-s)`` — this is the ground truth
        the statistical conformance tests check empirical counts against
        (``sorted_pdf`` is only the large-``N`` density approximation).
        """
        r = np.asarray(ranks, dtype=np.float64)
        beta = 1.0 - self.exponent
        return ((r + 1.0) ** beta - r ** beta) / self.num_rows ** beta

    def hit_rate(self, cache_fraction: float) -> float:
        f = float(np.clip(cache_fraction, 0.0, 1.0))
        return f ** (1.0 - self.exponent)

    def sorted_pdf(self, n_points: int) -> np.ndarray:
        n_points = min(n_points, self.num_rows)
        # d/df [f^(1-s)] evaluated at rank midpoints, normalised over the
        # table; cheap and accurate for plotting Figure 3.
        ranks = np.arange(n_points, dtype=np.float64) + 0.5
        density = (1.0 - self.exponent) * (
            (ranks / self.num_rows) ** (-self.exponent)
        )
        return density / self.num_rows


def fit_zipf_exponent(cache_fraction: float, hit_rate: float) -> float:
    """Fit a Zipf exponent from one (cache fraction, hit rate) anchor point.

    Solves ``hit_rate = cache_fraction ** (1 - s)`` for ``s``.  For example,
    Criteo's "2% of embeddings account for more than 80% of all accesses"
    (Section III-A) yields ``s ~= 0.943``.
    """
    if not 0.0 < cache_fraction < 1.0:
        raise DistributionConfigError(f"cache_fraction must be in (0, 1), got {cache_fraction}")
    if not 0.0 < hit_rate < 1.0:
        raise DistributionConfigError(f"hit_rate must be in (0, 1), got {hit_rate}")
    exponent = 1.0 - math.log(hit_rate) / math.log(cache_fraction)
    if not 0.0 < exponent < 1.0:
        raise DistributionConfigError(
            "anchor point implies an exponent outside (0, 1): "
            f"({cache_fraction}, {hit_rate}) -> {exponent}"
        )
    return exponent


def permuted(
    ids: np.ndarray, num_rows: int, rng: np.random.Generator
) -> np.ndarray:
    """Remap IDs through a random permutation of the row space.

    Breaks the rank==row-ID correlation of :class:`ZipfDistribution` when a
    test needs hot rows scattered across the table.
    """
    permutation = rng.permutation(num_rows)
    return permutation[ids]

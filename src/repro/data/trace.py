"""Synthetic training-trace generation and the streaming trace protocol.

A *trace* is the sequence of sparse-feature ID mini-batches a RecSys training
job consumes.  The paper's central observation is that this sequence is
recorded in the training dataset ahead of time, which is what lets
ScratchPipe "look forward".  We therefore generate traces that are *randomly
accessible by batch index*: any batch can be materialised deterministically
from ``(seed, batch_index)``, which is exactly the property a dataset file
on disk has.

Every batch source in the repo implements the :class:`TraceSource`
protocol: random access by index (``batch(i)``/``__len__``) plus chunk-wise
streaming (``iter_chunks``) and ``reset()``.  Streaming is what keeps
million-batch scenario runs at constant memory — consumers hold one chunk
(or, for the pipeline, one sliding window) at a time instead of the whole
trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence

import numpy as np

from repro.errors import TraceSourceError
from repro.data.datasets import locality_distribution
from repro.data.distributions import AccessDistribution
from repro.model.config import ModelConfig

#: Default batches per streamed chunk: large enough to amortise per-chunk
#: overhead, small enough that a chunk of paper-scale batches stays far
#: below the materialised-trace footprint it replaces.
DEFAULT_CHUNK_BATCHES = 256


# ----------------------------------------------------------------------
# Deterministic integer mixing — the O(1)-random-access workhorse shared
# by the scenario engine (churn re-homing) and the TSV token hasher.
# Process-stable by construction (pure integer arithmetic, no interpreter
# hash salting), which is what keeps file-backed traces deterministic.
# ----------------------------------------------------------------------
_MIX_MULT_1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX_MULT_2 = np.uint64(0x94D049BB133111EB)
_U64 = 0xFFFFFFFFFFFFFFFF


def mix64_scalar(value: int, *salts: int) -> int:
    """Scalar twin of :func:`mix64` for per-token hashing.

    Pure-int arithmetic: the reference TSV parser calls this once per
    categorical token, where a 1-element numpy round-trip would dominate
    ingest time.
    """
    x = value & _U64
    for salt in salts:
        x ^= salt & _U64
        x = (x + 0x9E3779B97F4A7C15) & _U64
        x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _U64
        x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _U64
        x ^= x >> 31
    return x


def mix64(values: np.ndarray, *salts: int) -> np.ndarray:
    """SplitMix64-style avalanche over int64 values, vectorised.

    Gives every (value, salts) combination an independent pseudo-random
    64-bit output without constructing a ``Generator`` per element — the
    churn process calls this once per sampled lookup array and the bulk
    TSV hasher once per categorical column chunk.
    """
    x = values.astype(np.uint64, copy=True)
    for salt in salts:
        x ^= np.uint64(salt & 0xFFFFFFFFFFFFFFFF)
        x = (x + np.uint64(0x9E3779B97F4A7C15))
        x = (x ^ (x >> np.uint64(30))) * _MIX_MULT_1
        x = (x ^ (x >> np.uint64(27))) * _MIX_MULT_2
        x ^= x >> np.uint64(31)
    return x


def _sorted_unique(ids: np.ndarray) -> np.ndarray:
    """Sorted unique values of a 1-D int array.

    Output-identical to ``np.unique`` but several times faster on the
    lookup-ID arrays this module feeds it (numpy's hash-based unique costs
    far more than a sort at these sizes, and the sort is what the Plan
    stage needs anyway).
    """
    if ids.size <= 1:
        return ids.copy()
    ordered = np.sort(ids)
    keep = np.empty(ordered.size, dtype=bool)
    keep[0] = True
    np.not_equal(ordered[1:], ordered[:-1], out=keep[1:])
    return ordered[keep]


@dataclass(frozen=True)
class MiniBatch:
    """One training mini-batch.

    Attributes:
        index: Position of the batch within the trace.
        sparse_ids: int64 array of shape
            ``(num_tables, batch_size, lookups_per_table)`` — the embedding
            rows each sample gathers from each table (Figure 2(a)).
        dense: float32 array ``(batch_size, num_dense_features)`` of
            continuous inputs, or ``None`` for ID-only (timing) traces.
        labels: float32 array ``(batch_size,)`` of click labels, or ``None``.
    """

    index: int
    sparse_ids: np.ndarray
    dense: Optional[np.ndarray] = None
    labels: Optional[np.ndarray] = None
    # Lazily filled per-table sorted-unique ID cache.  One batch's uniques
    # are consumed up to three times per pipeline run (its own [Plan] plus
    # the future windows of the two preceding [Plan]s) and again by every
    # system replaying the same materialised trace — computing them once per
    # batch instead of per consumer is one of the pipeline's biggest wins.
    _unique_cache: Optional[List[Optional[np.ndarray]]] = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def num_tables(self) -> int:
        """Number of embedding tables addressed by this batch."""
        return self.sparse_ids.shape[0]

    def table_ids(self, table: int) -> np.ndarray:
        """Flattened lookup IDs for one table (``batch * lookups`` IDs)."""
        return self.sparse_ids[table].reshape(-1)

    def unique_table_ids(self, table: int) -> np.ndarray:
        """Sorted unique lookup IDs for one table (cached after first use).

        Callers must treat the returned array as immutable — it is shared
        by every consumer of this batch.
        """
        cache = self._unique_cache
        if cache is None:
            cache = [None] * self.num_tables
            object.__setattr__(self, "_unique_cache", cache)
        ids = cache[table]
        if ids is None:
            ids = cache[table] = _sorted_unique(self.table_ids(table))
        return ids


class TraceSource:
    """Protocol every batch source implements: random access + streaming.

    Required: ``__len__`` and :meth:`batch`.  The streaming surface
    (:meth:`iter_chunks`, :meth:`reset`, ``__iter__``) has default
    implementations in terms of random access, so deterministic sources
    (synthetic datasets, scenario engines, trace archives) get chunk-wise
    emission for free; stateful sources (file readers) override
    :meth:`reset` to rewind.

    The contract streaming consumers rely on — and the equivalence tests
    pin — is that ``iter_chunks`` emits exactly the batches ``batch(0..n)``
    would return, bit-identically, including after ``reset()`` and across
    re-iteration.
    """

    config: ModelConfig

    def __len__(self) -> int:
        raise NotImplementedError

    def batch(self, index: int) -> MiniBatch:
        """Materialise batch ``index``."""
        raise NotImplementedError

    def reset(self) -> None:
        """Rewind any internal cursor; a no-op for random-access sources."""

    def iter_chunks(
        self, chunk_batches: int = DEFAULT_CHUNK_BATCHES
    ) -> Iterator[List[MiniBatch]]:
        """Yield the trace as consecutive lists of ``chunk_batches`` batches.

        Constant-memory by construction: each chunk is materialised only
        when requested and nothing is retained between chunks.
        """
        if chunk_batches < 1:
            raise TraceSourceError(
                f"chunk_batches must be >= 1, got {chunk_batches}"
            )
        total = len(self)
        for start in range(0, total, chunk_batches):
            yield [
                self.batch(i) for i in range(start, min(start + chunk_batches, total))
            ]

    def __getitem__(self, index: int) -> MiniBatch:
        return self.batch(index)

    def __iter__(self) -> Iterator[MiniBatch]:
        for chunk in self.iter_chunks():
            yield from chunk


@dataclass(frozen=True)
class SyntheticDataset(TraceSource):
    """Deterministic, randomly-accessible synthetic training dataset.

    Args:
        config: Model/workload geometry (tables, batch, lookups, rows).
        distributions: Per-table access distribution.  A single distribution
            may be shared across tables.
        seed: Base seed; batch ``i`` is generated from ``(seed, i)`` so that
            future batches can be inspected without consuming the stream.
        num_batches: Trace length.
        with_dense: Also generate dense features and labels (needed for
            functional training; timing experiments skip them).
    """

    config: ModelConfig
    distributions: Sequence[AccessDistribution]
    seed: int = 0
    num_batches: int = 64
    with_dense: bool = False

    def __post_init__(self) -> None:
        if len(self.distributions) not in (1, self.config.num_tables):
            raise TraceSourceError(
                "distributions must have length 1 or num_tables "
                f"({self.config.num_tables}), got {len(self.distributions)}"
            )
        if self.num_batches < 1:
            raise TraceSourceError(f"num_batches must be >= 1, got {self.num_batches}")
        for dist in self.distributions:
            if dist.num_rows != self.config.rows_per_table:
                raise TraceSourceError(
                    "distribution row count "
                    f"({dist.num_rows}) must match rows_per_table "
                    f"({self.config.rows_per_table})"
                )

    def __len__(self) -> int:
        return self.num_batches

    def _distribution_for(self, table: int) -> AccessDistribution:
        if len(self.distributions) == 1:
            return self.distributions[0]
        return self.distributions[table]

    def batch(self, index: int) -> MiniBatch:
        """Materialise batch ``index`` deterministically."""
        if not 0 <= index < self.num_batches:
            raise IndexError(
                f"batch index {index} out of range [0, {self.num_batches})"
            )
        cfg = self.config
        rng = np.random.default_rng((self.seed, index))
        per_table = cfg.batch_size * cfg.lookups_per_table
        ids = np.empty(
            (cfg.num_tables, cfg.batch_size, cfg.lookups_per_table), dtype=np.int64
        )
        for table in range(cfg.num_tables):
            ids[table] = self._distribution_for(table).sample(per_table, rng).reshape(
                cfg.batch_size, cfg.lookups_per_table
            )
        dense = None
        labels = None
        if self.with_dense:
            dense = rng.standard_normal(
                (cfg.batch_size, cfg.num_dense_features)
            ).astype(np.float32)
            labels = (rng.random(cfg.batch_size) < 0.5).astype(np.float32)
        return MiniBatch(index=index, sparse_ids=ids, dense=dense, labels=labels)


class MaterialisedDataset(TraceSource):
    """A trace prefix held in memory.

    Experiments run several systems over the *same* batches; materialising
    the prefix once avoids regenerating synthetic batches per system, and —
    because :meth:`MiniBatch.unique_table_ids` caches on the batch object —
    the per-table sorted-unique ID sets are likewise computed once and
    shared by every system that replays the trace.

    Sits on top of any :class:`TraceSource` — the batches are drawn through
    the source's chunked streaming interface (one-shot materialisation is
    just "keep every chunk"), so anything that can stream can also be
    pinned in memory when an experiment replays it many times.
    """

    def __init__(self, dataset: TraceSource, num_batches: Optional[int] = None):
        total = len(dataset)
        num_batches = total if num_batches is None else num_batches
        if not 0 < num_batches <= total:
            raise TraceSourceError(
                f"num_batches must be in [1, {total}], got {num_batches}"
            )
        self.config = dataset.config
        dataset.reset()
        batches: List[MiniBatch] = []
        # Capping the chunk size at the requested prefix keeps short
        # materialisations from generating (and discarding) a full
        # default-sized chunk.
        chunk_batches = min(DEFAULT_CHUNK_BATCHES, num_batches)
        for chunk in dataset.iter_chunks(chunk_batches=chunk_batches):
            remaining = num_batches - len(batches)
            batches.extend(chunk[:remaining])
            if len(batches) >= num_batches:
                break
        self._batches = batches
        self._precompute_uniques()

    def _precompute_uniques(self) -> None:
        # The trace is known ahead of time — the paper's core premise — so
        # the per-table sorted-unique ID sets are dataset *preprocessing*:
        # computing them here keeps them out of every consumer's steady
        # state (the pipeline reads each set up to three times per run and
        # every system replaying the trace reads them again).
        for batch in self._batches:
            for table in range(batch.num_tables):
                batch.unique_table_ids(table)

    @classmethod
    def from_batches(
        cls, config: ModelConfig, batches: Sequence[MiniBatch]
    ) -> "MaterialisedDataset":
        """Wrap already-materialised batches (e.g. loaded from a trace file)."""
        self = cls.__new__(cls)
        self.config = config
        self._batches = list(batches)
        if not self._batches:
            raise TraceSourceError("cannot materialise an empty batch list")
        self._precompute_uniques()
        return self

    def __len__(self) -> int:
        return len(self._batches)

    def batch(self, index: int) -> MiniBatch:
        """Return the materialised batch at ``index``."""
        return self._batches[index]

    def __getitem__(self, index: int) -> MiniBatch:
        return self._batches[index]

    def __iter__(self) -> Iterator[MiniBatch]:
        return iter(self._batches)


def make_dataset(
    config: ModelConfig,
    locality: str,
    seed: int = 0,
    num_batches: int = 64,
    with_dense: bool = False,
) -> SyntheticDataset:
    """Build a benchmark dataset for one of the paper's locality classes.

    Args:
        config: Model/workload geometry.
        locality: ``"random"`` / ``"low"`` / ``"medium"`` / ``"high"``.
        seed: Deterministic base seed.
        num_batches: Trace length.
        with_dense: Include dense features and labels.
    """
    distribution = locality_distribution(locality, config.rows_per_table)
    return SyntheticDataset(
        config=config,
        distributions=(distribution,),
        seed=seed,
        num_batches=num_batches,
        with_dense=with_dense,
    )

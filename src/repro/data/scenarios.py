"""Composable time-varying workload scenarios.

The paper's argument — that a HitMap-driven GPU scratchpad can run ahead of
training because embedding accesses are highly skewed *and temporally
stable* — is exactly as strong as the workloads it is tested on.  This
module grows the repo's workload vocabulary from two stationary
distributions to a composable engine: a :class:`ScenarioSpec` is a small,
picklable, hashable description of a *popularity process over time*, and
:func:`build_scenario` turns it (plus model geometry and a seed) into a
deterministic, randomly-accessible, chunk-streamable :class:`ScenarioDataset`.

Processes (all optional, all composable):

* **Drift** — the hot set rotates through the row space at a constant rate
  (rows per batch), modelling slow popularity turnover.
* **Churn** — each hot rank is re-homed to a fresh random row on its own
  staggered schedule, so a fixed fraction of the hot set changes identity
  per period without any global resets.
* **Flash bursts** — periodically, a tiny set of rows grabs a fixed share
  of all traffic for a few batches (breaking-news / flash-sale spikes).
* **Diurnal cycle** — the Zipf exponent oscillates between a low and high
  locality over a configurable period (daytime browse vs nighttime tail).
* **Cross-table correlation** — tables share a fraction of their underlying
  uniform draws, so the same "user intent" touches hot rows in several
  tables at once.
* **Multi-epoch reshuffle** — the trace replays one epoch's batches in a
  per-epoch deterministic shuffle, the access pattern of real multi-epoch
  training jobs.

Determinism contract: batch ``i`` is a pure function of
``(spec, config, seed, i)``.  Time-varying state is never carried between
batches — phases, permutations and burst sets are all re-derived from the
batch index — so random access, chunked streaming and sweep workers that
regenerate from the spec all see bit-identical traces.

A :class:`ScenarioSpec` with no processes enabled is *bit-identical* to the
stationary :class:`~repro.data.trace.SyntheticDataset` path, which keeps
every existing figure reproducible under ``scenario=None`` semantics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

import numpy as np

from repro.data.datasets import LOCALITY_CLASSES, locality_distribution
from repro.data.distributions import AccessDistribution, ZipfDistribution
from repro.data.trace import MiniBatch, SyntheticDataset, TraceSource
from repro.model.config import ModelConfig


class ScenarioSpecError(ValueError):
    """A scenario specification with out-of-range or inconsistent fields."""


# ----------------------------------------------------------------------
# Process specs — small frozen dataclasses, picklable and hashable, so a
# sweep point can ship them to worker processes instead of whole traces.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DriftSpec:
    """Rotate the hot set through the row space.

    Attributes:
        rate: Rows the popularity ranking shifts per batch.  Rank ``r``
            maps to row ``(r + floor(rate * i)) % num_rows`` at batch
            ``i``, so after ``num_rows / rate`` batches every row has had
            its turn at the head.
    """

    rate: float = 1.0

    def __post_init__(self) -> None:
        if not self.rate > 0:
            raise ScenarioSpecError(f"drift rate must be > 0, got {self.rate}")


@dataclass(frozen=True)
class ChurnSpec:
    """Staggered re-homing of hot ranks.

    Attributes:
        hot_fraction: Fraction of the table counted as "hot" (churned).
        period: Batches between re-homings *of one rank*.  Each hot rank
            re-rolls its target row every ``period`` batches on its own
            offset, so per batch roughly ``hot_size / period`` hot rows
            change identity — smooth churn, no synchronized resets.
    """

    hot_fraction: float = 0.02
    period: int = 64

    def __post_init__(self) -> None:
        if not 0.0 < self.hot_fraction <= 1.0:
            raise ScenarioSpecError(
                f"hot_fraction must be in (0, 1], got {self.hot_fraction}"
            )
        if self.period < 1:
            raise ScenarioSpecError(
                f"churn period must be >= 1, got {self.period}"
            )


@dataclass(frozen=True)
class BurstSpec:
    """Flash bursts: a small row set grabs a share of all traffic.

    Attributes:
        period: Batches between burst onsets.
        duration: Batches each burst lasts (< period).
        share: Fraction of lookups redirected to the burst set while a
            burst is live.
        rows: Size of each burst's row set (drawn fresh per burst).
    """

    period: int = 128
    duration: int = 8
    share: float = 0.5
    rows: int = 16

    def __post_init__(self) -> None:
        if self.period < 1:
            raise ScenarioSpecError(
                f"burst period must be >= 1, got {self.period}"
            )
        if not 0 < self.duration <= self.period:
            raise ScenarioSpecError(
                "burst duration must be in [1, period], got "
                f"{self.duration} (period {self.period})"
            )
        if not 0.0 < self.share <= 1.0:
            raise ScenarioSpecError(
                f"burst share must be in (0, 1], got {self.share}"
            )
        if self.rows < 1:
            raise ScenarioSpecError(
                f"burst rows must be >= 1, got {self.rows}"
            )


@dataclass(frozen=True)
class DiurnalSpec:
    """Sinusoidal oscillation of the Zipf exponent.

    Applies to Zipf bases; over the uniform ("random") base there is no
    skew to modulate and the cycle is a no-op.

    Attributes:
        low: Trough exponent (least skew).
        high: Peak exponent (most skew).
        period: Batches per full cycle.
    """

    low: float = 0.4
    high: float = 0.9
    period: int = 256

    def __post_init__(self) -> None:
        if not 0.0 < self.low <= self.high < 1.0:
            raise ScenarioSpecError(
                "diurnal exponents must satisfy 0 < low <= high < 1, got "
                f"low={self.low} high={self.high}"
            )
        if self.period < 2:
            raise ScenarioSpecError(
                f"diurnal period must be >= 2, got {self.period}"
            )

    def exponent_at(self, batch_index: int) -> float:
        """Exponent of the given batch (cosine ramp, peak at phase 0)."""
        mid = 0.5 * (self.high + self.low)
        amplitude = 0.5 * (self.high - self.low)
        phase = 2.0 * math.pi * (batch_index % self.period) / self.period
        return mid + amplitude * math.cos(phase)


@dataclass(frozen=True)
class CorrelationSpec:
    """Cross-table correlation of lookup draws.

    Attributes:
        rho: Probability a lookup position reuses the batch's shared
            uniform draw instead of a table-private one.  With identical
            per-table distributions, ``rho`` is (up to rank collisions)
            the fraction of positions where all tables touch the same row.
    """

    rho: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 <= self.rho <= 1.0:
            raise ScenarioSpecError(
                f"correlation rho must be in [0, 1], got {self.rho}"
            )


@dataclass(frozen=True)
class ReshuffleSpec:
    """Multi-epoch training: one epoch of content, reshuffled per epoch.

    Attributes:
        epoch_batches: Content batches per epoch.  Batch ``i`` replays
            content batch ``perm_e[i % epoch_batches]`` where ``perm_e`` is
            a deterministic permutation drawn per epoch ``e = i // epoch_batches``
            (epoch 0 is unshuffled: the canonical content order).
    """

    epoch_batches: int = 64

    def __post_init__(self) -> None:
        if self.epoch_batches < 1:
            raise ScenarioSpecError(
                f"epoch_batches must be >= 1, got {self.epoch_batches}"
            )


@dataclass(frozen=True)
class ScenarioSpec:
    """A composable time-varying workload: base skew + optional processes.

    The spec deliberately carries no arrays and no model geometry — it is a
    few dozen bytes, hashable (usable as a cache key) and picklable (ships
    to sweep workers), and combines with a :class:`ModelConfig` and seed
    only at :func:`build_scenario` time.
    """

    locality: str = "medium"
    drift: Optional[DriftSpec] = None
    churn: Optional[ChurnSpec] = None
    burst: Optional[BurstSpec] = None
    diurnal: Optional[DiurnalSpec] = None
    correlation: Optional[CorrelationSpec] = None
    reshuffle: Optional[ReshuffleSpec] = None

    def __post_init__(self) -> None:
        if self.locality not in LOCALITY_CLASSES:
            raise ScenarioSpecError(
                f"unknown locality {self.locality!r}; "
                f"expected one of {LOCALITY_CLASSES}"
            )

    @property
    def is_stationary(self) -> bool:
        """True iff no time-varying process is enabled."""
        return all(
            p is None
            for p in (
                self.drift,
                self.churn,
                self.burst,
                self.diurnal,
                self.correlation,
                self.reshuffle,
            )
        )

    def with_locality(self, locality: str) -> "ScenarioSpec":
        """The same processes over a different base locality class."""
        return replace(self, locality=locality)


#: Named scenario presets — the scenario matrix experiments sweep over.
SCENARIO_PRESETS: Dict[str, ScenarioSpec] = {
    "stationary": ScenarioSpec(),
    "slow-drift": ScenarioSpec(drift=DriftSpec(rate=1.0)),
    "fast-drift": ScenarioSpec(drift=DriftSpec(rate=64.0)),
    "churn": ScenarioSpec(churn=ChurnSpec(hot_fraction=0.02, period=64)),
    "flash": ScenarioSpec(burst=BurstSpec(period=96, duration=8, share=0.5)),
    "diurnal": ScenarioSpec(diurnal=DiurnalSpec(low=0.4, high=0.9, period=192)),
    "correlated": ScenarioSpec(correlation=CorrelationSpec(rho=0.5)),
    "multi-epoch": ScenarioSpec(reshuffle=ReshuffleSpec(epoch_batches=48)),
    "kitchen-sink": ScenarioSpec(
        drift=DriftSpec(rate=4.0),
        burst=BurstSpec(period=96, duration=8, share=0.3),
        correlation=CorrelationSpec(rho=0.25),
    ),
}


def scenario_by_name(name: str) -> ScenarioSpec:
    """Look up a preset scenario (see :data:`SCENARIO_PRESETS`)."""
    try:
        return SCENARIO_PRESETS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIO_PRESETS))
        raise ScenarioSpecError(
            f"unknown scenario {name!r}; expected one of: {known}"
        ) from None


# ----------------------------------------------------------------------
# Deterministic integer mixing — the O(1)-random-access workhorse
# (shared with the TSV ingestion path; see repro.data.trace.mix64)
# ----------------------------------------------------------------------
from repro.data.trace import mix64 as _mix64  # noqa: E402

#: Integer salts namespacing the per-purpose seed sequences.  Batch content
#: uses the length-2 tuple ``(seed, index)`` (the legacy SyntheticDataset
#: key); process state uses length-3 tuples so the streams never collide.
_SALT_RESHUFFLE = 0x5E5F
_SALT_BURST = 0xB1257


class ScenarioDataset(TraceSource):
    """Deterministic trace source realising a :class:`ScenarioSpec`.

    Batch ``i`` is generated from ``(seed, i)`` exactly like
    :class:`SyntheticDataset` — same RNG construction, same draw order —
    with the scenario's processes applied as pure functions of the batch
    index.  A stationary spec therefore reproduces the legacy synthetic
    trace bit-for-bit.
    """

    def __init__(
        self,
        config: ModelConfig,
        spec: ScenarioSpec,
        seed: int = 0,
        num_batches: int = 64,
        with_dense: bool = False,
    ) -> None:
        if num_batches < 1:
            raise ScenarioSpecError(f"num_batches must be >= 1, got {num_batches}")
        self.config = config
        self.spec = spec
        self.seed = seed
        self.num_batches = num_batches
        self.with_dense = with_dense
        self._base = locality_distribution(spec.locality, config.rows_per_table)
        self._perm_cache: Optional[Tuple[int, np.ndarray]] = None
        # The stationary fast path delegates to SyntheticDataset so the
        # "no processes" case shares code (and bit-identity is structural,
        # not coincidental).
        self._stationary: Optional[SyntheticDataset] = None
        if spec.is_stationary:
            self._stationary = SyntheticDataset(
                config=config,
                distributions=(self._base,),
                seed=seed,
                num_batches=num_batches,
                with_dense=with_dense,
            )

    def __len__(self) -> int:
        return self.num_batches

    # ------------------------------------------------------------------
    # Index-addressable process state
    # ------------------------------------------------------------------
    def _content_index(self, index: int) -> int:
        """Reshuffle: which content batch plays at position ``index``."""
        spec = self.spec.reshuffle
        if spec is None:
            return index
        epoch, offset = divmod(index, spec.epoch_batches)
        if epoch == 0:
            return offset
        # One-entry memo: the permutation is a pure function of
        # (seed, epoch), and accesses cluster within an epoch — rebuilding
        # it per batch would make reshuffle streaming O(n * epoch_batches).
        cached = self._perm_cache
        if cached is None or cached[0] != epoch:
            perm_rng = np.random.default_rng(
                (self.seed, _SALT_RESHUFFLE, epoch)
            )
            cached = (epoch, perm_rng.permutation(spec.epoch_batches))
            self._perm_cache = cached
        return int(cached[1][offset])

    def _distribution_at(self, content_index: int) -> AccessDistribution:
        """Base distribution for one batch (diurnal modulates the exponent).

        A diurnal cycle modulates the Zipf exponent, so over the uniform
        ("random") base — which has no skew to modulate — it is a no-op.
        That keeps whole-figure sweeps, which iterate every locality class
        including "random", runnable under any scenario.
        """
        spec = self.spec.diurnal
        if spec is None or not isinstance(self._base, ZipfDistribution):
            return self._base
        return ZipfDistribution(
            num_rows=self.config.rows_per_table,
            exponent=spec.exponent_at(content_index),
        )

    def _burst_rows(self, content_index: int) -> Optional[np.ndarray]:
        """Burst row set if a burst is live at this batch, else ``None``."""
        spec = self.spec.burst
        if spec is None:
            return None
        occurrence, offset = divmod(content_index, spec.period)
        if offset >= spec.duration:
            return None
        burst_rng = np.random.default_rng((self.seed, _SALT_BURST, occurrence))
        return burst_rng.integers(
            0, self.config.rows_per_table, size=spec.rows, dtype=np.int64
        )

    def _map_ranks_to_rows(
        self, ranks: np.ndarray, table: int, content_index: int
    ) -> np.ndarray:
        """Apply churn re-homing and drift rotation to popularity ranks."""
        num_rows = self.config.rows_per_table
        rows = ranks
        churn = self.spec.churn
        if churn is not None:
            hot_size = max(1, int(churn.hot_fraction * num_rows))
            hot = ranks < hot_size
            if hot.any():
                hot_ranks = ranks[hot]
                # Each rank re-rolls every `period` batches on its own
                # stagger, so churn is smooth rather than synchronized.
                stagger = _mix64(hot_ranks, self.seed, table, 0xC) % np.uint64(
                    churn.period
                )
                generation = (
                    np.uint64(content_index) + stagger
                ) // np.uint64(churn.period)
                # Fold (rank, generation) into one value per lookup; ranks
                # stay below the hot set size, far under the 2**32 shift.
                keyed = hot_ranks.astype(np.uint64) + (
                    generation << np.uint64(32)
                )
                rehomed = _mix64(keyed, self.seed, table, 0xA) % np.uint64(
                    num_rows
                )
                rows = rows.copy()
                rows[hot] = rehomed.astype(np.int64)
        drift = self.spec.drift
        if drift is not None:
            shift = int(drift.rate * content_index) % num_rows
            if shift:
                rows = (rows + shift) % num_rows
        return rows

    def _sample_table(
        self,
        table: int,
        content_index: int,
        dist: AccessDistribution,
        burst_rows: Optional[np.ndarray],
        rng: np.random.Generator,
        shared: Optional[Tuple[np.ndarray, np.ndarray]],
        n: int,
    ) -> np.ndarray:
        """Draw one table's flat lookup IDs for one batch.

        ``dist`` and ``burst_rows`` are table-independent per-batch state,
        computed once in :meth:`batch` and shared across tables.
        """
        if shared is not None:
            # The correlated-position mask is drawn once per batch, so a
            # position either shares its uniform across *all* tables or
            # none — rho is directly the all-tables-coupled fraction.
            shared_u, use_shared = shared
            private_u = rng.random(n)
            u = np.where(use_shared, shared_u, private_u)
            ranks = dist.rank_of_uniform(u)
        else:
            ranks = dist.sample(n, rng)
        if burst_rows is not None:
            spec = self.spec.burst
            redirected = rng.random(n) < spec.share
            picks = rng.integers(0, burst_rows.size, size=n)
            rows = self._map_ranks_to_rows(ranks, table, content_index)
            return np.where(redirected, burst_rows[picks], rows)
        return self._map_ranks_to_rows(ranks, table, content_index)

    # ------------------------------------------------------------------
    # TraceSource surface
    # ------------------------------------------------------------------
    def batch(self, index: int) -> MiniBatch:
        if not 0 <= index < self.num_batches:
            raise IndexError(
                f"batch index {index} out of range [0, {self.num_batches})"
            )
        if self._stationary is not None:
            return self._stationary.batch(index)
        cfg = self.config
        content_index = self._content_index(index)
        rng = np.random.default_rng((self.seed, content_index))
        n = cfg.batch_size * cfg.lookups_per_table
        shared = None
        if self.spec.correlation is not None:
            shared_u = rng.random(n)
            use_shared = rng.random(n) < self.spec.correlation.rho
            shared = (shared_u, use_shared)
        dist = self._distribution_at(content_index)
        burst_rows = self._burst_rows(content_index)
        ids = np.empty(
            (cfg.num_tables, cfg.batch_size, cfg.lookups_per_table),
            dtype=np.int64,
        )
        for table in range(cfg.num_tables):
            ids[table] = self._sample_table(
                table, content_index, dist, burst_rows, rng, shared, n
            ).reshape(cfg.batch_size, cfg.lookups_per_table)
        dense = None
        labels = None
        if self.with_dense:
            dense = rng.standard_normal(
                (cfg.batch_size, cfg.num_dense_features)
            ).astype(np.float32)
            labels = (rng.random(cfg.batch_size) < 0.5).astype(np.float32)
        return MiniBatch(index=index, sparse_ids=ids, dense=dense, labels=labels)


def build_scenario(
    config: ModelConfig,
    spec: ScenarioSpec,
    seed: int = 0,
    num_batches: int = 64,
    with_dense: bool = False,
) -> ScenarioDataset:
    """Instantiate the trace source a :class:`ScenarioSpec` describes."""
    return ScenarioDataset(
        config=config,
        spec=spec,
        seed=seed,
        num_batches=num_batches,
        with_dense=with_dense,
    )


# ----------------------------------------------------------------------
# Criteo-style TSV ingestion moved to repro.data.tsv (vectorised engine);
# re-exported here for backwards compatibility.
# ----------------------------------------------------------------------
from repro.data.tsv import TsvTraceSource  # noqa: E402,F401

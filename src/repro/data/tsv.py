"""Criteo-style TSV ingestion with vectorised parsing and bulk hashing.

Each line of a Criteo-layout file is one sample::

    label <TAB> dense_1 ... dense_13 <TAB> cat_1 ... cat_26

Categorical tokens are hashed into ``rows_per_table`` buckets and
consecutive groups of ``lookups_per_table`` categorical columns feed
consecutive tables, so a file with at least ``num_tables *
lookups_per_table`` categorical columns drives any model geometry.

Token hashing is a **chunked SplitMix64 word hash**: the token's bytes
are read as little-endian 64-bit words (zero-padded tail), each word is
folded into the running state with one SplitMix64 avalanche round (the
length seeds the state, so zero-tailed tokens of different lengths stay
distinct), and the final state passes through the repo's
:func:`repro.data.trace.mix64` avalanche salted per table.  The whole
computation is pure integer arithmetic — stable across processes, Python
versions and numpy versions, which is the determinism contract file-backed
traces must honour (builtin ``hash()`` is interpreter-salted, and a
crc32-of-formatted-string hash costs a Python round-trip per token).

Two engines produce bit-identical IDs:

* ``engine="numpy"`` (the default) tokenises and hashes **whole blocks of
  batches at a time**: one ``np.frombuffer`` pass finds the field
  separators, one unaligned-word gather + masked fold evaluates every
  token's hash at once, and a single table-salted :func:`mix64` pass
  finishes the bucket IDs.  This is the >=20x fast path the ingest
  benchmark records.
* ``engine="python"`` is the per-token reference loop (the shape of the
  pre-vectorisation implementation), kept as the equivalence oracle.

For repeated experiments, compile the file once with
:func:`repro.data.io.compile_trace` — the compiled form is memmapped with
O(1) random access and skips parsing entirely.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

import numpy as np

from repro.errors import TsvFormatError
from repro.data.trace import MiniBatch, TraceSource, mix64_scalar
from repro.model.config import ModelConfig

#: Salt namespacing the token-hash stream (folded through mix64 together
#: with the table index, so tables hash independently).
TOKEN_HASH_SALT = 0x75

_U64 = 0xFFFFFFFFFFFFFFFF
_GOLDEN = 0x9E3779B97F4A7C15
_MIX_1 = 0xBF58476D1CE4E5B9
_MIX_2 = 0x94D049BB133111EB

#: Mask selecting the first ``rem`` bytes of a little-endian 8-byte word.
_WORD_MASKS = np.array(
    [(1 << (8 * i)) - 1 for i in range(8)] + [_U64], dtype=np.uint64
)

#: Zero padding appended to each parse blob so the final token's 8-byte
#: word windows stay in bounds without per-element clamping.
_BLOB_PAD = 8


def _fold_round_scalar(x: int) -> int:
    """One SplitMix64 avalanche round (scalar twin of :func:`_fold_round`)."""
    x = (x + _GOLDEN) & _U64
    x = ((x ^ (x >> 30)) * _MIX_1) & _U64
    x = ((x ^ (x >> 27)) * _MIX_2) & _U64
    return x ^ (x >> 31)


def _fold_round(x: np.ndarray) -> np.ndarray:
    """One SplitMix64 avalanche round over a uint64 array."""
    x = x + np.uint64(_GOLDEN)
    x = (x ^ (x >> np.uint64(30))) * np.uint64(_MIX_1)
    x = (x ^ (x >> np.uint64(27))) * np.uint64(_MIX_2)
    return x ^ (x >> np.uint64(31))


def hash_token(token: bytes, table: int, num_rows: int) -> int:
    """Bucket ID of one categorical token (scalar reference path).

    Bit-identical to the vectorised bulk hash: the token length seeds the
    state, each little-endian 8-byte word (zero-padded tail) folds in
    with one avalanche round, and a table-salted SplitMix64 finish maps
    into ``num_rows`` buckets.
    """
    h = len(token)
    for i in range(0, len(token), 8):
        h = _fold_round_scalar(h ^ int.from_bytes(token[i:i + 8], "little"))
    return mix64_scalar(h, table, TOKEN_HASH_SALT) % num_rows


def _bulk_token_hashes(
    blob: bytes, starts: np.ndarray, lengths: np.ndarray
) -> np.ndarray:
    """Raw 64-bit hashes of many tokens in one vectorised pass.

    Args:
        blob: The text the tokens live in, with at least :data:`_BLOB_PAD`
            trailing pad bytes.
        starts: Flat int array of token start offsets into ``blob``.
        lengths: Token byte lengths, parallel to ``starts``.

    Returns:
        uint64 array of raw (pre-avalanche) hashes, parallel to
        ``starts`` — bit-identical to the :func:`hash_token` state.

    An ``as_strided`` view with 1-byte strides turns every blob offset
    into a little-endian uint64 load, so one gather + mask fetches each
    token's next 8 bytes for the fold; real Criteo tokens fit one word,
    so the common case is a single masked gather and one avalanche round
    over the whole block.
    """
    h = lengths.astype(np.uint64)
    maxlen = int(lengths.max(initial=0))
    if maxlen == 0:
        return h
    aligned = np.frombuffer(blob, dtype="<u8", count=len(blob) // 8)
    words = np.lib.stride_tricks.as_strided(
        aligned, shape=(len(blob) - 7,), strides=(1,)
    )
    starts = starts.astype(np.int64, copy=False)
    limit = words.shape[0] - 1
    for j in range(0, maxlen, 8):
        # j == 0 is always in bounds (a token's first word fits inside
        # the blob pad); later words can point past the view for tokens
        # *already exhausted* at this step — clamp them to any valid
        # offset, their zero mask discards the garbage load.
        index = starts if j == 0 else np.minimum(starts + j, limit)
        rem = np.clip(lengths - j, 0, 8)
        word = words[index] & _WORD_MASKS[rem]
        folded = _fold_round(h ^ word)
        h = np.where(lengths > j, folded, h)
    return h


class TsvTraceSource(TraceSource):
    """Stream mini-batches from a Criteo-style TSV file.

    Streaming-first: ``iter_chunks``/``__iter__`` read the file forward and
    never hold more than one chunk; random access (``batch(i)``) is
    supported for the pipeline's bounded lookahead by reading forward from
    the current cursor (and rewinding via :meth:`reset` when asked to seek
    backwards past the :data:`WINDOW_BATCHES`-batch retention window), so
    access patterns that move mostly forward — exactly what the 6-stage
    pipeline issues — stay O(file size) overall.

    Args:
        path: TSV file path.
        config: Model geometry the parsed batches must realise.
        num_dense_columns: Dense columns present **in the file** (13 for
            Criteo).  With ``with_dense`` this must equal
            ``config.num_dense_features`` unless ``allow_dense_pad`` opts
            into truncate/zero-fill mapping.
        with_dense: Also parse labels + dense features.
        max_batches: Cap the trace length.  The construction-time counting
            pass stops as soon as ``max_batches * batch_size`` valid
            samples are seen instead of scanning the whole file.
        engine: ``"numpy"`` (vectorised, default) or ``"python"`` (the
            per-token reference loop).  Both produce bit-identical IDs.
        allow_dense_pad: Documented opt-out for dense-width mismatches:
            extra file columns are truncated, missing ones zero-filled.
    """

    #: Retained parsed batches behind the cursor.  Must cover the deepest
    #: lookahead any builtin system issues (pipeline depth + future
    #: window) so a pipeline run never seeks backwards past the window.
    WINDOW_BATCHES = 16

    #: Lines the numpy engine tokenises per vectorised pass.  Hashing one
    #: batch at a time leaves the bulk hash dominated by fixed numpy call
    #: overhead; a block of several batches amortises it (the parsed
    #: batches queue up for the forward cursor, bounded by this constant).
    PARSE_BLOCK_LINES = 8192

    def __init__(
        self,
        path,
        config: ModelConfig,
        num_dense_columns: int = 13,
        with_dense: bool = False,
        max_batches: Optional[int] = None,
        engine: str = "numpy",
        allow_dense_pad: bool = False,
    ) -> None:
        if engine not in ("numpy", "python"):
            raise TsvFormatError(
                f"unknown TSV engine {engine!r}; expected 'numpy' or 'python'"
            )
        if num_dense_columns < 0:
            raise TsvFormatError(
                f"num_dense_columns must be >= 0, got {num_dense_columns}"
            )
        if with_dense and not allow_dense_pad and (
            num_dense_columns != config.num_dense_features
        ):
            raise TsvFormatError(
                f"TSV file carries {num_dense_columns} dense columns but the "
                f"model expects {config.num_dense_features} dense features; "
                "silent truncation/zero-fill is almost always a mis-mapped "
                "geometry — pass allow_dense_pad=True to opt into it"
            )
        self.config = config
        self.path = str(path)
        self.num_dense_columns = num_dense_columns
        self.with_dense = with_dense
        self.engine = engine
        self.allow_dense_pad = allow_dense_pad
        self._columns_needed = config.num_tables * config.lookups_per_table
        # Counting pass: sample count determines the trace length.  With
        # max_batches the scan stops as soon as enough valid samples are
        # seen (plus the width validation of the first line) instead of
        # reading — and counting — every remaining line of the file.
        needed = None if max_batches is None else max_batches * config.batch_size
        samples = 0
        with self._open() as fh:
            for line in fh:
                if not line.strip():
                    continue
                if samples == 0:
                    self._validate_line(line)
                samples += 1
                if needed is not None and samples >= needed:
                    break
        self._num_batches = samples // config.batch_size
        if max_batches is not None:
            self._num_batches = min(self._num_batches, max_batches)
        if self._num_batches < 1:
            raise TsvFormatError(
                f"TSV file holds {samples} samples — fewer than one "
                f"batch of {config.batch_size}"
            )
        self._window: Dict[int, MiniBatch] = {}
        self._next_to_parse = 0
        self._ready: List[MiniBatch] = []
        self._line_queue: List[bytes] = []
        self._tail = b""
        self._fh = None

    # ------------------------------------------------------------------
    # File plumbing (overridable: tests hook _open to count reads)
    # ------------------------------------------------------------------
    def _open(self):
        return open(self.path, "rb")

    def __len__(self) -> int:
        return self._num_batches

    def reset(self) -> None:
        """Rewind to the start of the file and drop the parse window."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        self._window.clear()
        self._ready.clear()
        self._line_queue.clear()
        self._tail = b""
        self._next_to_parse = 0

    def close(self) -> None:
        """Release the underlying file handle (reusable after: any later
        access reopens from the start)."""
        self.reset()

    def __del__(self) -> None:  # pragma: no cover - GC timing
        try:
            self.close()
        except Exception:
            pass

    def _validate_line(self, line: bytes) -> None:
        fields = line.rstrip(b"\r\n").split(b"\t")
        needed = 1 + self.num_dense_columns + self._columns_needed
        if len(fields) < needed:
            raise TsvFormatError(
                f"TSV line has {len(fields)} fields; need >= {needed} "
                f"(1 label + {self.num_dense_columns} dense + "
                f"{self._columns_needed} categorical)"
            )

    # ------------------------------------------------------------------
    # Parsing
    # ------------------------------------------------------------------
    #: Bytes per bulk read of the parse cursor.
    READ_CHUNK_BYTES = 1 << 20

    def _read_lines(self, count: int) -> List[bytes]:
        """The next ``count`` valid (non-blank) lines of the file.

        Reads the file in megabyte chunks and splits lines in bulk — a
        per-line ``readline`` loop costs more than the vectorised hash it
        feeds.  Surplus lines of a chunk queue up for the next call.
        """
        if self._fh is None:
            self._fh = self._open()
        queue = self._line_queue
        while len(queue) < count:
            chunk = self._fh.read(self.READ_CHUNK_BYTES)
            if not chunk:
                if self._tail.strip():
                    queue.append(self._tail.rstrip(b"\r"))
                    self._tail = b""
                    continue
                raise EOFError(
                    f"TSV exhausted at batch {self._next_to_parse}"
                )
            data = self._tail + chunk
            parts = data.split(b"\n")
            self._tail = parts.pop()
            if b"\r" in data:
                queue.extend(
                    line[:-1] if line.endswith(b"\r") else line
                    for line in parts
                    if line.strip()
                )
            else:
                # Blank/whitespace-only lines are skipped (same rule as
                # the counting pass); real lines always hold tabs, so the
                # strip() filter stays off the fast path's critical ops.
                queue.extend(line for line in parts if line and line.strip())
        taken = queue[:count]
        del queue[:count]
        return taken

    def _parse_ids_numpy(
        self, lines: List[bytes], first_sample: int
    ) -> np.ndarray:
        """Hash every categorical token of a block of lines in bulk."""
        cfg = self.config
        n = len(lines)
        blob = b"\n".join(lines) + b"\n" + b"\x00" * _BLOB_PAD
        buf = np.frombuffer(blob, dtype=np.uint8)
        # Newlines act as each line's final separator, so field k of line l
        # always ends at separator index base[l] + k.  Tab (9) and newline
        # (10) are adjacent codes, so one wraparound compare finds both.
        seps = np.flatnonzero((buf - np.uint8(9)) <= np.uint8(1))
        is_newline = buf[seps] == 10
        sep_count = np.flatnonzero(is_newline) + 1
        base = np.concatenate(([0], sep_count[:-1]))
        num_fields = sep_count - base
        min_fields = 1 + self.num_dense_columns + self._columns_needed
        if num_fields.min(initial=min_fields) < min_fields:
            bad = int(np.argmax(num_fields < min_fields))
            sample = first_sample + bad
            raise TsvFormatError(
                f"TSV sample {sample} has "
                f"{int(num_fields[bad]) - 1 - self.num_dense_columns} "
                f"categorical fields; need >= {self._columns_needed}"
            )
        # Field index of each needed categorical column, per line.
        ks = np.arange(self._columns_needed) + 1 + self.num_dense_columns
        idx = base[None, :] + ks[:, None]  # (columns_needed, n)
        starts = seps[idx - 1] + 1
        lengths = seps[idx] - starts
        raw = _bulk_token_hashes(blob, starts.ravel(), lengths.ravel())
        # Table-salted finish over the whole block at once:
        # mix64(x, table, SALT) is fold(fold(x ^ table) ^ SALT), and the
        # per-column table index broadcasts, so one pass covers all tables.
        tables = np.repeat(
            np.arange(cfg.num_tables, dtype=np.uint64),
            cfg.lookups_per_table,
        )
        mixed = _fold_round(
            _fold_round(raw.reshape(self._columns_needed, n) ^ tables[:, None])
            ^ np.uint64(TOKEN_HASH_SALT)
        ) % np.uint64(cfg.rows_per_table)
        # (columns, n) -> (tables, n, lookups)
        return np.ascontiguousarray(
            mixed.astype(np.int64)
            .reshape(cfg.num_tables, cfg.lookups_per_table, n)
            .transpose(0, 2, 1)
        )

    def _parse_ids_python(
        self, lines: List[bytes], first_sample: int
    ) -> np.ndarray:
        """Per-token reference loop; bit-identical to the numpy engine."""
        cfg = self.config
        num_rows = cfg.rows_per_table
        ids = np.empty(
            (cfg.num_tables, len(lines), cfg.lookups_per_table), dtype=np.int64
        )
        for sample, line in enumerate(lines):
            fields = line.split(b"\t")
            cats = fields[1 + self.num_dense_columns:]
            if len(cats) < self._columns_needed:
                raise TsvFormatError(
                    f"TSV sample {first_sample + sample}"
                    f" has {len(cats)} categorical fields; need >= "
                    f"{self._columns_needed}"
                )
            for column in range(self._columns_needed):
                table, lookup = divmod(column, cfg.lookups_per_table)
                ids[table, sample, lookup] = hash_token(
                    cats[column], table, num_rows
                )
        return ids

    def _parse_dense(self, lines: List[bytes]):
        cfg = self.config
        dense = np.zeros(
            (len(lines), cfg.num_dense_features), dtype=np.float32
        )
        labels = np.zeros(len(lines), dtype=np.float32)
        for sample, line in enumerate(lines):
            fields = line.split(b"\t")
            raw = fields[1: 1 + self.num_dense_columns]
            for j in range(min(cfg.num_dense_features, len(raw))):
                dense[sample, j] = float(raw[j]) if raw[j] else 0.0
            labels[sample] = float(fields[0])
        return dense, labels

    def _fill_ready(self) -> None:
        """Parse the next block of batches into the forward queue.

        The numpy engine tokenises up to :data:`PARSE_BLOCK_LINES` lines
        per pass; the python reference engine stays one batch at a time.
        """
        cfg = self.config
        first_batch = self._next_to_parse
        remaining = self._num_batches - first_batch
        if self.engine == "numpy":
            block_batches = max(
                1, min(remaining, self.PARSE_BLOCK_LINES // cfg.batch_size)
            )
        else:
            block_batches = 1
        lines = self._read_lines(block_batches * cfg.batch_size)
        first_sample = first_batch * cfg.batch_size
        if self.engine == "numpy":
            ids = self._parse_ids_numpy(lines, first_sample)
        else:
            ids = self._parse_ids_python(lines, first_sample)
        dense = labels = None
        if self.with_dense:
            dense, labels = self._parse_dense(lines)
        for offset in range(block_batches):
            lo = offset * cfg.batch_size
            hi = lo + cfg.batch_size
            self._ready.append(MiniBatch(
                index=first_batch + offset,
                sparse_ids=ids[:, lo:hi, :],
                dense=None if dense is None else dense[lo:hi],
                labels=None if labels is None else labels[lo:hi],
            ))

    def _parse_next_batch(self) -> MiniBatch:
        if not self._ready:
            self._fill_ready()
        batch = self._ready.pop(0)
        self._next_to_parse = batch.index + 1
        return batch

    # ------------------------------------------------------------------
    # TraceSource surface
    # ------------------------------------------------------------------
    def batch(self, index: int) -> MiniBatch:
        if not 0 <= index < self._num_batches:
            raise IndexError(
                f"batch index {index} out of range [0, {self._num_batches})"
            )
        if index in self._window:
            return self._window[index]
        if index < self._next_to_parse:
            # Seeking backwards past the window: rewind and re-read.
            self.reset()
        while self._next_to_parse <= index:
            batch = self._parse_next_batch()
            self._window[batch.index] = batch
            # Bound the window to the pipeline's lookahead neighbourhood.
            floor = batch.index - self.WINDOW_BATCHES
            for stale in [k for k in self._window if k < floor]:
                del self._window[stale]
        return self._window[index]

    def iter_chunks(self, chunk_batches: int = 256) -> Iterator[List[MiniBatch]]:
        if chunk_batches < 1:
            raise TsvFormatError(f"chunk_batches must be >= 1, got {chunk_batches}")
        self.reset()
        chunk: List[MiniBatch] = []
        for index in range(self._num_batches):
            chunk.append(self.batch(index))
            if len(chunk) == chunk_batches:
                yield chunk
                chunk = []
        if chunk:
            yield chunk

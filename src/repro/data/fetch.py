"""Fetch-and-verify helper for real recommendation traces.

The paper evaluates on real Criteo-style datasets; this module makes
getting those bytes onto disk a first-class, reproducible step:

* :func:`fetch_trace` downloads a URL into the trace directory
  (``$REPRO_TRACE_DIR`` or ``~/.cache/repro/traces``), **resumably**
  (interrupted downloads continue from the ``.part`` file via an HTTP
  ``Range`` request), verifies a pinned sha256, and never re-downloads a
  file that already verified — so it is offline-friendly: point
  ``REPRO_TRACE_DIR`` at a directory that already holds the file and no
  network is touched.
* :data:`KNOWN_TRACES` names the traces the repo knows how to reach — the
  checked-in deterministic Criteo-style sample fixture and the public
  Criteo Kaggle display-advertising set — and
  :func:`resolve_trace` turns a name *or* a path into the
  :class:`~repro.data.io.TraceFileSpec` the experiment layer consumes
  (the CLI's global ``--trace`` flag is a thin wrapper over it).

End-to-end recipe (the ROADMAP real-trace quickstart)::

    python -m repro.cli trace criteo-sample          # inspect + verify
    python -m repro.cli ingest criteo-sample --out sample.rtrc
    python -m repro.cli --trace sample.rtrc fig13 --fractions 0.05
"""

from __future__ import annotations

import http.client
import os
import shutil
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable, Dict, Optional, Union

import numpy as np

from repro._env import read_env
from repro.data.io import (
    InvalidTraceFileSpecError,
    TraceFileSpec,
    TraceVerificationError,
    sha256_file,
)
from repro.testing.faults import fault_point

#: Environment variable overriding the trace download/cache directory.
TRACE_DIR_ENV = "REPRO_TRACE_DIR"

#: Bytes per streamed download block.
_BLOCK_BYTES = 1 << 20

#: Failures a download attempt may transiently hit; retried with backoff.
#: ``HTTPError`` subclasses ``URLError`` but is a definitive server answer
#: (404, 403, ...) — it is re-raised immediately, never retried.
_TRANSIENT_ERRORS = (
    urllib.error.URLError,
    http.client.IncompleteRead,
    ConnectionError,
    TimeoutError,
)

#: Retry-delay ceiling, seconds.
_BACKOFF_CAP_S = 30.0


class ChecksumMismatchError(TraceVerificationError):
    """Fetched or local bytes do not match the pinned sha256.

    Subclasses :class:`TraceVerificationError`, so existing handlers keep
    working; the narrower name lets the CLI failure report distinguish
    corrupt content from transient transport failures.
    """


def trace_dir() -> Path:
    """Directory downloaded traces land in (`$REPRO_TRACE_DIR` override)."""
    override = read_env(TRACE_DIR_ENV)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro" / "traces"


def _is_url(text: str) -> bool:
    return text.startswith(("http://", "https://"))


def _already_verified(dest: Path, sha256: Optional[str]) -> bool:
    """True when ``dest`` exists and its recorded digest matches the pin.

    A sidecar ``<name>.sha256`` stamp written after a successful
    verification lets later calls skip re-hashing multi-GB files; a
    missing or stale stamp falls back to hashing once and re-stamping.
    """
    if not dest.exists():
        return False
    if sha256 is None:
        return True
    stamp = dest.with_name(dest.name + ".sha256")
    if stamp.exists() and stamp.read_text().strip() == sha256:
        return True
    if sha256_file(dest) == sha256:
        try:
            stamp.write_text(sha256 + "\n")
        except OSError:
            pass  # read-only dataset mounts: verification still succeeded
        return True
    return False


def _download_once(url: str, part: Path, opener: Callable) -> None:
    """One download attempt into the ``.part`` file.

    The resume offset is re-read from the ``.part`` size on *every*
    attempt: bytes a failed attempt flushed before dying stay banked, so a
    flaky connection makes forward progress across retries instead of
    restarting from zero.
    """
    fault_point("fetch.read", detail=url)
    resume_from = part.stat().st_size if part.exists() else 0
    request = urllib.request.Request(url)
    if resume_from:
        request.add_header("Range", f"bytes={resume_from}-")
    try:
        response = opener(request)
    except urllib.error.HTTPError as error:  # pragma: no cover - server-dep
        if error.code == 416 and resume_from:
            # Range not satisfiable: the .part already holds everything.
            return
        raise
    status = getattr(response, "status", getattr(response, "code", 200))
    mode = "ab" if (resume_from and status == 206) else "wb"
    with response, open(part, mode) as out:
        shutil.copyfileobj(response, out, _BLOCK_BYTES)


def fetch_trace(
    url_or_path: Union[str, Path],
    sha256: Optional[str] = None,
    dest: Optional[Union[str, Path]] = None,
    opener: Optional[Callable] = None,
    retries: int = 3,
    backoff_s: float = 0.5,
    sleep: Callable[[float], None] = time.sleep,
) -> Path:
    """Resolve a trace file to a verified local path.

    Args:
        url_or_path: An ``http(s)://`` URL to download, or a local path to
            verify in place.
        sha256: Pinned content digest.  Local files and finished downloads
            are checked against it (:class:`ChecksumMismatchError` on
            mismatch); a destination file that already matches is returned
            without touching the network.
        dest: Destination file (default: the URL's basename inside
            :func:`trace_dir`).
        opener: ``urllib.request.urlopen``-compatible callable (tests
            inject a fake server; resumption is exercised without a
            network).
        retries: Extra attempts after a transient failure (``URLError``,
            ``IncompleteRead``, connection resets, timeouts).  Definitive
            ``HTTPError`` answers (404, 403, ...) are never retried.
        backoff_s: First retry delay, doubling per attempt (capped at
            :data:`_BACKOFF_CAP_S`).
        sleep: Injectable sleeper — tests assert the backoff schedule
            without waiting it out.

    Returns:
        The local path holding the verified bytes.

    Interrupted downloads leave a ``<name>.part`` file and resume from its
    length via an HTTP ``Range`` request — both across retry attempts
    inside one call and across calls; servers that ignore the header
    (status 200) restart cleanly.  The final rename is atomic, so ``dest``
    only ever holds complete content.
    """
    text = str(url_or_path)
    if not _is_url(text):
        path = Path(text)
        if not path.exists():
            raise FileNotFoundError(f"trace file not found: {path}")
        if sha256 is not None and not _already_verified(path, sha256):
            raise ChecksumMismatchError(
                f"{path} sha256 mismatch: expected {sha256}, "
                f"got {sha256_file(path)}"
            )
        return path

    dest = Path(dest) if dest is not None else trace_dir() / Path(text).name
    if _already_verified(dest, sha256):
        return dest
    if dest.exists() and sha256 is not None:
        raise ChecksumMismatchError(
            f"{dest} exists but its sha256 does not match the pinned "
            f"{sha256}; delete it to re-download"
        )

    opener = opener or urllib.request.urlopen
    dest.parent.mkdir(parents=True, exist_ok=True)
    part = dest.with_name(dest.name + ".part")
    for attempt in range(retries + 1):
        try:
            _download_once(text, part, opener)
            break
        except urllib.error.HTTPError:
            raise  # a definitive server answer, not a transient fault
        except _TRANSIENT_ERRORS:
            if attempt == retries:
                raise
            sleep(min(backoff_s * (2 ** attempt), _BACKOFF_CAP_S))
    actual = sha256_file(part) if sha256 is not None else None
    if sha256 is not None and actual != sha256:
        part.unlink(missing_ok=True)
        raise ChecksumMismatchError(
            f"downloaded {text} does not match the pinned sha256 "
            f"{sha256} (got {actual}); partial file discarded"
        )
    os.replace(part, dest)
    if sha256 is not None:
        dest.with_name(dest.name + ".sha256").write_text(sha256 + "\n")
    return dest


# ----------------------------------------------------------------------
# Deterministic Criteo-style sample fixture
# ----------------------------------------------------------------------
#: Criteo Kaggle layout: 13 dense integer columns, 26 categorical columns.
CRITEO_DENSE_COLUMNS = 13
CRITEO_CAT_COLUMNS = 26

#: Packaged sample fixture (generated by :func:`generate_sample_tsv`).
SAMPLE_FIXTURE_PATH = Path(__file__).parent / "fixtures" / "criteo_sample.tsv"

#: Pinned digest of the checked-in fixture — regeneration is deterministic,
#: so a digest drift means the fixture (or the generator) changed.
SAMPLE_FIXTURE_SHA256 = (
    "743a5a6d96f702df595dfdda0e0954923abebaee1bbe390044a415d6b1f12152"
)

#: Geometry the sample fixture maps onto: 8 tables x 3 lookups consume 24
#: of the 26 categorical columns; 2k lines give 15 batches of 128.
SAMPLE_GEOMETRY = dict(
    batch_size=128, num_tables=8, lookups_per_table=3, rows_per_table=50_000
)


def generate_sample_tsv(
    path: Union[str, Path], num_lines: int = 2000, seed: int = 0
) -> Path:
    """Write the deterministic Criteo-style sample TSV.

    Layout matches the Kaggle set: ``label <TAB> 13 dense <TAB> 26
    categorical`` with sparse empties in both groups and a Zipf-ish token
    popularity per categorical column.  Content is a pure function of
    ``(num_lines, seed)`` — the checked-in fixture is exactly
    ``generate_sample_tsv(..., 2000, 0)`` and CI can re-derive it.
    """
    rng = np.random.default_rng(seed)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    # Per-column vocabulary sizes in the few-hundreds-to-few-thousands
    # range, like the low-cardinality end of Criteo's columns.
    vocab_sizes = rng.integers(40, 4000, size=CRITEO_CAT_COLUMNS)
    with open(path, "w", encoding="utf-8", newline="\n") as fh:
        for _ in range(num_lines):
            label = int(rng.random() < 0.25)
            dense = [
                "" if rng.random() < 0.1 else str(int(rng.integers(0, 1000)))
                for _ in range(CRITEO_DENSE_COLUMNS)
            ]
            cats = []
            for column in range(CRITEO_CAT_COLUMNS):
                if rng.random() < 0.04:
                    cats.append("")
                    continue
                # Squared uniform skews towards low token ranks, giving the
                # temporal locality the cache experiments rely on.
                rank = int(rng.random() ** 2 * int(vocab_sizes[column]))
                cats.append(f"{rank:08x}")
            fh.write("\t".join([str(label)] + dense + cats) + "\n")
    return path


# ----------------------------------------------------------------------
# Named traces
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class KnownTrace:
    """Registry record of a trace the repo knows how to reach.

    Attributes:
        name: Registry key (the CLI ``--trace`` name).
        spec: The :class:`TraceFileSpec` describing the local file once
            fetched.  With ``in_trace_dir`` the spec's ``path`` is a bare
            filename re-rooted under :func:`trace_dir` at resolution time
            (so ``REPRO_TRACE_DIR`` set after import still applies).
        url: Download source, or ``None`` for bundled fixtures.
        in_trace_dir: Resolve the spec path inside :func:`trace_dir`.
        description: One-line summary for the CLI listing.
    """

    name: str
    spec: TraceFileSpec
    url: Optional[str] = None
    in_trace_dir: bool = False
    description: str = ""

    def resolved_spec(self) -> TraceFileSpec:
        """The spec with its path resolved against the current trace dir."""
        if not self.in_trace_dir:
            return self.spec
        return replace(self.spec, path=str(trace_dir() / self.spec.path))


KNOWN_TRACES: Dict[str, KnownTrace] = {
    "criteo-sample": KnownTrace(
        name="criteo-sample",
        spec=TraceFileSpec(
            path=str(SAMPLE_FIXTURE_PATH),
            format="tsv",
            sha256=SAMPLE_FIXTURE_SHA256,
            **SAMPLE_GEOMETRY,
        ),
        description="Checked-in deterministic 2k-line Criteo-layout sample",
    ),
    "criteo-kaggle": KnownTrace(
        name="criteo-kaggle",
        in_trace_dir=True,
        spec=TraceFileSpec(
            path="train.txt",
            format="tsv",
            # The public archive is unpinned upstream; verify-by-hash is
            # skipped until the operator pins their extracted train.txt.
            sha256=None,
            batch_size=2048,
            num_tables=8,
            lookups_per_table=3,
            rows_per_table=10_000_000,
        ),
        url=(
            "https://go.criteo.net/criteo-research-kaggle-display-"
            "advertising-challenge-dataset.tar.gz"
        ),
        description=(
            "Public Criteo Kaggle display-advertising set (download the "
            "archive, extract train.txt into $REPRO_TRACE_DIR)"
        ),
    ),
}


def resolve_trace(
    name_or_path: str,
    max_batches: Optional[int] = None,
) -> TraceFileSpec:
    """Turn a registry name or a file path into a :class:`TraceFileSpec`.

    Registry names resolve through :data:`KNOWN_TRACES` (re-rooting the
    bundled sample under ``REPRO_TRACE_DIR`` is unnecessary — it ships
    with the package).  Paths are used directly: compiled files carry
    their geometry in the header; TSV paths get the Criteo sample
    geometry mapping by default.
    """
    known = KNOWN_TRACES.get(str(name_or_path))
    if known is not None:
        spec = known.resolved_spec()
        if not Path(spec.path).exists():
            if known.url is None:
                raise FileNotFoundError(
                    f"bundled trace {known.name!r} missing at {spec.path}"
                )
            raise FileNotFoundError(
                f"trace {known.name!r} is not fetched yet; download "
                f"{known.url} and extract it into {trace_dir()} "
                f"(or set {TRACE_DIR_ENV})"
            )
    else:
        path = Path(str(name_or_path))
        if not path.exists():
            names = ", ".join(sorted(KNOWN_TRACES))
            raise InvalidTraceFileSpecError(
                f"{name_or_path!r} is neither a known trace name "
                f"({names}) nor an existing file"
            )
        spec = TraceFileSpec(path=str(path))
        if spec.resolved_format() == "tsv":
            spec = replace(spec, format="tsv", **SAMPLE_GEOMETRY)
    if max_batches is not None:
        spec = replace(spec, max_batches=max_batches)
    return spec

"""Trace statistics: reuse distance, working sets, duplication factors.

Classic cache-analysis quantities computed over embedding traces.  They
explain the ablation results quantitatively — e.g. why popularity pinning
out-hits LRU on unique-ID rates for skewed traces (the reuse-distance
distribution has a huge single-use tail) — and give users tools to size
caches for their own workloads beyond the paper's four profiles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np
from repro.errors import TraceStatsError


@dataclass(frozen=True)
class TraceStats:
    """Summary statistics of one table's trace.

    Attributes:
        total_lookups: All gathers, duplicates included.
        unique_rows: Distinct rows touched over the whole trace.
        single_use_fraction: Fraction of distinct rows touched exactly once
            (the "long tail" — uncacheable by any policy).
        mean_duplication: Mean gathers per touched row.
        top_1pct_share: Fraction of lookups landing on the hottest 1% of
            touched rows (empirical head weight).
    """

    total_lookups: int
    unique_rows: int
    single_use_fraction: float
    mean_duplication: float
    top_1pct_share: float


def trace_stats(ids: np.ndarray) -> TraceStats:
    """Compute :class:`TraceStats` for a flat array of lookup IDs."""
    ids = np.asarray(ids).reshape(-1)
    if ids.size == 0:
        raise TraceStatsError("trace must contain at least one lookup")
    _, counts = np.unique(ids, return_counts=True)
    counts_sorted = np.sort(counts)[::-1]
    head = max(1, int(np.ceil(counts_sorted.size * 0.01)))
    return TraceStats(
        total_lookups=int(ids.size),
        unique_rows=int(counts.size),
        single_use_fraction=float((counts == 1).mean()),
        mean_duplication=float(ids.size / counts.size),
        top_1pct_share=float(counts_sorted[:head].sum() / ids.size),
    )


def reuse_distances(ids: np.ndarray) -> np.ndarray:
    """LRU stack distances of a reference stream.

    For each access, the number of *distinct* other rows referenced since
    the previous access to the same row; first accesses yield -1 (cold).
    An access hits an LRU cache of capacity C iff its distance < C, so the
    distance histogram *is* the LRU hit-rate curve.

    O(n log n) via a Fenwick tree over last-access positions.
    """
    ids = np.asarray(ids).reshape(-1)
    n = ids.size
    distances = np.empty(n, dtype=np.int64)
    last_position: Dict[int, int] = {}
    tree = np.zeros(n + 1, dtype=np.int64)  # Fenwick: marks of live positions

    def tree_add(i: int, delta: int) -> None:
        i += 1
        while i <= n:
            tree[i] += delta
            i += i & (-i)

    def tree_sum(i: int) -> int:
        i += 1
        total = 0
        while i > 0:
            total += tree[i]
            i -= i & (-i)
        return total

    live = 0  # rows currently marked (== distinct rows seen)
    for position in range(n):
        row = int(ids[position])
        previous = last_position.get(row)
        if previous is None:
            distances[position] = -1
        else:
            # Distinct rows since `previous` = marks in (previous, position).
            distances[position] = live - tree_sum(previous)
            tree_add(previous, -1)
            live -= 1
        tree_add(position, 1)
        live += 1
        last_position[row] = position
    return distances


def lru_hit_rate_curve(
    ids: np.ndarray, capacities: Sequence[int]
) -> np.ndarray:
    """Exact LRU hit rate at each capacity, from the reuse distances."""
    distances = reuse_distances(ids)
    reused = distances[distances >= 0]
    out = np.empty(len(capacities), dtype=np.float64)
    for i, capacity in enumerate(capacities):
        if capacity < 1:
            raise TraceStatsError(f"capacity must be >= 1, got {capacity}")
        out[i] = float((reused < capacity).sum()) / distances.size
    return out


def working_set_curve(
    batch_ids: Sequence[np.ndarray], window_batches: int
) -> np.ndarray:
    """Distinct rows inside every sliding window of ``window_batches``.

    This is the quantity the Section VI-D Storage bound must dominate;
    ``validate_capacity_bound`` checks exactly that.
    """
    if window_batches < 1:
        raise TraceStatsError(f"window_batches must be >= 1, got {window_batches}")
    sizes: List[int] = []
    for start in range(0, max(1, len(batch_ids) - window_batches + 1)):
        window = batch_ids[start:start + window_batches]
        sizes.append(int(np.unique(np.concatenate(list(window))).size))
    return np.asarray(sizes, dtype=np.int64)

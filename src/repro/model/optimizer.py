"""Stochastic gradient descent for dense and sparse parameters.

The paper trains with plain SGD (Section VI: "ScratchPipe does not change
the algorithmic properties of stochastic gradient descent").  Dense
parameters (MLPs) receive full-gradient updates; embedding tables receive
sparse row-wise updates through the gradient-scatter primitive.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import OptimizerConfigError
from repro.model.embedding import EmbeddingTable
from repro.model.mlp import MLP


@dataclass(frozen=True)
class SGD:
    """Plain SGD with a single global learning rate.

    Attributes:
        lr: Learning rate applied to both dense and sparse updates.
    """

    lr: float = 0.01

    def __post_init__(self) -> None:
        if self.lr <= 0:
            raise OptimizerConfigError(f"lr must be positive, got {self.lr}")

    def step_dense(self, mlp: MLP) -> None:
        """Apply cached gradients to every layer of an MLP."""
        mlp.step(self.lr)

    def step_sparse(
        self, table: EmbeddingTable, ids: np.ndarray, pooled_grad: np.ndarray
    ) -> np.ndarray:
        """Sparse update of one embedding table for one batch.

        Args:
            table: Table to update in place.
            ids: ``(batch, lookups)`` IDs gathered during forward.
            pooled_grad: ``(batch, dim)`` gradient of the pooled output.

        Returns:
            The unique row IDs that were updated.
        """
        unique_ids, _ = table.backward(ids, pooled_grad, self.lr)
        return unique_ids

    def scatter(
        self, weights: np.ndarray, unique_ids: np.ndarray, grads: np.ndarray
    ) -> None:
        """Apply already-coalesced gradients to a raw weight array in place."""
        weights[unique_ids] -= self.lr * grads

"""Multi-layer perceptron with manual forward/backward (numpy).

Implements the paper's "DNN layers": the bottom MLP that transforms dense
features and the top MLP that consumes the feature interaction output
(Figure 1).  Hidden layers use ReLU; the final layer is linear so it can
emit either an embedding-sized vector (bottom) or a CTR logit (top).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np
from repro.errors import ModelConfigError, ModelShapeError, ModelStateError


@dataclass
class LinearLayer:
    """One affine layer ``y = x @ W + b`` with cached activations."""

    weight: np.ndarray
    bias: np.ndarray
    _input: Optional[np.ndarray] = field(default=None, repr=False)
    grad_weight: Optional[np.ndarray] = field(default=None, repr=False)
    grad_bias: Optional[np.ndarray] = field(default=None, repr=False)

    @classmethod
    def initialise(
        cls, fan_in: int, fan_out: int, rng: np.random.Generator
    ) -> "LinearLayer":
        """He-style initialisation suitable for ReLU networks."""
        scale = np.sqrt(2.0 / fan_in)
        weight = (scale * rng.standard_normal((fan_in, fan_out))).astype(np.float32)
        bias = np.zeros(fan_out, dtype=np.float32)
        return cls(weight=weight, bias=bias)

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Affine forward; caches the input for backward."""
        self._input = x
        return x @ self.weight + self.bias

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Accumulate parameter grads and return the input gradient."""
        if self._input is None:
            raise ModelStateError("backward called before forward")
        self.grad_weight = self._input.T @ grad_out
        self.grad_bias = grad_out.sum(axis=0)
        return grad_out @ self.weight.T

    def step(self, lr: float) -> None:
        """Apply one SGD update from the cached gradients."""
        if self.grad_weight is None or self.grad_bias is None:
            raise ModelStateError("step called before backward")
        self.weight -= lr * self.grad_weight
        self.bias -= lr * self.grad_bias
        self.grad_weight = None
        self.grad_bias = None


@dataclass
class MLP:
    """A stack of :class:`LinearLayer` with ReLU between hidden layers.

    The final layer is linear (no activation), matching the DLRM reference:
    the bottom MLP's output joins the feature interaction unsquashed and the
    top MLP emits a raw logit.
    """

    layers: List[LinearLayer]
    _relu_masks: List[np.ndarray] = field(default_factory=list, repr=False)

    @classmethod
    def initialise(
        cls, input_features: int, hidden: Sequence[int], rng: np.random.Generator
    ) -> "MLP":
        """Create an MLP with the given hidden sizes."""
        if not hidden:
            raise ModelConfigError("hidden must contain at least one layer size")
        layers = []
        fan_in = input_features
        for fan_out in hidden:
            layers.append(LinearLayer.initialise(fan_in, fan_out, rng))
            fan_in = fan_out
        return cls(layers=layers)

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Forward pass caching ReLU masks for backward."""
        self._relu_masks = []
        out = x
        last = len(self.layers) - 1
        for i, layer in enumerate(self.layers):
            out = layer.forward(out)
            if i != last:
                mask = out > 0
                self._relu_masks.append(mask)
                out = out * mask
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Backward pass; returns the gradient w.r.t. the MLP input."""
        if len(self._relu_masks) != len(self.layers) - 1:
            raise ModelStateError("backward called before forward")
        grad = grad_out
        for i in range(len(self.layers) - 1, -1, -1):
            if i != len(self.layers) - 1:
                grad = grad * self._relu_masks[i]
            grad = self.layers[i].backward(grad)
        return grad

    def step(self, lr: float) -> None:
        """SGD-update every layer."""
        for layer in self.layers:
            layer.step(lr)

    def parameters(self) -> List[Tuple[np.ndarray, np.ndarray]]:
        """List of ``(weight, bias)`` pairs (live views, not copies)."""
        return [(layer.weight, layer.bias) for layer in self.layers]

    def copy_parameters_from(self, other: "MLP") -> None:
        """Copy another MLP's parameters into this one (shapes must match)."""
        if len(self.layers) != len(other.layers):
            raise ModelShapeError("layer count mismatch")
        for mine, theirs in zip(self.layers, other.layers):
            if mine.weight.shape != theirs.weight.shape:
                raise ModelShapeError("layer shape mismatch")
            mine.weight[...] = theirs.weight
            mine.bias[...] = theirs.bias

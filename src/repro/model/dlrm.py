"""The full DLRM-style RecSys model (Figure 1).

Two classes are exported:

* :class:`DenseNetwork` — bottom MLP + feature interaction + top MLP + loss.
  It deliberately excludes the embedding layers: every system design in
  ``repro.systems`` supplies pooled embeddings its own way (from CPU tables,
  a static cache, or the ScratchPipe scratchpad) and consumes the pooled
  gradients this network returns.  This split mirrors the paper's pipeline
  diagrams (Figure 4) where embedding stages and MLP stages are distinct.

* :class:`DLRMModel` — a reference single-memory-space model combining
  embedding tables with a :class:`DenseNetwork`.  It is the "algorithmic
  ground truth" the equivalence tests compare every system against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import ModelShapeError, ModelStateError
from repro.data.trace import MiniBatch
from repro.model.config import ModelConfig
from repro.model.embedding import EmbeddingTable, initialise_tables
from repro.model.interaction import DotInteraction
from repro.model.loss import bce_with_logits, bce_with_logits_grad
from repro.model.mlp import MLP
from repro.model.optimizer import SGD


@dataclass
class DenseNetwork:
    """Bottom MLP, dot interaction, top MLP and BCE loss.

    Construct with :meth:`initialise`; the forward/backward pair caches the
    intermediate state a single training step needs.
    """

    config: ModelConfig
    bottom_mlp: MLP
    top_mlp: MLP
    interaction: DotInteraction = field(default_factory=DotInteraction)
    _logits: Optional[np.ndarray] = field(default=None, repr=False)

    @classmethod
    def initialise(
        cls, config: ModelConfig, rng: np.random.Generator
    ) -> "DenseNetwork":
        """Create a dense network with randomly initialised MLPs."""
        bottom = MLP.initialise(config.num_dense_features, config.bottom_mlp, rng)
        top = MLP.initialise(config.top_mlp_input_features(), config.top_mlp, rng)
        return cls(config=config, bottom_mlp=bottom, top_mlp=top)

    def forward(self, dense: np.ndarray, pooled: np.ndarray) -> np.ndarray:
        """Predict CTR logits.

        Args:
            dense: ``(batch, num_dense_features)`` continuous inputs.
            pooled: ``(batch, num_tables, dim)`` pooled embeddings.

        Returns:
            ``(batch,)`` raw logits.
        """
        bottom_out = self.bottom_mlp.forward(dense)
        interacted = self.interaction.forward(bottom_out, pooled)
        self._logits = self.top_mlp.forward(interacted).reshape(-1)
        return self._logits

    def loss(self, labels: np.ndarray) -> float:
        """BCE loss of the most recent forward pass."""
        if self._logits is None:
            raise ModelStateError("loss called before forward")
        return bce_with_logits(self._logits, labels)

    def backward(self, labels: np.ndarray) -> np.ndarray:
        """Backward pass through the dense network.

        Returns the gradient w.r.t. the pooled embeddings,
        ``(batch, num_tables, dim)`` — exactly what the embedding backward
        stages of Figure 4 consume.  Parameter gradients are cached inside
        the MLP layers until :meth:`step`.
        """
        if self._logits is None:
            raise ModelStateError("backward called before forward")
        grad_logits = bce_with_logits_grad(self._logits, labels)
        grad_interacted = self.top_mlp.backward(grad_logits[:, None])
        grad_bottom_out, grad_pooled = self.interaction.backward(grad_interacted)
        self.bottom_mlp.backward(grad_bottom_out)
        return grad_pooled

    def step(self, optimizer: SGD) -> None:
        """Apply cached MLP parameter gradients."""
        optimizer.step_dense(self.bottom_mlp)
        optimizer.step_dense(self.top_mlp)

    def copy_parameters_from(self, other: "DenseNetwork") -> None:
        """Clone another network's parameters (for equivalence tests)."""
        self.bottom_mlp.copy_parameters_from(other.bottom_mlp)
        self.top_mlp.copy_parameters_from(other.top_mlp)


@dataclass
class DLRMModel:
    """Reference DLRM: embedding tables + dense network in one memory space.

    This is the algorithmic baseline every system design must match
    bit-for-bit (the paper's correctness claim, Section IV).
    """

    config: ModelConfig
    tables: List[EmbeddingTable]
    dense_network: DenseNetwork
    optimizer: SGD = field(default_factory=SGD)

    @classmethod
    def initialise(
        cls,
        config: ModelConfig,
        seed: int = 0,
        optimizer: Optional[SGD] = None,
    ) -> "DLRMModel":
        """Create a model with deterministic random initialisation."""
        rng = np.random.default_rng(seed)
        tables = initialise_tables(config, rng)
        dense = DenseNetwork.initialise(config, rng)
        return cls(
            config=config,
            tables=tables,
            dense_network=dense,
            optimizer=optimizer or SGD(),
        )

    def pooled_embeddings(self, batch: MiniBatch) -> np.ndarray:
        """Gather + reduce all tables: ``(batch, num_tables, dim)``."""
        pooled = np.stack(
            [
                self.tables[t].forward(batch.sparse_ids[t])
                for t in range(self.config.num_tables)
            ],
            axis=1,
        )
        return pooled

    def train_step(self, batch: MiniBatch) -> float:
        """One full forward/backward/update iteration; returns the loss."""
        if batch.dense is None or batch.labels is None:
            raise ModelShapeError("train_step requires a batch with dense features "
                             "and labels (with_dense=True datasets)")
        pooled = self.pooled_embeddings(batch)
        self.dense_network.forward(batch.dense, pooled)
        loss = self.dense_network.loss(batch.labels)
        grad_pooled = self.dense_network.backward(batch.labels)
        for t in range(self.config.num_tables):
            self.optimizer.step_sparse(
                self.tables[t], batch.sparse_ids[t], grad_pooled[:, t, :]
            )
        self.dense_network.step(self.optimizer)
        return loss

    def predict(self, batch: MiniBatch) -> np.ndarray:
        """Forward-only CTR probabilities for a batch."""
        if batch.dense is None:
            raise ModelShapeError("predict requires dense features")
        pooled = self.pooled_embeddings(batch)
        logits = self.dense_network.forward(batch.dense, pooled)
        # Stable sigmoid via the loss module's helper.
        from repro.model.loss import sigmoid

        return sigmoid(logits)

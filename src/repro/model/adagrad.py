"""Adagrad optimiser with row-wise sparse state for embedding tables.

Production DLRM training commonly pairs SGD on the dense parameters with
(row-wise) Adagrad on the embeddings.  The paper evaluates plain SGD; this
module is provided as the natural extension for users reproducing
production-style runs on the *reference* (single-memory-space) model.

Caveat for cached systems: Adagrad keeps a per-row accumulator that must
migrate together with the row between CPU table and GPU scratchpad.  The
functional cached trainers in this repository implement SGD only (as the
paper does); co-locating optimiser state in the scratchpad is listed as
follow-up work in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.errors import ModelShapeError, ModelStateError, OptimizerConfigError
from repro.model.embedding import EmbeddingTable
from repro.model.mlp import MLP


@dataclass
class SparseAdagrad:
    """Row-wise Adagrad for one embedding table.

    Maintains one accumulator per row (the mean squared gradient of the
    row), as in the DLRM reference's ``RowWiseAdagrad``.

    Attributes:
        state_dtype: Accumulator precision.  Defaults to float64; the
            scratchpad-resident variant stores the accumulator as a float32
            column alongside the row (``systems.adagrad_scratchpipe``), so
            equivalence tests pass ``np.float32`` to make the reference
            compute in the identical precision.
    """

    num_rows: int
    lr: float = 0.01
    eps: float = 1e-10
    state_dtype: type = np.float64
    _state: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.lr <= 0:
            raise OptimizerConfigError(f"lr must be positive, got {self.lr}")
        if self.num_rows < 1:
            raise OptimizerConfigError(f"num_rows must be >= 1, got {self.num_rows}")
        self._state = np.zeros(self.num_rows, dtype=self.state_dtype)

    def update(
        self, weights: np.ndarray, unique_ids: np.ndarray, grads: np.ndarray
    ) -> None:
        """Apply coalesced gradients to ``weights`` rows in place."""
        unique_ids = np.asarray(unique_ids).reshape(-1)
        if grads.shape[0] != unique_ids.shape[0]:
            raise ModelShapeError("ids/grads length mismatch")
        if unique_ids.size == 0:
            return
        row_norm_sq = (grads.astype(self.state_dtype) ** 2).mean(axis=1)
        self._state[unique_ids] += row_norm_sq
        scale = (
            np.array(self.lr, dtype=self.state_dtype)
            / (np.sqrt(self._state[unique_ids]) + self.eps)
        )
        weights[unique_ids] -= (scale[:, None] * grads).astype(weights.dtype)

    def accumulator(self, ids: np.ndarray) -> np.ndarray:
        """Read the per-row accumulators (for tests/inspection)."""
        return self._state[np.asarray(ids).reshape(-1)].copy()


@dataclass
class DenseAdagrad:
    """Full (element-wise) Adagrad for the MLP parameters."""

    lr: float = 0.01
    eps: float = 1e-10
    _state: Dict[int, List[np.ndarray]] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.lr <= 0:
            raise OptimizerConfigError(f"lr must be positive, got {self.lr}")

    def step(self, mlp: MLP) -> None:
        """Apply the cached gradients of every layer with Adagrad scaling."""
        key = id(mlp)
        if key not in self._state:
            self._state[key] = [
                np.zeros_like(layer.weight, dtype=np.float64)
                for layer in mlp.layers
            ] + [
                np.zeros_like(layer.bias, dtype=np.float64)
                for layer in mlp.layers
            ]
        state = self._state[key]
        n = len(mlp.layers)
        for i, layer in enumerate(mlp.layers):
            if layer.grad_weight is None or layer.grad_bias is None:
                raise ModelStateError("step called before backward")
            state[i] += layer.grad_weight.astype(np.float64) ** 2
            state[n + i] += layer.grad_bias.astype(np.float64) ** 2
            layer.weight -= (
                self.lr * layer.grad_weight / (np.sqrt(state[i]) + self.eps)
            ).astype(layer.weight.dtype)
            layer.bias -= (
                self.lr * layer.grad_bias / (np.sqrt(state[n + i]) + self.eps)
            ).astype(layer.bias.dtype)
            layer.grad_weight = None
            layer.grad_bias = None


@dataclass
class AdagradOptimizer:
    """Drop-in optimiser bundle: row-wise Adagrad (sparse) + Adagrad (dense).

    Mirrors the :class:`repro.model.optimizer.SGD` interface used by
    :class:`repro.model.dlrm.DLRMModel`.
    """

    lr: float = 0.01
    eps: float = 1e-10
    state_dtype: type = np.float64
    _sparse: Dict[int, SparseAdagrad] = field(default_factory=dict, repr=False)
    _dense: DenseAdagrad = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._dense = DenseAdagrad(lr=self.lr, eps=self.eps)

    def step_dense(self, mlp: MLP) -> None:
        """Adagrad update of an MLP's cached gradients."""
        self._dense.step(mlp)

    def step_sparse(
        self, table: EmbeddingTable, ids: np.ndarray, pooled_grad: np.ndarray
    ) -> np.ndarray:
        """Row-wise Adagrad update of one table for one batch."""
        from repro.model.embedding import coalesce_gradients, duplicate_gradients

        key = id(table)
        if key not in self._sparse:
            self._sparse[key] = SparseAdagrad(
                num_rows=table.num_rows, lr=self.lr, eps=self.eps,
                state_dtype=self.state_dtype,
            )
        duplicated = duplicate_gradients(pooled_grad, ids.shape[1])
        unique_ids, grads = coalesce_gradients(
            ids.reshape(-1), duplicated.reshape(-1, pooled_grad.shape[1])
        )
        self._sparse[key].update(table.weights, unique_ids, grads)
        return unique_ids

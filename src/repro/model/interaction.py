"""DLRM dot-product feature interaction (forward + backward).

The feature-interaction stage (Figure 1) combines the bottom-MLP output with
the per-table pooled embeddings.  Following the DLRM reference the paper's
model is based on, we compute all pairwise dot products between the
``num_tables + 1`` feature vectors and concatenate the strictly-lower-
triangular results with the bottom-MLP output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np
from repro.errors import ModelShapeError, ModelStateError


@dataclass
class DotInteraction:
    """Pairwise dot-product interaction with cached state for backward."""

    _vectors: Optional[np.ndarray] = field(default=None, repr=False)
    _tri_rows: Optional[np.ndarray] = field(default=None, repr=False)
    _tri_cols: Optional[np.ndarray] = field(default=None, repr=False)

    def forward(self, bottom_out: np.ndarray, pooled: np.ndarray) -> np.ndarray:
        """Compute the interaction features.

        Args:
            bottom_out: ``(batch, dim)`` bottom-MLP output.
            pooled: ``(batch, num_tables, dim)`` pooled embeddings.

        Returns:
            ``(batch, dim + n*(n-1)/2)`` with ``n = num_tables + 1``: the
            bottom output concatenated with the pairwise dot products.
        """
        if bottom_out.ndim != 2 or pooled.ndim != 3:
            raise ModelShapeError(
                "expected bottom_out (batch, dim) and pooled "
                f"(batch, tables, dim), got {bottom_out.shape} and {pooled.shape}"
            )
        if bottom_out.shape[1] != pooled.shape[2]:
            raise ModelShapeError(
                "bottom output dim "
                f"({bottom_out.shape[1]}) must equal embedding dim "
                f"({pooled.shape[2]})"
            )
        vectors = np.concatenate([bottom_out[:, None, :], pooled], axis=1)
        n = vectors.shape[1]
        rows, cols = np.tril_indices(n, k=-1)
        dots = np.einsum("bnd,bmd->bnm", vectors, vectors)
        self._vectors = vectors
        self._tri_rows, self._tri_cols = rows, cols
        return np.concatenate([bottom_out, dots[:, rows, cols]], axis=1)

    def backward(self, grad_out: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Backward through the interaction.

        Args:
            grad_out: ``(batch, dim + pairs)`` gradient of the interaction
                output.

        Returns:
            ``(grad_bottom, grad_pooled)`` with shapes ``(batch, dim)`` and
            ``(batch, num_tables, dim)``.
        """
        if self._vectors is None:
            raise ModelStateError("backward called before forward")
        vectors = self._vectors
        batch, n, dim = vectors.shape
        grad_direct = grad_out[:, :dim]
        grad_dots_flat = grad_out[:, dim:]
        grad_dots = np.zeros((batch, n, n), dtype=grad_out.dtype)
        grad_dots[:, self._tri_rows, self._tri_cols] = grad_dots_flat
        # d(v_i . v_j)/dv = symmetric contribution from both operands.
        symmetric = grad_dots + grad_dots.transpose(0, 2, 1)
        grad_vectors = np.einsum("bnm,bmd->bnd", symmetric, vectors)
        grad_bottom = grad_vectors[:, 0, :] + grad_direct
        grad_pooled = grad_vectors[:, 1:, :]
        return grad_bottom, grad_pooled


def interaction_output_features(num_tables: int, dim: int) -> int:
    """Width of the interaction output for ``num_tables`` tables."""
    n = num_tables + 1
    return dim + n * (n - 1) // 2

"""Numpy DLRM substrate: embeddings, MLPs, interaction, loss, optimiser."""

from repro.model.adagrad import AdagradOptimizer, DenseAdagrad, SparseAdagrad
from repro.model.checkpoint import checkpoint_bytes, load_checkpoint, save_checkpoint
from repro.model.config import ELEMENT_BYTES, ModelConfig, mlp_flops, tiny_config
from repro.model.dlrm import DLRMModel, DenseNetwork
from repro.model.embedding import (
    EmbeddingTable,
    coalesce_gradients,
    duplicate_gradients,
    gather_rows,
    initialise_tables,
    sgd_scatter,
    sum_pool,
    tables_allclose,
)
from repro.model.interaction import DotInteraction, interaction_output_features
from repro.model.loss import bce_with_logits, bce_with_logits_grad, sigmoid
from repro.model.mlp import MLP, LinearLayer
from repro.model.optimizer import SGD

__all__ = [
    "AdagradOptimizer",
    "DenseAdagrad",
    "SparseAdagrad",
    "checkpoint_bytes",
    "load_checkpoint",
    "save_checkpoint",
    "ELEMENT_BYTES",
    "ModelConfig",
    "mlp_flops",
    "tiny_config",
    "DLRMModel",
    "DenseNetwork",
    "EmbeddingTable",
    "coalesce_gradients",
    "duplicate_gradients",
    "gather_rows",
    "initialise_tables",
    "sgd_scatter",
    "sum_pool",
    "tables_allclose",
    "DotInteraction",
    "interaction_output_features",
    "bce_with_logits",
    "bce_with_logits_grad",
    "sigmoid",
    "MLP",
    "LinearLayer",
    "SGD",
]

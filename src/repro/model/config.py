"""Model configuration for the DLRM-style RecSys used throughout the repo.

The default configuration reproduces the paper's baseline model
(Section V, Benchmarks): eight embedding tables, ten million 128-dimensional
entries each (40 GB total), 20 gathers per table, batch size 2048, with MLP
shapes taken from the MLPerf DLRM reference the paper cites.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Tuple
from repro.errors import ModelConfigError

#: Bytes per embedding element (FP32, as in the paper's 4-byte math).
ELEMENT_BYTES = 4


@dataclass(frozen=True)
class ModelConfig:
    """Shape of the RecSys model and its per-iteration workload.

    Attributes:
        num_tables: Number of embedding tables.
        rows_per_table: Entries per embedding table.
        embedding_dim: Embedding vector dimension.
        lookups_per_table: Sparse IDs gathered per table per sample
            ("number of embedding gathers" in the paper).
        batch_size: Mini-batch size.
        num_dense_features: Continuous input features fed to the bottom MLP.
        bottom_mlp: Hidden sizes of the bottom MLP; the final size must equal
            ``embedding_dim`` so its output can join the feature interaction.
        top_mlp: Hidden sizes of the top MLP; the final size must be 1
            (CTR logit).
    """

    num_tables: int = 8
    rows_per_table: int = 10_000_000
    embedding_dim: int = 128
    lookups_per_table: int = 20
    batch_size: int = 2048
    num_dense_features: int = 13
    bottom_mlp: Tuple[int, ...] = (512, 256, 128)
    top_mlp: Tuple[int, ...] = (1024, 1024, 512, 256, 1)

    def __post_init__(self) -> None:
        if self.num_tables < 1:
            raise ModelConfigError(f"num_tables must be >= 1, got {self.num_tables}")
        if self.rows_per_table < 1:
            raise ModelConfigError(
                f"rows_per_table must be >= 1, got {self.rows_per_table}"
            )
        if self.embedding_dim < 1:
            raise ModelConfigError(
                f"embedding_dim must be >= 1, got {self.embedding_dim}"
            )
        if self.lookups_per_table < 1:
            raise ModelConfigError(
                f"lookups_per_table must be >= 1, got {self.lookups_per_table}"
            )
        if self.batch_size < 1:
            raise ModelConfigError(f"batch_size must be >= 1, got {self.batch_size}")
        if not self.bottom_mlp:
            raise ModelConfigError("bottom_mlp must have at least one layer")
        if not self.top_mlp:
            raise ModelConfigError("top_mlp must have at least one layer")
        if self.bottom_mlp[-1] != self.embedding_dim:
            raise ModelConfigError(
                "bottom_mlp must end with embedding_dim "
                f"({self.embedding_dim}), got {self.bottom_mlp[-1]}"
            )
        if self.top_mlp[-1] != 1:
            raise ModelConfigError(
                f"top_mlp must end with a single logit, got {self.top_mlp[-1]}"
            )

    # ------------------------------------------------------------------
    # Derived sizes
    # ------------------------------------------------------------------
    @property
    def row_bytes(self) -> int:
        """Bytes of one embedding row."""
        return self.embedding_dim * ELEMENT_BYTES

    @property
    def table_bytes(self) -> int:
        """Bytes of one embedding table."""
        return self.rows_per_table * self.row_bytes

    @property
    def model_bytes(self) -> int:
        """Bytes of all embedding tables (the paper's "model size")."""
        return self.num_tables * self.table_bytes

    @property
    def lookups_per_batch(self) -> int:
        """Total embedding gathers issued per iteration across all tables."""
        return self.num_tables * self.lookups_per_table * self.batch_size

    @property
    def gathered_bytes_per_batch(self) -> int:
        """Bytes gathered per iteration (also the gradient scatter payload)."""
        return self.lookups_per_batch * self.row_bytes

    @property
    def reduced_bytes_per_batch(self) -> int:
        """Bytes of the per-table reduced embedding output per iteration."""
        return self.num_tables * self.batch_size * self.row_bytes

    @property
    def interaction_inputs(self) -> int:
        """Vectors entering the feature interaction (tables + bottom MLP)."""
        return self.num_tables + 1

    @property
    def interaction_features(self) -> int:
        """Width of the feature-interaction output fed to the top MLP.

        DLRM's dot interaction emits the strictly-lower-triangular pairwise
        dot products concatenated with the bottom-MLP output.
        """
        n = self.interaction_inputs
        return n * (n - 1) // 2 + self.embedding_dim

    def top_mlp_input_features(self) -> int:
        """Input width of the first top-MLP layer."""
        return self.interaction_features

    def scaled(self, **overrides) -> "ModelConfig":
        """Return a copy with the given fields replaced.

        Convenience used by sensitivity sweeps (Fig. 15) and by tests that
        need laptop-scale tables.
        """
        return replace(self, **overrides)


def mlp_flops(input_features: int, hidden: Tuple[int, ...], batch: int) -> int:
    """Multiply-accumulate FLOPs of one forward pass through an MLP."""
    flops = 0
    fan_in = input_features
    for fan_out in hidden:
        flops += 2 * batch * fan_in * fan_out
        fan_in = fan_out
    return flops


def mlp_params(input_features: int, hidden: Tuple[int, ...]) -> int:
    """Parameter count (weights + biases) of an MLP."""
    params = 0
    fan_in = input_features
    for fan_out in hidden:
        params += fan_in * fan_out + fan_out
        fan_in = fan_out
    return params


def dense_parameter_bytes(config: "ModelConfig") -> int:
    """Bytes of all dense (MLP) parameters — the all-reduce payload of a
    data-parallel multi-GPU system (Table I's 8-GPU baseline)."""
    params = mlp_params(config.num_dense_features, config.bottom_mlp)
    params += mlp_params(config.top_mlp_input_features(), config.top_mlp)
    return params * ELEMENT_BYTES


@dataclass(frozen=True)
class TinyConfigFactory:
    """Factory for laptop-scale configs used by functional tests."""

    rows_per_table: int = 1000
    embedding_dim: int = 8
    batch_size: int = 16
    lookups_per_table: int = 4
    num_tables: int = 2

    def build(self) -> ModelConfig:
        """Build a small but structurally complete :class:`ModelConfig`."""
        return ModelConfig(
            num_tables=self.num_tables,
            rows_per_table=self.rows_per_table,
            embedding_dim=self.embedding_dim,
            lookups_per_table=self.lookups_per_table,
            batch_size=self.batch_size,
            num_dense_features=4,
            bottom_mlp=(16, self.embedding_dim),
            top_mlp=(32, 16, 1),
        )


def tiny_config(**overrides) -> ModelConfig:
    """Shortcut returning a small functional-test config."""
    factory_fields = {
        k: overrides.pop(k)
        for k in list(overrides)
        if k in TinyConfigFactory.__dataclass_fields__
    }
    config = TinyConfigFactory(**factory_fields).build()
    if overrides:
        config = config.scaled(**overrides)
    return config

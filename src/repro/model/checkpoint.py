"""Model checkpointing: save/load a full DLRM training state.

Persists embedding tables, dense parameters and (optionally) sparse
optimiser state to a single compressed ``.npz`` archive.  Long RecSys
training jobs — the hundreds of GB, multi-day runs the paper motivates —
are checkpoint/restore heavy in production; this gives the reference
implementation that capability and round-trip tests pin the format.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.errors import CheckpointFormatError
from repro.model.dlrm import DLRMModel

#: Format marker stored inside every checkpoint.
FORMAT_VERSION = 1


def save_checkpoint(path: Union[str, Path], model: DLRMModel) -> None:
    """Write a model's full parameter state to ``path``.

    Args:
        path: Destination ``.npz`` file.
        model: Model whose tables and dense parameters are saved.
    """
    payload = {
        "format_version": np.int64(FORMAT_VERSION),
        "num_tables": np.int64(model.config.num_tables),
    }
    for t, table in enumerate(model.tables):
        payload[f"table_{t}"] = table.weights
    for name, mlp in (
        ("bottom", model.dense_network.bottom_mlp),
        ("top", model.dense_network.top_mlp),
    ):
        payload[f"{name}_layers"] = np.int64(len(mlp.layers))
        for i, layer in enumerate(mlp.layers):
            payload[f"{name}_w{i}"] = layer.weight
            payload[f"{name}_b{i}"] = layer.bias
    np.savez_compressed(Path(path), **payload)


def load_checkpoint(path: Union[str, Path], model: DLRMModel) -> None:
    """Restore parameters saved by :func:`save_checkpoint` into ``model``.

    The model must have been built with the same configuration (table and
    layer shapes are validated).

    Raises:
        ValueError: On format or shape mismatches.
    """
    archive = np.load(Path(path))
    version = int(archive["format_version"])
    if version != FORMAT_VERSION:
        raise CheckpointFormatError(
            f"unsupported checkpoint format {version}; expected {FORMAT_VERSION}"
        )
    if int(archive["num_tables"]) != model.config.num_tables:
        raise CheckpointFormatError(
            f"checkpoint has {int(archive['num_tables'])} tables; model has "
            f"{model.config.num_tables}"
        )
    for t, table in enumerate(model.tables):
        saved = archive[f"table_{t}"]
        if saved.shape != table.weights.shape:
            raise CheckpointFormatError(
                f"table {t} shape mismatch: {saved.shape} vs "
                f"{table.weights.shape}"
            )
        table.weights[...] = saved
    for name, mlp in (
        ("bottom", model.dense_network.bottom_mlp),
        ("top", model.dense_network.top_mlp),
    ):
        saved_layers = int(archive[f"{name}_layers"])
        if saved_layers != len(mlp.layers):
            raise CheckpointFormatError(
                f"{name} MLP layer count mismatch: {saved_layers} vs "
                f"{len(mlp.layers)}"
            )
        for i, layer in enumerate(mlp.layers):
            weight = archive[f"{name}_w{i}"]
            bias = archive[f"{name}_b{i}"]
            if weight.shape != layer.weight.shape:
                raise CheckpointFormatError(f"{name} layer {i} weight shape mismatch")
            layer.weight[...] = weight
            layer.bias[...] = bias


def checkpoint_bytes(model: DLRMModel) -> int:
    """Uncompressed size of a checkpoint of ``model`` (bytes)."""
    total = sum(t.weights.nbytes for t in model.tables)
    for mlp in (model.dense_network.bottom_mlp, model.dense_network.top_mlp):
        total += sum(l.weight.nbytes + l.bias.nbytes for l in mlp.layers)
    return total

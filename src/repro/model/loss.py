"""Binary cross-entropy with logits — the paper's CTR prediction loss."""

from __future__ import annotations

import numpy as np
from repro.errors import ModelShapeError


def sigmoid(z: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    out = np.empty_like(z, dtype=np.float64)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    exp_z = np.exp(z[~positive])
    out[~positive] = exp_z / (1.0 + exp_z)
    return out.astype(z.dtype) if z.dtype == np.float32 else out


def bce_with_logits(logits: np.ndarray, labels: np.ndarray) -> float:
    """Mean binary cross-entropy computed from raw logits.

    Uses the log-sum-exp form ``max(z, 0) - z*y + log(1 + exp(-|z|))`` to
    avoid overflow for large |z|.
    """
    z = logits.reshape(-1).astype(np.float64)
    y = labels.reshape(-1).astype(np.float64)
    if z.shape != y.shape:
        raise ModelShapeError(f"logits {z.shape} and labels {y.shape} mismatch")
    per_sample = np.maximum(z, 0.0) - z * y + np.log1p(np.exp(-np.abs(z)))
    return float(per_sample.mean())


def bce_with_logits_grad(logits: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """Gradient of :func:`bce_with_logits` w.r.t. the logits.

    Returns an array with the same shape as ``logits``; the mean reduction
    divides by the batch size.
    """
    z = logits.reshape(-1)
    y = labels.reshape(-1)
    if z.shape != y.shape:
        raise ModelShapeError(f"logits {z.shape} and labels {y.shape} mismatch")
    grad = (sigmoid(z.astype(np.float64)) - y.astype(np.float64)) / z.shape[0]
    return grad.reshape(logits.shape).astype(np.float32)

"""Embedding tables and the paper's four embedding-layer primitives.

Figure 2 of the paper decomposes embedding-layer training into:

* forward:  embedding **gather** (sparse row reads) + **reduction** (sum
  pooling of the gathered rows per sample), and
* backward: gradient **duplication** (each pooled gradient fans out to every
  row its sample gathered), **coalescing** (gradients of rows gathered
  multiple times are summed) and **scatter** (the coalesced gradients update
  the table rows in place).

This module implements each primitive as a standalone, testable function and
wraps table state in :class:`EmbeddingTable`.  Every system design in
``repro.systems`` routes its functional math through these primitives so that
the correctness-equivalence tests compare like with like.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import ModelConfigError, ModelShapeError
from repro.model.config import ModelConfig


def gather_rows(table: np.ndarray, ids: np.ndarray) -> np.ndarray:
    """Gather rows ``ids`` from ``table`` (Figure 2(a), left).

    Args:
        table: float32 array ``(rows, dim)``.
        ids: int array of any shape; values index rows of ``table``.

    Returns:
        Array of shape ``ids.shape + (dim,)``.
    """
    return table[ids]


def sum_pool(gathered: np.ndarray) -> np.ndarray:
    """Reduce gathered rows per sample (Figure 2(a), right).

    Args:
        gathered: ``(batch, lookups, dim)`` gathered embeddings.

    Returns:
        ``(batch, dim)`` pooled embeddings.
    """
    if gathered.ndim != 3:
        raise ModelShapeError(
            f"expected (batch, lookups, dim) input, got shape {gathered.shape}"
        )
    return gathered.sum(axis=1)


def duplicate_gradients(pooled_grad: np.ndarray, lookups: int) -> np.ndarray:
    """Fan a pooled gradient out to each gathered row (Figure 2(b), left).

    With sum pooling, every row a sample gathered receives the sample's
    pooled gradient unchanged.

    Args:
        pooled_grad: ``(batch, dim)`` gradient of the pooled output.
        lookups: Number of rows each sample gathered.

    Returns:
        ``(batch, lookups, dim)`` duplicated per-lookup gradients.
    """
    if pooled_grad.ndim != 2:
        raise ModelConfigError(
            f"expected (batch, dim) pooled gradient, got shape {pooled_grad.shape}"
        )
    if lookups < 1:
        raise ModelConfigError(f"lookups must be >= 1, got {lookups}")
    return np.broadcast_to(
        pooled_grad[:, None, :],
        (pooled_grad.shape[0], lookups, pooled_grad.shape[1]),
    )


def coalesce_gradients(
    ids: np.ndarray, grads: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Sum gradients of repeated row IDs (Figure 2(b), middle).

    Args:
        ids: int array ``(n,)`` of row IDs (duplicates allowed).
        grads: float32 array ``(n, dim)`` of per-lookup gradients.

    Returns:
        ``(unique_ids, coalesced)`` where ``unique_ids`` is sorted and
        ``coalesced[i]`` is the sum of all gradients whose ID equals
        ``unique_ids[i]``.
    """
    ids = np.asarray(ids).reshape(-1)
    if grads.shape[0] != ids.shape[0]:
        raise ModelShapeError(
            f"ids ({ids.shape[0]}) and grads ({grads.shape[0]}) length mismatch"
        )
    unique_ids, inverse = np.unique(ids, return_inverse=True)
    coalesced = np.zeros((unique_ids.shape[0], grads.shape[1]), dtype=grads.dtype)
    np.add.at(coalesced, inverse, grads)
    return unique_ids, coalesced


def sgd_scatter(
    table: np.ndarray, ids: np.ndarray, grads: np.ndarray, lr: float
) -> None:
    """Apply coalesced gradients to table rows in place (Figure 2(b), right).

    Args:
        table: float32 array ``(rows, dim)``; updated in place.
        ids: ``(k,)`` unique row IDs.
        grads: ``(k, dim)`` coalesced gradients.
        lr: SGD learning rate.
    """
    ids = np.asarray(ids).reshape(-1)
    if np.unique(ids).shape[0] != ids.shape[0]:
        raise ModelShapeError("sgd_scatter requires unique IDs; coalesce first")
    table[ids] -= lr * grads


@dataclass
class EmbeddingTable:
    """One embedding table with in-place SGD training.

    Attributes:
        weights: float32 array ``(rows, dim)``.
    """

    weights: np.ndarray

    def __post_init__(self) -> None:
        if self.weights.ndim != 2:
            raise ModelShapeError(
                f"weights must be 2-D (rows, dim), got shape {self.weights.shape}"
            )

    @classmethod
    def initialise(
        cls, rows: int, dim: int, rng: np.random.Generator, scale: float = 0.01
    ) -> "EmbeddingTable":
        """Create a table with small random normal weights."""
        weights = (scale * rng.standard_normal((rows, dim))).astype(np.float32)
        return cls(weights=weights)

    @property
    def num_rows(self) -> int:
        """Number of rows in the table."""
        return self.weights.shape[0]

    @property
    def dim(self) -> int:
        """Embedding dimension."""
        return self.weights.shape[1]

    def forward(self, ids: np.ndarray) -> np.ndarray:
        """Gather + sum-pool: ``(batch, lookups)`` IDs -> ``(batch, dim)``."""
        if ids.ndim != 2:
            raise ModelShapeError(
                f"expected (batch, lookups) ids, got shape {ids.shape}"
            )
        return sum_pool(gather_rows(self.weights, ids))

    def backward(
        self, ids: np.ndarray, pooled_grad: np.ndarray, lr: float
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Duplicate + coalesce + scatter for one batch.

        Args:
            ids: ``(batch, lookups)`` IDs used in :meth:`forward`.
            pooled_grad: ``(batch, dim)`` gradient of the pooled output.
            lr: SGD learning rate.

        Returns:
            ``(unique_ids, coalesced_grads)`` — useful to callers that track
            which rows were touched (e.g. cache writeback bookkeeping).
        """
        duplicated = duplicate_gradients(pooled_grad, ids.shape[1])
        unique_ids, coalesced = coalesce_gradients(
            ids.reshape(-1), duplicated.reshape(-1, pooled_grad.shape[1])
        )
        sgd_scatter(self.weights, unique_ids, coalesced, lr)
        return unique_ids, coalesced


def initialise_tables(
    config: ModelConfig, rng: np.random.Generator, scale: float = 0.01
) -> List[EmbeddingTable]:
    """Create all of a model's embedding tables."""
    return [
        EmbeddingTable.initialise(
            config.rows_per_table, config.embedding_dim, rng, scale
        )
        for _ in range(config.num_tables)
    ]


def tables_allclose(
    left: Sequence[EmbeddingTable],
    right: Sequence[EmbeddingTable],
    atol: float = 0.0,
) -> bool:
    """True when two sets of tables hold (near-)identical weights."""
    if len(left) != len(right):
        return False
    return all(
        np.allclose(a.weights, b.weights, atol=atol, rtol=0.0)
        for a, b in zip(left, right)
    )

"""Deterministic fault injection for resilience testing.

The sweep/dispatch machinery (``repro.analysis.sweep``) promises to survive
worker crashes, stalls and transient I/O failures; this module is the tool
those promises are tested against.  A :class:`FaultPlan` — a list of
:class:`FaultSpec` records — is installed into the environment
(:data:`FAULT_PLAN_ENV`), so it crosses the process boundary into pool
workers for free, and library code calls :func:`fault_point` at named
sites.  When no plan is installed the call is a single dict lookup.

Instrumented sites (grow this list as subsystems gain hooks):

* ``"sweep.point"``   — entry of :func:`repro.analysis.sweep.run_point`;
  the *detail* is the point label (``system:locality:cache:metric``).
* ``"pipeline.stage"`` — the ScratchPipe metadata pipeline's Plan stage
  (detail ``"plan:<batch>"``), firing *inside* a running evaluation.
* ``"pipeline.executor"`` — the overlapped executor's planner workers
  (detail ``"plan:<batch>:shard:<shard>"``), firing in the *child*
  process; kill/stall here exercises the parent's liveness watchdog.
* ``"fetch.read"``     — each download attempt of
  :func:`repro.data.fetch.fetch_trace` (detail: the URL).

Determinism: arrivals at a site are counted per process, the optional
``probability`` gate is a pure function of ``(seed, site, arrival)`` (a
SplitMix64 hash, no global RNG), and the injection budget (``times``) is
enforced *across processes* through atomically-claimed ticket files in the
plan's ``state_dir`` — a killed-and-respawned worker that re-runs the same
point cannot be killed forever, because the budget travels with the plan,
not the process.

Fault modes:

* ``"kill"``  — ``SIGKILL`` the current process (an OOM killer stand-in).
* ``"raise"`` — raise :class:`InjectedFaultError`.
* ``"stall"`` — sleep ``stall_s`` seconds (drives per-point timeouts).
* ``"error"`` — raise ``urllib.error.URLError`` (a transient network
  failure, for the fetch retry path).
"""

from __future__ import annotations

import json
import os
import signal
import time
from collections import Counter
from contextlib import contextmanager
from dataclasses import asdict, dataclass
from functools import lru_cache
from typing import Iterator, Optional, Tuple
from repro._env import read_env, remove_env, write_env
from repro.errors import FaultSpecError

#: Environment variable carrying the JSON-encoded active plan.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: Fault modes a spec may name.
FAULT_MODES = ("kill", "raise", "stall", "error")


class InjectedFaultError(RuntimeError):
    """The error raised by ``mode="raise"`` faults (and only by them)."""


@dataclass(frozen=True)
class FaultSpec:
    """One fault to inject at a named site.

    Attributes:
        site: Instrumented site name (e.g. ``"sweep.point"``).
        mode: One of :data:`FAULT_MODES`.
        times: Total injection budget across *all* processes sharing the
            plan (enforced via ticket files in the plan's state dir).
        after: Arrivals at the site to let pass, per process, before the
            spec becomes eligible.
        match: Substring the site's ``detail`` must contain (empty: any).
        stall_s: Sleep length for ``mode="stall"``.
        probability: Chance of firing at an eligible arrival; decided by
            a pure hash of ``(seed, site, arrival)`` so runs replay.
        seed: Seed of the probability gate.
    """

    site: str
    mode: str
    times: int = 1
    after: int = 0
    match: str = ""
    stall_s: float = 60.0
    probability: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.mode not in FAULT_MODES:
            raise FaultSpecError(
                f"unknown fault mode {self.mode!r}; expected one of "
                f"{FAULT_MODES}"
            )
        if self.times < 1:
            raise FaultSpecError(f"times must be >= 1, got {self.times}")
        if not 0.0 <= self.probability <= 1.0:
            raise FaultSpecError(
                f"probability must be in [0, 1], got {self.probability}"
            )


@dataclass(frozen=True)
class FaultPlan:
    """An installable set of faults plus the shared ticket directory."""

    faults: Tuple[FaultSpec, ...]
    state_dir: str

    def to_json(self) -> str:
        return json.dumps(
            {
                "state_dir": self.state_dir,
                "faults": [asdict(spec) for spec in self.faults],
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        payload = json.loads(text)
        return cls(
            faults=tuple(FaultSpec(**spec) for spec in payload["faults"]),
            state_dir=payload["state_dir"],
        )


#: Per-process arrival counters, keyed by site name.
# repro-lint: disable=worker-capture -- deliberately per-process: fault
# specs count arrivals within one process, and _worker_init calls
# reset_arrivals() so spawn and fork workers start from zero alike.
_ARRIVALS: Counter = Counter()


def reset_arrivals() -> None:
    """Zero this process's arrival counters (fresh-worker semantics)."""
    _ARRIVALS.clear()


@lru_cache(maxsize=4)
def _parse_plan(encoded: str) -> FaultPlan:
    return FaultPlan.from_json(encoded)


def _mix64(value: int) -> int:
    """SplitMix64 finaliser: a high-quality 64-bit hash."""
    value = (value + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return value ^ (value >> 31)


def _fires(spec: FaultSpec, arrival: int) -> bool:
    """Pure probability gate: identical for every replay of the plan."""
    if spec.probability >= 1.0:
        return True
    if spec.probability <= 0.0:
        return False
    basis = _mix64(spec.seed * 0x10001 + arrival * 2 + len(spec.site))
    return (basis / 2.0**64) < spec.probability


def _claim_ticket(state_dir: str, spec_index: int, times: int) -> bool:
    """Atomically claim one of the spec's ``times`` injection tickets.

    ``O_CREAT | O_EXCL`` makes the claim race-free across the parent and
    every (possibly respawned) worker sharing the plan.
    """
    for k in range(times):
        path = os.path.join(state_dir, f"ticket-{spec_index}-{k}")
        try:
            os.close(os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
            return True
        except FileExistsError:
            continue
        except OSError:
            return False  # unusable state dir: never inject blindly
    return False


def injection_count(state_dir: str) -> int:
    """How many injections the plan sharing ``state_dir`` has fired."""
    try:
        return sum(
            1 for name in os.listdir(state_dir) if name.startswith("ticket-")
        )
    except OSError:
        return 0


def _fire(spec: FaultSpec, site: str, detail: str) -> None:
    if spec.mode == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
    if spec.mode == "stall":
        time.sleep(spec.stall_s)
        return
    if spec.mode == "error":
        import urllib.error

        raise urllib.error.URLError(
            f"injected transient failure at {site} ({detail})"
        )
    raise InjectedFaultError(f"injected fault at {site} ({detail})")


def fault_point(site: str, detail: str = "") -> None:
    """Library hook: maybe inject a fault at ``site``.

    A no-op (one environment lookup) unless a plan is installed in
    :data:`FAULT_PLAN_ENV`.  At most one spec fires per arrival — the
    first eligible one in plan order.
    """
    encoded = read_env(FAULT_PLAN_ENV)
    if not encoded:
        return
    plan = _parse_plan(encoded)
    arrival = _ARRIVALS[site]
    _ARRIVALS[site] = arrival + 1
    for index, spec in enumerate(plan.faults):
        if spec.site != site:
            continue
        if spec.match and spec.match not in detail:
            continue
        if arrival < spec.after:
            continue
        if not _fires(spec, arrival):
            continue
        if not _claim_ticket(plan.state_dir, index, spec.times):
            continue
        _fire(spec, site, detail)
        return


@contextmanager
def injected_faults(
    *specs: FaultSpec, state_dir: str
) -> Iterator[FaultPlan]:
    """Install a plan for the duration of a ``with`` block.

    The environment carries the plan into worker pools spawned inside the
    block; ``state_dir`` (caller-owned, typically a pytest ``tmp_path``)
    accumulates the claimed tickets — inspect progress with
    :func:`injection_count`.
    """
    os.makedirs(state_dir, exist_ok=True)
    plan = FaultPlan(faults=tuple(specs), state_dir=str(state_dir))
    previous = read_env(FAULT_PLAN_ENV)
    write_env(FAULT_PLAN_ENV, plan.to_json())
    reset_arrivals()
    try:
        yield plan
    finally:
        if previous is None:
            remove_env(FAULT_PLAN_ENV)
        else:
            write_env(FAULT_PLAN_ENV, previous)
        reset_arrivals()


def active_plan() -> Optional[FaultPlan]:
    """The currently installed plan, or ``None``."""
    encoded = read_env(FAULT_PLAN_ENV)
    if not encoded:
        return None
    return _parse_plan(encoded)

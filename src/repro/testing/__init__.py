"""Test-support utilities shipped with the library.

``repro.testing.faults`` is the deterministic fault-injection harness the
sweep-resilience tests (and the chaos CI leg) drive worker crashes,
stalls and transient network failures with.  It ships in the package —
not the test tree — because library code hosts the injection sites and
downstream users writing their own resilience tests need the same tool.
"""

from repro.testing.faults import (
    FAULT_PLAN_ENV,
    FAULT_MODES,
    FaultPlan,
    FaultSpec,
    InjectedFaultError,
    active_plan,
    fault_point,
    injected_faults,
    injection_count,
    reset_arrivals,
)

__all__ = [
    "FAULT_PLAN_ENV",
    "FAULT_MODES",
    "FaultPlan",
    "FaultSpec",
    "InjectedFaultError",
    "active_plan",
    "fault_point",
    "injected_faults",
    "injection_count",
    "reset_arrivals",
]

"""Plain-text table/series formatting shared by the benchmark harness.

Benchmarks print the same rows/series the paper's tables and figures report;
these helpers keep that output consistent and readable in CI logs.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence
from repro.errors import ExperimentConfigError


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Render an aligned monospace table."""
    materialised = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialised:
        if len(row) != len(headers):
            raise ExperimentConfigError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))
    out = [line(list(headers)), line(["-" * w for w in widths])]
    out.extend(line(row) for row in materialised)
    return "\n".join(out)


def format_series(name: str, xs: Sequence[object], ys: Sequence[float],
                  y_format: str = "{:.3f}") -> str:
    """Render one figure series as ``name: x=y, x=y, ...``."""
    if len(xs) != len(ys):
        raise ExperimentConfigError(f"xs ({len(xs)}) and ys ({len(ys)}) length mismatch")
    pairs = ", ".join(
        f"{x}={y_format.format(y)}" for x, y in zip(xs, ys)
    )
    return f"{name}: {pairs}"


def format_breakdown(name: str, groups: Mapping[str, float],
                     scale: float = 1e3, unit: str = "ms") -> str:
    """Render a stage/group breakdown as ``name: stage=12.3ms ...``."""
    parts = " ".join(
        f"{stage}={seconds * scale:.2f}{unit}" for stage, seconds in groups.items()
    )
    total = sum(groups.values()) * scale
    return f"{name}: {parts} total={total:.2f}{unit}"


def banner(title: str) -> str:
    """A section banner for benchmark output."""
    bar = "=" * max(8, len(title))
    return f"\n{bar}\n{title}\n{bar}"

"""Cross-validation of the analytic model against the functional simulator.

The reproduction has two layers that can disagree: the *analytic* closed
forms (Zipf hit-rate curves, capacity bounds) and the *simulated* cache
behaviour (the actual Hit-Map/Hold-mask machinery run over sampled traces).
This module measures their agreement, so regressions in either layer
surface as a widening gap rather than silently skewing reproduced figures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.data.datasets import locality_distribution
from repro.data.trace import SyntheticDataset, make_dataset
from repro.model.config import ModelConfig
from repro.api.factory import build_system
from repro.api.specs import CacheSpec, SystemSpec


@dataclass(frozen=True)
class ValidationReport:
    """Agreement between an analytic prediction and a simulated measurement.

    Attributes:
        quantity: What was compared.
        predicted: Analytic value.
        measured: Simulated value.
    """

    quantity: str
    predicted: float
    measured: float

    @property
    def absolute_error(self) -> float:
        """``|measured - predicted|``."""
        return abs(self.measured - self.predicted)

    def within(self, tolerance: float) -> bool:
        """True when the absolute error is inside ``tolerance``."""
        return self.absolute_error <= tolerance


def validate_static_hit_rate(
    config: ModelConfig,
    locality: str,
    cache_fraction: float,
    seed: int = 0,
    num_batches: int = 6,
) -> ValidationReport:
    """Analytic top-N hit rate vs the rate measured on a sampled trace."""
    distribution = locality_distribution(locality, config.rows_per_table)
    dataset = make_dataset(config, locality, seed=seed, num_batches=num_batches)
    hot_rows = int(cache_fraction * config.rows_per_table)
    hits = 0
    total = 0
    for index in range(num_batches):
        ids = dataset.batch(index).sparse_ids.reshape(-1)
        hits += int((ids < hot_rows).sum())
        total += ids.size
    return ValidationReport(
        quantity=f"static hit rate ({locality}, {cache_fraction:.0%})",
        predicted=distribution.hit_rate(cache_fraction),
        measured=hits / total,
    )


def validate_random_dynamic_hit_rate(
    config: ModelConfig,
    cache_fraction: float,
    hardware,
    seed: int = 0,
    measure_batches: int = 6,
) -> ValidationReport:
    """On a uniform trace, no policy beats capacity: the dynamic cache's
    steady-state unique-ID hit rate must approach ``cache_fraction``.

    Steady state requires the cache to be *full*, which takes roughly
    ``slots / unique-IDs-per-batch`` iterations of cold misses; the warm-up
    is sized accordingly before measuring.
    """
    slots = int(cache_fraction * config.rows_per_table)
    per_batch = config.batch_size * config.lookups_per_table
    warmup = -(-slots // per_batch) + 4  # ceil fill time + pipeline depth
    num_batches = warmup + measure_batches
    dataset = make_dataset(config, "random", seed=seed, num_batches=num_batches)
    system = build_system(
        SystemSpec(system="scratchpipe",
                   cache=CacheSpec(fraction=cache_fraction)),
        config, hardware,
    )
    stats = system.simulate_cache(dataset)
    measured = float(np.mean([s.hit_rate for s in stats[warmup:]]))
    return ValidationReport(
        quantity=f"dynamic hit rate (random, {cache_fraction:.0%})",
        predicted=cache_fraction,
        measured=measured,
    )


def validate_capacity_bound(
    config: ModelConfig,
    locality: str,
    seed: int = 0,
    num_batches: int = 10,
) -> ValidationReport:
    """The Section VI-D worst-case bound must dominate the simulated
    worst-case *live* working set of the sliding window."""
    from repro.core.scratchpad import required_slots

    dataset = make_dataset(config, locality, seed=seed, num_batches=num_batches)
    bound = required_slots(config, window_batches=6)
    worst_live = 0
    window: List[np.ndarray] = []
    for index in range(num_batches):
        window.append(dataset.batch(index).sparse_ids.reshape(-1))
        window = window[-6:]
        live = np.unique(np.concatenate(window)).size / config.num_tables
        worst_live = max(worst_live, int(np.ceil(live)))
    return ValidationReport(
        quantity=f"window working set ({locality})",
        predicted=float(bound),
        measured=float(worst_live),
    )


def run_validation_suite(
    config: ModelConfig, hardware, seed: int = 0
) -> Dict[str, ValidationReport]:
    """Run every analytic-vs-simulated check; keyed by quantity."""
    reports = [
        validate_static_hit_rate(config, "high", 0.02, seed=seed),
        validate_static_hit_rate(config, "low", 0.02, seed=seed),
        validate_random_dynamic_hit_rate(config, 0.10, hardware, seed=seed),
        validate_capacity_bound(config, "random", seed=seed),
    ]
    return {r.quantity: r for r in reports}

"""Shared-memory trace publication: the ``_PublishedTraces`` manager.

This module is the **only** place in ``src/repro`` allowed to touch
``multiprocessing.shared_memory`` — the ``shm-discipline`` rule in
:mod:`repro.lint` rejects direct use anywhere else.  Concentrating the
raw segment lifecycle (create/attach/close/unlink, the spawn-vs-fork
resource-tracker dance, the BufferError-safe release loop) behind one
seam is what made the PR 7 leak-proofing auditable; the lint rule keeps
it that way.

The flow, shared with :mod:`repro.analysis.sweep` (the sole consumer):

- The parent materialises each unique trace once and calls
  :func:`publish_trace`, which copies the stacked ID array into a fresh
  segment and records ``key -> (segment name, shape)`` in a manifest.
- Workers receive the manifest through :func:`install_manifest` (the
  pool initializer) and resolve traces via :func:`attach_shared_trace`,
  mapping zero-copy ``MiniBatch`` views onto the parent's segment.
- :class:`_PublishedTraces` owns segment lifetime in the parent:
  ``release`` gives every segment an independent close+unlink attempt on
  every exit path, so one failure never orphans the rest.
"""

from __future__ import annotations

from multiprocessing import shared_memory
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.data.trace import MaterialisedDataset, MiniBatch

#: Trace key -> (segment name, stacked shape).  An opaque-key view of
#: ``repro.analysis.sweep.TraceKey`` (element 0 is the ``ModelConfig``);
#: this module never inspects the rest of the tuple.
Manifest = Dict[Any, Tuple[str, Tuple[int, ...]]]

#: Worker-global registry of shared-memory traces: key -> (name, shape).
# repro-lint: disable=worker-capture -- parent installs the manifest via
# install_manifest() in the pool initializer before any point runs, so
# every process sees the same mapping; never mutated mid-grid.
_SHM_MANIFEST: Manifest = {}
#: Attached segments, pinned so the zero-copy batch views stay valid.
# repro-lint: disable=worker-capture -- process-local attach cache keyed
# by segment name; each process fills its own entries on first attach.
_SHM_ATTACHED: Dict[str, shared_memory.SharedMemory] = {}


def install_manifest(manifest: Manifest) -> None:
    """Adopt the parent's manifest (worker-pool initializer hook)."""
    _SHM_MANIFEST.update(manifest)


def attach_shared_trace(key: Any) -> Optional[MaterialisedDataset]:
    """Map a parent-published trace segment into zero-copy batches."""
    entry = _SHM_MANIFEST.get(key)
    if entry is None:
        return None
    name, shape = entry
    if name in _SHM_ATTACHED:
        segment = _SHM_ATTACHED[name]
    else:
        segment = shared_memory.SharedMemory(name=name)
        # The parent owns the segment's lifetime.  Under the spawn start
        # method each worker has its own resource tracker which would
        # tear the segment down (or warn) at worker exit, so the attach is
        # unregistered there (fixed upstream in 3.13 via track=False).
        # Under fork the tracker process is shared with the parent and its
        # registrations form a set — the worker's duplicate register is a
        # no-op and unregistering would cancel the parent's entry.
        try:  # pragma: no cover - depends on interpreter internals
            import multiprocessing

            if multiprocessing.get_start_method(allow_none=True) != "fork":
                from multiprocessing import resource_tracker

                resource_tracker.unregister(segment._name, "shared_memory")
        except Exception:
            pass
        _SHM_ATTACHED[name] = segment
    stacked = np.ndarray(shape, dtype=np.int64, buffer=segment.buf)
    config = key[0]
    batches = [
        MiniBatch(index=i, sparse_ids=stacked[i]) for i in range(shape[0])
    ]
    return MaterialisedDataset.from_batches(config, batches)


def publish_trace(
    key: Any,
    trace: MaterialisedDataset,
    manifest: Manifest,
    segments: List[shared_memory.SharedMemory],
) -> None:
    """Publish one materialised trace into a fresh shared segment.

    Appends the created segment to the caller-owned ``segments`` *before*
    filling it, so a mid-fill failure still releases it.  Dense-bearing
    traces are skipped (sweep traces are ID-only today): workers fall
    back to per-key regeneration rather than silently receiving a
    sparse-only copy.
    """
    first = trace.batch(0)
    if first.dense is not None:
        return
    # Fill the segment batch-by-batch: stacking first would briefly
    # hold a second full copy of the trace in the parent.
    shape = (len(trace),) + first.sparse_ids.shape
    nbytes = int(np.prod(shape)) * np.dtype(np.int64).itemsize
    segment = shared_memory.SharedMemory(create=True, size=nbytes)
    segments.append(segment)
    view = np.ndarray(shape, dtype=np.int64, buffer=segment.buf)
    for i in range(len(trace)):
        view[i] = trace.batch(i).sparse_ids
    # Drop the numpy view before the segment can be closed: a live
    # export of ``segment.buf`` turns ``close()`` into a BufferError.
    del view
    manifest[key] = (segment.name, shape)


class _PublishedTraces:
    """Exception-safe owner of one grid run's shared-memory segments.

    The pre-PR-7 lifecycle was a ``try/finally`` whose per-segment
    ``except OSError`` aborted the loop on any *other* exception (e.g. the
    ``BufferError`` a still-exported memoryview raises from ``close()``),
    orphaning every later segment.  Here release is unconditional:
    each segment gets an independent close and unlink attempt on every
    exit path — mid-publish failures, worker crashes, quarantined grids —
    and one failure never skips the rest.
    """

    def __init__(self) -> None:
        self.manifest: Manifest = {}
        self.segments: List[shared_memory.SharedMemory] = []

    def release(self) -> None:
        """Close and unlink every published segment; never raises."""
        segments, self.segments = self.segments, []
        self.manifest.clear()
        for segment in segments:
            try:
                segment.close()
            except Exception:  # pragma: no cover - close is best-effort
                pass
            try:
                segment.unlink()
            except Exception:  # pragma: no cover - already unlinked
                pass

    def __enter__(self) -> "_PublishedTraces":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()

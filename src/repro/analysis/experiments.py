"""One entry point per paper experiment (every evaluation table and figure).

Each function regenerates the rows/series of one figure or table of the
paper's Section VI using the timing substrate and the system designs.  The
benchmark suite in ``benchmarks/`` is a thin printing/asserting wrapper
around these functions — keeping the experiment logic importable and
unit-testable.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ExperimentConfigError
from repro.analysis.cost import CostRow, multi_gpu_row, scratchpipe_row
from repro.analysis.locality import access_count_curve, dataset_hit_rate_curves
from repro.analysis.sweep import SweepPoint, run_grid
from repro.api.factory import build_system
from repro.api.specs import (
    CacheSpec,
    SystemSpec,
    parse_cache_spec,
    uniform_system_spec,
)
from repro.core.scratchpad import worst_case_storage_bytes
from repro.data.datasets import DATASET_PROFILES, LOCALITY_CLASSES
from repro.data.scenarios import (
    CorrelationSpec,
    DriftSpec,
    ScenarioSpec,
    build_scenario,
)
from repro.data.io import TraceFileSpec
from repro.data.trace import MaterialisedDataset, make_dataset
from repro.hardware.spec import DEFAULT_HARDWARE, HardwareSpec
from repro.model.config import ModelConfig
from repro.systems.base import SystemRunResult, TrainingSystem

#: Cache-fraction sweep used by Figures 12 and 13 (2% .. 10%).
CACHE_FRACTIONS = (0.02, 0.04, 0.06, 0.08, 0.10)

#: Default trace length for timing experiments — long enough for the
#: dynamic caches to reach steady state past the 6-deep pipeline warm-up.
DEFAULT_NUM_BATCHES = 24

#: Warm-up iterations excluded from steady-state means.
WARMUP = 8


def effective_warmup(num_batches: int, warmup: int = WARMUP) -> int:
    """Largest warm-up that still leaves a steady-state sample.

    The steady-state reductions now *refuse* to trim an entire run
    (:class:`repro.systems.base.InsufficientSteadyStateError`) instead of
    silently averaging warm-up iterations.  Figure presets keep their
    paper warm-up at the default trace lengths, but short exploratory
    runs (``repro.cli --batches 8``) clamp to ``num_batches - 1`` so one
    deterministic steady-state sample always remains.
    """
    return min(warmup, max(num_batches - 1, 0))


@lru_cache(maxsize=4)
def _materialise_file_trace(
    trace_file: TraceFileSpec, config: ModelConfig, num_batches: int
) -> MaterialisedDataset:
    """Memoised :meth:`TraceFileSpec.materialise` per (spec, config, length).

    Figures iterate several locality labels over one setup; without the
    memo each label would re-verify and re-parse the same file.
    """
    return trace_file.materialise(config, num_batches)


@dataclass(frozen=True)
class ExperimentSetup:
    """Shared experiment parameters.

    Attributes:
        config: Model geometry (paper defaults unless a sweep overrides).
        hardware: Node being modelled.
        num_batches: Trace length per (locality, system) point.
        seed: Trace seed.
        scenario: Optional time-varying workload applied to every trace
            this setup builds.  ``None`` (the default) keeps the stationary
            legacy path bit-identical; any :class:`ScenarioSpec` re-runs
            the same figure under that scenario's processes, with each
            figure point's locality class as the base skew.
        trace_file: Optional real-trace file
            (:class:`~repro.data.io.TraceFileSpec`).  When set, every
            figure point replays the file instead of a synthetic trace —
            the locality argument becomes a label — and ``config`` should
            be the geometry the spec maps onto
            (``trace_file.configure(...)``).  Mutually exclusive with a
            non-stationary ``scenario``.
        executor: Stage-execution backend every point of this setup runs
            under (``repro.core.executor`` registry).  The default
            ``"serial"`` keeps spec-less points on the legacy path; any
            other name makes :meth:`point` attach a full
            :class:`~repro.api.SystemSpec` carrying the executor, so
            sweep workers build their systems with it.  All backends are
            bit-identical — figure output never depends on this field.
    """

    config: ModelConfig = field(default_factory=ModelConfig)
    hardware: HardwareSpec = field(default_factory=lambda: DEFAULT_HARDWARE)
    num_batches: int = DEFAULT_NUM_BATCHES
    seed: int = 0
    scenario: Optional[ScenarioSpec] = None
    trace_file: Optional[TraceFileSpec] = None
    executor: str = "serial"

    def __post_init__(self) -> None:
        if (
            self.trace_file is not None
            and self.scenario is not None
            and not self.scenario.is_stationary
        ):
            raise ExperimentConfigError(
                "a file-backed trace replays recorded batches; scenario "
                "processes cannot be applied on top — drop one of "
                "trace_file / scenario"
            )
        from repro.core.executor import registered_executors

        if self.executor not in registered_executors():
            raise ExperimentConfigError(
                f"unknown executor {self.executor!r}; registered: "
                f"{', '.join(registered_executors())}"
            )

    def trace(self, locality: str) -> MaterialisedDataset:
        """Materialise the benchmark trace for one locality class.

        With a ``trace_file`` the file is authoritative and ``locality``
        only labels the point.
        """
        if self.trace_file is not None:
            return _materialise_file_trace(
                self.trace_file, self.config, self.num_batches
            )
        if self.scenario is not None and not self.scenario.is_stationary:
            source = build_scenario(
                self.config,
                self.scenario.with_locality(locality),
                seed=self.seed,
                num_batches=self.num_batches,
            )
            return MaterialisedDataset(source)
        dataset = make_dataset(
            self.config, locality, seed=self.seed, num_batches=self.num_batches
        )
        return MaterialisedDataset(dataset)

    def point(
        self,
        system: str,
        locality: str,
        cache_fraction: float,
        warmup: int,
        metric: str = "mean_latency",
        policy_name: str = "lru",
        system_spec: "Optional[SystemSpec]" = None,
        arrivals: "Optional[object]" = None,
        serve: "Optional[object]" = None,
    ) -> SweepPoint:
        """Describe one grid evaluation of this setup for the sweep runner.

        ``system_spec`` attaches a full :class:`~repro.api.SystemSpec`
        (heterogeneous caches, plugin systems); when given, ``system`` is
        derived from it and ``cache_fraction``/``policy_name`` only label
        the point.  ``arrivals``/``serve`` carry the live-replay specs of
        ``"serve"``-metric points.

        The warm-up is clamped via :func:`effective_warmup` so preset
        figures keep working on short ``--batches`` runs: at the default
        trace lengths the clamp is the identity.
        """
        if system_spec is not None:
            system = system_spec.system
        if self.executor != "serial":
            if system_spec is None:
                # Mirror SweepPoint.resolved_system_spec's synthesis so
                # the only difference a non-serial setup introduces is
                # the executor name.
                fraction: Optional[float] = cache_fraction
                if system in ("hybrid", "overlapped_hybrid", "multi_gpu"):
                    fraction = None
                system_spec = uniform_system_spec(
                    system, fraction, policy=policy_name
                )
            system_spec = replace(
                system_spec,
                pipeline=replace(
                    system_spec.pipeline, executor=self.executor
                ),
            )
        return SweepPoint(
            system=system,
            locality=locality,
            cache_fraction=cache_fraction,
            seed=self.seed,
            num_batches=self.num_batches,
            config=self.config,
            hardware=self.hardware,
            warmup=effective_warmup(self.num_batches, warmup),
            metric=metric,
            policy_name=policy_name,
            scenario=self.scenario,
            system_spec=system_spec,
            trace_file=self.trace_file,
            arrivals=arrivals,
            serve=serve,
        )

    def build(self, spec: "SystemSpec | str") -> TrainingSystem:
        """Build a system against this setup's config + hardware."""
        return build_system(spec, self.config, self.hardware)


# ----------------------------------------------------------------------
# Figure 3 — sorted access counts of the four dataset profiles
# ----------------------------------------------------------------------
def fig3_access_counts(
    num_rows: int = 10_000_000,
    total_accesses: int = 100_000_000,
    n_points: int = 1000,
) -> Dict[str, np.ndarray]:
    """Sorted access-count curves, one per dataset profile."""
    return {
        profile.name: access_count_curve(
            profile.distribution(num_rows), total_accesses, n_points
        )
        for profile in DATASET_PROFILES
    }


# ----------------------------------------------------------------------
# Figure 5 — training-time breakdown: hybrid vs static 2% / 10%
# ----------------------------------------------------------------------
def fig5_breakdown(
    setup: Optional[ExperimentSetup] = None,
    cache_fractions: Sequence[float] = (0.02, 0.10),
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Per-group latency (seconds) for each locality and design.

    Returns ``{locality: {design: {group: seconds}}}`` with designs
    ``"hybrid"``, ``"static_2%"`` etc.
    """
    setup = setup or ExperimentSetup()
    out: Dict[str, Dict[str, Dict[str, float]]] = {}
    for locality in LOCALITY_CLASSES:
        trace = setup.trace(locality)
        designs: Dict[str, Dict[str, float]] = {}
        hybrid = setup.build(SystemSpec(system="hybrid"))
        designs["hybrid"] = hybrid.run_trace(trace).group_means(warmup=0)
        for fraction in cache_fractions:
            system = setup.build(SystemSpec(
                system="static_cache", cache=CacheSpec(fraction=fraction)
            ))
            label = f"static_{int(fraction * 100)}%"
            designs[label] = system.run_trace(trace).group_means(warmup=0)
        out[locality] = designs
    return out


# ----------------------------------------------------------------------
# Figure 6 — static-cache hit rate vs cache size
# ----------------------------------------------------------------------
def fig6_hit_rate(
    cache_fractions: Optional[Sequence[float]] = None,
    num_rows: int = 10_000_000,
) -> Tuple[np.ndarray, Dict[str, np.ndarray]]:
    """Hit-rate curves of the four dataset profiles (Figure 6)."""
    if cache_fractions is None:
        cache_fractions = np.linspace(0.01, 1.0, 100)
    fractions = np.asarray(cache_fractions, dtype=np.float64)
    return fractions, dataset_hit_rate_curves(fractions, num_rows)


# ----------------------------------------------------------------------
# Figures 12(a)/(b) — latency breakdowns
# ----------------------------------------------------------------------
def fig12a_baseline_latency(
    setup: Optional[ExperimentSetup] = None,
    cache_fractions: Sequence[float] = CACHE_FRACTIONS,
    workers: int = 1,
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Baseline (0%) and static-cache (2-10%) group breakdowns."""
    setup = setup or ExperimentSetup()
    points = []
    for locality in LOCALITY_CLASSES:
        points.append(setup.point("hybrid", locality, 0.0, 0, "group_means"))
        for fraction in cache_fractions:
            points.append(
                setup.point("static_cache", locality, fraction, 0, "group_means")
            )
    results = iter(run_grid(points, workers=workers))
    out: Dict[str, Dict[str, Dict[str, float]]] = {}
    for locality in LOCALITY_CLASSES:
        designs: Dict[str, Dict[str, float]] = {"0%": next(results)}
        for fraction in cache_fractions:
            designs[f"{int(fraction * 100)}%"] = next(results)
        out[locality] = designs
    return out


def fig12b_scratchpipe_latency(
    setup: Optional[ExperimentSetup] = None,
    cache_fractions: Sequence[float] = CACHE_FRACTIONS,
    workers: int = 1,
    localities: Sequence[str] = LOCALITY_CLASSES,
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """ScratchPipe per-stage latency for each locality and cache size."""
    setup = setup or ExperimentSetup()
    points = [
        setup.point("scratchpipe", locality, fraction, WARMUP, "stage_means")
        for locality in localities
        for fraction in cache_fractions
    ]
    results = iter(run_grid(points, workers=workers))
    out: Dict[str, Dict[str, Dict[str, float]]] = {}
    for locality in localities:
        out[locality] = {
            f"{int(fraction * 100)}%": next(results)
            for fraction in cache_fractions
        }
    return out


# ----------------------------------------------------------------------
# Figure 13 — end-to-end speedup (normalised to the static cache)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SpeedupPoint:
    """All four designs' latencies at one (locality, cache size) point."""

    locality: str
    cache_fraction: float
    hybrid_s: float
    static_s: float
    strawman_s: float
    scratchpipe_s: float

    def speedups(self) -> Dict[str, float]:
        """Speedups normalised to the static cache (Figure 13's y-axis)."""
        return {
            "hybrid": self.static_s / self.hybrid_s,
            "static_cache": 1.0,
            "strawman": self.static_s / self.strawman_s,
            "scratchpipe": self.static_s / self.scratchpipe_s,
        }


def fig13_speedup(
    setup: Optional[ExperimentSetup] = None,
    cache_fractions: Sequence[float] = CACHE_FRACTIONS,
    localities: Sequence[str] = LOCALITY_CLASSES,
    workers: int = 1,
) -> List[SpeedupPoint]:
    """End-to-end latency of the four designs across the full sweep.

    ``workers=1`` evaluates the grid serially (bit-identical reference);
    larger values fan the independent (system, locality, fraction) points
    across processes with identical results.
    """
    setup = setup or ExperimentSetup()
    grid = []
    for locality in localities:
        grid.append(setup.point("hybrid", locality, 0.0, 0))
        for fraction in cache_fractions:
            grid.append(setup.point("static_cache", locality, fraction, 0))
            grid.append(setup.point("strawman", locality, fraction, WARMUP))
            grid.append(setup.point("scratchpipe", locality, fraction, WARMUP))
    results = iter(run_grid(grid, workers=workers))
    points: List[SpeedupPoint] = []
    for locality in localities:
        hybrid_s = next(results)
        for fraction in cache_fractions:
            points.append(
                SpeedupPoint(
                    locality=locality,
                    cache_fraction=fraction,
                    hybrid_s=hybrid_s,
                    static_s=next(results),
                    strawman_s=next(results),
                    scratchpipe_s=next(results),
                )
            )
    return points


# ----------------------------------------------------------------------
# Figure 14 — energy
# ----------------------------------------------------------------------
def fig14_energy(
    setup: Optional[ExperimentSetup] = None,
    cache_fraction: float = 0.02,
    localities: Sequence[str] = LOCALITY_CLASSES,
) -> Dict[str, Dict[str, float]]:
    """Per-iteration energy (J) of static cache vs ScratchPipe."""
    setup = setup or ExperimentSetup()
    cache = CacheSpec(fraction=cache_fraction)
    out: Dict[str, Dict[str, float]] = {}
    for locality in localities:
        trace = setup.trace(locality)
        static = setup.build(
            SystemSpec(system="static_cache", cache=cache)
        ).run_trace(trace)
        scratchpipe = setup.build(
            SystemSpec(system="scratchpipe", cache=cache)
        ).run_trace(trace)
        out[locality] = {
            "static_cache": static.mean_energy(warmup=0),
            "scratchpipe": scratchpipe.mean_energy(
                warmup=effective_warmup(setup.num_batches)
            ),
        }
    return out


# ----------------------------------------------------------------------
# Figure 15 — sensitivity sweeps
# ----------------------------------------------------------------------
def _reject_file_trace(base: "ExperimentSetup", what: str) -> None:
    """Geometry sweeps rebuild configs per point; a fixed-geometry trace
    file cannot follow them — fail loudly instead of silently reverting
    to synthetic traces."""
    if base.trace_file is not None:
        raise ExperimentConfigError(
            f"{what} sweeps the model geometry; the file-backed trace "
            f"{base.trace_file.path!r} has a fixed geometry and cannot "
            "follow it — drop ExperimentSetup.trace_file"
        )


def fig15a_dim_sensitivity(
    dims: Sequence[int] = (64, 128, 256),
    cache_fraction: float = 0.02,
    base: Optional[ExperimentSetup] = None,
    workers: int = 1,
) -> List[SpeedupPoint]:
    """Speedups when sweeping the embedding dimension (Figure 15(a))."""
    base = base or ExperimentSetup()
    _reject_file_trace(base, "fig15a")
    points: List[SpeedupPoint] = []
    for dim in dims:
        bottom = tuple(base.config.bottom_mlp[:-1]) + (dim,)
        config = base.config.scaled(embedding_dim=dim, bottom_mlp=bottom)
        setup = ExperimentSetup(
            config=config,
            hardware=base.hardware,
            num_batches=base.num_batches,
            seed=base.seed,
        )
        for point in fig13_speedup(
            setup, cache_fractions=(cache_fraction,), workers=workers
        ):
            points.append(
                SpeedupPoint(
                    locality=f"{point.locality}/dim={dim}",
                    cache_fraction=point.cache_fraction,
                    hybrid_s=point.hybrid_s,
                    static_s=point.static_s,
                    strawman_s=point.strawman_s,
                    scratchpipe_s=point.scratchpipe_s,
                )
            )
    return points


def fig15b_lookup_sensitivity(
    lookups: Sequence[int] = (1, 20, 50),
    cache_fraction: float = 0.10,
    base: Optional[ExperimentSetup] = None,
    workers: int = 1,
) -> List[SpeedupPoint]:
    """Speedups when sweeping lookups per table (Figure 15(b)).

    The default cache is 10% (within the paper's 2-10% study range): 50
    lookups per table inflate the hazard window's worst-case working set
    to ~4.1% of the table, so the 2% fraction the other figures default
    to sits below the build-time hazard floor at the widest point (and
    pre-floor it deadlocked mid-run with ``CachePressureError`` on the
    unskewed "random" locality).
    """
    base = base or ExperimentSetup()
    _reject_file_trace(base, "fig15b")
    points: List[SpeedupPoint] = []
    for n_lookups in lookups:
        config = base.config.scaled(lookups_per_table=n_lookups)
        setup = ExperimentSetup(
            config=config,
            hardware=base.hardware,
            num_batches=base.num_batches,
            seed=base.seed,
        )
        for point in fig13_speedup(
            setup, cache_fractions=(cache_fraction,), workers=workers
        ):
            points.append(
                SpeedupPoint(
                    locality=f"{point.locality}/lookups={n_lookups}",
                    cache_fraction=point.cache_fraction,
                    hybrid_s=point.hybrid_s,
                    static_s=point.static_s,
                    strawman_s=point.strawman_s,
                    scratchpipe_s=point.scratchpipe_s,
                )
            )
    return points


def replacement_policy_sensitivity(
    setup: Optional[ExperimentSetup] = None,
    cache_fraction: float = 0.02,
    policies: Sequence[str] = ("lru", "lfu", "random"),
    workers: int = 1,
    localities: Sequence[str] = LOCALITY_CLASSES,
) -> Dict[str, Dict[str, float]]:
    """ScratchPipe latency per replacement policy (Section VI-E)."""
    setup = setup or ExperimentSetup()
    grid = [
        setup.point(
            "scratchpipe", locality, cache_fraction, WARMUP, policy_name=policy
        )
        for locality in localities
        for policy in policies
    ]
    results = iter(run_grid(grid, workers=workers))
    return {
        locality: {policy: next(results) for policy in policies}
        for locality in localities
    }


def batch_size_sensitivity(
    batch_sizes: Sequence[int] = (512, 2048, 4096),
    cache_fraction: float = 0.06,
    base: Optional[ExperimentSetup] = None,
    localities: Sequence[str] = ("medium",),
    workers: int = 1,
) -> List[SpeedupPoint]:
    """Speedups when sweeping the mini-batch size (Section VI-E).

    The default cache is 6% (the VI-E benchmark's sizing): the 4096
    batch point pushes the hazard window's worst-case working set to
    ~3.3% of the table, over the 2% default the fixed-geometry figures
    use.
    """
    base = base or ExperimentSetup()
    _reject_file_trace(base, "batch-size sensitivity")
    points: List[SpeedupPoint] = []
    for batch_size in batch_sizes:
        config = base.config.scaled(batch_size=batch_size)
        setup = ExperimentSetup(
            config=config,
            hardware=base.hardware,
            num_batches=base.num_batches,
            seed=base.seed,
        )
        for point in fig13_speedup(
            setup, cache_fractions=(cache_fraction,), localities=localities,
            workers=workers,
        ):
            points.append(
                SpeedupPoint(
                    locality=f"{point.locality}/batch={batch_size}",
                    cache_fraction=point.cache_fraction,
                    hybrid_s=point.hybrid_s,
                    static_s=point.static_s,
                    strawman_s=point.strawman_s,
                    scratchpipe_s=point.scratchpipe_s,
                )
            )
    return points


def mlp_intensity_sensitivity(
    width_multipliers: Sequence[int] = (1, 2, 4),
    cache_fraction: float = 0.02,
    base: Optional[ExperimentSetup] = None,
    localities: Sequence[str] = ("medium",),
    workers: int = 1,
) -> List[SpeedupPoint]:
    """Speedups for increasingly MLP-intensive models (Section VI-E).

    The paper reports testing "more MLP-intensive (and less embedding
    intensive) models" and omits the numbers; we widen every top-MLP layer
    by the given multipliers.  ScratchPipe's advantage should shrink as the
    dense network grows (the embedding bottleneck it removes matters less)
    while remaining above 1x.
    """
    base = base or ExperimentSetup()
    _reject_file_trace(base, "MLP-intensity sensitivity")
    points: List[SpeedupPoint] = []
    for multiplier in width_multipliers:
        top = tuple(h * multiplier for h in base.config.top_mlp[:-1]) + (1,)
        config = base.config.scaled(top_mlp=top)
        setup = ExperimentSetup(
            config=config,
            hardware=base.hardware,
            num_batches=base.num_batches,
            seed=base.seed,
        )
        for point in fig13_speedup(
            setup, cache_fractions=(cache_fraction,), localities=localities,
            workers=workers,
        ):
            points.append(
                SpeedupPoint(
                    locality=f"{point.locality}/mlp_x{multiplier}",
                    cache_fraction=point.cache_fraction,
                    hybrid_s=point.hybrid_s,
                    static_s=point.static_s,
                    strawman_s=point.strawman_s,
                    scratchpipe_s=point.scratchpipe_s,
                )
            )
    return points


# ----------------------------------------------------------------------
# Locality-sensitivity studies — the scenarios the paper motivates
# (temporal stability of the hot set) but never stresses
# ----------------------------------------------------------------------
def drift_sensitivity(
    setup: Optional[ExperimentSetup] = None,
    drift_rates: Sequence[float] = (0.0, 1.0, 4.0, 16.0, 64.0),
    cache_fraction: float = 0.02,
    localities: Sequence[str] = ("medium", "high"),
    workers: int = 1,
    cache: Optional[CacheSpec] = None,
) -> Dict[str, Dict[float, float]]:
    """ScratchPipe Plan-stage hit rate vs hot-set drift rate.

    Rate 0 is the drift-free baseline; larger rates rotate the popularity
    head faster (rows per batch).  The pipeline's 2-batch look-forward
    tracks drift far better than popularity caching would, but hit rate
    must still fall as the head outruns the scratchpad — this study
    quantifies how fast.

    Any other processes on ``setup.scenario`` are kept: the sweep replaces
    only the drift component, so churn/burst/diurnal backdrops compose
    with the swept rate.  ``cache`` overrides the uniform
    ``cache_fraction`` with an arbitrary (possibly per-table) CacheSpec.

    Returns ``{locality: {drift_rate: hit_rate}}``.
    """
    setup = setup or ExperimentSetup()
    base_spec = setup.scenario or ScenarioSpec()
    system_spec = None
    if cache is not None:
        system_spec = SystemSpec(system="scratchpipe", cache=cache)
    grid = []
    for locality in localities:
        for rate in drift_rates:
            scenario = replace(
                base_spec, drift=DriftSpec(rate=rate) if rate > 0 else None
            )
            point_setup = replace(setup, scenario=scenario)
            grid.append(
                point_setup.point(
                    "scratchpipe", locality, cache_fraction, WARMUP,
                    metric="hit_rate", system_spec=system_spec,
                )
            )
    results = iter(run_grid(grid, workers=workers))
    return {
        locality: {rate: next(results) for rate in drift_rates}
        for locality in localities
    }


def scenario_comparison(
    scenarios: Dict[str, Optional[ScenarioSpec]],
    setup: Optional[ExperimentSetup] = None,
    cache_fraction: float = 0.02,
    locality: str = "medium",
    workers: int = 1,
    cache: Optional[CacheSpec] = None,
) -> Dict[str, Dict[str, float]]:
    """ScratchPipe latency and hit rate under each named scenario.

    Returns ``{scenario_name: {"mean_latency": s, "hit_rate": r}}`` —
    the whole-figure view of how time-varying workloads move both the
    cache behaviour and the end-to-end iteration time.  ``cache``
    overrides the uniform ``cache_fraction`` with an arbitrary (possibly
    per-table) CacheSpec.
    """
    setup = setup or ExperimentSetup()
    system_spec = None
    if cache is not None:
        system_spec = SystemSpec(system="scratchpipe", cache=cache)
    grid = []
    names = list(scenarios)
    for name in names:
        point_setup = replace(setup, scenario=scenarios[name])
        grid.append(
            point_setup.point(
                "scratchpipe", locality, cache_fraction, WARMUP,
                system_spec=system_spec,
            )
        )
        grid.append(
            point_setup.point(
                "scratchpipe", locality, cache_fraction, WARMUP,
                metric="hit_rate", system_spec=system_spec,
            )
        )
    results = iter(run_grid(grid, workers=workers))
    return {
        name: {"mean_latency": next(results), "hit_rate": next(results)}
        for name in names
    }


def serve_latency_grid(
    arrivals,
    setup: Optional[ExperimentSetup] = None,
    cache_fractions: Sequence[float] = (0.02,),
    rates: Optional[Sequence[float]] = None,
    locality: str = "medium",
    serve=None,
    workers: int = 1,
) -> Dict[Tuple[float, float], object]:
    """Live-replay tail latency over {cache fraction x arrival rate}.

    The figure family the paper's "heavy traffic" framing implies but
    never plots: for each cache fraction and offered arrival rate, replay
    the trace as open-loop traffic and report the full
    :class:`repro.serve.ServeReport` — p50/p95/p99 per-stage latency and
    the SLA-violation rate.  ``arrivals`` is the base
    :class:`~repro.serve.ArrivalSpec`; ``rates`` (default: just
    ``arrivals.rate``) sweeps its rate axis.  ``serve`` optionally carries
    the queueing/admission/SLA configuration applied at every cell.

    Returns ``{(cache_fraction, rate): ServeReport}``.  Points flow
    through :func:`run_grid`, so worker counts, checkpoints and resume
    all behave exactly like every other figure.
    """
    from repro.serve import ServeSpec

    setup = setup or ExperimentSetup()
    rates = tuple(rates) if rates is not None else (arrivals.rate,)
    base = serve if serve is not None else ServeSpec(arrivals=arrivals)
    warmup = effective_warmup(setup.num_batches)
    grid = []
    cells = []
    for fraction in cache_fractions:
        for rate in rates:
            cell_serve = replace(base, arrivals=replace(arrivals, rate=rate))
            grid.append(
                setup.point(
                    "scratchpipe", locality, fraction, warmup,
                    metric="serve", serve=cell_serve,
                )
            )
            cells.append((fraction, rate))
    results = run_grid(grid, workers=workers)
    return dict(zip(cells, results))


def default_heterogeneous_splits(
    num_tables: int,
) -> Dict[str, CacheSpec]:
    """Budget-matched cache splits for :func:`heterogeneous_cache`.

    The heterogeneous split doubles table 0's cache (4 %) over the paper's
    smallest evaluated fraction (2 %) for the rest — 2 % is the floor the
    hazard window demands at the default geometry (see
    ``repro.core.scratchpad.required_slots``; smaller splits like the CLI's
    ``rest=0.005`` example are valid on geometries with fewer lookups per
    batch).  The uniform comparison point spends the *same total slot
    budget* spread evenly, so any hit-rate difference is allocation, not
    capacity.
    """
    hetero = parse_cache_spec("table0=0.04,rest=0.02")
    uniform_fraction = (0.04 + (num_tables - 1) * 0.02) / num_tables
    return {
        f"uniform={uniform_fraction:g}": CacheSpec(fraction=uniform_fraction),
        "table0=0.04,rest=0.02": hetero,
    }


def heterogeneous_cache(
    setup: Optional[ExperimentSetup] = None,
    rhos: Sequence[float] = (0.0, 0.25, 0.5, 0.75),
    cache_specs: Optional[Dict[str, CacheSpec]] = None,
    locality: str = "medium",
    workers: int = 1,
) -> Dict[str, Dict[float, Dict[str, object]]]:
    """Hit rate vs {correlation rho x per-table cache split}.

    The ROADMAP matrix cell the SystemSpec layer unblocks: under the PR 3
    cross-table correlation scenario, tables increasingly touch the *same*
    rows per batch, so the marginal value of each table's private cache
    shifts — a heterogeneous split (one big cache, small caches elsewhere)
    and a budget-matched uniform split trade places as rho grows.  Each
    grid point ships a ``(SystemSpec, ScenarioSpec)`` pair through the
    spec-only worker dispatch and streams the pipeline once per cell (the
    ``cache_stats`` metric carries both reductions back).

    Any processes on ``setup.scenario`` other than correlation are kept
    (the sweep replaces only the correlation component).

    Returns ``{split_name: {rho: {"hit_rate": float,
    "per_table": (rate, ...)}}}``.
    """
    setup = setup or ExperimentSetup()
    if cache_specs is None:
        cache_specs = default_heterogeneous_splits(setup.config.num_tables)
    base_spec = setup.scenario or ScenarioSpec()
    grid = []
    for name, cache in cache_specs.items():
        system_spec = SystemSpec(system="scratchpipe", cache=cache)
        for rho in rhos:
            scenario = replace(
                base_spec,
                correlation=CorrelationSpec(rho=rho) if rho > 0 else None,
            )
            point_setup = replace(setup, scenario=scenario)
            grid.append(
                point_setup.point(
                    "scratchpipe", locality, 0.0, WARMUP,
                    metric="cache_stats", system_spec=system_spec,
                )
            )
    results = iter(run_grid(grid, workers=workers))
    out: Dict[str, Dict[float, Dict[str, object]]] = {}
    for name in cache_specs:
        out[name] = {}
        for rho in rhos:
            aggregate = next(results)
            out[name][rho] = {
                "hit_rate": aggregate.hit_rate,
                "per_table": aggregate.per_table_hit_rates(),
            }
    return out


# ----------------------------------------------------------------------
# Table I — training cost vs the 8-GPU system
# ----------------------------------------------------------------------
def table1_cost(
    setup: Optional[ExperimentSetup] = None,
    cache_fraction: float = 0.02,
    num_gpus: int = 8,
    localities: Sequence[str] = LOCALITY_CLASSES,
) -> List[Tuple[CostRow, CostRow]]:
    """(ScratchPipe row, 8-GPU row) per locality class."""
    setup = setup or ExperimentSetup()
    rows: List[Tuple[CostRow, CostRow]] = []
    for locality in localities:
        trace = setup.trace(locality)
        sp_latency = setup.build(SystemSpec(
            system="scratchpipe", cache=CacheSpec(fraction=cache_fraction)
        )).run_trace(trace).mean_latency(
            warmup=effective_warmup(setup.num_batches)
        )
        mg_latency = setup.build(SystemSpec(
            system="multi_gpu", num_gpus=num_gpus
        )).run_trace(trace).mean_latency(warmup=0)
        rows.append(
            (
                scratchpipe_row(locality.capitalize(), sp_latency),
                multi_gpu_row(locality.capitalize(), mg_latency),
            )
        )
    return rows


# ----------------------------------------------------------------------
# Section VI-D — implementation overhead
# ----------------------------------------------------------------------
def overhead_vi_d(config: Optional[ModelConfig] = None) -> Dict[str, float]:
    """The Storage-array sizing numbers of Section VI-D (bytes)."""
    config = config or ModelConfig()
    worst_case = worst_case_storage_bytes(config, window_batches=6)
    # Hit-Map: (8 B key + 4 B value + ~20 B container overhead) per cached
    # row; Section VI-D quotes "<1 GB" for a 10% cache of 80M rows.
    hitmap_bytes = int(0.10 * config.num_tables * config.rows_per_table) * 32
    misc_bytes = 300 * 10 ** 6  # "other miscellaneous data structures"
    return {
        "storage_worst_case_bytes": float(worst_case),
        "hitmap_bytes": float(hitmap_bytes),
        "misc_bytes": float(misc_bytes),
        "total_bytes": float(worst_case + hitmap_bytes + misc_bytes),
    }

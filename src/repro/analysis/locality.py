"""Locality characterisation: access-count curves and hit-rate curves.

Reproduces the analysis behind Figure 3 (sorted access counts of the four
dataset profiles) and Figure 6 (static-cache hit rate as a function of cache
size), both analytically from the fitted distributions and empirically from
generated traces.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.errors import ExperimentConfigError
from repro.data.datasets import DATASET_PROFILES, DatasetProfile
from repro.data.distributions import AccessDistribution
from repro.data.trace import SyntheticDataset


def access_count_curve(
    distribution: AccessDistribution,
    total_accesses: int,
    n_points: int = 1000,
) -> np.ndarray:
    """Expected sorted access counts of the hottest ``n_points`` rows.

    This is the quantity Figure 3 plots (descending access count by rank).
    """
    if total_accesses < 1:
        raise ExperimentConfigError(f"total_accesses must be >= 1, got {total_accesses}")
    return distribution.sorted_pdf(n_points) * total_accesses


def static_hit_rate_curve(
    distribution: AccessDistribution, cache_fractions: Sequence[float]
) -> np.ndarray:
    """Analytic static-cache hit rate at each cache size (Figure 6)."""
    return np.array([distribution.hit_rate(f) for f in cache_fractions])


def dataset_hit_rate_curves(
    cache_fractions: Sequence[float],
    num_rows: int = 10_000_000,
    profiles: Sequence[DatasetProfile] = DATASET_PROFILES,
) -> Dict[str, np.ndarray]:
    """Hit-rate curves for the paper's four dataset profiles."""
    return {
        profile.name: static_hit_rate_curve(
            profile.distribution(num_rows), cache_fractions
        )
        for profile in profiles
    }


def empirical_hit_rate(
    dataset: SyntheticDataset,
    cache_fraction: float,
    table: int = 0,
    num_batches: int = 8,
) -> float:
    """Measured static-cache hit rate of a generated trace.

    Counts lookups landing in the top-N hot rows (row ID < N under the
    rank-ordered synthetic distributions) over ``num_batches`` batches.
    Validates the analytic curves against actual sampled traces.
    """
    if not 0.0 <= cache_fraction <= 1.0:
        raise ExperimentConfigError(
            f"cache_fraction must be in [0, 1], got {cache_fraction}"
        )
    hot_rows = int(cache_fraction * dataset.config.rows_per_table)
    hits = 0
    total = 0
    for index in range(min(num_batches, len(dataset))):
        ids = dataset.batch(index).table_ids(table)
        hits += int((ids < hot_rows).sum())
        total += ids.size
    if total == 0:
        return 1.0
    return hits / total


def empirical_access_counts(
    dataset: SyntheticDataset, table: int = 0, num_batches: int = 8
) -> np.ndarray:
    """Sorted (descending) empirical access counts of one table's rows."""
    counts = np.zeros(dataset.config.rows_per_table, dtype=np.int64)
    for index in range(min(num_batches, len(dataset))):
        ids = dataset.batch(index).table_ids(table)
        np.add.at(counts, ids, 1)
    counts.sort()
    return counts[::-1]

"""Parallel grid runner for the paper's experiment sweeps.

Every figure-level experiment is a grid of independent
(system × workload × cache-fraction × seed) evaluations; this module turns
such a grid into a flat list of :class:`SweepPoint` descriptors and runs
them either serially (``workers=1``, the bit-identical default) or across a
``concurrent.futures.ProcessPoolExecutor``.

Two properties make the parallel path safe:

* **Determinism** — a point is described by plain configuration values
  (including an optional :class:`ScenarioSpec`, a few-dozen-byte frozen
  dataclass), traces are deterministic functions of those values, and
  ``Executor.map`` preserves submission order, so the assembled results are
  identical for any worker count.
* **Cheap dispatch** — descriptors carry no arrays, ever: what crosses the
  process boundary is the spec, and trace *content* reaches workers through
  shared memory.  Each worker memoises the traces *and system instances*
  it has built.

Trace distribution (workers > 1):

* **Shared memory (the default)** — the parent materialises each unique
  trace of the grid once, publishes its stacked sparse-ID array in a
  ``multiprocessing.shared_memory`` segment, and ships workers only the
  segment name + shape.  Workers map the segment and build zero-copy
  ``MiniBatch`` views, so a pool of N workers holds one copy of each trace
  instead of N, and worker start-up serialises kilobytes of specs rather
  than megabytes of trace.
* **On-disk cache (opt-in)** — when ``REPRO_TRACE_CACHE`` names a
  directory, traces are memoised to ``.npz`` archives there instead
  (:mod:`repro.data.io`), surviving across runs.  The user owns
  invalidation of a persistent cache.

Systems are reused across the grid points that share their construction
parameters — the dynamic-cache systems reset their scratchpads in place
(one dense ``rows_per_table`` Hit-Map allocation per worker per
(system, scale) instead of ~320 MB of fresh index per grid point at paper
scale).
"""

from __future__ import annotations

import os
import uuid
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from functools import lru_cache
from multiprocessing import shared_memory
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.api.factory import build_system
from repro.api.specs import SystemSpec, uniform_system_spec
from repro.data.io import TraceFileSpec, materialise_cached
from repro.data.scenarios import ScenarioSpec, build_scenario
from repro.data.trace import MaterialisedDataset, MiniBatch, make_dataset
from repro.hardware.spec import HardwareSpec
from repro.model.config import ModelConfig
from repro.systems.base import TrainingSystem

#: Result metrics a sweep point can request.  The ``SystemRunResult``
#: reductions work for every system; ``hit_rate``, ``per_table_hit_rates``
#: and ``cache_stats`` (the whole ``AggregateCacheStats``, for consumers
#: that want several reductions from one pipeline pass) stream the
#: metadata pipeline and are only meaningful for the dynamic-cache
#: ScratchPipe.
METRICS = ("mean_latency", "mean_energy", "stage_means", "group_means",
           "hit_rate", "per_table_hit_rates", "cache_stats")

#: Metrics that stream the ScratchPipe metadata pipeline.
_STREAMING_METRICS = ("hit_rate", "per_table_hit_rates", "cache_stats")

#: Legacy system names a spec-less point may carry; a point with a
#: ``system_spec`` may name any registered system.
SYSTEMS = ("hybrid", "static_cache", "strawman", "scratchpipe")

#: Environment variable naming the on-disk trace cache directory.
TRACE_CACHE_ENV = "REPRO_TRACE_CACHE"

#: Optional directory where every trace *generation* drops a marker file —
#: the observability hook the serialisation/regeneration-counting tests
#: use to prove workers map shared memory instead of regenerating (or
#: receiving pickled) traces.
TRACE_GEN_LOG_ENV = "REPRO_TRACE_GEN_LOG"

#: Trace key: everything a worker needs to regenerate a trace from scratch.
#: The final component addresses a real-trace file; workers re-open the
#: (path-addressed, sha-pinned) file when shared memory has not published
#: its content already.
TraceKey = Tuple[
    ModelConfig, str, int, int, Optional[ScenarioSpec],
    Optional[TraceFileSpec],
]

#: Worker-global registry of shared-memory traces: key -> (name, shape).
_SHM_MANIFEST: Dict[TraceKey, Tuple[str, Tuple[int, ...]]] = {}
#: Attached segments, pinned so the zero-copy batch views stay valid.
_SHM_ATTACHED: Dict[str, shared_memory.SharedMemory] = {}


@dataclass(frozen=True)
class SweepPoint:
    """One independent evaluation of an experiment grid.

    Attributes:
        system: One of :data:`SYSTEMS`.
        locality: Trace locality class (``"random"``/``"low"``/...).
        cache_fraction: Cache size as a fraction of the table
            (ignored by the cache-less hybrid baseline).
        seed: Trace seed.
        num_batches: Trace length.
        config: Model geometry.
        hardware: Node being modelled.
        warmup: Iterations excluded from the steady-state metric.
        metric: Which reduction to return (one of :data:`METRICS`).
        policy_name: Replacement policy for the dynamic-cache systems
            (spec-less points only).
        scenario: Optional time-varying workload.  ``None`` (the default)
            is the legacy stationary path; a :class:`ScenarioSpec` runs the
            point under that scenario's processes with the point's
            ``locality`` as the base skew.
        system_spec: Optional full :class:`~repro.api.specs.SystemSpec`.
            When present it is the authoritative system description — the
            heterogeneous per-table cache path and plugin systems ride the
            existing spec-shipping dispatch for free — and ``system`` must
            equal ``system_spec.system``.  When absent, a uniform spec is
            synthesized from ``(system, cache_fraction, policy_name)``,
            bit-identical to the legacy construction.
        trace_file: Optional :class:`~repro.data.io.TraceFileSpec`
            replaying a real trace file instead of a synthetic one.  The
            spec (not the trace) crosses the process boundary; ``locality``
            becomes a label.  Mutually exclusive with a non-stationary
            ``scenario``.
    """

    system: str
    locality: str
    cache_fraction: float
    seed: int
    num_batches: int
    config: ModelConfig
    hardware: HardwareSpec
    warmup: int = 0
    metric: str = "mean_latency"
    policy_name: str = "lru"
    scenario: Optional[ScenarioSpec] = None
    system_spec: Optional[SystemSpec] = None
    trace_file: Optional[TraceFileSpec] = None

    def __post_init__(self) -> None:
        if (
            self.trace_file is not None
            and self.scenario is not None
            and not self.scenario.is_stationary
        ):
            raise ValueError(
                "a file-backed sweep point replays recorded batches; "
                "scenario processes cannot be applied on top"
            )
        if self.system_spec is not None:
            if self.system != self.system_spec.system:
                raise ValueError(
                    f"point names system {self.system!r} but its spec "
                    f"names {self.system_spec.system!r}"
                )
        elif self.system not in SYSTEMS:
            raise ValueError(
                f"unknown system {self.system!r}; expected one of {SYSTEMS} "
                "(or attach a system_spec for registered/plugin systems)"
            )
        if self.metric not in METRICS:
            raise ValueError(
                f"unknown metric {self.metric!r}; expected one of {METRICS}"
            )
        if self.metric in _STREAMING_METRICS and self.system != "scratchpipe":
            raise ValueError(
                f"the {self.metric} metric streams the ScratchPipe metadata "
                f"pipeline and is not defined for {self.system!r}"
            )

    @property
    def resolved_system_spec(self) -> SystemSpec:
        """The spec this point builds its system from.

        Spec-less points synthesize the uniform spec their legacy fields
        describe (hybrid baselines drop the meaningless cache fraction).
        """
        if self.system_spec is not None:
            return self.system_spec
        cache_fraction: Optional[float] = self.cache_fraction
        if self.system in ("hybrid", "overlapped_hybrid", "multi_gpu"):
            cache_fraction = None
        return uniform_system_spec(
            self.system, cache_fraction, policy=self.policy_name
        )

    @property
    def trace_key(self) -> TraceKey:
        """Everything that determines this point's trace content.

        Stationary specs normalise to ``None`` — they generate traces
        bit-identical to the legacy path, so giving them a distinct key
        would duplicate cache entries and shared-memory segments.
        """
        effective = self.scenario
        if effective is not None:
            if effective.is_stationary:
                effective = None
            else:
                effective = effective.with_locality(self.locality)
        # File-backed content depends only on (file spec, config,
        # length): normalise the synthetic-only axes so seed replicates
        # and locality labels share one materialisation + shm segment.
        if self.trace_file is not None:
            return (self.config, "trace", 0, self.num_batches,
                    effective, self.trace_file)
        return (self.config, self.locality, self.seed, self.num_batches,
                effective, self.trace_file)


def _log_trace_generation(key: TraceKey) -> None:
    log_dir = os.environ.get(TRACE_GEN_LOG_ENV)
    if not log_dir:
        return
    marker = os.path.join(log_dir, f"gen-{os.getpid()}-{uuid.uuid4().hex}")
    with open(marker, "w", encoding="utf-8") as fh:
        fh.write(repr(key))


def _generate_trace(key: TraceKey) -> MaterialisedDataset:
    """Materialise one trace from its key (generation, not lookup)."""
    config, locality, seed, num_batches, scenario, trace_file = key
    _log_trace_generation(key)
    if trace_file is not None:
        return trace_file.materialise(config, num_batches)
    if scenario is not None and not scenario.is_stationary:
        source = build_scenario(
            config, scenario, seed=seed, num_batches=num_batches
        )
        return MaterialisedDataset(source)
    return MaterialisedDataset(
        make_dataset(config, locality, seed=seed, num_batches=num_batches)
    )


def _attach_shared_trace(key: TraceKey) -> Optional[MaterialisedDataset]:
    """Map a parent-published trace segment into zero-copy batches."""
    entry = _SHM_MANIFEST.get(key)
    if entry is None:
        return None
    name, shape = entry
    if name in _SHM_ATTACHED:
        segment = _SHM_ATTACHED[name]
    else:
        segment = shared_memory.SharedMemory(name=name)
        # The parent owns the segment's lifetime.  Under the spawn start
        # method each worker has its own resource tracker which would
        # tear the segment down (or warn) at worker exit, so the attach is
        # unregistered there (fixed upstream in 3.13 via track=False).
        # Under fork the tracker process is shared with the parent and its
        # registrations form a set — the worker's duplicate register is a
        # no-op and unregistering would cancel the parent's entry.
        try:  # pragma: no cover - depends on interpreter internals
            import multiprocessing

            if multiprocessing.get_start_method(allow_none=True) != "fork":
                from multiprocessing import resource_tracker

                resource_tracker.unregister(segment._name, "shared_memory")
        except Exception:
            pass
        _SHM_ATTACHED[name] = segment
    stacked = np.ndarray(shape, dtype=np.int64, buffer=segment.buf)
    config = key[0]
    batches = [
        MiniBatch(index=i, sparse_ids=stacked[i]) for i in range(shape[0])
    ]
    return MaterialisedDataset.from_batches(config, batches)


@lru_cache(maxsize=8)
def _cached_trace(key: TraceKey) -> MaterialisedDataset:
    """Resolve (and memoise, per process) one benchmark trace.

    Resolution order: parent-published shared memory (zero-copy), then the
    on-disk archive cache when :data:`TRACE_CACHE_ENV` is set, then
    regeneration from the key.
    """
    shared = _attach_shared_trace(key)
    if shared is not None:
        return shared
    config, locality, seed, num_batches, scenario, trace_file = key
    cache_dir = os.environ.get(TRACE_CACHE_ENV)
    if cache_dir and trace_file is None and (
        scenario is None or scenario.is_stationary
    ):
        return materialise_cached(config, locality, seed, num_batches, cache_dir)
    return _generate_trace(key)


@lru_cache(maxsize=8)
def _cached_system(
    spec: SystemSpec,
    config: ModelConfig,
    hardware: HardwareSpec,
) -> TrainingSystem:
    """Build (and memoise, per process) one system instance.

    Every construction flows through ``repro.api.build_system`` keyed on
    the (hashable) spec, so uniform and heterogeneous grid points share
    one code path.  The dynamic-cache systems reset their scratchpads
    between ``run_trace`` calls, so reuse across grid points is
    value-identical to building fresh instances while allocating each
    dense Hit-Map index once per worker.
    """
    return build_system(spec, config, hardware)


def _build_system(point: SweepPoint) -> TrainingSystem:
    return _cached_system(
        point.resolved_system_spec, point.config, point.hardware
    )


def run_point(point: SweepPoint) -> Any:
    """Evaluate one sweep point: build trace + system, run, reduce."""
    trace = _cached_trace(point.trace_key)
    system = _build_system(point)
    if point.metric in _STREAMING_METRICS:
        aggregate = system.aggregate_cache_stats(trace, warmup=point.warmup)
        if point.metric == "hit_rate":
            return aggregate.hit_rate
        if point.metric == "per_table_hit_rates":
            return aggregate.per_table_hit_rates()
        return aggregate
    result = system.run_trace(trace)
    return getattr(result, point.metric)(warmup=point.warmup)


def _worker_init(
    cache_dir: Optional[str],
    manifest: Dict[TraceKey, Tuple[str, Tuple[int, ...]]],
) -> None:
    if cache_dir:
        os.environ[TRACE_CACHE_ENV] = cache_dir
    _SHM_MANIFEST.update(manifest)
    # Under the fork start method the worker inherits the parent's memo
    # caches — including any traces the parent materialised while
    # publishing shared memory.  Drop them so workers resolve traces
    # through the shared segments (one copy pool-wide) instead of keeping
    # inherited private copies alive.
    _cached_trace.cache_clear()
    _cached_system.cache_clear()


def _disk_cacheable(key: TraceKey) -> bool:
    """Whether :func:`materialise_cached` can serve this trace key."""
    scenario, trace_file = key[4], key[5]
    return trace_file is None and (scenario is None or scenario.is_stationary)


def _publish_shared_traces(
    points: Sequence[SweepPoint],
    manifest: Dict[TraceKey, Tuple[str, Tuple[int, ...]]],
    segments: List[shared_memory.SharedMemory],
    skip_disk_cacheable: bool,
) -> None:
    """Materialise each unique trace once and publish it in shared memory.

    Fills the caller-owned ``manifest`` (handed to workers) and
    ``segments`` (unlinked by the caller once the pool is done) in place,
    so segments created before a mid-publish failure are still released.
    The parent pays one generation per unique trace — the same total work
    one worker would have done — and every worker maps, rather than
    copies, the result.  With ``skip_disk_cacheable`` (an explicit
    ``REPRO_TRACE_CACHE``), only the keys the disk cache *cannot* serve —
    non-stationary scenario traces — are published.
    """
    for point in points:
        key = point.trace_key
        if key in manifest:
            continue
        if skip_disk_cacheable and _disk_cacheable(key):
            continue
        trace = _cached_trace(key)
        first = trace.batch(0)
        if first.dense is not None:
            # Sweep traces are ID-only today; a dense-bearing trace falls
            # back to per-worker regeneration rather than silently
            # publishing a sparse-only copy.
            continue
        # Fill the segment batch-by-batch: stacking first would briefly
        # hold a second full copy of the trace in the parent.
        shape = (len(trace),) + first.sparse_ids.shape
        nbytes = int(np.prod(shape)) * np.dtype(np.int64).itemsize
        segment = shared_memory.SharedMemory(create=True, size=nbytes)
        segments.append(segment)
        view = np.ndarray(shape, dtype=np.int64, buffer=segment.buf)
        for i in range(len(trace)):
            view[i] = trace.batch(i).sparse_ids
        manifest[key] = (segment.name, shape)


def run_grid(
    points: Sequence[SweepPoint], workers: Optional[int] = 1
) -> List[Any]:
    """Evaluate a grid of sweep points, preserving input order.

    Args:
        points: The grid, flattened in the order results are wanted.
        workers: Process count.  ``1`` (the default) runs serially in this
            process — the deterministic reference path; ``None`` uses all
            CPUs.  Results are order-preserved and value-identical for any
            worker count, so parallelism only changes wall-clock time.
    """
    points = list(points)
    if workers is None:
        workers = os.cpu_count() or 1
    if workers < 1:
        raise ValueError(f"workers must be >= 1 (or None), got {workers}")
    if workers == 1 or len(points) <= 1:
        return [run_point(point) for point in points]
    workers = min(workers, len(points))
    # Contiguous chunks keep the points sharing a trace in one worker;
    # shared memory deduplicates trace *content* across the pool, so each
    # worker's cost per trace is an mmap + unique-set precompute, not a
    # regeneration.  An explicit REPRO_TRACE_CACHE keeps the persistent
    # on-disk path for the traces it can serve (the user owns its
    # invalidation); scenario traces, which the disk cache cannot key,
    # still go through shared memory.
    chunksize = -(-len(points) // workers)
    cache_dir = os.environ.get(TRACE_CACHE_ENV)
    manifest: Dict[TraceKey, Tuple[str, Tuple[int, ...]]] = {}
    segments: List[shared_memory.SharedMemory] = []
    try:
        _publish_shared_traces(
            points, manifest, segments, skip_disk_cacheable=bool(cache_dir)
        )
        # The parent runs no points itself when workers > 1; dropping its
        # memoised traces here leaves the shared segments as the only
        # copy instead of pinning a private duplicate (arrays + unique
        # sets) in the parent for the life of the process.
        _cached_trace.cache_clear()
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_worker_init,
            initargs=(cache_dir, manifest),
        ) as pool:
            return list(pool.map(run_point, points, chunksize=chunksize))
    finally:
        for segment in segments:
            try:
                segment.close()
                segment.unlink()
            except OSError:  # pragma: no cover - best-effort cleanup
                pass

"""Parallel grid runner for the paper's experiment sweeps.

Every figure-level experiment is a grid of independent
(system × locality × cache-fraction × seed) evaluations; this module turns
such a grid into a flat list of :class:`SweepPoint` descriptors and runs
them either serially (``workers=1``, the bit-identical default) or across a
``concurrent.futures.ProcessPoolExecutor``.

Two properties make the parallel path safe:

* **Determinism** — a point is described by plain configuration values, the
  worker regenerates its trace from ``(config, locality, seed, num_batches)``
  (synthetic traces are deterministic by construction), and
  ``Executor.map`` preserves submission order, so the assembled results are
  identical for any worker count.
* **Cheap dispatch** — descriptors carry no arrays; each worker memoises
  the materialised traces *and system instances* it has built, and
  contiguous chunking keeps the points of one trace in one worker.

Memoisation details:

* Systems are reused across the grid points that share their construction
  parameters — the dynamic-cache systems reset their scratchpads in place
  (one dense ``rows_per_table`` Hit-Map allocation per worker per
  (system, scale) instead of ~320 MB of fresh index per grid point at paper
  scale).
* When ``REPRO_TRACE_CACHE`` names a directory, materialised traces are
  also memoised to disk as ``.npz`` archives (:mod:`repro.data.io`), so a
  worker pool regenerates each synthetic trace at most once across
  processes *and* across sweeps.  ``run_grid`` gives its workers a shared
  per-grid temporary cache automatically (deleted when the grid
  finishes); the serial path — and anything persistent across runs —
  touches the disk only when the variable is set explicitly.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from functools import lru_cache
from typing import Any, List, Optional, Sequence

from repro.data.io import materialise_cached
from repro.data.trace import MaterialisedDataset, make_dataset
from repro.hardware.spec import HardwareSpec
from repro.model.config import ModelConfig
from repro.systems.base import TrainingSystem
from repro.systems.hybrid import HybridSystem
from repro.systems.scratchpipe_system import ScratchPipeSystem
from repro.systems.static_cache import StaticCacheSystem
from repro.systems.strawman_system import StrawmanSystem

#: Result metrics a sweep point can request from a ``SystemRunResult``.
METRICS = ("mean_latency", "mean_energy", "stage_means", "group_means")

#: System names the grid runner can instantiate.
SYSTEMS = ("hybrid", "static_cache", "strawman", "scratchpipe")

#: Environment variable naming the on-disk trace cache directory.
TRACE_CACHE_ENV = "REPRO_TRACE_CACHE"


@dataclass(frozen=True)
class SweepPoint:
    """One independent evaluation of an experiment grid.

    Attributes:
        system: One of :data:`SYSTEMS`.
        locality: Trace locality class (``"random"``/``"low"``/...).
        cache_fraction: Cache size as a fraction of the table
            (ignored by the cache-less hybrid baseline).
        seed: Trace seed.
        num_batches: Trace length.
        config: Model geometry.
        hardware: Node being modelled.
        warmup: Iterations excluded from the steady-state metric.
        metric: Which ``SystemRunResult`` reduction to return
            (one of :data:`METRICS`).
        policy_name: Replacement policy for the dynamic-cache systems.
    """

    system: str
    locality: str
    cache_fraction: float
    seed: int
    num_batches: int
    config: ModelConfig
    hardware: HardwareSpec
    warmup: int = 0
    metric: str = "mean_latency"
    policy_name: str = "lru"

    def __post_init__(self) -> None:
        if self.system not in SYSTEMS:
            raise ValueError(
                f"unknown system {self.system!r}; expected one of {SYSTEMS}"
            )
        if self.metric not in METRICS:
            raise ValueError(
                f"unknown metric {self.metric!r}; expected one of {METRICS}"
            )


@lru_cache(maxsize=8)
def _cached_trace(
    config: ModelConfig, locality: str, seed: int, num_batches: int
) -> MaterialisedDataset:
    """Materialise (and memoise, per process) one benchmark trace.

    With :data:`TRACE_CACHE_ENV` set, the materialised batches are also
    round-tripped through an on-disk archive shared by every process.
    """
    cache_dir = os.environ.get(TRACE_CACHE_ENV)
    if cache_dir:
        return materialise_cached(config, locality, seed, num_batches, cache_dir)
    return MaterialisedDataset(
        make_dataset(config, locality, seed=seed, num_batches=num_batches)
    )


@lru_cache(maxsize=8)
def _cached_system(
    system: str,
    config: ModelConfig,
    hardware: HardwareSpec,
    cache_fraction: float,
    policy_name: str,
) -> TrainingSystem:
    """Build (and memoise, per process) one system instance.

    The dynamic-cache systems reset their scratchpads between ``run_trace``
    calls, so reuse across grid points is value-identical to building fresh
    instances while allocating each dense Hit-Map index once per worker.
    """
    if system == "hybrid":
        return HybridSystem(config, hardware)
    if system == "static_cache":
        return StaticCacheSystem(config, hardware, cache_fraction)
    if system == "strawman":
        return StrawmanSystem(config, hardware, cache_fraction)
    return ScratchPipeSystem(
        config, hardware, cache_fraction, policy_name=policy_name
    )


def _build_system(point: SweepPoint) -> TrainingSystem:
    return _cached_system(
        point.system,
        point.config,
        point.hardware,
        point.cache_fraction,
        point.policy_name,
    )


def run_point(point: SweepPoint) -> Any:
    """Evaluate one sweep point: build trace + system, run, reduce."""
    trace = _cached_trace(
        point.config, point.locality, point.seed, point.num_batches
    )
    result = _build_system(point).run_trace(trace)
    return getattr(result, point.metric)(warmup=point.warmup)


def _worker_init(cache_dir: Optional[str]) -> None:
    if cache_dir:
        os.environ[TRACE_CACHE_ENV] = cache_dir


def run_grid(
    points: Sequence[SweepPoint], workers: Optional[int] = 1
) -> List[Any]:
    """Evaluate a grid of sweep points, preserving input order.

    Args:
        points: The grid, flattened in the order results are wanted.
        workers: Process count.  ``1`` (the default) runs serially in this
            process — the deterministic reference path; ``None`` uses all
            CPUs.  Results are order-preserved and value-identical for any
            worker count, so parallelism only changes wall-clock time.
    """
    points = list(points)
    if workers is None:
        workers = os.cpu_count() or 1
    if workers < 1:
        raise ValueError(f"workers must be >= 1 (or None), got {workers}")
    if workers == 1 or len(points) <= 1:
        return [run_point(point) for point in points]
    workers = min(workers, len(points))
    # Contiguous chunks keep the points sharing a trace in one worker, so
    # each worker materialises each of its traces once; the shared on-disk
    # cache deduplicates trace generation across workers.  With no
    # user-provided cache directory the cache lives only for this grid (a
    # fresh temp dir, deleted afterwards) — a persistent cache is keyed
    # only by trace parameters, so surviving across code changes would
    # silently undermine the workers>1 == workers=1 guarantee; users who
    # set REPRO_TRACE_CACHE own that invalidation themselves.
    chunksize = -(-len(points) // workers)
    cache_dir = os.environ.get(TRACE_CACHE_ENV)
    ephemeral = None
    if not cache_dir:
        ephemeral = cache_dir = tempfile.mkdtemp(prefix="repro-trace-cache-")
    try:
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_worker_init,
            initargs=(cache_dir,),
        ) as pool:
            return list(pool.map(run_point, points, chunksize=chunksize))
    finally:
        if ephemeral is not None:
            shutil.rmtree(ephemeral, ignore_errors=True)

"""Parallel grid runner for the paper's experiment sweeps.

Every figure-level experiment is a grid of independent
(system × workload × cache-fraction × seed) evaluations; this module turns
such a grid into a flat list of :class:`SweepPoint` descriptors and runs
them either serially (``workers=1``, the bit-identical default) or across a
``concurrent.futures.ProcessPoolExecutor``.

Two properties make the parallel path safe:

* **Determinism** — a point is described by plain configuration values
  (including an optional :class:`ScenarioSpec`, a few-dozen-byte frozen
  dataclass), traces are deterministic functions of those values, and
  results are assembled by grid index, so they are identical for any
  worker count.
* **Cheap dispatch** — descriptors carry no arrays, ever: what crosses the
  process boundary is the spec, and trace *content* reaches workers through
  shared memory.  Each worker memoises the traces *and system instances*
  it has built.

Trace distribution (workers > 1):

* **Shared memory (the default)** — the parent materialises each unique
  trace of the grid once, publishes its stacked sparse-ID array in a
  ``multiprocessing.shared_memory`` segment, and ships workers only the
  segment name + shape.  Workers map the segment and build zero-copy
  ``MiniBatch`` views, so a pool of N workers holds one copy of each trace
  instead of N, and worker start-up serialises kilobytes of specs rather
  than megabytes of trace.  Segment lifetime is owned by a
  :class:`_PublishedTraces` context manager: close+unlink runs on *every*
  exit path — mid-publish failures, worker crashes, quarantined grids —
  and a failure to release one segment never skips the rest.
* **On-disk cache (opt-in)** — when ``REPRO_TRACE_CACHE`` names a
  directory, traces are memoised to ``.npz`` archives there instead
  (:mod:`repro.data.io`), surviving across runs.  The user owns
  invalidation of a persistent cache.

Resilience (the long-running-sweep contract):

* **Crash recovery** — a killed worker (OOM, SIGKILL, segfault) breaks the
  ``ProcessPoolExecutor``; :func:`run_grid` respawns the pool and
  re-dispatches only the unfinished points.  Failing points are retried
  with exponential backoff + jitter (injectable clock/sleep/rng, so tests
  are deterministic) up to ``max_retries``, then *quarantined*: the grid
  completes with partial results plus a structured :class:`GridReport`
  instead of dying hours in.
* **Per-point timeouts** — ``timeout`` bounds each point's wall clock; a
  stalled worker is killed, the point records a
  :class:`SweepPointTimeoutError` attempt, and innocent in-flight points
  are re-queued without burning their retry budget.
* **Checkpoint/resume** — ``checkpoint=path`` appends each completed
  point's result to a JSONL journal keyed by :func:`point_key` (a stable
  content hash of the frozen spec).  A re-run with the same journal skips
  the already-computed points and returns results bit-identical to an
  uninterrupted run.  The journal is append-only; a line truncated by an
  interrupt is skipped on load.

Systems are reused across the grid points that share their construction
parameters — the dynamic-cache systems reset their scratchpads in place
(one dense ``rows_per_table`` Hit-Map allocation per worker per
(system, scale) instead of ~320 MB of fresh index per grid point at paper
scale).
"""

from __future__ import annotations

import hashlib
import json
import os
import itertools
import random
import time
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass, field, fields as dataclass_fields, replace
from functools import lru_cache
from pathlib import Path
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro._env import read_env, write_env
from repro.errors import SweepConfigError
from repro.analysis.shm import (
    _PublishedTraces,
    _SHM_ATTACHED,
    _SHM_MANIFEST,
    attach_shared_trace as _attach_shared_trace,
    install_manifest,
    publish_trace,
)
from repro.api.factory import build_system
from repro.api.specs import SystemSpec, uniform_system_spec
from repro.data.io import TraceFileSpec, materialise_cached
from repro.data.scenarios import ScenarioSpec, build_scenario
from repro.data.trace import MaterialisedDataset, MiniBatch, make_dataset
from repro.hardware.spec import HardwareSpec
from repro.model.config import ModelConfig
from repro.serve.arrivals import ArrivalSpec, ServeSpec
from repro.systems.base import TrainingSystem
from repro.testing import faults
from repro.testing.faults import fault_point

#: Result metrics a sweep point can request.  The ``SystemRunResult``
#: reductions work for every system; ``hit_rate``, ``per_table_hit_rates``
#: and ``cache_stats`` (the whole ``AggregateCacheStats``, for consumers
#: that want several reductions from one pipeline pass) stream the
#: metadata pipeline and are only meaningful for the dynamic-cache
#: ScratchPipe.
METRICS = ("mean_latency", "mean_energy", "stage_means", "group_means",
           "hit_rate", "per_table_hit_rates", "cache_stats", "serve")

#: Metrics that stream the ScratchPipe metadata pipeline.
_STREAMING_METRICS = ("hit_rate", "per_table_hit_rates", "cache_stats")

#: The live-replay metric: returns a full ``repro.serve.ServeReport``
#: (p50/p95/p99 per-stage latency, SLA-violation rate) instead of a
#: scalar.  Like the streaming metrics it drives the ScratchPipe
#: pipeline, so it is scratchpipe-only.
_SERVE_METRIC = "serve"

#: Legacy system names a spec-less point may carry; a point with a
#: ``system_spec`` may name any registered system.
SYSTEMS = ("hybrid", "static_cache", "strawman", "scratchpipe")

#: Environment variable naming the on-disk trace cache directory.
TRACE_CACHE_ENV = "REPRO_TRACE_CACHE"

#: Optional directory where every trace *generation* drops a marker file —
#: the observability hook the serialisation/regeneration-counting tests
#: use to prove workers map shared memory instead of regenerating (or
#: receiving pickled) traces.
TRACE_GEN_LOG_ENV = "REPRO_TRACE_GEN_LOG"

#: Override for the trace-publication thread count (``run_grid`` parent).
PUBLISH_THREADS_ENV = "REPRO_PUBLISH_THREADS"

#: Trace key: everything a worker needs to regenerate a trace from scratch.
#: The final component addresses a real-trace file; workers re-open the
#: (path-addressed, sha-pinned) file when shared memory has not published
#: its content already.
TraceKey = Tuple[
    ModelConfig, str, int, int, Optional[ScenarioSpec],
    Optional[TraceFileSpec],
]

#: Per-process counter naming trace-generation marker files (pid + a
#: monotone index is unique without reaching for ambient entropy).
_GEN_MARKER_IDS = itertools.count()


# ----------------------------------------------------------------------
# Error taxonomy (the InvalidSystemSpecError pattern: named subclasses a
# caller can catch precisely, surfaced in the CLI failure report)
# ----------------------------------------------------------------------
class SweepError(RuntimeError):
    """Base class of the sweep-resilience failures."""


class SweepPointTimeoutError(SweepError):
    """A sweep point exceeded its per-point wall-clock budget."""


class SweepWorkerCrashError(SweepError):
    """A pool worker died (OOM kill, SIGKILL, segfault) mid-point."""


class SweepGridError(SweepError):
    """A grid finished with quarantined points.

    Carries the full :class:`GridReport` as ``.report`` — partial results,
    per-point failures and checkpoint location — so callers (the CLI)
    can render a structured failure report instead of a bare traceback.
    """

    def __init__(self, report: "GridReport") -> None:
        super().__init__(report.summary())
        self.report = report


@dataclass(frozen=True)
class SweepPoint:
    """One independent evaluation of an experiment grid.

    Attributes:
        system: One of :data:`SYSTEMS`.
        locality: Trace locality class (``"random"``/``"low"``/...).
        cache_fraction: Cache size as a fraction of the table
            (ignored by the cache-less hybrid baseline).
        seed: Trace seed.
        num_batches: Trace length.
        config: Model geometry.
        hardware: Node being modelled.
        warmup: Iterations excluded from the steady-state metric.
        metric: Which reduction to return (one of :data:`METRICS`).
        policy_name: Replacement policy for the dynamic-cache systems
            (spec-less points only).
        scenario: Optional time-varying workload.  ``None`` (the default)
            is the legacy stationary path; a :class:`ScenarioSpec` runs the
            point under that scenario's processes with the point's
            ``locality`` as the base skew.
        system_spec: Optional full :class:`~repro.api.specs.SystemSpec`.
            When present it is the authoritative system description — the
            heterogeneous per-table cache path and plugin systems ride the
            existing spec-shipping dispatch for free — and ``system`` must
            equal ``system_spec.system``.  When absent, a uniform spec is
            synthesized from ``(system, cache_fraction, policy_name)``,
            bit-identical to the legacy construction.
        trace_file: Optional :class:`~repro.data.io.TraceFileSpec`
            replaying a real trace file instead of a synthetic one.  The
            spec (not the trace) crosses the process boundary; ``locality``
            becomes a label.  Mutually exclusive with a non-stationary
            ``scenario``.
        arrivals: Optional :class:`~repro.serve.ArrivalSpec` — shorthand
            for a ``serve`` spec with default queueing.  Only meaningful
            (and only allowed) with the ``"serve"`` metric.
        serve: Optional full :class:`~repro.serve.ServeSpec` (arrivals +
            queue depths + admission + SLA).  Only allowed with the
            ``"serve"`` metric; takes precedence over ``arrivals``.
    """

    system: str
    locality: str
    cache_fraction: float
    seed: int
    num_batches: int
    config: ModelConfig
    hardware: HardwareSpec
    warmup: int = 0
    metric: str = "mean_latency"
    policy_name: str = "lru"
    scenario: Optional[ScenarioSpec] = None
    system_spec: Optional[SystemSpec] = None
    trace_file: Optional[TraceFileSpec] = None
    arrivals: Optional[ArrivalSpec] = None
    serve: Optional[ServeSpec] = None

    def __post_init__(self) -> None:
        if (
            self.trace_file is not None
            and self.scenario is not None
            and not self.scenario.is_stationary
        ):
            raise SweepConfigError(
                "a file-backed sweep point replays recorded batches; "
                "scenario processes cannot be applied on top"
            )
        if self.system_spec is not None:
            if self.system != self.system_spec.system:
                raise SweepConfigError(
                    f"point names system {self.system!r} but its spec "
                    f"names {self.system_spec.system!r}"
                )
        elif self.system not in SYSTEMS:
            raise SweepConfigError(
                f"unknown system {self.system!r}; expected one of {SYSTEMS} "
                "(or attach a system_spec for registered/plugin systems)"
            )
        if self.metric not in METRICS:
            raise SweepConfigError(
                f"unknown metric {self.metric!r}; expected one of {METRICS}"
            )
        if (
            self.metric in _STREAMING_METRICS + (_SERVE_METRIC,)
            and self.system != "scratchpipe"
        ):
            raise SweepConfigError(
                f"the {self.metric} metric streams the ScratchPipe metadata "
                f"pipeline and is not defined for {self.system!r}"
            )
        if self.metric == _SERVE_METRIC:
            if self.arrivals is None and self.serve is None:
                raise SweepConfigError(
                    "the serve metric needs an arrival process: set "
                    "point.arrivals (ArrivalSpec) or point.serve (ServeSpec)"
                )
        elif self.arrivals is not None or self.serve is not None:
            raise SweepConfigError(
                f"arrivals/serve specs only apply to the {_SERVE_METRIC!r} "
                f"metric, not {self.metric!r}"
            )

    @property
    def resolved_system_spec(self) -> SystemSpec:
        """The spec this point builds its system from.

        Spec-less points synthesize the uniform spec their legacy fields
        describe (hybrid baselines drop the meaningless cache fraction).
        """
        if self.system_spec is not None:
            return self.system_spec
        cache_fraction: Optional[float] = self.cache_fraction
        if self.system in ("hybrid", "overlapped_hybrid", "multi_gpu"):
            cache_fraction = None
        return uniform_system_spec(
            self.system, cache_fraction, policy=self.policy_name
        )

    @property
    def resolved_serve(self) -> Optional[ServeSpec]:
        """The full serve spec of a ``"serve"``-metric point."""
        if self.serve is not None:
            return self.serve
        if self.arrivals is not None:
            return ServeSpec(arrivals=self.arrivals)
        return None

    @property
    def trace_key(self) -> TraceKey:
        """Everything that determines this point's trace content.

        Stationary specs normalise to ``None`` — they generate traces
        bit-identical to the legacy path, so giving them a distinct key
        would duplicate cache entries and shared-memory segments.
        """
        effective = self.scenario
        if effective is not None:
            if effective.is_stationary:
                effective = None
            else:
                effective = effective.with_locality(self.locality)
        # File-backed content depends only on (file spec, config,
        # length): normalise the synthetic-only axes so seed replicates
        # and locality labels share one materialisation + shm segment.
        if self.trace_file is not None:
            return (self.config, "trace", 0, self.num_batches,
                    effective, self.trace_file)
        return (self.config, self.locality, self.seed, self.num_batches,
                effective, self.trace_file)

    def label(self) -> str:
        """Compact human-readable identity for reports and fault details."""
        return (
            f"{self.system}:{self.locality}:cache={self.cache_fraction:g}:"
            f"{self.metric}:seed={self.seed}"
        )


def point_key(point: SweepPoint) -> str:
    """Stable content hash of a point — the checkpoint-journal key.

    ``SweepPoint`` and every spec it nests are frozen dataclasses whose
    ``repr`` is a pure function of their field values (verified stable
    across processes and ``PYTHONHASHSEED``), so the digest identifies the
    *computation*, not the process that ran it.
    """
    return hashlib.sha256(repr(point).encode("utf-8")).hexdigest()


def _log_trace_generation(key: TraceKey) -> None:
    log_dir = read_env(TRACE_GEN_LOG_ENV)
    if not log_dir:
        return
    marker = os.path.join(
        log_dir, f"gen-{os.getpid()}-{next(_GEN_MARKER_IDS)}"
    )
    with open(marker, "w", encoding="utf-8") as fh:
        fh.write(repr(key))


def _generate_trace(key: TraceKey) -> MaterialisedDataset:
    """Materialise one trace from its key (generation, not lookup)."""
    config, locality, seed, num_batches, scenario, trace_file = key
    _log_trace_generation(key)
    if trace_file is not None:
        return trace_file.materialise(config, num_batches)
    if scenario is not None and not scenario.is_stationary:
        source = build_scenario(
            config, scenario, seed=seed, num_batches=num_batches
        )
        return MaterialisedDataset(source)
    return MaterialisedDataset(
        make_dataset(config, locality, seed=seed, num_batches=num_batches)
    )


@lru_cache(maxsize=8)
def _cached_trace(key: TraceKey) -> MaterialisedDataset:
    """Resolve (and memoise, per process) one benchmark trace.

    Resolution order: parent-published shared memory (zero-copy), then the
    on-disk archive cache when :data:`TRACE_CACHE_ENV` is set, then
    regeneration from the key.
    """
    shared = _attach_shared_trace(key)
    if shared is not None:
        return shared
    config, locality, seed, num_batches, scenario, trace_file = key
    cache_dir = read_env(TRACE_CACHE_ENV)
    if cache_dir and trace_file is None and (
        scenario is None or scenario.is_stationary
    ):
        return materialise_cached(config, locality, seed, num_batches, cache_dir)
    return _generate_trace(key)


@lru_cache(maxsize=8)
def _cached_system(
    spec: SystemSpec,
    config: ModelConfig,
    hardware: HardwareSpec,
) -> TrainingSystem:
    """Build (and memoise, per process) one system instance.

    Every construction flows through ``repro.api.build_system`` keyed on
    the (hashable) spec, so uniform and heterogeneous grid points share
    one code path.  The dynamic-cache systems reset their scratchpads
    between ``run_trace`` calls, so reuse across grid points is
    value-identical to building fresh instances while allocating each
    dense Hit-Map index once per worker.
    """
    return build_system(spec, config, hardware)


def _build_system(point: SweepPoint) -> TrainingSystem:
    return _cached_system(
        point.resolved_system_spec, point.config, point.hardware
    )


def run_point(point: SweepPoint) -> Any:
    """Evaluate one sweep point: build trace + system, run, reduce."""
    fault_point("sweep.point", detail=point.label())
    trace = _cached_trace(point.trace_key)
    system = _build_system(point)
    if point.metric in _STREAMING_METRICS:
        aggregate = system.aggregate_cache_stats(trace, warmup=point.warmup)
        if point.metric == "hit_rate":
            return aggregate.hit_rate
        if point.metric == "per_table_hit_rates":
            return aggregate.per_table_hit_rates()
        return aggregate
    if point.metric == _SERVE_METRIC:
        # Lazy import mirrors the AggregateCacheStats codec pattern: the
        # spec types are cheap, the replay machinery loads on first use.
        from repro.serve import replay

        return replay(
            system, trace, point.resolved_serve, warmup=point.warmup
        )
    result = system.run_trace(trace)
    return getattr(result, point.metric)(warmup=point.warmup)


def _worker_init(
    cache_dir: Optional[str],
    manifest: Dict[TraceKey, Tuple[str, Tuple[int, ...]]],
) -> None:
    if cache_dir:
        write_env(TRACE_CACHE_ENV, cache_dir)
    install_manifest(manifest)
    # Under the fork start method the worker inherits the parent's memo
    # caches — including any traces the parent materialised while
    # publishing shared memory.  Drop them so workers resolve traces
    # through the shared segments (one copy pool-wide) instead of keeping
    # inherited private copies alive.
    _cached_trace.cache_clear()
    _cached_system.cache_clear()
    # Fresh-process semantics for the fault injector's per-process arrival
    # counters (a forked worker would otherwise inherit the parent's).
    faults.reset_arrivals()


def _disk_cacheable(key: TraceKey) -> bool:
    """Whether :func:`materialise_cached` can serve this trace key."""
    scenario, trace_file = key[4], key[5]
    return trace_file is None and (scenario is None or scenario.is_stationary)


def _publish_threads(num_keys: int) -> int:
    """Trace-generation thread count for the publication pipeline."""
    raw = read_env(PUBLISH_THREADS_ENV)
    if raw is not None:
        try:
            count = int(raw)
        except ValueError:
            raise SweepConfigError(
                f"{PUBLISH_THREADS_ENV} must be an integer, got {raw!r}"
            ) from None
        if count < 1:
            raise SweepConfigError(
                f"{PUBLISH_THREADS_ENV} must be >= 1, got {count}"
            )
    else:
        count = min(4, os.cpu_count() or 1)
    return min(count, max(num_keys, 1))


def _publish_shared_traces(
    points: Sequence[SweepPoint],
    manifest: Dict[TraceKey, Tuple[str, Tuple[int, ...]]],
    segments: List[Any],
    skip_disk_cacheable: bool,
) -> None:
    """Materialise each unique trace once and publish it in shared memory.

    Fills the caller-owned ``manifest`` (handed to workers) and
    ``segments`` (released by the caller once the pool is done) in place,
    so segments created before a mid-publish failure are still released.
    The parent pays one generation per unique trace — the same total work
    one worker would have done — and every worker maps, rather than
    copies, the result.  With ``skip_disk_cacheable`` (an explicit
    ``REPRO_TRACE_CACHE``), only the keys the disk cache *cannot* serve —
    non-stationary scenario traces — are published.  The raw segment
    handling lives in :mod:`repro.analysis.shm` (the one module allowed
    to touch ``multiprocessing.shared_memory``).

    Generation runs on a small thread pool (``REPRO_PUBLISH_THREADS``,
    default ``min(4, cpus)``): the numpy sampling inside
    :func:`make_dataset` releases the GIL, so wide grids with several
    unique traces overlap generation instead of serialising the whole
    dispatch behind it.  Publication itself stays on the calling thread,
    in point order — ``manifest``/``segments`` are never touched
    concurrently and segment creation order is deterministic.  The
    submission window is bounded by the thread count so the parent never
    holds more than ``threads + lru`` traces at once.
    """
    keys: List[TraceKey] = []
    queued = set()
    for point in points:
        key = point.trace_key
        if key in manifest or key in queued:
            continue
        if skip_disk_cacheable and _disk_cacheable(key):
            continue
        queued.add(key)
        keys.append(key)
    if not keys:
        return
    threads = _publish_threads(len(keys))
    if threads == 1 or len(keys) == 1:
        for key in keys:
            publish_trace(key, _cached_trace(key), manifest, segments)
        return
    window: Deque[Tuple[TraceKey, Future]] = deque()
    with ThreadPoolExecutor(max_workers=threads) as pool:
        for key in keys:
            window.append((key, pool.submit(_cached_trace, key)))
            if len(window) > threads:
                head, future = window.popleft()
                publish_trace(head, future.result(), manifest, segments)
        while window:
            head, future = window.popleft()
            publish_trace(head, future.result(), manifest, segments)


# ----------------------------------------------------------------------
# Checkpoint journal: append-only JSONL of completed point results
# ----------------------------------------------------------------------
def _encode_result(value: Any) -> Any:
    """JSON-encode a metric result so it round-trips exactly.

    Tuples and the ``AggregateCacheStats`` dataclass are tagged; numpy
    scalars narrow to their Python equivalents (value-identical — figure
    formatting and equality are unchanged).
    """
    if value is None or isinstance(value, (bool, str)):
        return value
    if isinstance(value, (int, np.integer)):
        return int(value)
    if isinstance(value, (float, np.floating)):
        return float(value)
    if isinstance(value, tuple):
        return {"__tuple__": [_encode_result(v) for v in value]}
    if isinstance(value, list):
        return [_encode_result(v) for v in value]
    if isinstance(value, dict):
        return {
            "__dict__": [
                [_encode_result(k), _encode_result(v)]
                for k, v in value.items()
            ]
        }
    from repro.systems.scratchpipe_system import AggregateCacheStats

    if isinstance(value, AggregateCacheStats):
        return {
            "__cache_stats__": {
                f.name: _encode_result(getattr(value, f.name))
                for f in dataclass_fields(value)
            }
        }
    from repro.serve.report import ServeReport

    if isinstance(value, ServeReport):
        return {
            "__serve_report__": {
                f.name: _encode_result(getattr(value, f.name))
                for f in dataclass_fields(value)
            }
        }
    raise TypeError(
        f"cannot journal a result of type {type(value).__name__}; "
        "teach _encode_result about it before checkpointing this metric"
    )


def _decode_result(value: Any) -> Any:
    """Inverse of :func:`_encode_result`."""
    if isinstance(value, list):
        return [_decode_result(v) for v in value]
    if isinstance(value, dict):
        if "__tuple__" in value:
            return tuple(_decode_result(v) for v in value["__tuple__"])
        if "__dict__" in value:
            return {
                _decode_result(k): _decode_result(v)
                for k, v in value["__dict__"]
            }
        if "__cache_stats__" in value:
            from repro.systems.scratchpipe_system import AggregateCacheStats

            return AggregateCacheStats(**{
                k: _decode_result(v)
                for k, v in value["__cache_stats__"].items()
            })
        if "__serve_report__" in value:
            from repro.serve.report import ServeReport

            return ServeReport(**{
                k: _decode_result(v)
                for k, v in value["__serve_report__"].items()
            })
    return value


class CheckpointJournal:
    """Append-only JSONL journal of completed sweep-point results.

    One line per completed point: ``{"v": 1, "key": <point_key>,
    "result": <tagged JSON>}``.  Loading tolerates a truncated final line
    (the signature of an interrupt mid-write) and unknown versions, so a
    journal can always be resumed from.  Appends are flushed per line —
    an interrupted grid loses at most its in-flight points.
    """

    VERSION = 1

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._fh = None

    def load(self) -> Dict[str, Any]:
        """Read the journal into ``{point_key: decoded result}``."""
        results: Dict[str, Any] = {}
        if not self.path.exists():
            return results
        with open(self.path, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # truncated tail from an interrupted append
                if (
                    not isinstance(record, dict)
                    or record.get("v") != self.VERSION
                    or "key" not in record
                    or "result" not in record
                ):
                    continue
                results[record["key"]] = _decode_result(record["result"])
        return results

    def record(self, key: str, result: Any) -> None:
        """Append one completed point (flushed immediately)."""
        if self._fh is None:
            if self.path.parent != Path("."):
                self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "a", encoding="utf-8")
        line = json.dumps(
            {"v": self.VERSION, "key": key, "result": _encode_result(result)},
            separators=(",", ":"),
        )
        self._fh.write(line + "\n")
        self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


# ----------------------------------------------------------------------
# Grid options + failure report
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GridOptions:
    """Resilience knobs for :func:`run_grid`.

    Attributes:
        timeout: Per-point wall-clock budget in seconds (``None``: no
            timeout).  Measured from dispatch; in-flight submissions are
            capped at the worker count, so dispatch ≈ start.
        max_retries: Failed attempts a point may retry before quarantine
            (total attempts = ``max_retries + 1``).
        backoff_base: First retry delay, seconds.
        backoff_max: Retry-delay ceiling, seconds.
        jitter: Uniform multiplicative jitter fraction added to each
            delay (``delay *= 1 + jitter * rng.random()``).
        checkpoint: Path of the :class:`CheckpointJournal` (``None``: no
            journaling).
        poll: Future-polling interval of the scheduler loop, seconds.
    """

    timeout: Optional[float] = None
    max_retries: int = 2
    backoff_base: float = 0.5
    backoff_max: float = 30.0
    jitter: float = 0.1
    checkpoint: Optional[Union[str, Path]] = None
    poll: float = 0.05


#: Ambient defaults, overridable per-call or via :func:`grid_options`.
# repro-lint: disable=worker-capture -- parent-only knob: run_grid reads
# it once before dispatch and ships the resolved GridOptions to workers;
# workers never consult the ambient value.
_AMBIENT_OPTIONS = GridOptions()


@contextmanager
def grid_options(**overrides: Any) -> Iterator[GridOptions]:
    """Override the ambient :class:`GridOptions` inside a ``with`` block.

    The CLI's global ``--checkpoint``/``--point-timeout``/
    ``--point-retries`` flags use this to reach every :func:`run_grid`
    call a figure makes without threading parameters through each
    experiment entry point.
    """
    global _AMBIENT_OPTIONS
    saved = _AMBIENT_OPTIONS
    _AMBIENT_OPTIONS = replace(saved, **overrides)
    try:
        yield _AMBIENT_OPTIONS
    finally:
        _AMBIENT_OPTIONS = saved


@dataclass(frozen=True)
class PointFailure:
    """One quarantined point in a :class:`GridReport`."""

    index: int
    point: SweepPoint
    error_type: str
    message: str
    attempts: int


@dataclass
class GridReport:
    """Everything a grid run produced, failures included.

    Attributes:
        results: Per-point results in grid order; ``None`` at quarantined
            indices.
        failures: Quarantined points, in the order they gave up.
        completed: Points computed by *this* run (excludes resumed).
        resumed: Points served from the checkpoint journal.
        retries: Re-dispatches performed (crashes, timeouts, errors).
        checkpoint: Journal path, when checkpointing was on.
    """

    results: List[Any]
    failures: List[PointFailure] = field(default_factory=list)
    completed: int = 0
    resumed: int = 0
    retries: int = 0
    checkpoint: Optional[str] = None

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        """One-line outcome (the :class:`SweepGridError` message)."""
        return (
            f"{len(self.failures)} of {len(self.results)} sweep points "
            f"quarantined ({self.completed} completed, "
            f"{self.resumed} resumed, {self.retries} retries)"
        )

    def format(self) -> str:
        """Multi-line structured failure report (the CLI rendering)."""
        lines = [f"sweep failure report: {self.summary()}"]
        for failure in self.failures:
            lines.append(
                f"  [{failure.index}] {failure.point.label()}: "
                f"{failure.error_type}: {failure.message} "
                f"({failure.attempts} attempts)"
            )
        if self.checkpoint:
            lines.append(
                f"completed points are journaled in {self.checkpoint}; "
                "re-run with the same checkpoint to resume"
            )
        return "\n".join(lines)


_UNSET = object()


def run_grid(
    points: Sequence[SweepPoint],
    workers: Optional[int] = 1,
    *,
    timeout: Any = _UNSET,
    max_retries: Any = _UNSET,
    backoff_base: Any = _UNSET,
    backoff_max: Any = _UNSET,
    jitter: Any = _UNSET,
    checkpoint: Any = _UNSET,
    report: bool = False,
    clock: Callable[[], float] = time.monotonic,
    sleep: Callable[[float], None] = time.sleep,
    rng: Optional[random.Random] = None,
) -> Union[List[Any], GridReport]:
    """Evaluate a grid of sweep points, preserving input order.

    Args:
        points: The grid, flattened in the order results are wanted.
        workers: Process count.  ``1`` (the default) runs serially in this
            process — the deterministic reference path; ``None`` uses all
            CPUs.  Results are order-preserved and value-identical for any
            worker count, so parallelism only changes wall-clock time.
        timeout, max_retries, backoff_base, backoff_max, jitter,
        checkpoint: Per-call overrides of the ambient
            :class:`GridOptions` (see :func:`grid_options`).
        report: Return the full :class:`GridReport` instead of the bare
            result list.  Without it, a grid with quarantined points
            raises :class:`SweepGridError` (carrying the report).
        clock, sleep, rng: Injectable time source, sleeper and jitter RNG
            — tests drive the backoff schedule deterministically with a
            fake clock whose ``sleep`` advances it.  ``clock`` and
            ``sleep`` must be a consistent pair.

    Resilience (workers > 1): worker crashes respawn the pool and re-queue
    unfinished points; per-point timeouts kill stalled workers; failing
    points retry with exponential backoff + jitter up to ``max_retries``
    and are quarantined afterwards.  The serial path is the bit-identical
    reference and deliberately stays un-instrumented — exceptions
    propagate — but honours the checkpoint journal, so an interrupted
    ``workers=1`` run resumes too.
    """
    overrides = {
        name: value
        for name, value in (
            ("timeout", timeout),
            ("max_retries", max_retries),
            ("backoff_base", backoff_base),
            ("backoff_max", backoff_max),
            ("jitter", jitter),
            ("checkpoint", checkpoint),
        )
        if value is not _UNSET
    }
    options = replace(_AMBIENT_OPTIONS, **overrides)
    points = list(points)
    if workers is None:
        workers = os.cpu_count() or 1
    if workers < 1:
        raise SweepConfigError(f"workers must be >= 1 (or None), got {workers}")
    grid = _run_grid(
        points, workers, options, clock, sleep, rng or random.Random(0)
    )
    if report:
        return grid
    if not grid.ok:
        raise SweepGridError(grid)
    return grid.results


def _run_grid(
    points: List[SweepPoint],
    workers: int,
    options: GridOptions,
    clock: Callable[[], float],
    sleep: Callable[[float], None],
    rng: random.Random,
) -> GridReport:
    journal = (
        CheckpointJournal(options.checkpoint) if options.checkpoint else None
    )
    keys = [point_key(p) for p in points] if journal else []
    results: List[Any] = [None] * len(points)
    out = GridReport(
        results=results,
        checkpoint=str(options.checkpoint) if options.checkpoint else None,
    )
    pending = list(range(len(points)))
    if journal is not None:
        known = journal.load()
        still_pending = []
        for i in pending:
            if keys[i] in known:
                results[i] = known[keys[i]]
                out.resumed += 1
            else:
                still_pending.append(i)
        pending = still_pending
    try:
        if workers == 1 or len(pending) <= 1:
            for i in pending:
                results[i] = run_point(points[i])
                out.completed += 1
                if journal is not None:
                    journal.record(keys[i], results[i])
            return out
        _run_grid_parallel(
            points, pending, min(workers, len(pending)), options,
            out, journal, keys, clock, sleep, rng,
        )
        return out
    finally:
        if journal is not None:
            journal.close()


def _make_pool(
    workers: int,
    cache_dir: Optional[str],
    manifest: Dict[TraceKey, Tuple[str, Tuple[int, ...]]],
) -> ProcessPoolExecutor:
    return ProcessPoolExecutor(
        max_workers=workers,
        initializer=_worker_init,
        initargs=(cache_dir, manifest),
    )


def _kill_pool_workers(pool: ProcessPoolExecutor) -> None:
    """Forcibly stop a pool whose workers no longer respond.

    Reaches into the executor's private process table — there is no public
    API for "a task is stuck, take the workers down" — terminates each
    worker and escalates to SIGKILL if one survives the grace period.
    """
    processes = list(getattr(pool, "_processes", {}).values())
    for process in processes:
        try:
            process.terminate()
        except Exception:  # pragma: no cover - already dead
            pass
    for process in processes:
        process.join(timeout=5.0)
        if process.is_alive():  # pragma: no cover - SIGTERM ignored
            process.kill()
            process.join(timeout=5.0)


def _run_grid_parallel(
    points: List[SweepPoint],
    pending: List[int],
    workers: int,
    options: GridOptions,
    out: GridReport,
    journal: Optional[CheckpointJournal],
    keys: List[str],
    clock: Callable[[], float],
    sleep: Callable[[float], None],
    rng: random.Random,
) -> None:
    """The resilient scheduler: dispatch, recover, retry, quarantine."""
    cache_dir = read_env(TRACE_CACHE_ENV)
    attempts: Dict[int, int] = {}
    retry_at: Dict[int, float] = {}
    queue = deque(pending)

    def record_success(index: int, value: Any) -> None:
        out.results[index] = value
        out.completed += 1
        if journal is not None:
            journal.record(keys[index], value)

    def record_failure(index: int, error: BaseException) -> None:
        attempts[index] = attempts.get(index, 0) + 1
        if attempts[index] > options.max_retries:
            out.failures.append(
                PointFailure(
                    index=index,
                    point=points[index],
                    error_type=type(error).__name__,
                    message=str(error),
                    attempts=attempts[index],
                )
            )
            return
        out.retries += 1
        delay = min(
            options.backoff_max,
            options.backoff_base * (2 ** (attempts[index] - 1)),
        )
        delay *= 1.0 + options.jitter * rng.random()
        retry_at[index] = clock() + delay

    with _PublishedTraces() as shared:
        _publish_shared_traces(
            [points[i] for i in pending],
            shared.manifest,
            shared.segments,
            skip_disk_cacheable=bool(cache_dir),
        )
        # The parent runs no points itself when workers > 1; dropping its
        # memoised traces here leaves the shared segments as the only
        # copy instead of pinning a private duplicate (arrays + unique
        # sets) in the parent for the life of the process.
        _cached_trace.cache_clear()
        pool = _make_pool(workers, cache_dir, shared.manifest)
        inflight: Dict[Future, Tuple[int, float]] = {}
        try:
            while queue or inflight or retry_at:
                now = clock()
                for index in [i for i, t in retry_at.items() if t <= now]:
                    del retry_at[index]
                    queue.append(index)
                crashed = False
                while queue and len(inflight) < workers:
                    index = queue.popleft()
                    try:
                        future = pool.submit(run_point, points[index])
                    except BrokenProcessPool:
                        # The pool broke between iterations (a worker died
                        # with nothing of ours in flight to report it
                        # through): recover below, re-dispatch afterwards.
                        queue.appendleft(index)
                        crashed = True
                        break
                    inflight[future] = (index, clock())
                if not crashed and not inflight:
                    if retry_at:
                        sleep(max(0.0, min(retry_at.values()) - clock()))
                    continue
                done: Sequence[Future] = ()
                if not crashed:
                    done, _ = wait(
                        list(inflight),
                        timeout=options.poll,
                        return_when=FIRST_COMPLETED,
                    )
                for future in done:
                    index, _started = inflight.pop(future)
                    try:
                        value = future.result()
                    except BrokenProcessPool:
                        crashed = True
                        record_failure(
                            index,
                            SweepWorkerCrashError(
                                f"worker crashed while "
                                f"{points[index].label()} was in flight"
                            ),
                        )
                    except Exception as error:
                        record_failure(index, error)
                    else:
                        record_success(index, value)
                timed_out: List[Future] = []
                if options.timeout is not None:
                    now = clock()
                    timed_out = [
                        future
                        for future, (_, started) in inflight.items()
                        if now - started >= options.timeout
                    ]
                if timed_out:
                    for future in timed_out:
                        index, _started = inflight.pop(future)
                        record_failure(
                            index,
                            SweepPointTimeoutError(
                                f"{points[index].label()} exceeded the "
                                f"{options.timeout:g}s per-point budget"
                            ),
                        )
                    # A running future cannot be cancelled; the only way
                    # to reclaim a stalled worker is to take the pool
                    # down.  The remaining in-flight points are innocent
                    # by construction (they did not exceed the budget) —
                    # re-queued below without burning their retry budget.
                    _kill_pool_workers(pool)
                if crashed:
                    # The pool is broken: every still-queued future is
                    # about to fail too.  Give the executor a moment to
                    # resolve them so the culprit's own future (which
                    # raises BrokenProcessPool) is charged an attempt,
                    # then drain.
                    drained, still = wait(list(inflight), timeout=5.0)
                    for future in drained:
                        index, _started = inflight.pop(future)
                        try:
                            value = future.result()
                        except Exception as error:
                            record_failure(
                                index,
                                SweepWorkerCrashError(
                                    f"worker crashed while "
                                    f"{points[index].label()} was in "
                                    f"flight ({type(error).__name__})"
                                ),
                            )
                        else:  # pragma: no cover - completed pre-break
                            record_success(index, value)
                    for future in still:  # pragma: no cover - rare race
                        index, _started = inflight.pop(future)
                        queue.append(index)
                if crashed or timed_out:
                    for future in list(inflight):
                        index, _started = inflight.pop(future)
                        queue.append(index)
                    pool.shutdown(wait=False, cancel_futures=True)
                    pool = _make_pool(workers, cache_dir, shared.manifest)
        finally:
            pool.shutdown(wait=False, cancel_futures=True)

"""AWS training-cost model (Table I, Section VI-F).

The paper prices one million training iterations on AWS EC2 P3 instances:
ScratchPipe on a single-GPU p3.2xlarge versus the GPU-only system on an
8-GPU p3.16xlarge.  Because ScratchPipe leaves the SGD algorithm untouched,
equal iteration counts reach equal accuracy, so cost is simply
``price_per_hour * iteration_time * iterations``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import ExperimentConfigError
from repro.hardware.spec import AwsInstance, P3_2XLARGE, P3_16XLARGE

#: Iteration count Table I prices (1 million).
TABLE1_ITERATIONS = 1_000_000


def training_cost(
    instance: AwsInstance,
    iteration_time_s: float,
    iterations: int = TABLE1_ITERATIONS,
) -> float:
    """Dollars to run ``iterations`` at ``iteration_time_s`` per iteration."""
    if iteration_time_s <= 0:
        raise ExperimentConfigError(
            f"iteration_time_s must be positive, got {iteration_time_s}"
        )
    if iterations < 1:
        raise ExperimentConfigError(f"iterations must be >= 1, got {iterations}")
    hours = iteration_time_s * iterations / 3600.0
    return instance.price_per_hour * hours


@dataclass(frozen=True)
class CostRow:
    """One row of Table I."""

    dataset: str
    system: str
    instance: AwsInstance
    iteration_time_s: float

    @property
    def cost(self) -> float:
        """Dollars for one million iterations."""
        return training_cost(self.instance, self.iteration_time_s)

    def formatted(self) -> List[str]:
        """Row cells in Table I's column order."""
        return [
            self.dataset,
            self.system,
            self.instance.name,
            f"$ {self.instance.price_per_hour:.2f}",
            f"{self.iteration_time_s * 1e3:.2f} ms",
            f"$ {self.cost:.2f}",
        ]


def cost_saving(scratchpipe: CostRow, multi_gpu: CostRow) -> float:
    """Cost-reduction factor of ScratchPipe over the multi-GPU system."""
    return multi_gpu.cost / scratchpipe.cost


def scratchpipe_row(dataset: str, iteration_time_s: float) -> CostRow:
    """Table I row for single-GPU ScratchPipe on a p3.2xlarge."""
    return CostRow(dataset, "ScratchPipe", P3_2XLARGE, iteration_time_s)


def multi_gpu_row(dataset: str, iteration_time_s: float) -> CostRow:
    """Table I row for the 8-GPU system on a p3.16xlarge."""
    return CostRow(dataset, "8 GPU", P3_16XLARGE, iteration_time_s)

"""repro — a reproduction of "Training Personalized Recommendation Systems
from (GPU) Scratch: Look Forward not Backwards" (Kwon & Rhu, ISCA 2022).

Public API tour
---------------
* ``repro.api``      — declarative system assembly: ``SystemSpec`` /
  ``CacheSpec`` (uniform or per-table heterogeneous), the system/policy
  plugin registries and ``build_system`` — the single composition surface
  the CLI, experiments and sweeps share.
* ``repro.model``    — numpy DLRM: embeddings, MLPs, interaction, SGD.
* ``repro.data``     — power-law access distributions, dataset profiles,
  synthetic traces, the look-forward loader.
* ``repro.core``     — ScratchPipe's Hit-Map, Hold mask, scratchpad,
  straw-man cache and the 6-stage pipeline.
* ``repro.systems``  — the four end-to-end design points plus the 8-GPU
  baseline, each producing per-iteration latency/energy breakdowns.
* ``repro.hardware`` — the analytic Xeon + V100 + PCIe timing substrate.
* ``repro.analysis`` — one entry point per paper table/figure.
* ``repro.serve``    — live-traffic replay: seeded open-loop arrivals,
  bounded-queue backpressure, exact p50/p95/p99 latency and SLA
  accounting on a deterministic virtual clock.

Quickstart::

    from repro import ExperimentSetup, fig13_speedup
    for point in fig13_speedup(ExperimentSetup(num_batches=12)):
        print(point.locality, point.cache_fraction, point.speedups())
"""

from repro.analysis import (
    CACHE_FRACTIONS,
    ExperimentSetup,
    GridReport,
    SpeedupPoint,
    SweepError,
    SweepGridError,
    SweepPointTimeoutError,
    SweepWorkerCrashError,
    fig3_access_counts,
    fig5_breakdown,
    fig6_hit_rate,
    fig12a_baseline_latency,
    fig12b_scratchpipe_latency,
    fig13_speedup,
    fig14_energy,
    fig15a_dim_sensitivity,
    fig15b_lookup_sensitivity,
    table1_cost,
)
from repro.api import (
    CacheSpec,
    PipelineSpec,
    ScratchpadSpec,
    SystemSpec,
    build_system,
    register_policy,
    register_system,
)
from repro.core import (
    GpuScratchpad,
    HazardMonitor,
    HitMap,
    HoldMask,
    ScratchPipePipeline,
    StrawmanCache,
    required_slots,
)
from repro.data.fetch import ChecksumMismatchError
from repro.data import (
    LookaheadLoader,
    MiniBatch,
    ScenarioSpec,
    SyntheticDataset,
    TraceSource,
    build_scenario,
    make_dataset,
    scenario_by_name,
)
from repro.hardware import DEFAULT_HARDWARE, CostModel, HardwareSpec
from repro.model import DLRMModel, DenseNetwork, ModelConfig, tiny_config
from repro.serve import (
    AdmissionRejectedError,
    ArrivalSpec,
    ArrivalSpecError,
    ServeReport,
    ServeSpec,
    format_serve_report,
    replay,
)
from repro.systems import (
    HybridSystem,
    InsufficientSteadyStateError,
    MultiGpuSystem,
    ScratchPipeSystem,
    ScratchPipeTrainingRun,
    StaticCacheSystem,
    StrawmanSystem,
)

__version__ = "1.0.0"

__all__ = [
    "CacheSpec",
    "PipelineSpec",
    "ScratchpadSpec",
    "SystemSpec",
    "build_system",
    "register_policy",
    "register_system",
    "CACHE_FRACTIONS",
    "ExperimentSetup",
    "GridReport",
    "SpeedupPoint",
    "SweepError",
    "SweepGridError",
    "SweepPointTimeoutError",
    "SweepWorkerCrashError",
    "ChecksumMismatchError",
    "fig3_access_counts",
    "fig5_breakdown",
    "fig6_hit_rate",
    "fig12a_baseline_latency",
    "fig12b_scratchpipe_latency",
    "fig13_speedup",
    "fig14_energy",
    "fig15a_dim_sensitivity",
    "fig15b_lookup_sensitivity",
    "table1_cost",
    "GpuScratchpad",
    "HazardMonitor",
    "HitMap",
    "HoldMask",
    "ScratchPipePipeline",
    "StrawmanCache",
    "required_slots",
    "LookaheadLoader",
    "MiniBatch",
    "ScenarioSpec",
    "SyntheticDataset",
    "TraceSource",
    "build_scenario",
    "make_dataset",
    "scenario_by_name",
    "DEFAULT_HARDWARE",
    "CostModel",
    "HardwareSpec",
    "DLRMModel",
    "DenseNetwork",
    "ModelConfig",
    "tiny_config",
    "AdmissionRejectedError",
    "ArrivalSpec",
    "ArrivalSpecError",
    "ServeReport",
    "ServeSpec",
    "format_serve_report",
    "replay",
    "HybridSystem",
    "InsufficientSteadyStateError",
    "MultiGpuSystem",
    "ScratchPipeSystem",
    "ScratchPipeTrainingRun",
    "StaticCacheSystem",
    "StrawmanSystem",
    "__version__",
]

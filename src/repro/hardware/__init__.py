"""Hardware substrate: device specs, memory/link cost models, timing, energy.

This package is the analytic stand-in for the paper's Xeon + V100 + PCIe
testbed (see DESIGN.md, substitution table).
"""

from repro.hardware.energy import CPU, GPU, EnergyModel, EnergySlice
from repro.hardware.interconnect import Link
from repro.hardware.memory import RANDOM, SEQUENTIAL, MemoryDevice
from repro.hardware.spec import (
    DEFAULT_HARDWARE,
    P3_2XLARGE,
    P3_16XLARGE,
    AwsInstance,
    ComputeSpec,
    HardwareSpec,
    LinkSpec,
    MemorySpec,
    PowerSpec,
)
from repro.hardware.timing import CostModel, ID_BYTES

__all__ = [
    "CPU",
    "GPU",
    "EnergyModel",
    "EnergySlice",
    "Link",
    "RANDOM",
    "SEQUENTIAL",
    "MemoryDevice",
    "DEFAULT_HARDWARE",
    "P3_2XLARGE",
    "P3_16XLARGE",
    "AwsInstance",
    "ComputeSpec",
    "HardwareSpec",
    "LinkSpec",
    "MemorySpec",
    "PowerSpec",
    "CostModel",
    "ID_BYTES",
]

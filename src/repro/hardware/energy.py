"""Energy model reproducing the paper's Figure 14 methodology.

The paper measures CPU socket power with ``pcm-power`` and GPU board power
with ``nvidia-smi`` and multiplies the aggregate by execution time.  We do
the analytic equivalent: each portion of an iteration is attributed to the
devices it keeps busy; a busy device draws its active power and an idle
device its idle power; energy is the power-weighted time integral.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Tuple

from repro.errors import HardwareSpecError
from repro.hardware.spec import DEFAULT_HARDWARE, HardwareSpec

#: Devices recognised by the energy model.
CPU = "cpu"
GPU = "gpu"
_KNOWN_DEVICES = (CPU, GPU)


@dataclass(frozen=True)
class EnergySlice:
    """A span of wall-clock time and the devices busy during it.

    Attributes:
        seconds: Duration of the slice.
        busy: Devices actively working during the slice (subset of
            ``{"cpu", "gpu"}``); both directions of a PCIe copy keep both
            devices' memory systems busy, so transfers list both.
    """

    seconds: float
    busy: Tuple[str, ...]

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise HardwareSpecError(f"seconds must be non-negative, got {self.seconds}")
        for device in self.busy:
            if device not in _KNOWN_DEVICES:
                raise HardwareSpecError(
                    f"unknown device {device!r}; expected one of {_KNOWN_DEVICES}"
                )


@dataclass(frozen=True)
class EnergyModel:
    """Computes Joules for a sequence of :class:`EnergySlice` spans."""

    hardware: HardwareSpec = field(default_factory=lambda: DEFAULT_HARDWARE)

    def _power(self, device: str, busy: bool) -> float:
        power = self.hardware.power
        if device == CPU:
            return power.cpu_active_w if busy else power.cpu_idle_w
        return power.gpu_active_w if busy else power.gpu_idle_w

    def slice_energy(self, piece: EnergySlice) -> float:
        """Joules consumed by one slice across both devices."""
        total_power = sum(
            self._power(device, device in piece.busy) for device in _KNOWN_DEVICES
        )
        return total_power * piece.seconds

    def total_energy(self, slices: Iterable[EnergySlice]) -> float:
        """Joules consumed by a full iteration described as slices."""
        return sum(self.slice_energy(piece) for piece in slices)

    def breakdown(
        self, named_slices: Mapping[str, EnergySlice]
    ) -> Dict[str, float]:
        """Per-stage Joules keyed by stage name."""
        return {name: self.slice_energy(s) for name, s in named_slices.items()}

"""Per-primitive latency model for one DLRM training iteration.

This is the timing substrate every system design (hybrid CPU-GPU, static
cache, straw-man, ScratchPipe, multi-GPU) is built on.  Each method costs a
single primitive of Figure 4's training pipeline; systems compose them into
per-stage and per-iteration breakdowns.

All quantities are *counts of embedding rows* unless noted; the model config
supplies row geometry.  All returned times are seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import HardwareSpecError
from repro.hardware.interconnect import Link
from repro.hardware.memory import RANDOM, SCATTERED_WRITE, SEQUENTIAL, MemoryDevice
from repro.hardware.spec import DEFAULT_HARDWARE, HardwareSpec
from repro.model.config import ELEMENT_BYTES, ModelConfig, mlp_flops

#: Bytes of one sparse feature ID (int64, matching PyTorch's index dtype).
ID_BYTES = 8

#: Backward-pass FLOP multiplier relative to forward (dgrad + wgrad GEMMs).
BACKWARD_FLOP_FACTOR = 2.0


@dataclass(frozen=True)
class CostModel:
    """Latency model binding a :class:`HardwareSpec` to a :class:`ModelConfig`.

    Attributes:
        hardware: The node being modelled.
        config: Model/workload geometry.
    """

    hardware: HardwareSpec = field(default_factory=lambda: DEFAULT_HARDWARE)
    config: ModelConfig = field(default_factory=ModelConfig)

    # ------------------------------------------------------------------
    # Device handles
    # ------------------------------------------------------------------
    @property
    def cpu_mem(self) -> MemoryDevice:
        """CPU DRAM cost model."""
        return MemoryDevice(self.hardware.cpu_memory)

    @property
    def gpu_mem(self) -> MemoryDevice:
        """GPU HBM cost model."""
        return MemoryDevice(self.hardware.gpu_memory)

    @property
    def pcie(self) -> Link:
        """CPU<->GPU link cost model."""
        return Link(self.hardware.pcie)

    @property
    def nvlink(self) -> Link:
        """GPU<->GPU link cost model."""
        return Link(self.hardware.nvlink)

    def _mem(self, device: str) -> MemoryDevice:
        if device == "cpu":
            return self.cpu_mem
        if device == "gpu":
            return self.gpu_mem
        raise HardwareSpecError(f"unknown device {device!r}; expected 'cpu' or 'gpu'")

    def _row_bytes(self, rows: float) -> float:
        return rows * self.config.row_bytes

    # ------------------------------------------------------------------
    # Embedding-layer primitives (Figure 2)
    # ------------------------------------------------------------------
    def embedding_gather(self, rows: float, device: str) -> float:
        """Gather ``rows`` embedding rows from ``device`` memory.

        Random row reads from the table plus a streaming write of the
        gathered output buffer.
        """
        mem = self._mem(device)
        payload = self._row_bytes(rows)
        return mem.read_time(payload, RANDOM) + mem.write_time(payload, SEQUENTIAL)

    def embedding_reduce(self, rows: float, device: str) -> float:
        """Sum-reduce ``rows`` gathered rows into per-sample pooled vectors.

        Streaming read of the gathered rows; the pooled output is small and
        folded into the same pass.
        """
        return self._mem(device).read_time(self._row_bytes(rows), SEQUENTIAL)

    def gradient_duplicate(self, rows: float, device: str) -> float:
        """Duplicate pooled gradients out to ``rows`` per-lookup gradients.

        Reads the pooled gradients (broadcast, cache friendly) and streams
        out one gradient row per lookup (Figure 2(b), left).
        """
        return self._mem(device).write_time(self._row_bytes(rows), SEQUENTIAL)

    def gradient_coalesce(self, rows: float, device: str) -> float:
        """Coalesce duplicated gradients of repeated IDs (Figure 2(b), middle).

        Modelled as one streaming read plus one streaming write of the
        duplicated-gradient buffer (segmented sort + reduce).
        """
        mem = self._mem(device)
        payload = self._row_bytes(rows)
        return mem.read_time(payload, SEQUENTIAL) + mem.write_time(payload, SEQUENTIAL)

    def gradient_scatter(self, unique_rows: float, device: str) -> float:
        """Apply coalesced gradients to ``unique_rows`` table rows (SGD).

        A random-access read-modify-write of each updated row.
        """
        return self._mem(device).read_modify_write_time(
            self._row_bytes(unique_rows), RANDOM
        )

    def embedding_backward(self, rows: float, unique_rows: float, device: str) -> float:
        """Full embedding backward: duplicate + coalesce + scatter."""
        return (
            self.gradient_duplicate(rows, device)
            + self.gradient_coalesce(rows, device)
            + self.gradient_scatter(unique_rows, device)
        )

    # ------------------------------------------------------------------
    # Transfers
    # ------------------------------------------------------------------
    def id_transfer(self, n_ids: float) -> float:
        """Copy ``n_ids`` sparse feature IDs over PCIe (either direction)."""
        return self.pcie.transfer_time(n_ids * ID_BYTES)

    def row_transfer(self, rows: float) -> float:
        """Copy ``rows`` embedding rows over PCIe (one direction)."""
        return self.pcie.transfer_time(self._row_bytes(rows))

    def row_exchange(self, rows_to_gpu: float, rows_to_cpu: float) -> float:
        """Bidirectional PCIe exchange of embedding rows ([Exchange] stage)."""
        return self.pcie.exchange_time(
            self._row_bytes(rows_to_gpu), self._row_bytes(rows_to_cpu)
        )

    def pooled_transfer(self) -> float:
        """Copy the per-table pooled embeddings (or their gradients) over PCIe.

        Used by the hybrid baseline to ship reduced embeddings to the GPU for
        the feature interaction, and gradients back (Figure 4(a)).
        """
        return self.pcie.transfer_time(self.config.reduced_bytes_per_batch)

    # ------------------------------------------------------------------
    # Cache-management primitives
    # ------------------------------------------------------------------
    def hitmap_query(self, n_ids: float) -> float:
        """Probe the GPU Hit-Map with ``n_ids`` keys.

        Hash probes touch a few tens of bytes per key in GPU DRAM; charged
        as random accesses of one (key, value) slot per ID.
        """
        slot_bytes = 16.0  # 8 B key + 4 B value + padding
        return self.gpu_mem.read_time(n_ids * slot_bytes, RANDOM)

    def holdmask_update(self, n_slots: float) -> float:
        """Advance/set Hold-mask bits for ``n_slots`` slots (streaming)."""
        return self.gpu_mem.read_modify_write_time(n_slots * 1.0, SEQUENTIAL)

    def cache_fill(self, rows: float) -> float:
        """Write ``rows`` fetched rows into the GPU Storage array."""
        return self.gpu_mem.write_time(self._row_bytes(rows), SCATTERED_WRITE)

    def cache_evict_read(self, rows: float) -> float:
        """Read ``rows`` victim rows out of the GPU Storage array."""
        return self.gpu_mem.read_time(self._row_bytes(rows), RANDOM)

    def cpu_table_read(self, rows: float) -> float:
        """Gather ``rows`` missed rows from the CPU embedding table."""
        return self.cpu_mem.read_time(self._row_bytes(rows), RANDOM)

    def cpu_table_write(self, rows: float) -> float:
        """Write ``rows`` evicted rows back into the CPU embedding table.

        Write-backs are independent full-row stores, so they stream through
        store buffers far faster than the latency-bound gathers of
        :meth:`cpu_table_read` — which is why the paper's [Insert] stage is
        visibly cheaper than its [Collect] stage (Figure 12(b)).
        """
        return self.cpu_mem.write_time(self._row_bytes(rows), SCATTERED_WRITE)

    # ------------------------------------------------------------------
    # Dense (MLP + interaction) cost
    # ------------------------------------------------------------------
    def _mlp_time(self, flops: float, device: str, n_layers: int) -> float:
        compute = (
            self.hardware.gpu_compute if device == "gpu" else self.hardware.cpu_compute
        )
        return flops / compute.effective_flops + n_layers * compute.kernel_launch_s

    def dense_forward(self, device: str = "gpu") -> float:
        """Bottom MLP + feature interaction + top MLP forward."""
        cfg = self.config
        bottom = mlp_flops(cfg.num_dense_features, cfg.bottom_mlp, cfg.batch_size)
        top = mlp_flops(cfg.top_mlp_input_features(), cfg.top_mlp, cfg.batch_size)
        # Interaction: batched (T+1, d) x (d, T+1) GEMM per sample.
        n = cfg.interaction_inputs
        interaction = 2 * cfg.batch_size * n * n * cfg.embedding_dim
        n_layers = len(cfg.bottom_mlp) + len(cfg.top_mlp) + 1
        return self._mlp_time(bottom + top + interaction, device, n_layers)

    def dense_backward(self, device: str = "gpu") -> float:
        """Backward through top MLP, interaction and bottom MLP."""
        return BACKWARD_FLOP_FACTOR * self.dense_forward(device)

    def dense_train(self, device: str = "gpu") -> float:
        """Forward + backward + parameter update of the dense network."""
        return self.dense_forward(device) + self.dense_backward(device)

    # ------------------------------------------------------------------
    # Convenience whole-iteration aggregates
    # ------------------------------------------------------------------
    def gpu_resident_embedding_train(
        self, rows: float, unique_rows: float
    ) -> float:
        """Embedding fwd+bwd entirely in GPU memory (the ScratchPipe Train path)."""
        return (
            self.embedding_gather(rows, "gpu")
            + self.embedding_reduce(rows, "gpu")
            + self.embedding_backward(rows, unique_rows, "gpu")
        )


def bytes_of_rows(config: ModelConfig, rows: float) -> float:
    """Bytes occupied by ``rows`` embedding rows under ``config``."""
    return rows * config.embedding_dim * ELEMENT_BYTES

"""Bandwidth/latency cost model for a single memory device.

Every embedding-layer primitive in the paper (gather, scatter, gradient
duplication, coalescing) is memory-bandwidth limited (Section II-B), so its
latency is modelled as ``bytes_moved / effective_bandwidth`` plus a fixed
per-operation software overhead.  The effective bandwidth depends on the
access pattern: row-granular random accesses (gather/scatter) achieve a much
lower fraction of peak than streaming accesses (duplication buffers).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import HardwareSpecError
from repro.hardware.spec import MemorySpec

#: Access-pattern selector for :meth:`MemoryDevice.access_time`.
RANDOM = "random"
SEQUENTIAL = "sequential"
#: Full-row writes to random addresses: store buffers and write combining
#: keep them pipelined, unlike dependent random reads.
SCATTERED_WRITE = "scattered_write"

_VALID_PATTERNS = (RANDOM, SEQUENTIAL, SCATTERED_WRITE)


@dataclass(frozen=True)
class MemoryDevice:
    """Cost model wrapper around a :class:`MemorySpec`.

    All methods return seconds.  ``n_bytes`` of zero is legal and costs
    nothing (not even the fixed overhead) so that callers can charge
    operations unconditionally.
    """

    spec: MemorySpec

    def _bandwidth(self, pattern: str) -> float:
        if pattern == RANDOM:
            return self.spec.random_bandwidth
        if pattern == SEQUENTIAL:
            return self.spec.sequential_bandwidth
        if pattern == SCATTERED_WRITE:
            return self.spec.scattered_write_bandwidth
        raise HardwareSpecError(
            f"unknown access pattern {pattern!r}; expected one of {_VALID_PATTERNS}"
        )

    def access_time(self, n_bytes: float, pattern: str = RANDOM) -> float:
        """Time to move ``n_bytes`` through this device.

        Args:
            n_bytes: Total bytes read or written.
            pattern: ``"random"`` for row-granular sparse accesses,
                ``"sequential"`` for streaming accesses.
        """
        if n_bytes < 0:
            raise HardwareSpecError(f"n_bytes must be non-negative, got {n_bytes}")
        if n_bytes == 0:
            return 0.0
        return self.spec.access_latency_s + n_bytes / self._bandwidth(pattern)

    def read_time(self, n_bytes: float, pattern: str = RANDOM) -> float:
        """Time to read ``n_bytes`` (alias of :meth:`access_time`)."""
        return self.access_time(n_bytes, pattern)

    def write_time(self, n_bytes: float, pattern: str = RANDOM) -> float:
        """Time to write ``n_bytes`` (alias of :meth:`access_time`)."""
        return self.access_time(n_bytes, pattern)

    def read_modify_write_time(self, n_bytes: float, pattern: str = RANDOM) -> float:
        """Time for a read-modify-write of ``n_bytes`` payload.

        Gradient scatter with an SGD optimiser reads the existing row,
        applies the update and writes it back, moving the payload twice.
        """
        if n_bytes < 0:
            raise HardwareSpecError(f"n_bytes must be non-negative, got {n_bytes}")
        if n_bytes == 0:
            return 0.0
        return self.spec.access_latency_s + 2.0 * n_bytes / self._bandwidth(pattern)

"""Hardware specifications for the ScratchPipe timing model.

The paper (Section V, Methodology) evaluates on a server with an Intel Xeon
E5-2698v4 (256 GB DDR4, 76.8 GB/s), an NVIDIA V100 (32 GB HBM2, 900 GB/s) and
PCIe gen3 x16 (16 GB/s per direction).  This module captures those numbers
plus the *effective*-throughput calibration constants that an analytic model
needs in order to land in the latency ranges the paper reports.

Calibration notes
-----------------
Peak bandwidth is never achieved by sparse embedding operations.  The paper's
own measurements imply an effective CPU-side gather throughput of roughly
3-4 GB/s (167.8 MB of gathered embeddings per iteration taking ~50 ms of
"CPU embedding forward" in Figure 5): random 512-byte row accesses on DDR4,
executed by a PyTorch ``EmbeddingBag``, are latency-bound rather than
bandwidth-bound.  The ``random_access_efficiency`` fields below encode that
gap and are documented next to each device.  Absolute latencies produced by
this model are expected to deviate from the authors' testbed, but orderings,
ratios and crossovers are preserved (see DESIGN.md Section 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import HardwareSpecError


@dataclass(frozen=True)
class MemorySpec:
    """A DRAM device attached to either the CPU or the GPU.

    Attributes:
        name: Human readable device name.
        capacity_bytes: Total capacity in bytes.
        peak_bandwidth: Peak bandwidth in bytes/second.
        random_access_efficiency: Fraction of peak bandwidth achieved by
            random row-granular (~512 B) accesses such as embedding gathers
            and gradient scatters.  These are *dependent reads* — each miss
            chain stalls on memory latency.
        sequential_efficiency: Fraction of peak bandwidth achieved by
            streaming accesses such as gradient duplication buffers.
        scattered_write_efficiency: Fraction of peak achieved by full-row
            writes to random addresses (cache-eviction write-backs, Storage
            fills).  Store buffers and write combining keep these pipelined,
            so they land between random reads and pure streaming.
        access_latency_s: Fixed per-operation software/launch latency charged
            once per bulk operation (not per element).
    """

    name: str
    capacity_bytes: int
    peak_bandwidth: float
    random_access_efficiency: float
    sequential_efficiency: float
    scattered_write_efficiency: float = 0.25
    access_latency_s: float = 0.0

    def __post_init__(self) -> None:
        if self.capacity_bytes < 1:
            raise HardwareSpecError(
                f"capacity_bytes must be >= 1, got {self.capacity_bytes}"
            )
        if self.peak_bandwidth <= 0:
            raise HardwareSpecError(
                f"peak_bandwidth must be positive, got {self.peak_bandwidth}"
            )
        for name in ("random_access_efficiency", "sequential_efficiency",
                     "scattered_write_efficiency"):
            value = getattr(self, name)
            if not 0.0 < value <= 1.0:
                raise HardwareSpecError(
                    f"{name} must be in (0, 1], got {value}"
                )
        if self.access_latency_s < 0:
            raise HardwareSpecError(
                f"access_latency_s must be >= 0, got {self.access_latency_s}"
            )

    @property
    def random_bandwidth(self) -> float:
        """Effective bandwidth for random row-granular accesses (B/s)."""
        return self.peak_bandwidth * self.random_access_efficiency

    @property
    def sequential_bandwidth(self) -> float:
        """Effective bandwidth for streaming accesses (B/s)."""
        return self.peak_bandwidth * self.sequential_efficiency

    @property
    def scattered_write_bandwidth(self) -> float:
        """Effective bandwidth for scattered full-row writes (B/s)."""
        return self.peak_bandwidth * self.scattered_write_efficiency


@dataclass(frozen=True)
class LinkSpec:
    """A point-to-point interconnect such as PCIe or NVLink.

    Attributes:
        name: Human readable link name.
        bandwidth_per_direction: Bytes/second in each direction.
        latency_s: Fixed latency per transfer (DMA setup, driver overhead).
        full_duplex: Whether both directions can be used simultaneously.
        efficiency: Fraction of nominal bandwidth achieved by bulk copies.
    """

    name: str
    bandwidth_per_direction: float
    latency_s: float
    full_duplex: bool = True
    efficiency: float = 0.85

    def __post_init__(self) -> None:
        if self.bandwidth_per_direction <= 0:
            raise HardwareSpecError(
                "bandwidth_per_direction must be positive, got "
                f"{self.bandwidth_per_direction}"
            )
        if self.latency_s < 0:
            raise HardwareSpecError(
                f"latency_s must be >= 0, got {self.latency_s}"
            )
        if not 0.0 < self.efficiency <= 1.0:
            raise HardwareSpecError(
                f"efficiency must be in (0, 1], got {self.efficiency}"
            )

    @property
    def effective_bandwidth(self) -> float:
        """Achievable bytes/second per direction for bulk transfers."""
        return self.bandwidth_per_direction * self.efficiency


@dataclass(frozen=True)
class ComputeSpec:
    """Compute throughput of a processor used for the MLP cost model.

    Attributes:
        name: Human readable processor name.
        peak_flops: Peak FP32 floating point operations per second.
        mlp_efficiency: Fraction of peak achieved on the paper's MLP shapes
            (GEMMs with batch 2048 and hidden sizes of a few hundred reach
            only a modest fraction of peak on a V100).
        kernel_launch_s: Per-kernel launch overhead.
    """

    name: str
    peak_flops: float
    mlp_efficiency: float
    kernel_launch_s: float

    def __post_init__(self) -> None:
        if self.peak_flops <= 0:
            raise HardwareSpecError(
                f"peak_flops must be positive, got {self.peak_flops}"
            )
        if not 0.0 < self.mlp_efficiency <= 1.0:
            raise HardwareSpecError(
                f"mlp_efficiency must be in (0, 1], got {self.mlp_efficiency}"
            )
        if self.kernel_launch_s < 0:
            raise HardwareSpecError(
                f"kernel_launch_s must be >= 0, got {self.kernel_launch_s}"
            )

    @property
    def effective_flops(self) -> float:
        """Achievable FLOP/s on DLRM MLP layers."""
        return self.peak_flops * self.mlp_efficiency


@dataclass(frozen=True)
class PowerSpec:
    """Socket-level power constants used by the energy model (Fig. 14).

    The paper aggregates ``pcm-power`` (CPU socket) and ``nvidia-smi`` (GPU
    board) readings and multiplies by execution time.  We attribute an
    active-power draw to whichever device a pipeline stage keeps busy and an
    idle draw otherwise.
    """

    cpu_active_w: float
    cpu_idle_w: float
    gpu_active_w: float
    gpu_idle_w: float

    def __post_init__(self) -> None:
        for name in ("cpu_active_w", "cpu_idle_w", "gpu_active_w",
                     "gpu_idle_w"):
            value = getattr(self, name)
            if value < 0:
                raise HardwareSpecError(
                    f"{name} must be >= 0, got {value}"
                )


GiB = 1024 ** 3
GB = 10 ** 9


def _xeon_ddr4() -> MemorySpec:
    """Intel Xeon E5-2698v4 socket with DDR4-2400 (Section V)."""
    return MemorySpec(
        name="Xeon E5-2698v4 DDR4",
        capacity_bytes=256 * GiB,
        peak_bandwidth=76.8 * GB,
        # Calibrated to the paper's measured CPU-side gather throughput
        # (~3.5 GB/s effective; latency-bound random 512 B rows through a
        # framework-level EmbeddingBag).
        random_access_efficiency=0.045,
        sequential_efficiency=0.55,
        scattered_write_efficiency=0.28,
        access_latency_s=40e-6,
    )


def _v100_hbm() -> MemorySpec:
    """NVIDIA V100 (32 GB HBM2, 900 GB/s)."""
    return MemorySpec(
        name="V100 HBM2",
        capacity_bytes=32 * GiB,
        peak_bandwidth=900.0 * GB,
        # GPU gathers coalesce across a warp; random 512 B rows reach a far
        # higher fraction of peak than the CPU does.
        random_access_efficiency=0.35,
        sequential_efficiency=0.80,
        scattered_write_efficiency=0.55,
        access_latency_s=8e-6,
    )


def _pcie_gen3() -> LinkSpec:
    """PCIe gen3 x16 (16 GB/s per direction, Section V)."""
    return LinkSpec(
        name="PCIe gen3 x16",
        bandwidth_per_direction=16.0 * GB,
        latency_s=15e-6,
        full_duplex=True,
        efficiency=0.80,
    )


def _nvlink() -> LinkSpec:
    """NVLink mesh of a p3.16xlarge (8x V100); per-GPU aggregate."""
    return LinkSpec(
        name="NVLink (per-GPU aggregate)",
        bandwidth_per_direction=150.0 * GB,
        latency_s=8e-6,
        full_duplex=True,
        efficiency=0.75,
    )


def _v100_compute() -> ComputeSpec:
    """V100 FP32 compute (14 TFLOP/s peak)."""
    return ComputeSpec(
        name="V100 FP32",
        peak_flops=14.0e12,
        # Calibrated to framework-level throughput on DLRM's MLP shapes
        # (small GEMMs plus per-op overheads reach only ~1.5 TFLOP/s; this
        # reproduces the paper's 16-19 ms GPU-only iteration (Table I) and
        # its observation that data-parallel MLP scaling yields little,
        # Section VI-G).
        mlp_efficiency=0.11,
        kernel_launch_s=10e-6,
    )


def _xeon_compute() -> ComputeSpec:
    """Xeon E5-2698v4 FP32 compute (20 cores, AVX2)."""
    return ComputeSpec(
        name="Xeon E5-2698v4 FP32",
        peak_flops=1.3e12,
        mlp_efficiency=0.20,
        kernel_launch_s=2e-6,
    )


def _default_power() -> PowerSpec:
    """Socket/board level power draws (Xeon TDP 135 W, V100 300 W)."""
    return PowerSpec(
        cpu_active_w=130.0,
        cpu_idle_w=45.0,
        gpu_active_w=260.0,
        gpu_idle_w=40.0,
    )


@dataclass(frozen=True)
class HardwareSpec:
    """Complete description of one training node.

    The default instance reproduces the paper's evaluation platform:
    Xeon E5-2698v4 + single V100 over PCIe gen3 (Section V).
    """

    cpu_memory: MemorySpec = field(default_factory=_xeon_ddr4)
    gpu_memory: MemorySpec = field(default_factory=_v100_hbm)
    pcie: LinkSpec = field(default_factory=_pcie_gen3)
    nvlink: LinkSpec = field(default_factory=_nvlink)
    gpu_compute: ComputeSpec = field(default_factory=_v100_compute)
    cpu_compute: ComputeSpec = field(default_factory=_xeon_compute)
    power: PowerSpec = field(default_factory=_default_power)
    # Per-pipeline-stage synchronisation overhead (stream sync, host logic).
    stage_sync_s: float = 1.2e-3

    def __post_init__(self) -> None:
        if self.stage_sync_s < 0:
            raise HardwareSpecError(
                f"stage_sync_s must be >= 0, got {self.stage_sync_s}"
            )


DEFAULT_HARDWARE = HardwareSpec()


@dataclass(frozen=True)
class AwsInstance:
    """AWS EC2 pricing entry used by Table I's training-cost comparison."""

    name: str
    price_per_hour: float
    num_gpus: int


# Prices exactly as quoted in Table I of the paper.
P3_2XLARGE = AwsInstance(name="p3.2xlarge", price_per_hour=3.06, num_gpus=1)
P3_16XLARGE = AwsInstance(name="p3.16xlarge", price_per_hour=24.48, num_gpus=8)

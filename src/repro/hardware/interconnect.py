"""Transfer cost model for CPU<->GPU and GPU<->GPU interconnects.

ScratchPipe's [Exchange] stage simultaneously copies missed embeddings
CPU->GPU and evicted embeddings GPU->CPU over PCIe (Section IV-B).  PCIe
gen3 is full duplex, so a bidirectional exchange costs the maximum of the
two directions rather than their sum.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import HardwareSpecError
from repro.hardware.spec import LinkSpec


@dataclass(frozen=True)
class Link:
    """Cost model wrapper around a :class:`LinkSpec`.  Times in seconds."""

    spec: LinkSpec

    def transfer_time(self, n_bytes: float) -> float:
        """Time for a one-directional bulk copy of ``n_bytes``."""
        if n_bytes < 0:
            raise HardwareSpecError(f"n_bytes must be non-negative, got {n_bytes}")
        if n_bytes == 0:
            return 0.0
        return self.spec.latency_s + n_bytes / self.spec.effective_bandwidth

    def exchange_time(self, bytes_forward: float, bytes_backward: float) -> float:
        """Time for a bidirectional exchange.

        Args:
            bytes_forward: Bytes moved in the primary direction (CPU->GPU).
            bytes_backward: Bytes moved in the opposite direction.

        Full-duplex links overlap the two directions; half-duplex links
        serialise them.
        """
        forward = self.transfer_time(bytes_forward)
        backward = self.transfer_time(bytes_backward)
        if self.spec.full_duplex:
            return max(forward, backward)
        return forward + backward

    def allto_all_time(self, n_bytes_per_gpu: float, num_gpus: int) -> float:
        """Time for an all-to-all of ``n_bytes_per_gpu`` across ``num_gpus``.

        Each GPU sends ``(num_gpus - 1) / num_gpus`` of its payload to peers;
        with full-duplex links the send and receive overlap.
        """
        if num_gpus < 1:
            raise HardwareSpecError(f"num_gpus must be >= 1, got {num_gpus}")
        if num_gpus == 1:
            return 0.0
        remote_fraction = (num_gpus - 1) / num_gpus
        return self.transfer_time(n_bytes_per_gpu * remote_fraction)

    def allreduce_time(self, n_bytes: float, num_gpus: int) -> float:
        """Time for a ring all-reduce of an ``n_bytes`` buffer."""
        if num_gpus < 1:
            raise HardwareSpecError(f"num_gpus must be >= 1, got {num_gpus}")
        if num_gpus == 1:
            return 0.0
        # Ring all-reduce moves 2 * (N-1)/N of the buffer per GPU.
        return self.transfer_time(2.0 * n_bytes * (num_gpus - 1) / num_gpus)

"""End-to-end training-system design points (Section VI's four systems)."""

from repro.systems.adagrad_scratchpipe import (
    AdagradScratchPipeRun,
    AdagradScratchPipeTrainer,
    augment_tables,
    split_tables,
)
from repro.systems.base import (
    CPU_EMB_BACKWARD,
    CPU_EMB_FORWARD,
    GPU_GROUP,
    BatchAccessStats,
    InsufficientSteadyStateError,
    IterationBreakdown,
    StageTime,
    SystemRunResult,
    TrainingSystem,
    batch_access_stats,
)
from repro.systems.hybrid import HybridSystem, HybridTrainer
from repro.systems.multigpu import MultiGpuSystem
from repro.systems.overlapped_hybrid import OverlappedHybridSystem
from repro.systems.multigpu_scratchpipe import (
    MultiGpuScratchPipeSystem,
    tco_comparison,
)
from repro.systems.scratchpipe_system import (
    AggregateCacheStats,
    ScratchPipeSystem,
    ScratchPipeTrainer,
    ScratchPipeTrainingRun,
    make_scratchpads,
)
from repro.systems.metrics import (
    DegenerateLatencyError,
    ThroughputReport,
    speedup,
    throughput_report,
)
from repro.systems.stages import CACHE_STAGES, cache_stage_times
from repro.systems.static_cache import (
    SplitStats,
    StaticCacheSystem,
    StaticCacheTrainer,
    split_batch,
)
from repro.systems.strawman_system import StrawmanSystem

__all__ = [
    "AdagradScratchPipeRun",
    "AdagradScratchPipeTrainer",
    "augment_tables",
    "split_tables",
    "CPU_EMB_BACKWARD",
    "CPU_EMB_FORWARD",
    "GPU_GROUP",
    "BatchAccessStats",
    "InsufficientSteadyStateError",
    "IterationBreakdown",
    "StageTime",
    "SystemRunResult",
    "TrainingSystem",
    "batch_access_stats",
    "HybridSystem",
    "HybridTrainer",
    "MultiGpuSystem",
    "OverlappedHybridSystem",
    "MultiGpuScratchPipeSystem",
    "tco_comparison",
    "AggregateCacheStats",
    "ScratchPipeSystem",
    "ScratchPipeTrainer",
    "ScratchPipeTrainingRun",
    "make_scratchpads",
    "DegenerateLatencyError",
    "ThroughputReport",
    "speedup",
    "throughput_report",
    "CACHE_STAGES",
    "cache_stage_times",
    "SplitStats",
    "StaticCacheSystem",
    "StaticCacheTrainer",
    "split_batch",
    "StrawmanSystem",
]

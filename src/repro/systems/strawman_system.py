"""Timing model of the straw-man dynamic cache (no pipelining, Figure 8).

The straw-man runs the same Plan/Collect/Exchange/Insert/Train stages as
ScratchPipe but sequentially, so its iteration latency is the *sum* of the
stage latencies — the cache-management steps sit on the critical path.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.api.registry import register_system
from repro.api.specs import InvalidSystemSpecError, SystemSpec
from repro.core.scratchpad import GpuScratchpad, hazard_floor_slots
from repro.core.strawman import StrawmanCache, make_strawman_scratchpads
from repro.model.config import ModelConfig
from repro.systems.base import IterationBreakdown, SystemRunResult, TrainingSystem
from repro.systems.scratchpipe_system import _legacy_shim_spec
from repro.systems.stages import cache_stage_times


@register_system(
    "strawman",
    requires_cache=True,
    description="Sequential dynamic cache without pipelining (Section IV-B)",
)
class StrawmanSystem(TrainingSystem):
    """Sequential dynamic-cache design point (Section IV-B)."""

    name = "strawman"

    def __init__(
        self,
        config: ModelConfig,
        hardware,
        cache_fraction: Optional[float] = None,
        policy_name: str = "lru",
        *,
        spec: Optional[SystemSpec] = None,
    ) -> None:
        super().__init__(config, hardware)
        if spec is None:
            spec = _legacy_shim_spec(
                self.name, cache_fraction, policy_name, future_window=2
            )
        elif cache_fraction is not None:
            raise TypeError(
                "pass either a spec or positional cache parameters, not both"
            )
        if spec.cache is None:
            raise InvalidSystemSpecError(f"{self.name} requires a cache spec")
        self.spec = spec
        resolved = spec.cache.resolve(config.num_tables, config.rows_per_table)
        self.table_slots: Tuple[int, ...] = tuple(r.slots for r in resolved)
        self.table_policies: Tuple[str, ...] = tuple(r.policy for r in resolved)
        self.cache_fraction = (
            spec.cache.fraction if spec.cache.is_uniform else None
        )
        self.num_slots = max(self.table_slots)
        self.policy_name = spec.cache.policy
        self._scratchpads = None

    @classmethod
    def from_spec(cls, spec, config, hardware):
        return cls(config, hardware, spec=spec)

    @classmethod
    def min_cache_slots(cls, spec, config):
        """Sequential hazard floor: one worst-case batch of unique IDs.

        The straw-man holds no concurrent batches (its past window is
        pinned at 0), but every batch still needs its own misses to fit —
        a cache below one batch's worst-case unique count can deadlock.
        """
        return hazard_floor_slots(config, past_window=0)

    def _make_cache(self) -> StrawmanCache:
        # Like ScratchPipeSystem, reuse the scratchpads (and their dense
        # Hit-Map indices) across run_trace calls, resetting in place.
        if self._scratchpads is None:
            self._scratchpads = make_strawman_scratchpads(
                self.config, self.table_slots,
                policy_name=self.table_policies,
                with_storage=self.spec.scratchpad.with_storage,
                legacy_select=self.spec.scratchpad.legacy_select,
            )
        else:
            for scratchpad in self._scratchpads:
                scratchpad.reset()
        return StrawmanCache(config=self.config, scratchpads=self._scratchpads)

    def run_trace(
        self, dataset_batches: object, num_batches: Optional[int] = None
    ) -> SystemRunResult:
        total = len(dataset_batches)
        num_batches = total if num_batches is None else num_batches
        cache = self._make_cache()
        result = SystemRunResult(system=self.name)
        for index in range(num_batches):
            stats = cache.run_batch(dataset_batches.batch(index))
            # Sequential execution needs no future window.
            stage_times = cache_stage_times(self.cost, stats, future_window=0)
            breakdown = IterationBreakdown(stages=tuple(stage_times.values()))
            result.breakdowns.append(breakdown)
            result.iteration_times.append(breakdown.total)
            result.energies.append(breakdown.sequential_energy(self.energy_model))
        return result

"""Timing model of the straw-man dynamic cache (no pipelining, Figure 8).

The straw-man runs the same Plan/Collect/Exchange/Insert/Train stages as
ScratchPipe but sequentially, so its iteration latency is the *sum* of the
stage latencies — the cache-management steps sit on the critical path.
"""

from __future__ import annotations

from typing import Optional

from repro.core.scratchpad import GpuScratchpad
from repro.core.strawman import StrawmanCache, make_strawman_scratchpads
from repro.model.config import ModelConfig
from repro.systems.base import IterationBreakdown, SystemRunResult, TrainingSystem
from repro.systems.stages import cache_stage_times


class StrawmanSystem(TrainingSystem):
    """Sequential dynamic-cache design point (Section IV-B)."""

    name = "strawman"

    def __init__(
        self,
        config: ModelConfig,
        hardware,
        cache_fraction: float,
        policy_name: str = "lru",
    ) -> None:
        super().__init__(config, hardware)
        if not 0.0 < cache_fraction <= 1.0:
            raise ValueError(
                f"cache_fraction must be in (0, 1], got {cache_fraction}"
            )
        self.cache_fraction = cache_fraction
        self.num_slots = max(1, int(cache_fraction * config.rows_per_table))
        self.policy_name = policy_name
        self._scratchpads = None

    def _make_cache(self) -> StrawmanCache:
        # Like ScratchPipeSystem, reuse the scratchpads (and their dense
        # Hit-Map indices) across run_trace calls, resetting in place.
        if self._scratchpads is None:
            self._scratchpads = make_strawman_scratchpads(
                self.config, self.num_slots, policy_name=self.policy_name
            )
        else:
            for scratchpad in self._scratchpads:
                scratchpad.reset()
        return StrawmanCache(config=self.config, scratchpads=self._scratchpads)

    def run_trace(
        self, dataset_batches: object, num_batches: Optional[int] = None
    ) -> SystemRunResult:
        total = len(dataset_batches)
        num_batches = total if num_batches is None else num_batches
        cache = self._make_cache()
        result = SystemRunResult(system=self.name)
        for index in range(num_batches):
            stats = cache.run_batch(dataset_batches.batch(index))
            # Sequential execution needs no future window.
            stage_times = cache_stage_times(self.cost, stats, future_window=0)
            breakdown = IterationBreakdown(stages=tuple(stage_times.values()))
            result.breakdowns.append(breakdown)
            result.iteration_times.append(breakdown.total)
            result.energies.append(breakdown.sequential_energy(self.energy_model))
        return result

"""The pipelined ScratchPipe system: timing model + functional trainer.

Timing: every batch's five stage latencies are priced exactly like the
straw-man's, but the stages of *different* batches overlap (Figure 10), so
the steady-state iteration time is the per-cycle maximum across the stages
currently occupied — plus a per-cycle synchronisation overhead — instead of
the per-batch sum.

Functional: :class:`ScratchPipeTrainer` implements the [Train] stage
callback of :class:`repro.core.pipeline.ScratchPipePipeline`, performing the
entire embedding forward/backward against the GPU scratchpad's Storage
array — the paper's "training at GPU memory speed".
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import SystemInputError
from repro.api.registry import register_system
from repro.api.specs import (
    CacheSpec,
    InvalidSystemSpecError,
    PipelineSpec,
    SystemSpec,
)
from repro.core.pipeline import (
    PRICED_STAGE_OFFSETS,
    BatchCacheStats,
    HazardMonitor,
    ScratchPipePipeline,
)
from repro.core.scratchpad import (
    GpuScratchpad,
    TablePlan,
    hazard_floor_slots,
    per_table,
)
from repro.data.trace import MiniBatch
from repro.hardware.energy import CPU, GPU, EnergySlice
from repro.model.config import ModelConfig
from repro.model.dlrm import DenseNetwork
from repro.model.embedding import coalesce_gradients, duplicate_gradients
from repro.model.optimizer import SGD
from repro.systems.base import IterationBreakdown, SystemRunResult, TrainingSystem
from repro.systems.stages import CACHE_STAGES, cache_stage_times

#: Back-compat alias — the offsets now live in ``repro.core.pipeline``.
_STAGE_OFFSETS = PRICED_STAGE_OFFSETS


def _pipelined_cycle_times(
    stage_times: Sequence[Dict[str, float]], sync: float
) -> List[float]:
    """Per-retired-batch cycle times of the 6-stage pipeline.

    The cycle in which batch ``b`` trains takes as long as its slowest
    occupied stage plus the sync overhead.  Batches that retire during
    pipeline *drain* (the trailing cycles where upstream stages sit empty)
    would otherwise look artificially cheap — on a long-running job every
    retiring batch shares the pipe with five younger ones — so drain-cycle
    batches are attributed the mean fully-occupied (steady-state) cycle.

    Implemented as a sliding-window max: stage ``s`` of batch ``b`` occupies
    cycle ``b + offset(s)``, so laying each stage column into a
    cycle-indexed matrix shifted by its offset turns the per-cycle
    "max over occupied stages" into one row-wise ``max`` over the matrix.
    """
    num_batches = len(stage_times)
    if num_batches == 0:
        return []
    stages = tuple(_STAGE_OFFSETS)
    times = np.array(
        [[st[stage] for stage in stages] for st in stage_times], dtype=np.float64
    )
    train_offset = _STAGE_OFFSETS["train"]
    last_cycle = num_batches - 1 + train_offset
    shifted = np.full((last_cycle + 1, len(stages)), -np.inf)
    for column, stage in enumerate(stages):
        offset = _STAGE_OFFSETS[stage]
        shifted[offset : offset + num_batches, column] = times[:, column]
    occupied = shifted != -np.inf
    cycle_times = shifted.max(axis=1) + sync
    cycle_of_batch = cycle_times[train_offset : train_offset + num_batches].tolist()
    fully_occupied = cycle_times[occupied.sum(axis=1) == len(stages)]
    if fully_occupied.size:
        # Sequential sum keeps the mean bit-identical to the original
        # accumulate-in-cycle-order loop.
        steady = sum(fully_occupied.tolist()) / fully_occupied.size
        drain_start = num_batches - (train_offset - 1)
        for batch_index in range(max(0, drain_start), num_batches):
            cycle_of_batch[batch_index] = steady
    return cycle_of_batch


def make_scratchpads(
    config: ModelConfig,
    num_slots: Union[int, Sequence[int]],
    policy_name: Union[str, Sequence[str]] = "lru",
    with_storage: bool = False,
    past_window: int = 3,
    legacy_select: "Optional[bool]" = None,
) -> List[GpuScratchpad]:
    """Build one pipelined-mode scratchpad per table.

    ``num_slots`` and ``policy_name`` accept either a uniform scalar or a
    per-table sequence — the heterogeneous-cache path sizes each table's
    Hit-Map/Hold-mask/policy independently.
    """
    slots = per_table(num_slots, config.num_tables, "num_slots")
    policies = per_table(policy_name, config.num_tables, "policy_name")
    return [
        GpuScratchpad(
            num_slots=slots[table],
            num_rows=config.rows_per_table,
            dim=config.embedding_dim,
            past_window=past_window,
            policy_name=policies[table],
            with_storage=with_storage,
            legacy_select=legacy_select,
            table_index=table,
        )
        for table in range(config.num_tables)
    ]


@dataclass
class AggregateCacheStats:
    """Running totals of a streamed metadata run.

    Attributes mirror the per-batch :class:`BatchCacheStats` counters,
    summed over every retired batch past the warm-up prefix, plus
    per-table rollups — the observable the heterogeneous-cache studies
    read (how does table 0's 4 % cache fare against table 3's 0.5 %?).
    """

    batches: int = 0
    total_lookups: int = 0
    unique_ids: int = 0
    hits: int = 0
    misses: int = 0
    writebacks: int = 0
    per_table_hits: Tuple[int, ...] = ()
    per_table_unique: Tuple[int, ...] = ()
    per_table_misses: Tuple[int, ...] = ()

    @property
    def hit_rate(self) -> float:
        """Hits over unique planned IDs (the Plan-stage hit rate)."""
        if self.unique_ids == 0:
            return 0.0
        return self.hits / self.unique_ids

    def per_table_hit_rates(self) -> Tuple[float, ...]:
        """Plan-stage hit rate of each table's cache manager."""
        return tuple(
            hits / unique if unique else 0.0
            for hits, unique in zip(self.per_table_hits, self.per_table_unique)
        )

    def add(self, stats: BatchCacheStats) -> None:
        """Fold one retired batch's counters into the running totals."""
        self.batches += 1
        self.total_lookups += stats.total_lookups
        self.unique_ids += stats.unique_ids
        self.hits += stats.hits
        self.misses += stats.misses
        self.writebacks += stats.writebacks
        if stats.per_table_hits:
            if self.per_table_hits:
                self.per_table_hits = tuple(
                    a + b for a, b in zip(self.per_table_hits,
                                          stats.per_table_hits)
                )
                self.per_table_unique = tuple(
                    a + b for a, b in zip(self.per_table_unique,
                                          stats.per_table_unique)
                )
                self.per_table_misses = tuple(
                    a + b for a, b in zip(self.per_table_misses,
                                          stats.per_table_misses)
                )
            else:
                self.per_table_hits = tuple(stats.per_table_hits)
                self.per_table_unique = tuple(stats.per_table_unique)
                self.per_table_misses = tuple(stats.per_table_misses)


def _legacy_shim_spec(
    system_name: str,
    cache_fraction: Optional[float],
    policy_name: str,
    future_window: int,
    num_gpus: int = 1,
) -> SystemSpec:
    """Synthesize the uniform spec a deprecated positional call describes."""
    warnings.warn(
        f"positional {system_name} construction is deprecated; build "
        "through repro.api.build_system(SystemSpec(...)) instead",
        DeprecationWarning,
        stacklevel=3,
    )
    if cache_fraction is None:
        raise TypeError(
            f"{system_name} needs either cache_fraction or spec="
        )
    return SystemSpec(
        system=system_name,
        cache=CacheSpec(fraction=cache_fraction, policy=policy_name),
        pipeline=PipelineSpec(future_window=future_window),
        num_gpus=num_gpus,
    )


@register_system(
    "scratchpipe",
    requires_cache=True,
    description="Pipelined ScratchPipe: dynamic per-table GPU cache, "
                "6-stage pipeline (the paper's design)",
)
class ScratchPipeSystem(TrainingSystem):
    """Timing model of the pipelined ScratchPipe design point.

    Spec-based construction (``build_system`` / ``spec=``) is the primary
    path and enables heterogeneous per-table caches: each table's
    Hit-Map/Hold-mask/policy triple is sized independently from the
    resolved :class:`~repro.api.specs.CacheSpec`, and per-table statistics
    roll up through :class:`AggregateCacheStats`.  The positional
    ``(config, hardware, cache_fraction, ...)`` form survives as a
    deprecation-warned shim that synthesizes the equivalent uniform spec —
    bit-identical outputs.
    """

    name = "scratchpipe"

    def __init__(
        self,
        config: ModelConfig,
        hardware,
        cache_fraction: Optional[float] = None,
        policy_name: str = "lru",
        future_window: int = 2,
        *,
        spec: Optional[SystemSpec] = None,
    ) -> None:
        super().__init__(config, hardware)
        if spec is None:
            spec = _legacy_shim_spec(
                self.name, cache_fraction, policy_name, future_window
            )
        elif cache_fraction is not None:
            raise TypeError(
                "pass either a spec or positional cache parameters, not both"
            )
        if spec.system != self.name:
            raise InvalidSystemSpecError(
                f"spec names system {spec.system!r} but is being built as "
                f"{self.name!r}"
            )
        if spec.cache is None:
            raise InvalidSystemSpecError(
                f"{self.name} requires a cache spec"
            )
        self.spec = spec
        resolved = spec.cache.resolve(config.num_tables, config.rows_per_table)
        #: Per-table scratchpad capacities/policies (uniform specs repeat
        #: one value; the heterogeneous path sizes each independently).
        self.table_slots: Tuple[int, ...] = tuple(r.slots for r in resolved)
        self.table_policies: Tuple[str, ...] = tuple(r.policy for r in resolved)
        #: Legacy uniform attributes: the shared fraction/policy where the
        #: spec is uniform, else ``None``/the default entry and the largest
        #: per-table capacity.
        self.cache_fraction = (
            spec.cache.fraction if spec.cache.is_uniform else None
        )
        self.num_slots = max(self.table_slots)
        self.policy_name = spec.cache.policy
        self.future_window = spec.pipeline.future_window
        self.executor = spec.pipeline.executor
        self._scratchpads: Optional[List[GpuScratchpad]] = None

    @classmethod
    def from_spec(cls, spec, config, hardware):
        return cls(config, hardware, spec=spec)

    @classmethod
    def min_cache_slots(cls, spec, config):
        """Hold-mask hazard floor: ``past_window + 1`` worst-case batches.

        Any table sized below this can exhaust hazard-free victims
        mid-run (``CachePressureError``); ``build_system`` rejects such
        specs at construction instead (see
        :func:`repro.core.scratchpad.hazard_floor_slots`).
        """
        return hazard_floor_slots(
            config, past_window=spec.scratchpad.past_window
        )

    def _reusable_scratchpads(self) -> List[GpuScratchpad]:
        """Metadata-only scratchpads, built once per system and reset per run.

        Each scratchpad owns a dense ``rows_per_table``-sized Hit-Map index
        (~320 MB across tables at paper scale); sweep runners evaluate many
        grid points against one system instance, so the index is allocated
        once and wiped in place between runs.
        """
        if self._scratchpads is None:
            self._scratchpads = make_scratchpads(
                self.config,
                self.table_slots,
                policy_name=self.table_policies,
                with_storage=self.spec.scratchpad.with_storage,
                past_window=self.spec.scratchpad.past_window,
                legacy_select=self.spec.scratchpad.legacy_select,
            )
        else:
            for scratchpad in self._scratchpads:
                scratchpad.reset()
        return self._scratchpads

    def simulate_cache(
        self,
        dataset_batches: object,
        num_batches: Optional[int] = None,
        monitor: Optional[HazardMonitor] = None,
    ) -> List[BatchCacheStats]:
        """Metadata-only pipeline run returning per-batch cache statistics.

        Args:
            dataset_batches: Random-access batch source.
            num_batches: Prefix length (default: whole trace).
            monitor: Optional :class:`HazardMonitor` to attach, verifying
                hazard freedom alongside the statistics run.
        """
        pipeline = ScratchPipePipeline(
            config=self.config,
            scratchpads=self._reusable_scratchpads(),
            dataset_batches=dataset_batches,
            future_window=self.future_window,
            monitor=monitor,
            unique_cache=self.spec.pipeline.unique_cache,
            executor=self.executor,
        )
        return pipeline.run(num_batches).cache_stats

    def stream_cache_stats(
        self,
        dataset_batches: object,
        num_batches: Optional[int] = None,
        monitor: Optional[HazardMonitor] = None,
    ):
        """Streaming twin of :meth:`simulate_cache`.

        Yields each batch's :class:`BatchCacheStats` as it retires instead
        of accumulating the list, so arbitrarily long scenario traces flow
        through the system at constant memory (the pipeline holds only its
        six in-flight batches and the source generates chunk-wise).
        """
        pipeline = ScratchPipePipeline(
            config=self.config,
            scratchpads=self._reusable_scratchpads(),
            dataset_batches=dataset_batches,
            future_window=self.future_window,
            monitor=monitor,
            unique_cache=self.spec.pipeline.unique_cache,
            executor=self.executor,
        )
        return pipeline.stream(num_batches)

    def aggregate_cache_stats(
        self,
        dataset_batches: object,
        num_batches: Optional[int] = None,
        warmup: int = 0,
    ) -> "AggregateCacheStats":
        """Whole-trace cache totals, computed streamingly.

        The reduction the locality-sensitivity studies want (hit rate under
        drift/churn/burst) without materialising per-batch statistics —
        memory stays flat in the trace length.

        Mirrors the ``SystemRunResult`` warm-up convention: a trace no
        longer than ``warmup`` aggregates over every batch instead of
        silently reducing nothing.
        """
        steady = AggregateCacheStats()
        full = AggregateCacheStats()
        for stats in self.stream_cache_stats(dataset_batches, num_batches):
            for totals in ((full, steady) if stats.batch_index >= warmup
                           else (full,)):
                totals.add(stats)
        return steady if steady.batches else full

    def run_trace(
        self, dataset_batches: object, num_batches: Optional[int] = None
    ) -> SystemRunResult:
        total = len(dataset_batches)
        num_batches = total if num_batches is None else num_batches
        all_stats = self.simulate_cache(dataset_batches, num_batches)

        # Price each batch's stages.
        stage_times: List[Dict[str, float]] = []
        result = SystemRunResult(system=self.name)
        for stats in all_stats:
            priced = cache_stage_times(self.cost, stats, self.future_window)
            stage_times.append({k: v.seconds for k, v in priced.items()})
            result.breakdowns.append(
                IterationBreakdown(stages=tuple(priced.values()))
            )

        # Pipeline timing: cycle c advances every in-flight batch one stage;
        # the cycle takes as long as its slowest occupied stage.
        cycle_of_batch = _pipelined_cycle_times(
            stage_times, self.hardware.stage_sync_s
        )

        for index in range(num_batches):
            result.iteration_times.append(cycle_of_batch[index])
            # Both devices stay busy during a pipelined cycle (the GPU
            # trains while the CPU collects/inserts for other batches).
            result.energies.append(
                self.energy_model.total_energy(
                    [EnergySlice(seconds=cycle_of_batch[index], busy=(CPU, GPU))]
                )
            )
        return result


@dataclass
class ScratchPipeTrainer:
    """Functional [Train] stage: embedding + dense training on the scratchpad.

    Every gather and parameter update is served from Storage through the
    slots the Plan stage assigned — if any ID were missing the mapping would
    raise, so a completed run *is* the always-hit guarantee.
    """

    config: ModelConfig
    dense_network: DenseNetwork
    optimizer: SGD = field(default_factory=SGD)
    losses: List[float] = field(default_factory=list)

    def train(
        self,
        batch: MiniBatch,
        plans: Sequence[TablePlan],
        scratchpads: Sequence[GpuScratchpad],
    ) -> float:
        """Run one full training iteration against the scratchpads."""
        if batch.dense is None or batch.labels is None:
            raise SystemInputError("functional training requires dense inputs/labels")
        cfg = self.config
        slot_maps = []
        pooled_columns = []
        for t in range(cfg.num_tables):
            slots = plans[t].slots_for(batch.sparse_ids[t])
            slot_maps.append(slots)
            rows = scratchpads[t].read_slots(slots)
            pooled_columns.append(rows.sum(axis=1))
        pooled = np.stack(pooled_columns, axis=1)

        self.dense_network.forward(batch.dense, pooled)
        loss = self.dense_network.loss(batch.labels)
        grad_pooled = self.dense_network.backward(batch.labels)

        for t in range(cfg.num_tables):
            ids = batch.sparse_ids[t]
            duplicated = duplicate_gradients(grad_pooled[:, t, :], ids.shape[1])
            unique_ids, grads = coalesce_gradients(
                ids.reshape(-1), duplicated.reshape(-1, cfg.embedding_dim)
            )
            # The gradient scatter below indexes Storage through the plan's
            # slots, so the coalesced IDs must be exactly the plan's
            # unique_ids — a mismatched plan would silently scatter
            # gradients into the wrong rows.
            if not np.array_equal(unique_ids, plans[t].unique_ids):
                raise AssertionError(
                    f"plan/batch mismatch for table {t}: coalesced gradient "
                    "IDs differ from the plan's unique_ids — the plan does "
                    "not belong to this batch"
                )
            slots = plans[t].slots
            updated = scratchpads[t].read_slots(slots) - self.optimizer.lr * grads
            scratchpads[t].write_slots(slots, updated)
        self.dense_network.step(self.optimizer)
        self.losses.append(loss)
        return loss


@dataclass
class ScratchPipeTrainingRun:
    """Convenience wrapper: functional end-to-end ScratchPipe training.

    Builds storage-backed scratchpads over the given CPU master tables,
    wires in a :class:`ScratchPipeTrainer` and runs the full pipeline.
    After :meth:`run`, :meth:`final_tables` returns the authoritative
    weights (CPU master with the still-cached scratchpad rows merged back),
    which equivalence tests compare against sequential baseline training.
    """

    config: ModelConfig
    cpu_tables: List[np.ndarray]
    dense_network: DenseNetwork
    num_slots: Union[int, Sequence[int]]
    optimizer: SGD = field(default_factory=SGD)
    policy_name: Union[str, Sequence[str]] = "lru"
    future_window: int = 2
    monitor: Optional[HazardMonitor] = None
    executor: str = "serial"
    scratchpads: List[GpuScratchpad] = field(init=False)
    trainer: ScratchPipeTrainer = field(init=False)

    def __post_init__(self) -> None:
        self.scratchpads = make_scratchpads(
            self.config,
            self.num_slots,
            policy_name=self.policy_name,
            with_storage=True,
        )
        self.trainer = ScratchPipeTrainer(
            config=self.config,
            dense_network=self.dense_network,
            optimizer=self.optimizer,
        )

    @classmethod
    def from_spec(
        cls,
        spec: SystemSpec,
        config: ModelConfig,
        cpu_tables: List[np.ndarray],
        dense_network: DenseNetwork,
        optimizer: Optional[SGD] = None,
        monitor: Optional[HazardMonitor] = None,
    ) -> "ScratchPipeTrainingRun":
        """Functional training run described by a ``SystemSpec``.

        Resolves the (possibly per-table heterogeneous) cache spec into
        independently sized storage-backed scratchpads.
        """
        if spec.cache is None:
            raise InvalidSystemSpecError(
                "a functional ScratchPipe run requires a cache spec"
            )
        resolved = spec.cache.resolve(config.num_tables, config.rows_per_table)
        return cls(
            config=config,
            cpu_tables=cpu_tables,
            dense_network=dense_network,
            num_slots=tuple(r.slots for r in resolved),
            optimizer=optimizer if optimizer is not None else SGD(),
            policy_name=tuple(r.policy for r in resolved),
            future_window=spec.pipeline.future_window,
            monitor=monitor,
            executor=spec.pipeline.executor,
        )

    def run(self, dataset_batches: object, num_batches: Optional[int] = None):
        """Run the functional pipeline; returns its :class:`PipelineResult`."""
        pipeline = ScratchPipePipeline(
            config=self.config,
            scratchpads=self.scratchpads,
            dataset_batches=dataset_batches,
            cpu_tables=self.cpu_tables,
            trainer=self.trainer,
            future_window=self.future_window,
            monitor=self.monitor,
            executor=self.executor,
        )
        return pipeline.run(num_batches)

    def final_tables(self) -> List[np.ndarray]:
        """CPU master tables with cached dirty rows merged back in."""
        merged = [t.copy() for t in self.cpu_tables]
        for t, scratchpad in enumerate(self.scratchpads):
            keys = scratchpad.hit_map.keys()
            if keys.size:
                slots = scratchpad.hit_map.slots_of_keys(keys)
                merged[t][keys] = scratchpad.storage[slots]
        return merged

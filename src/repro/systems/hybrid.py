"""The baseline hybrid CPU-GPU system without caching (Figure 4(a)).

Embedding tables live in CPU DRAM; every gather, reduction, gradient
duplication/coalescing and scatter executes at CPU memory speed.  The GPU
only sees the pooled embeddings (shipped over PCIe) and runs the dense
network; pooled gradients travel back over PCIe for the CPU-side embedding
backward pass.  This is the design whose memory-bandwidth bottleneck the
whole paper sets out to remove.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.data.trace import MiniBatch
from repro.model.config import ModelConfig
from repro.model.dlrm import DLRMModel
from repro.systems.base import (
    CPU_EMB_BACKWARD,
    CPU_EMB_FORWARD,
    GPU_GROUP,
    BatchAccessStats,
    IterationBreakdown,
    SystemRunResult,
    TrainingSystem,
    batch_access_stats,
    cpu_stage,
    gpu_stage,
    transfer_stage,
)


from repro.api.registry import register_system


@register_system(
    "hybrid",
    description="No-cache hybrid CPU-GPU baseline (Figure 4(a))",
)
class HybridSystem(TrainingSystem):
    """Timing model of the no-cache hybrid CPU-GPU baseline."""

    name = "hybrid"

    def iteration_breakdown(self, stats: BatchAccessStats) -> IterationBreakdown:
        """Price one iteration given the batch's ID statistics."""
        cost = self.cost
        lookups = stats.total_lookups
        unique = stats.unique_rows
        stages = (
            cpu_stage(
                "cpu_gather",
                CPU_EMB_FORWARD,
                cost.embedding_gather(lookups, "cpu"),
            ),
            cpu_stage(
                "cpu_reduce",
                CPU_EMB_FORWARD,
                cost.embedding_reduce(lookups, "cpu"),
            ),
            transfer_stage("pooled_to_gpu", GPU_GROUP, cost.pooled_transfer()),
            gpu_stage("dense_train", GPU_GROUP, cost.dense_train("gpu")),
            transfer_stage("grads_to_cpu", GPU_GROUP, cost.pooled_transfer()),
            cpu_stage(
                "cpu_grad_duplicate",
                CPU_EMB_BACKWARD,
                cost.gradient_duplicate(lookups, "cpu"),
            ),
            cpu_stage(
                "cpu_grad_coalesce",
                CPU_EMB_BACKWARD,
                cost.gradient_coalesce(lookups, "cpu"),
            ),
            cpu_stage(
                "cpu_grad_scatter",
                CPU_EMB_BACKWARD,
                cost.gradient_scatter(unique, "cpu"),
            ),
        )
        return IterationBreakdown(stages=stages)

    def run_trace(
        self, dataset_batches: object, num_batches: Optional[int] = None
    ) -> SystemRunResult:
        total = len(dataset_batches)
        num_batches = total if num_batches is None else num_batches
        result = SystemRunResult(system=self.name)
        for index in range(num_batches):
            stats = batch_access_stats(dataset_batches.batch(index))
            breakdown = self.iteration_breakdown(stats)
            result.breakdowns.append(breakdown)
            result.iteration_times.append(breakdown.total)
            result.energies.append(breakdown.sequential_energy(self.energy_model))
        return result


@dataclass
class HybridTrainer:
    """Functional reference: sequential training with tables in "CPU memory".

    This is algorithmically identical to :class:`repro.model.dlrm.DLRMModel`
    — exposed as a system-shaped wrapper so equivalence tests can treat all
    designs uniformly.
    """

    model: DLRMModel

    def train_batch(self, batch: MiniBatch) -> float:
        """One sequential training iteration; returns the loss."""
        return self.model.train_step(batch)

    def table_weights(self) -> List[np.ndarray]:
        """Live views of the master table weights."""
        return [t.weights for t in self.model.tables]

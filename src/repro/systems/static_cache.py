"""CPU-GPU system with a software-managed *static* GPU embedding cache.

Reproduces the caching baseline of Yin et al. that the paper compares
against (Figure 4(b)): the top-N most-frequently-accessed embeddings of each
table are pinned in GPU memory for the entire training run, never evicted.
Hits train at GPU speed; misses pay the full CPU gather / gradient
duplicate-coalesce-scatter path plus PCIe crossings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

import numpy as np

from repro.errors import SystemConfigError
from repro.api.registry import register_system
from repro.api.specs import InvalidSystemSpecError, SystemSpec
from repro.core.scratchpad import per_table
from repro.data.trace import MiniBatch
from repro.model.config import ModelConfig
from repro.model.dlrm import DenseNetwork
from repro.model.embedding import coalesce_gradients, duplicate_gradients
from repro.model.optimizer import SGD
from repro.systems.scratchpipe_system import _legacy_shim_spec
from repro.systems.base import (
    CPU_EMB_BACKWARD,
    CPU_EMB_FORWARD,
    GPU_GROUP,
    IterationBreakdown,
    SystemRunResult,
    TrainingSystem,
    cpu_stage,
    gpu_stage,
    transfer_stage,
)


@dataclass(frozen=True)
class SplitStats:
    """Hit/miss split of one batch against the static hot set.

    Lookup counts include duplicates; unique counts do not.
    """

    hit_lookups: int
    miss_lookups: int
    hit_unique: int
    miss_unique: int

    @property
    def total_lookups(self) -> int:
        """All gathers issued by the batch."""
        return self.hit_lookups + self.miss_lookups

    @property
    def hit_rate(self) -> float:
        """Lookup-level hit rate against the static cache."""
        if self.total_lookups == 0:
            return 1.0
        return self.hit_lookups / self.total_lookups


def split_batch(
    batch: MiniBatch, hot_rows: Union[int, Tuple[int, ...]]
) -> SplitStats:
    """Split a batch's lookups into static-cache hits and misses.

    The synthetic distributions rank rows by popularity with row ID == rank,
    so the top-N hot set is exactly ``ids < hot_rows`` (see
    ``repro.data.distributions``).  ``hot_rows`` may be a per-table
    sequence (heterogeneous pinning budgets) or a uniform scalar.
    """
    thresholds = per_table(hot_rows, batch.num_tables, "hot_rows")
    hit_lookups = 0
    miss_lookups = 0
    hit_unique = 0
    miss_unique = 0
    for table in range(batch.num_tables):
        ids = batch.table_ids(table)
        hits = ids < thresholds[table]
        hit_lookups += int(hits.sum())
        miss_lookups += int(ids.size - hits.sum())
        unique = batch.unique_table_ids(table)
        unique_hits = int((unique < thresholds[table]).sum())
        hit_unique += unique_hits
        miss_unique += int(unique.size - unique_hits)
    return SplitStats(
        hit_lookups=hit_lookups,
        miss_lookups=miss_lookups,
        hit_unique=hit_unique,
        miss_unique=miss_unique,
    )


@register_system(
    "static_cache",
    requires_cache=True,
    description="Static top-N pinned GPU embedding cache (Figure 4(b))",
)
class StaticCacheSystem(TrainingSystem):
    """Timing model of the static-cache CPU-GPU design (Figure 4(b))."""

    name = "static_cache"

    def __init__(
        self,
        config: ModelConfig,
        hardware,
        cache_fraction: Optional[float] = None,
        *,
        spec: Optional[SystemSpec] = None,
    ) -> None:
        super().__init__(config, hardware)
        if spec is None:
            spec = _legacy_shim_spec(self.name, cache_fraction, "lru", 2)
        elif cache_fraction is not None:
            raise TypeError(
                "pass either a spec or positional cache parameters, not both"
            )
        if spec.cache is None:
            raise InvalidSystemSpecError(f"{self.name} requires a cache spec")
        self.spec = spec
        resolved = spec.cache.resolve(config.num_tables, config.rows_per_table)
        #: Per-table pinned-row budgets (replacement policy does not apply
        #: to a never-evicting static cache and is ignored).
        self.table_hot_rows: Tuple[int, ...] = tuple(r.slots for r in resolved)
        self.cache_fraction = (
            spec.cache.fraction if spec.cache.is_uniform else None
        )
        self.hot_rows: Union[int, Tuple[int, ...]] = (
            self.table_hot_rows[0] if spec.cache.is_uniform
            else self.table_hot_rows
        )

    @classmethod
    def from_spec(cls, spec, config, hardware):
        return cls(config, hardware, spec=spec)

    def iteration_breakdown(self, split: SplitStats) -> IterationBreakdown:
        """Price one iteration from the batch's hit/miss split."""
        cost = self.cost
        stages = (
            # Sparse IDs travel to the GPU where hit/miss is evaluated; the
            # missed IDs travel back for the CPU-side lookups.
            transfer_stage("ids_to_gpu", GPU_GROUP,
                           cost.id_transfer(split.total_lookups)),
            gpu_stage("hit_miss_eval", GPU_GROUP,
                      cost.hitmap_query(split.total_lookups)),
            transfer_stage("miss_ids_to_cpu", GPU_GROUP,
                           cost.id_transfer(split.miss_lookups)),
            cpu_stage("cpu_gather_missed", CPU_EMB_FORWARD,
                      cost.embedding_gather(split.miss_lookups, "cpu")),
            transfer_stage("missed_rows_to_gpu", CPU_EMB_FORWARD,
                           cost.row_transfer(split.miss_lookups)),
            gpu_stage("gpu_gather_hit", GPU_GROUP,
                      cost.embedding_gather(split.hit_lookups, "gpu")),
            gpu_stage("gpu_reduce", GPU_GROUP,
                      cost.embedding_reduce(split.total_lookups, "gpu")),
            gpu_stage("dense_train", GPU_GROUP, cost.dense_train("gpu")),
            gpu_stage(
                "gpu_grad_dup_coalesce_hit",
                GPU_GROUP,
                cost.gradient_duplicate(split.hit_lookups, "gpu")
                + cost.gradient_coalesce(split.hit_lookups, "gpu"),
            ),
            gpu_stage("gpu_scatter_hit", GPU_GROUP,
                      cost.gradient_scatter(split.hit_unique, "gpu")),
            transfer_stage("grads_to_cpu", CPU_EMB_BACKWARD,
                           cost.pooled_transfer()),
            cpu_stage(
                "cpu_grad_dup_coalesce_missed",
                CPU_EMB_BACKWARD,
                cost.gradient_duplicate(split.miss_lookups, "cpu")
                + cost.gradient_coalesce(split.miss_lookups, "cpu"),
            ),
            cpu_stage("cpu_scatter_missed", CPU_EMB_BACKWARD,
                      cost.gradient_scatter(split.miss_unique, "cpu")),
        )
        return IterationBreakdown(stages=stages)

    def run_trace(
        self, dataset_batches: object, num_batches: Optional[int] = None
    ) -> SystemRunResult:
        total = len(dataset_batches)
        num_batches = total if num_batches is None else num_batches
        result = SystemRunResult(system=self.name)
        for index in range(num_batches):
            split = split_batch(dataset_batches.batch(index), self.hot_rows)
            breakdown = self.iteration_breakdown(split)
            result.breakdowns.append(breakdown)
            result.iteration_times.append(breakdown.total)
            result.energies.append(breakdown.sequential_energy(self.energy_model))
        return result


@dataclass
class StaticCacheTrainer:
    """Functional static-cache training for the equivalence tests.

    Rows below ``hot_rows`` live in a GPU-side copy; the rest stay in the
    CPU master table.  Updates are applied wherever the row lives, so after
    merging the final weights must match sequential baseline training
    bit-for-bit (static caching changes data placement, not the algorithm).
    """

    config: ModelConfig
    cpu_tables: List[np.ndarray]
    hot_rows: int
    dense_network: DenseNetwork
    optimizer: SGD = field(default_factory=SGD)
    gpu_caches: List[np.ndarray] = field(init=False)

    def __post_init__(self) -> None:
        if not 0 <= self.hot_rows <= self.config.rows_per_table:
            raise SystemConfigError(
                f"hot_rows must be in [0, {self.config.rows_per_table}], "
                f"got {self.hot_rows}"
            )
        self.gpu_caches = [t[: self.hot_rows].copy() for t in self.cpu_tables]

    def _gather(self, table: int, ids: np.ndarray) -> np.ndarray:
        values = self.cpu_tables[table][ids]
        hits = ids < self.hot_rows
        if hits.any():
            values[hits] = self.gpu_caches[table][ids[hits]]
        return values

    def train_batch(self, batch: MiniBatch) -> float:
        """One training iteration through the split-placement tables."""
        cfg = self.config
        pooled = np.stack(
            [
                self._gather(t, batch.sparse_ids[t]).sum(axis=1)
                for t in range(cfg.num_tables)
            ],
            axis=1,
        )
        self.dense_network.forward(batch.dense, pooled)
        loss = self.dense_network.loss(batch.labels)
        grad_pooled = self.dense_network.backward(batch.labels)
        for t in range(cfg.num_tables):
            ids = batch.sparse_ids[t]
            duplicated = duplicate_gradients(grad_pooled[:, t, :], ids.shape[1])
            unique_ids, grads = coalesce_gradients(
                ids.reshape(-1), duplicated.reshape(-1, cfg.embedding_dim)
            )
            hits = unique_ids < self.hot_rows
            self.optimizer.scatter(
                self.gpu_caches[t], unique_ids[hits], grads[hits]
            )
            self.optimizer.scatter(
                self.cpu_tables[t], unique_ids[~hits], grads[~hits]
            )
        self.dense_network.step(self.optimizer)
        return loss

    def merged_tables(self) -> List[np.ndarray]:
        """Authoritative table weights (GPU cache merged over CPU master)."""
        merged = [t.copy() for t in self.cpu_tables]
        for t, cache in zip(merged, self.gpu_caches):
            t[: self.hot_rows] = cache
        return merged

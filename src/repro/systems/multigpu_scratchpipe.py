"""ScratchPipe extended to multi-GPU training (Section VI-G, future work).

The paper sketches the design: under table-wise model parallelism each GPU
owns a subset of the embedding tables and runs its *own* per-table cache
managers — no inter-GPU RAW hazards arise because each partitioned table is
locally an independent table.  This module provides the analytic timing
model for that design point so the paper's prediction can be tested: with
the DNNs contributing little, multi-GPU ScratchPipe underutilises the extra
GPUs and is **less cost-effective** than the single-GPU design.

Modelling choices (documented deviations):

* [Collect]/[Insert] still bottleneck on the *single* CPU memory — adding
  GPUs multiplies PCIe lanes but not DDR4 bandwidth, so the CPU-side stage
  time does not shrink.
* [Exchange] parallelises across the per-GPU PCIe links.
* [Train] embedding work splits across GPUs; the dense network trains
  data-parallel with the same batch-invariant-efficiency behaviour as
  :class:`repro.systems.multigpu.MultiGpuSystem`, plus all-to-all and
  all-reduce collectives.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import SystemConfigError
from repro.core.pipeline import BatchCacheStats
from repro.hardware.energy import CPU, GPU, EnergySlice
from repro.model.config import ModelConfig, dense_parameter_bytes
from repro.systems.base import IterationBreakdown, SystemRunResult, TrainingSystem
from repro.systems.scratchpipe_system import ScratchPipeSystem
from repro.systems.stages import (
    COLLECT,
    EXCHANGE,
    INSERT,
    PLAN,
    TRAIN,
    collect_time,
    insert_time,
    plan_time,
)
from repro.systems.base import StageTime, gpu_stage, transfer_stage

#: Pipeline offsets (same 6-stage pipeline as the single-GPU design).
_STAGE_OFFSETS = {PLAN: 1, COLLECT: 2, EXCHANGE: 3, INSERT: 4, TRAIN: 5}


from repro.api.registry import register_system
from repro.api.specs import InvalidSystemSpecError, SystemSpec
from repro.systems.scratchpipe_system import _legacy_shim_spec


@register_system(
    "multi_gpu_scratchpipe",
    requires_cache=True,
    uses_num_gpus=True,
    description="ScratchPipe over table-parallel GPUs (Section VI-G)",
)
class MultiGpuScratchPipeSystem(TrainingSystem):
    """Analytic timing of ScratchPipe over ``num_gpus`` table-parallel GPUs."""

    name = "multi_gpu_scratchpipe"

    def __init__(
        self,
        config: ModelConfig,
        hardware,
        cache_fraction: "float | None" = None,
        num_gpus: int = 2,
        policy_name: str = "lru",
        future_window: int = 2,
        *,
        spec: "SystemSpec | None" = None,
    ) -> None:
        super().__init__(config, hardware)
        if spec is None:
            spec = _legacy_shim_spec(
                self.name, cache_fraction, policy_name, future_window,
                num_gpus=num_gpus,
            )
        elif cache_fraction is not None:
            raise TypeError(
                "pass either a spec or positional cache parameters, not both"
            )
        if spec.cache is None:
            raise InvalidSystemSpecError(f"{self.name} requires a cache spec")
        num_gpus = spec.num_gpus
        if num_gpus < 1:
            raise SystemConfigError(f"num_gpus must be >= 1, got {num_gpus}")
        if config.num_tables % num_gpus != 0:
            raise SystemConfigError(
                f"num_gpus ({num_gpus}) must divide num_tables "
                f"({config.num_tables}) for table-wise partitioning"
            )
        self.spec = spec
        self.num_gpus = num_gpus
        self.cache_fraction = (
            spec.cache.fraction if spec.cache.is_uniform else None
        )
        self.future_window = spec.pipeline.future_window
        # Cache behaviour per table is unchanged — reuse the single-GPU
        # simulator for hit/miss/victim statistics (heterogeneous per-table
        # caches flow through unchanged).
        self._cache_sim = ScratchPipeSystem(
            config, hardware,
            spec=spec.with_system("scratchpipe"),
        )

    @classmethod
    def from_spec(cls, spec, config, hardware):
        return cls(config, hardware, spec=spec)

    # ------------------------------------------------------------------
    # Per-stage pricing
    # ------------------------------------------------------------------
    def _stage_times(self, stats: BatchCacheStats) -> Dict[str, StageTime]:
        cost = self.cost
        g = self.num_gpus
        cfg = self.config

        plan = plan_time(cost, stats, self.future_window) / g
        # CPU DDR4 is shared: reads/writes of missed/evicted rows do not
        # parallelise, only the GPU-side halves do.
        collect = max(
            cost.cpu_table_read(stats.misses),
            cost.cache_evict_read(stats.writebacks) / g,
        )
        exchange = cost.row_exchange(stats.misses / g, stats.writebacks / g)
        insert = max(
            cost.cpu_table_write(stats.writebacks),
            cost.cache_fill(stats.misses) / g,
        )
        embedding = cost.gpu_resident_embedding_train(
            stats.total_lookups / g, stats.unique_ids / g
        )
        pooled_bytes_per_gpu = cfg.reduced_bytes_per_batch / g
        collectives = 2 * cost.nvlink.allto_all_time(
            pooled_bytes_per_gpu, g
        ) + cost.nvlink.allreduce_time(dense_parameter_bytes(cfg), g)
        train = embedding + cost.dense_train("gpu") + collectives

        return {
            PLAN: transfer_stage(PLAN, PLAN, plan),
            COLLECT: transfer_stage(COLLECT, COLLECT, collect),
            EXCHANGE: transfer_stage(EXCHANGE, EXCHANGE, exchange),
            INSERT: transfer_stage(INSERT, INSERT, insert),
            TRAIN: gpu_stage(TRAIN, TRAIN, train),
        }

    # ------------------------------------------------------------------
    # Pipeline timing (same cycle rule as the single-GPU system)
    # ------------------------------------------------------------------
    def run_trace(
        self, dataset_batches: object, num_batches: Optional[int] = None
    ) -> SystemRunResult:
        total = len(dataset_batches)
        num_batches = total if num_batches is None else num_batches
        all_stats = self._cache_sim.simulate_cache(dataset_batches, num_batches)

        stage_seconds: List[Dict[str, float]] = []
        result = SystemRunResult(system=self.name)
        for stats in all_stats:
            priced = self._stage_times(stats)
            stage_seconds.append({k: v.seconds for k, v in priced.items()})
            result.breakdowns.append(
                IterationBreakdown(stages=tuple(priced.values()))
            )

        from repro.systems.scratchpipe_system import _pipelined_cycle_times

        cycle_of_batch = _pipelined_cycle_times(
            stage_seconds, self.hardware.stage_sync_s
        )

        gpu_extra_w = (self.num_gpus - 1) * self.hardware.power.gpu_active_w
        for seconds in cycle_of_batch:
            result.iteration_times.append(seconds)
            base = self.energy_model.total_energy(
                [EnergySlice(seconds=seconds, busy=(CPU, GPU))]
            )
            result.energies.append(base + gpu_extra_w * seconds)
        return result


def tco_comparison(
    single_gpu_latency: float,
    multi_gpu_latency: float,
    num_gpus: int,
    single_gpu_price_hr: float = 3.06,
    price_per_gpu_hr: float = 3.06,
) -> Dict[str, float]:
    """Cost-effectiveness of scaling ScratchPipe out to ``num_gpus`` GPUs.

    Returns the speedup, the cost ratio (multi / single for equal iteration
    counts) and the marginal GPU utilisation efficiency — the paper expects
    the latter to be well below 1 (Section VI-G).
    """
    if single_gpu_latency <= 0 or multi_gpu_latency <= 0:
        raise SystemConfigError("latencies must be positive")
    speedup = single_gpu_latency / multi_gpu_latency
    single_cost = single_gpu_price_hr * single_gpu_latency
    multi_cost = price_per_gpu_hr * num_gpus * multi_gpu_latency
    return {
        "speedup": speedup,
        "cost_ratio": multi_cost / single_cost,
        "scaling_efficiency": speedup / num_gpus,
    }

"""Optimiser-state co-location: row-wise Adagrad inside the scratchpad.

The paper trains with SGD, whose updates are stateless per row.  Production
DLRM training typically uses row-wise Adagrad, which keeps one accumulator
per embedding row — and under ScratchPipe that accumulator must *migrate
with the row* between the CPU table and the GPU scratchpad, or the
post-eviction updates would restart the accumulator and diverge from the
reference algorithm.

The implementation rides on an observation: the pipeline's functional data
movement ([Collect]/[Exchange]/[Insert]) is agnostic to row width.  We
simply widen every row by one float32 column holding the accumulator:

* CPU tables become ``(rows, dim + 1)`` — column ``dim`` is the state;
* the scratchpad Storage becomes ``(slots, dim + 1)``;
* fills, victim reads and write-backs carry the state automatically;
* the [Train] callback splits the columns, performs the row-wise Adagrad
  update in float32 and writes both halves back.

Equivalence holds bit-for-bit against a sequential reference running
:class:`repro.model.adagrad.AdagradOptimizer` with ``state_dtype=float32``
(the tests verify it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import SystemConfigError, SystemInputError
from repro.core.pipeline import HazardMonitor, ScratchPipePipeline
from repro.core.scratchpad import GpuScratchpad, TablePlan, per_table
from repro.data.trace import MiniBatch
from repro.model.adagrad import DenseAdagrad
from repro.model.config import ModelConfig
from repro.model.dlrm import DenseNetwork
from repro.model.embedding import coalesce_gradients, duplicate_gradients


def augment_tables(tables: Sequence[np.ndarray]) -> List[np.ndarray]:
    """Append a zeroed float32 accumulator column to each weight table."""
    out = []
    for table in tables:
        if table.ndim != 2:
            raise SystemConfigError(f"expected (rows, dim) table, got {table.shape}")
        aux = np.zeros((table.shape[0], 1), dtype=np.float32)
        out.append(np.concatenate([table.astype(np.float32), aux], axis=1))
    return out


def split_tables(augmented: Sequence[np.ndarray]) -> tuple:
    """Split augmented tables back into ``(weights, accumulators)``."""
    weights = [t[:, :-1].copy() for t in augmented]
    accumulators = [t[:, -1].copy() for t in augmented]
    return weights, accumulators


@dataclass
class AdagradScratchPipeTrainer:
    """[Train] callback performing row-wise Adagrad against augmented rows."""

    config: ModelConfig
    dense_network: DenseNetwork
    lr: float = 0.01
    eps: float = 1e-10
    dense_optimizer: DenseAdagrad = field(init=False)
    losses: List[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.lr <= 0:
            raise SystemConfigError(f"lr must be positive, got {self.lr}")
        self.dense_optimizer = DenseAdagrad(lr=self.lr, eps=self.eps)

    def train(
        self,
        batch: MiniBatch,
        plans: Sequence[TablePlan],
        scratchpads: Sequence[GpuScratchpad],
    ) -> float:
        """One training iteration; weights and accumulators live together."""
        if batch.dense is None or batch.labels is None:
            raise SystemInputError("functional training requires dense inputs/labels")
        cfg = self.config
        dim = cfg.embedding_dim

        pooled_columns = []
        for t in range(cfg.num_tables):
            slots = plans[t].slots_for(batch.sparse_ids[t])
            rows = scratchpads[t].read_slots(slots)
            pooled_columns.append(rows[..., :dim].sum(axis=1))
        pooled = np.stack(pooled_columns, axis=1)

        self.dense_network.forward(batch.dense, pooled)
        loss = self.dense_network.loss(batch.labels)
        grad_pooled = self.dense_network.backward(batch.labels)

        lr32 = np.float32(self.lr)
        for t in range(cfg.num_tables):
            ids = batch.sparse_ids[t]
            duplicated = duplicate_gradients(grad_pooled[:, t, :], ids.shape[1])
            unique_ids, grads = coalesce_gradients(
                ids.reshape(-1), duplicated.reshape(-1, dim)
            )
            # coalesce returns sorted unique IDs == the plan's unique_ids.
            slots = plans[t].slots
            state = scratchpads[t].read_slots(slots)
            accumulator = state[:, dim]
            # Identical float32 expression order as SparseAdagrad with
            # state_dtype=float32 — bit-exact equivalence by construction.
            accumulator = accumulator + (
                grads.astype(np.float32) ** 2
            ).mean(axis=1)
            scale = lr32 / (np.sqrt(accumulator) + np.float32(self.eps))
            state[:, :dim] = state[:, :dim] - (
                scale[:, None] * grads
            ).astype(np.float32)
            state[:, dim] = accumulator
            scratchpads[t].write_slots(slots, state)

        self.dense_optimizer.step(self.dense_network.bottom_mlp)
        self.dense_optimizer.step(self.dense_network.top_mlp)
        self.losses.append(loss)
        return loss


@dataclass
class AdagradScratchPipeRun:
    """End-to-end pipelined Adagrad training with state co-location.

    Args:
        config: Model geometry.
        weight_tables: Plain ``(rows, dim)`` initial weights per table;
            augmented internally with the accumulator column.
        dense_network: Dense model (trained with dense Adagrad).
        num_slots: Scratchpad capacity per table.
    """

    config: ModelConfig
    weight_tables: Sequence[np.ndarray]
    dense_network: DenseNetwork
    num_slots: object
    lr: float = 0.01
    eps: float = 1e-10
    policy_name: object = "lru"
    future_window: int = 2
    monitor: Optional[HazardMonitor] = None
    cpu_tables: List[np.ndarray] = field(init=False)
    scratchpads: List[GpuScratchpad] = field(init=False)
    trainer: AdagradScratchPipeTrainer = field(init=False)

    def __post_init__(self) -> None:
        self.cpu_tables = augment_tables(self.weight_tables)
        slots = per_table(self.num_slots, self.config.num_tables, "num_slots")
        policies = per_table(
            self.policy_name, self.config.num_tables, "policy_name"
        )
        self.scratchpads = [
            GpuScratchpad(
                num_slots=slots[table],
                num_rows=self.config.rows_per_table,
                dim=self.config.embedding_dim + 1,
                policy_name=policies[table],
                with_storage=True,
            )
            for table in range(self.config.num_tables)
        ]
        self.trainer = AdagradScratchPipeTrainer(
            config=self.config,
            dense_network=self.dense_network,
            lr=self.lr,
            eps=self.eps,
        )

    @classmethod
    def from_spec(
        cls,
        spec,
        config: ModelConfig,
        weight_tables: Sequence[np.ndarray],
        dense_network: DenseNetwork,
        lr: float = 0.01,
        eps: float = 1e-10,
        monitor: Optional[HazardMonitor] = None,
    ) -> "AdagradScratchPipeRun":
        """Adagrad training run described by a ``repro.api.SystemSpec``.

        The (possibly heterogeneous) cache spec sizes each table's
        storage-backed scratchpad independently.
        """
        from repro.api.specs import InvalidSystemSpecError

        if spec.cache is None:
            raise InvalidSystemSpecError(
                "a functional Adagrad ScratchPipe run requires a cache spec"
            )
        resolved = spec.cache.resolve(config.num_tables, config.rows_per_table)
        return cls(
            config=config,
            weight_tables=weight_tables,
            dense_network=dense_network,
            num_slots=tuple(r.slots for r in resolved),
            lr=lr,
            eps=eps,
            policy_name=tuple(r.policy for r in resolved),
            future_window=spec.pipeline.future_window,
            monitor=monitor,
        )

    def run(self, dataset_batches: object, num_batches: Optional[int] = None):
        """Run the functional pipeline; returns its ``PipelineResult``."""
        pipeline = ScratchPipePipeline(
            config=self.config,
            scratchpads=self.scratchpads,
            dataset_batches=dataset_batches,
            cpu_tables=self.cpu_tables,
            trainer=self.trainer,
            future_window=self.future_window,
            monitor=self.monitor,
        )
        return pipeline.run(num_batches)

    def final_state(self) -> tuple:
        """``(weights, accumulators)`` with cached rows merged back."""
        merged = [t.copy() for t in self.cpu_tables]
        for t, scratchpad in enumerate(self.scratchpads):
            keys = scratchpad.hit_map.keys()
            if keys.size:
                slots = scratchpad.hit_map.slots_of_keys(keys)
                merged[t][keys] = scratchpad.storage[slots]
        return split_tables(merged)

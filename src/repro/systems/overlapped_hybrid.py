"""Software-pipelined hybrid CPU-GPU baseline (overlap without caching).

The related-work section cites a body of systems ([33]-[38]) that hide
CPU-GPU communication by overlapping computation with data movement — but
*without* changing where the embedding work executes.  This design point
makes that argument quantitative: a two-stage software pipeline overlaps
the CPU's embedding work for neighbouring batches with the GPU's dense
work, which helps only until the CPU side saturates.  Since the hybrid
baseline is CPU-bound by 5-10x (Figure 5), overlap alone recovers little —
ScratchPipe's gain comes from *relocating* the embedding work to GPU
memory, not from scheduling.

Pipeline structure (batch ``i``):

* CPU stage of cycle ``i``: embedding backward of batch ``i-1`` (needs the
  dense gradients produced last cycle) followed by embedding forward of
  batch ``i``;
* GPU stage of cycle ``i``: dense forward/backward of batch ``i`` (needs
  this cycle's CPU forward output — the serialising dependency);
* PCIe transfers ride along each hand-off.

The cycle time is ``cpu_backward(i-1) + cpu_forward(i) + transfers`` when
CPU-bound (the dense work of batch ``i-1`` hides inside it), bounded below
by the dense time when the model is MLP-dominated.
"""

from __future__ import annotations

from typing import Optional

from repro.systems.base import (
    BatchAccessStats,
    CPU_EMB_BACKWARD,
    CPU_EMB_FORWARD,
    GPU_GROUP,
    IterationBreakdown,
    SystemRunResult,
    TrainingSystem,
    batch_access_stats,
    cpu_stage,
    gpu_stage,
    transfer_stage,
)
from repro.hardware.energy import CPU, GPU, EnergySlice


from repro.api.registry import register_system


@register_system(
    "overlapped_hybrid",
    description="Hybrid baseline with software-pipelined CPU/GPU overlap, "
                "no cache",
)
class OverlappedHybridSystem(TrainingSystem):
    """Hybrid CPU-GPU with software-pipelined CPU/GPU overlap, no cache."""

    name = "overlapped_hybrid"

    def _cpu_seconds(self, stats: BatchAccessStats) -> float:
        cost = self.cost
        return (
            cost.embedding_gather(stats.total_lookups, "cpu")
            + cost.embedding_reduce(stats.total_lookups, "cpu")
            + cost.embedding_backward(
                stats.total_lookups, stats.unique_rows, "cpu"
            )
        )

    def _gpu_seconds(self) -> float:
        return self.cost.dense_train("gpu")

    def _transfer_seconds(self) -> float:
        # Pooled embeddings out, pooled gradients back; full duplex overlaps
        # them across neighbouring batches.
        return self.cost.pooled_transfer()

    def iteration_breakdown(self, stats: BatchAccessStats) -> IterationBreakdown:
        """Stage latencies of one iteration (pre-overlap)."""
        cost = self.cost
        stages = (
            cpu_stage("cpu_emb_forward", CPU_EMB_FORWARD,
                      cost.embedding_gather(stats.total_lookups, "cpu")
                      + cost.embedding_reduce(stats.total_lookups, "cpu")),
            transfer_stage("pooled_exchange", GPU_GROUP,
                           self._transfer_seconds()),
            gpu_stage("dense_train", GPU_GROUP, self._gpu_seconds()),
            cpu_stage("cpu_emb_backward", CPU_EMB_BACKWARD,
                      cost.embedding_backward(
                          stats.total_lookups, stats.unique_rows, "cpu")),
        )
        return IterationBreakdown(stages=stages)

    def steady_cycle_seconds(self, stats: BatchAccessStats) -> float:
        """Overlapped steady-state iteration time.

        The CPU and GPU stages of *different* batches run concurrently;
        each cycle retires one batch and costs the slower side plus the
        non-overlappable hand-off.
        """
        cpu_side = self._cpu_seconds(stats) + self._transfer_seconds()
        gpu_side = self._gpu_seconds() + self._transfer_seconds()
        return max(cpu_side, gpu_side) + self.hardware.stage_sync_s

    def run_trace(
        self, dataset_batches: object, num_batches: Optional[int] = None
    ) -> SystemRunResult:
        total = len(dataset_batches)
        num_batches = total if num_batches is None else num_batches
        result = SystemRunResult(system=self.name)
        for index in range(num_batches):
            stats = batch_access_stats(dataset_batches.batch(index))
            breakdown = self.iteration_breakdown(stats)
            cycle = self.steady_cycle_seconds(stats)
            result.breakdowns.append(breakdown)
            result.iteration_times.append(cycle)
            # Both devices are busy every overlapped cycle.
            result.energies.append(
                self.energy_model.total_energy(
                    [EnergySlice(seconds=cycle, busy=(CPU, GPU))]
                )
            )
        return result

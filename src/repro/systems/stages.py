"""Pricing of the dynamic-cache pipeline stages (shared by straw-man and
ScratchPipe).

Given one batch's :class:`~repro.core.pipeline.BatchCacheStats`, these
helpers return the latency of every stage of Figure 8 / Figure 10:
``Plan`` (ID transfer + Hit-Map query + Hold-mask update), ``Collect`` (CPU
table reads in parallel with GPU victim reads), ``Exchange`` (bidirectional
PCIe), ``Insert`` (CPU write-backs in parallel with GPU fills) and ``Train``
(the whole embedding + dense training executed at GPU memory speed).
"""

from __future__ import annotations

from typing import Dict

from repro.core.pipeline import BatchCacheStats
from repro.hardware.timing import CostModel
from repro.systems.base import StageTime, gpu_stage, transfer_stage

#: Reporting group for every dynamic-cache stage (Figure 12(b) plots stages
#: directly, so group == stage name).
PLAN = "plan"
COLLECT = "collect"
EXCHANGE = "exchange"
INSERT = "insert"
TRAIN = "train"

CACHE_STAGES = (PLAN, COLLECT, EXCHANGE, INSERT, TRAIN)


def plan_time(cost: CostModel, stats: BatchCacheStats, future_window: int) -> float:
    """[Plan]: copy sparse IDs to the GPU, probe the Hit-Map for the current
    batch and the future window, advance/set the Hold mask."""
    queries = stats.unique_ids * (1 + future_window)
    return (
        cost.id_transfer(stats.total_lookups)
        + cost.hitmap_query(queries)
        + cost.holdmask_update(stats.unique_ids)
    )


def collect_time(cost: CostModel, stats: BatchCacheStats) -> float:
    """[Collect]: CPU gathers the missed rows while the GPU reads out the
    dirty victims — the two proceed concurrently on different devices."""
    return max(
        cost.cpu_table_read(stats.misses),
        cost.cache_evict_read(stats.writebacks),
    )


def exchange_time(cost: CostModel, stats: BatchCacheStats) -> float:
    """[Exchange]: full-duplex PCIe copy — misses in, evictions out."""
    return cost.row_exchange(stats.misses, stats.writebacks)


def insert_time(cost: CostModel, stats: BatchCacheStats) -> float:
    """[Insert]: CPU lands the write-backs while the GPU fills Storage."""
    return max(
        cost.cpu_table_write(stats.writebacks),
        cost.cache_fill(stats.misses),
    )


def train_time(cost: CostModel, stats: BatchCacheStats) -> float:
    """[Train]: gather/reduce/dense/duplicate/coalesce/scatter, all on GPU."""
    return (
        cost.gpu_resident_embedding_train(stats.total_lookups, stats.unique_ids)
        + cost.dense_train("gpu")
    )


def cache_stage_times(
    cost: CostModel, stats: BatchCacheStats, future_window: int
) -> Dict[str, StageTime]:
    """All five priced stages for one batch, keyed by stage name."""
    return {
        PLAN: transfer_stage(PLAN, PLAN, plan_time(cost, stats, future_window)),
        COLLECT: transfer_stage(COLLECT, COLLECT, collect_time(cost, stats)),
        EXCHANGE: transfer_stage(EXCHANGE, EXCHANGE, exchange_time(cost, stats)),
        INSERT: transfer_stage(INSERT, INSERT, insert_time(cost, stats)),
        TRAIN: gpu_stage(TRAIN, TRAIN, train_time(cost, stats)),
    }

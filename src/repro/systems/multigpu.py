"""GPU-only multi-GPU baseline (Table I's 8-GPU p3.16xlarge system).

The embedding tables are partitioned table-wise across the GPUs' pooled HBM
(model parallelism) while the dense network trains data-parallel — the
configuration Section VI-F compares ScratchPipe's training cost against.
Every embedding operation runs at HBM speed; the costs that remain are the
all-to-all redistributing pooled embeddings/gradients, the dense all-reduce,
and per-iteration synchronisation.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import SystemConfigError
from repro.model.config import ModelConfig, dense_parameter_bytes
from repro.systems.base import (
    BatchAccessStats,
    GPU_GROUP,
    IterationBreakdown,
    StageTime,
    SystemRunResult,
    TrainingSystem,
    batch_access_stats,
    gpu_stage,
)
from repro.hardware.energy import GPU, EnergySlice

#: Fraction of extra GPU coalesce time per unit of duplication factor —
#: hot rows serialise atomic gradient updates, which is why the paper's
#: 8-GPU system is mildly *slower* on high-locality datasets (Table I:
#: 18.61 ms for High vs 16.22 ms for Random).
HOT_ROW_CONTENTION_ALPHA = 0.15

#: The multi-GPU reference implementations the paper compares against apply
#: gradients with atomic scatter-adds rather than a full sorted coalesce, so
#: updates to the same hot row serialise: effective scatter work scales with
#: the *total* gradient count, not the unique row count.
ATOMIC_SCATTER_ALPHA = 1.0


from repro.api.registry import register_system


@register_system(
    "multi_gpu",
    uses_num_gpus=True,
    description="GPU-only model-parallel baseline (Table I's 8-GPU system)",
)
class MultiGpuSystem(TrainingSystem):
    """Analytic timing model of the GPU-only model-parallel system."""

    name = "multi_gpu"

    def __init__(self, config: ModelConfig, hardware, num_gpus: int = 8) -> None:
        super().__init__(config, hardware)
        if num_gpus < 1:
            raise SystemConfigError(f"num_gpus must be >= 1, got {num_gpus}")
        self.num_gpus = num_gpus

    @classmethod
    def from_spec(cls, spec, config, hardware):
        system = cls(config, hardware, num_gpus=spec.num_gpus)
        system.spec = spec
        return system

    def iteration_breakdown(self, stats: BatchAccessStats) -> IterationBreakdown:
        """Price one iteration of the multi-GPU system."""
        cost = self.cost
        cfg = self.config
        per_gpu_lookups = stats.total_lookups / self.num_gpus
        per_gpu_unique = stats.unique_rows / self.num_gpus
        contention = 1.0 + HOT_ROW_CONTENTION_ALPHA * (
            stats.duplication_factor - 1.0
        )

        emb_forward = cost.embedding_gather(
            per_gpu_lookups, "gpu"
        ) + cost.embedding_reduce(per_gpu_lookups, "gpu")
        pooled_bytes_per_gpu = cfg.reduced_bytes_per_batch / self.num_gpus
        alltoall_fwd = cost.nvlink.allto_all_time(
            pooled_bytes_per_gpu, self.num_gpus
        )
        # Dense time is approximately batch-invariant under data parallelism
        # (GEMM efficiency falls with the per-GPU batch; Section VI-G).
        dense = cost.dense_train("gpu")
        allreduce = cost.nvlink.allreduce_time(
            dense_parameter_bytes(cfg), self.num_gpus
        )
        alltoall_bwd = cost.nvlink.allto_all_time(
            pooled_bytes_per_gpu, self.num_gpus
        )
        atomic_scatter_rows = per_gpu_unique * (
            1.0 + ATOMIC_SCATTER_ALPHA * (stats.duplication_factor - 1.0)
        )
        emb_backward = (
            cost.gradient_duplicate(per_gpu_lookups, "gpu")
            + cost.gradient_coalesce(per_gpu_lookups, "gpu") * contention
            + cost.gradient_scatter(atomic_scatter_rows, "gpu")
        )
        sync = self.hardware.stage_sync_s

        stages = (
            gpu_stage("emb_forward", GPU_GROUP, emb_forward),
            gpu_stage("alltoall_fwd", GPU_GROUP, alltoall_fwd),
            gpu_stage("dense_train", GPU_GROUP, dense),
            gpu_stage("allreduce", GPU_GROUP, allreduce),
            gpu_stage("alltoall_bwd", GPU_GROUP, alltoall_bwd),
            gpu_stage("emb_backward", GPU_GROUP, emb_backward),
            gpu_stage("sync", GPU_GROUP, sync),
        )
        return IterationBreakdown(stages=stages)

    def run_trace(
        self, dataset_batches: object, num_batches: Optional[int] = None
    ) -> SystemRunResult:
        total = len(dataset_batches)
        num_batches = total if num_batches is None else num_batches
        result = SystemRunResult(system=self.name)
        for index in range(num_batches):
            stats = batch_access_stats(dataset_batches.batch(index))
            breakdown = self.iteration_breakdown(stats)
            result.breakdowns.append(breakdown)
            result.iteration_times.append(breakdown.total)
            # All GPUs active; CPU idles.  Energy scaled by GPU count.
            per_gpu = self.energy_model.total_energy(
                [EnergySlice(seconds=breakdown.total, busy=(GPU,))]
            )
            gpu_extra = (self.num_gpus - 1) * (
                self.hardware.power.gpu_active_w * breakdown.total
            )
            result.energies.append(per_gpu + gpu_extra)
        return result

"""Shared infrastructure for the end-to-end training-system design points.

The paper evaluates four designs (Section VI): the hybrid CPU-GPU baseline,
a CPU-GPU with a static GPU embedding cache, the straw-man dynamic cache
without pipelining, and the pipelined ScratchPipe.  Every design is a
:class:`TrainingSystem` that turns a trace into per-iteration
:class:`IterationBreakdown` objects (stage latencies + device attribution)
and a :class:`SystemRunResult` (wall-clock and energy per iteration).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.data.trace import MiniBatch
from repro.hardware.energy import CPU, GPU, EnergyModel, EnergySlice
from repro.hardware.spec import HardwareSpec
from repro.hardware.timing import CostModel
from repro.model.config import ModelConfig

class InsufficientSteadyStateError(ValueError):
    """A run is too short for the requested warm-up window.

    Raised by the steady-state reductions of :class:`SystemRunResult`
    when ``len(values) <= warmup``: trimming would leave no steady-state
    samples, and silently falling back to the full (warmup-contaminated)
    series skews every latency/energy/throughput number built on top.
    Callers that genuinely want the short-run mean opt in with
    ``allow_short=True``.
    """


#: Stage-group labels used by Figures 5 and 12(a).
CPU_EMB_FORWARD = "cpu_embedding_forward"
CPU_EMB_BACKWARD = "cpu_embedding_backward"
GPU_GROUP = "gpu"


@dataclass(frozen=True)
class StageTime:
    """One priced stage of an iteration.

    Attributes:
        name: Stage name (system specific).
        group: Reporting group (e.g. Figure 5's CPU-forward/CPU-backward/GPU).
        seconds: Stage latency.
        busy: Devices kept busy, for energy attribution.
    """

    name: str
    group: str
    seconds: float
    busy: Tuple[str, ...]

    def energy_slice(self) -> EnergySlice:
        """Convert to an energy-model slice."""
        return EnergySlice(seconds=self.seconds, busy=self.busy)


@dataclass(frozen=True)
class IterationBreakdown:
    """All priced stages of one training iteration."""

    stages: Tuple[StageTime, ...]

    @property
    def total(self) -> float:
        """Sum of stage latencies (the iteration time of sequential systems)."""
        return sum(s.seconds for s in self.stages)

    def by_group(self) -> Dict[str, float]:
        """Stage latencies summed per reporting group."""
        grouped: Dict[str, float] = {}
        for stage in self.stages:
            grouped[stage.group] = grouped.get(stage.group, 0.0) + stage.seconds
        return grouped

    def by_stage(self) -> Dict[str, float]:
        """Stage latencies keyed by stage name."""
        return {s.name: s.seconds for s in self.stages}

    def sequential_energy(self, model: EnergyModel) -> float:
        """Joules when the stages execute back-to-back (sequential systems)."""
        return model.total_energy(s.energy_slice() for s in self.stages)


@dataclass
class SystemRunResult:
    """Per-iteration outcomes of running a system over a trace.

    Attributes:
        system: System name.
        breakdowns: Per-iteration stage latencies (trace order).
        iteration_times: Wall-clock seconds attributed to each iteration
            (for pipelined systems this is the steady-state cycle time, not
            the sum of that batch's stage latencies).
        energies: Joules attributed to each iteration.
    """

    system: str
    breakdowns: List[IterationBreakdown] = field(default_factory=list)
    iteration_times: List[float] = field(default_factory=list)
    energies: List[float] = field(default_factory=list)

    def _steady(self, values: Sequence, warmup: int, allow_short: bool):
        """Trim the warm-up prefix, refusing to trim an entire run.

        Returns ``values[warmup:]`` — never the untrimmed series unless
        the caller explicitly opted in with ``allow_short=True``, in
        which case a warning flags that the "steady-state" numbers
        include warm-up iterations.
        """
        if len(values) == 0:
            raise InsufficientSteadyStateError("no iterations recorded")
        if len(values) <= warmup:
            if not allow_short:
                raise InsufficientSteadyStateError(
                    f"run has {len(values)} iterations but warmup={warmup}: "
                    "no steady-state samples remain after trimming; pass "
                    "allow_short=True to average the full (warmup-"
                    "contaminated) series, or lower the warmup"
                )
            warnings.warn(
                f"steady-state metrics over {len(values)} iterations "
                f"include warm-up (warmup={warmup} >= run length)",
                RuntimeWarning,
                stacklevel=3,
            )
            return values
        return values[warmup:]

    def mean_latency(self, warmup: int = 6, allow_short: bool = False) -> float:
        """Mean steady-state iteration latency (seconds)."""
        steady = self._steady(self.iteration_times, warmup, allow_short)
        return float(np.asarray(steady).mean())

    def mean_energy(self, warmup: int = 6, allow_short: bool = False) -> float:
        """Mean steady-state energy per iteration (Joules)."""
        steady = self._steady(self.energies, warmup, allow_short)
        return float(np.asarray(steady).mean())

    def stage_means(
        self, warmup: int = 6, allow_short: bool = False
    ) -> Dict[str, float]:
        """Mean per-stage latency at steady state (Figure 12 series)."""
        return self._breakdown_means("by_stage", warmup, allow_short)

    def group_means(
        self, warmup: int = 6, allow_short: bool = False
    ) -> Dict[str, float]:
        """Mean per-group latency at steady state (Figure 5 series)."""
        return self._breakdown_means("by_group", warmup, allow_short)

    def _breakdown_means(
        self, reduction: str, warmup: int, allow_short: bool
    ) -> Dict[str, float]:
        steady = self._steady(self.breakdowns, warmup, allow_short)
        sums: Dict[str, float] = {}
        for breakdown in steady:
            for name, seconds in getattr(breakdown, reduction)().items():
                sums[name] = sums.get(name, 0.0) + seconds
        return {k: v / len(steady) for k, v in sums.items()}


@dataclass(frozen=True)
class BatchAccessStats:
    """ID-level statistics of one batch that timing models consume.

    Attributes:
        total_lookups: Gathers issued across all tables (with duplicates).
        unique_rows: Unique rows touched, summed over tables.
    """

    total_lookups: int
    unique_rows: int

    @property
    def duplication_factor(self) -> float:
        """Mean number of gathers per touched row (>= 1)."""
        if self.unique_rows == 0:
            return 1.0
        return self.total_lookups / self.unique_rows


def batch_access_stats(batch: MiniBatch) -> BatchAccessStats:
    """Compute :class:`BatchAccessStats` for a batch."""
    unique = sum(
        int(batch.unique_table_ids(t).size) for t in range(batch.num_tables)
    )
    total = int(batch.sparse_ids.size)
    return BatchAccessStats(total_lookups=total, unique_rows=unique)


class TrainingSystem:
    """Interface every design point implements."""

    #: Display name used in reports (doubles as the default registry name).
    name: str = "abstract"

    def __init__(self, config: ModelConfig, hardware: HardwareSpec) -> None:
        self.config = config
        self.hardware = hardware
        self.cost = CostModel(hardware=hardware, config=config)
        self.energy_model = EnergyModel(hardware=hardware)
        #: The ``repro.api.SystemSpec`` this instance was built from, or
        #: ``None`` for legacy positional construction.
        self.spec = None

    @classmethod
    def from_spec(cls, spec, config: ModelConfig, hardware: HardwareSpec):
        """Build from a ``repro.api.SystemSpec``.

        The default covers systems with no configuration beyond
        ``(config, hardware)``; designs with caches or GPU counts
        override it.  ``repro.api.build_system`` is the public door —
        it validates the spec/registry pairing before delegating here.
        """
        system = cls(config, hardware)
        system.spec = spec
        return system

    @classmethod
    def min_cache_slots(cls, spec, config: ModelConfig) -> Optional[int]:
        """Per-table cache floor this design needs at ``config``'s geometry.

        ``repro.api.build_system`` rejects specs whose resolved per-table
        capacity falls below this with a named ``InvalidSystemSpecError``
        — turning mid-run ``CachePressureError`` deadlocks into
        construction-time failures.  ``None`` (the default) means the
        design has no replacement pressure to bound (cache-less baselines,
        the never-evicting static cache).
        """
        return None

    def run_trace(
        self, dataset_batches: object, num_batches: Optional[int] = None
    ) -> SystemRunResult:
        """Run (timing-wise) over ``num_batches`` of a trace."""
        raise NotImplementedError


def cpu_stage(name: str, group: str, seconds: float) -> StageTime:
    """A stage that keeps only the CPU busy."""
    return StageTime(name=name, group=group, seconds=seconds, busy=(CPU,))


def gpu_stage(name: str, group: str, seconds: float) -> StageTime:
    """A stage that keeps only the GPU busy."""
    return StageTime(name=name, group=group, seconds=seconds, busy=(GPU,))


def transfer_stage(name: str, group: str, seconds: float) -> StageTime:
    """A PCIe transfer keeps both sides' memory systems busy."""
    return StageTime(name=name, group=group, seconds=seconds, busy=(CPU, GPU))

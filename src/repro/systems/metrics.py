"""Training-throughput and epoch-level metrics derived from system results.

The paper reports per-iteration latency (Figures 12-15, Table I) and frames
the economic argument per million iterations.  Downstream users usually
think in samples/second and time/cost per epoch over a dataset of a given
size; this module provides that arithmetic on top of
:class:`repro.systems.base.SystemRunResult`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SystemConfigError
from repro.hardware.spec import AwsInstance
from repro.model.config import ModelConfig
from repro.systems.base import SystemRunResult


class DegenerateLatencyError(ValueError):
    """A steady-state latency of zero seconds cannot price throughput.

    Raised by :func:`throughput_report` when the warmup-trimmed mean
    iteration latency is not strictly positive — e.g. an empty-stage
    metadata run — instead of surfacing a bare ``ZeroDivisionError``.
    """


@dataclass(frozen=True)
class ThroughputReport:
    """Throughput/epoch metrics of one system on one workload.

    Attributes:
        system: System name.
        iteration_seconds: Mean steady-state iteration latency.
        samples_per_second: Training throughput.
        epoch_iterations: Iterations per epoch for the given dataset size.
        epoch_seconds: Wall-clock seconds per epoch.
        epoch_joules: Energy per epoch.
    """

    system: str
    iteration_seconds: float
    samples_per_second: float
    epoch_iterations: int
    epoch_seconds: float
    epoch_joules: float

    def epoch_cost(self, instance: AwsInstance) -> float:
        """Dollars per epoch on the given AWS instance."""
        return instance.price_per_hour * self.epoch_seconds / 3600.0


def throughput_report(
    result: SystemRunResult,
    config: ModelConfig,
    dataset_samples: int,
    warmup: int = 6,
) -> ThroughputReport:
    """Derive epoch-level metrics from a system run.

    Args:
        result: Output of ``system.run_trace``.
        config: Model geometry (supplies the batch size).
        dataset_samples: Samples in one epoch of the training dataset.
        warmup: Iterations excluded from the steady-state means.
    """
    if dataset_samples < 1:
        raise SystemConfigError(f"dataset_samples must be >= 1, got {dataset_samples}")
    iteration = result.mean_latency(warmup=warmup)
    energy = result.mean_energy(warmup=warmup)
    if iteration <= 0.0:
        raise DegenerateLatencyError(
            f"system {result.system!r} has non-positive mean iteration "
            f"latency {iteration!r} over the steady state (warmup="
            f"{warmup}, {len(result.iteration_times)} iterations); "
            "throughput is undefined for a zero-latency run"
        )
    epoch_iterations = -(-dataset_samples // config.batch_size)  # ceil div
    return ThroughputReport(
        system=result.system,
        iteration_seconds=iteration,
        samples_per_second=config.batch_size / iteration,
        epoch_iterations=epoch_iterations,
        epoch_seconds=iteration * epoch_iterations,
        epoch_joules=energy * epoch_iterations,
    )


def speedup(baseline: ThroughputReport, candidate: ThroughputReport) -> float:
    """Throughput speedup of ``candidate`` over ``baseline``."""
    return candidate.samples_per_second / baseline.samples_per_second

"""repro.lint — AST invariant linter for this reproduction's contracts.

The simulator's correctness claims are *process-level*: bit-identical
reruns across worker counts, byte-identical checkpoint resume, frozen
specs as the only cross-process currency, and a named error taxonomy the
failure report can aggregate.  Unit tests catch violations of these only
when the violating line happens to execute under the violating schedule;
this package checks them statically instead.

Run ``python -m repro.lint src/repro --strict`` (what CI enforces) or
``repro.cli lint``.  Third-party rules register via
:func:`register_rule` or the ``"repro.lint_rules"`` entry-point group —
see ``examples/lint_custom_rule.py``.
"""

from repro.lint.baseline import fingerprint, load_baseline, write_baseline
from repro.lint.engine import (
    SUPPRESSION_RULE,
    LintRun,
    SourceModule,
    lint_paths,
    parse_module,
)
from repro.lint.findings import Finding, Suppression
from repro.lint.registry import (
    LINT_ENTRY_POINT_GROUP,
    LintRule,
    register_rule,
    registered_rules,
    rule_class,
)

__all__ = [
    "Finding",
    "Suppression",
    "LintRule",
    "LintRun",
    "SourceModule",
    "SUPPRESSION_RULE",
    "LINT_ENTRY_POINT_GROUP",
    "register_rule",
    "registered_rules",
    "rule_class",
    "lint_paths",
    "parse_module",
    "fingerprint",
    "load_baseline",
    "write_baseline",
]

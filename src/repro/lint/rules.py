"""The builtin rules: the codebase's contracts, machine-checked.

Each rule encodes an invariant this reproduction's guarantees rest on —
workers=1 vs N bit-identity, checkpoint/resume byte-identity, frozen
spec-only dispatch, the named-error taxonomy — so the aggressive
refactors the ROADMAP plans (cross-process pipelining, multi-tenant
specs) cannot silently regress them.  See each rule's docstring for the
contract and the escape hatch.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.lint.engine import SourceModule
from repro.lint.findings import Finding
from repro.lint.registry import LintRule, register_rule

__all__ = [
    "DeterminismRule",
    "SetOrderRule",
    "SpecPurityRule",
    "ErrorTaxonomyRule",
    "ShmDisciplineRule",
    "ProcessDisciplineRule",
    "EnvDisciplineRule",
    "WorkerCaptureRule",
]


# ----------------------------------------------------------------------
# Shared AST helpers
# ----------------------------------------------------------------------
def _import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Map local names to the dotted names they import.

    ``import numpy as np`` -> ``{"np": "numpy"}``; ``from os import
    urandom as rnd`` -> ``{"rnd": "os.urandom"}``.  Good enough to
    resolve the module-level aliases this codebase (and most code) uses.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                local = name.asname or name.name.split(".")[0]
                aliases[local] = name.name if name.asname else local
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for name in node.names:
                if name.name == "*":
                    continue
                local = name.asname or name.name
                aliases[local] = f"{node.module}.{name.name}"
    return aliases


def _dotted_name(node: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    """Resolve an expression like ``np.random.rand`` to ``numpy.random.rand``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    parts.reverse()
    head = aliases.get(parts[0], parts[0])
    return ".".join([head] + parts[1:])


def _allowed_path(rel: str, allowed: Sequence[str]) -> bool:
    """Whether a module path is on a rule's allowlist (suffix match)."""
    return any(rel.endswith(suffix) for suffix in allowed)


# ----------------------------------------------------------------------
# determinism
# ----------------------------------------------------------------------
#: ``random``-module functions that consume the hidden global RNG.
_GLOBAL_RANDOM_FNS = frozenset({
    "betavariate", "choice", "choices", "expovariate", "gammavariate",
    "gauss", "getrandbits", "lognormvariate", "normalvariate", "paretovariate",
    "randbytes", "randint", "random", "randrange", "sample", "seed",
    "shuffle", "triangular", "uniform", "vonmisesvariate", "weibullvariate",
})

#: ``numpy.random`` module-level functions backed by the hidden legacy
#: global state (everything except the Generator/SeedSequence surface).
_LEGACY_NP_RANDOM_FNS = frozenset({
    "beta", "binomial", "bytes", "chisquare", "choice", "dirichlet",
    "exponential", "f", "gamma", "geometric", "get_state", "gumbel",
    "hypergeometric", "laplace", "logistic", "lognormal", "logseries",
    "multinomial", "multivariate_normal", "negative_binomial",
    "noncentral_chisquare", "noncentral_f", "normal", "pareto",
    "permutation", "poisson", "power", "rand", "randint", "randn",
    "random", "random_integers", "random_sample", "ranf", "rayleigh",
    "sample", "seed", "set_state", "shuffle", "standard_cauchy",
    "standard_exponential", "standard_gamma", "standard_normal",
    "standard_t", "triangular", "uniform", "vonmises", "wald", "weibull",
    "zipf",
})

#: Ambient-entropy / wall-clock calls that are never allowed.
_AMBIENT_CALLS = frozenset({
    "time.time", "time.time_ns", "os.urandom", "uuid.uuid1", "uuid.uuid4",
})

#: Seeded constructors that become ambient-entropy sources with no args.
_NEEDS_SEED_ARG = frozenset({
    "numpy.random.default_rng", "numpy.random.SeedSequence", "random.Random",
})


@register_rule
class DeterminismRule(LintRule):
    """No unseeded RNG or wall-clock entropy in library code.

    Every figure, sweep and serve replay promises bit-identical reruns
    (workers=1 vs N, checkpoint resume).  One ``np.random.rand()`` or
    ``time.time()`` on a library path quietly voids that.  Flags the
    global-RNG surfaces of ``random`` and ``numpy.random``, wall-clock /
    OS entropy (``time.time``, ``os.urandom``, ``uuid.uuid4``,
    ``secrets.*``), and seedable constructors called without a seed
    (``np.random.default_rng()``, ``random.Random()``).  Injectable
    timing defaults (``time.monotonic``, ``time.sleep``,
    ``time.perf_counter``) are deliberately allowed — they parameterise
    retry/backoff clocks, not results.
    """

    name = "determinism"
    description = (
        "unseeded RNG / wall-clock entropy voids bit-identical reruns"
    )

    #: Module-path suffixes where ambient entropy is tolerated (none in
    #: this repo today; plugins may subclass and extend).
    allowed_modules: Tuple[str, ...] = ()

    def check(self, module: SourceModule) -> Iterator[Finding]:
        if _allowed_path(module.rel, self.allowed_modules):
            return
        aliases = _import_aliases(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted_name(node.func, aliases)
            if dotted is None:
                continue
            if dotted in _AMBIENT_CALLS or dotted.startswith("secrets."):
                yield module.finding(
                    node, self.name,
                    f"{dotted}() is ambient entropy; thread a seed or an "
                    "injectable clock through the caller instead",
                )
            elif (
                dotted.startswith("random.")
                and dotted.split(".", 1)[1] in _GLOBAL_RANDOM_FNS
            ):
                yield module.finding(
                    node, self.name,
                    f"{dotted}() consumes the hidden global RNG; use a "
                    "seeded random.Random(seed) instance",
                )
            elif (
                dotted.startswith("numpy.random.")
                and dotted.split("numpy.random.", 1)[1]
                in _LEGACY_NP_RANDOM_FNS
            ):
                yield module.finding(
                    node, self.name,
                    f"{dotted}() uses numpy's hidden legacy global state; "
                    "use a seeded np.random.default_rng(seed)",
                )
            elif dotted in _NEEDS_SEED_ARG and not node.args:
                yield module.finding(
                    node, self.name,
                    f"{dotted}() without a seed draws OS entropy; pass an "
                    "explicit seed",
                )


# ----------------------------------------------------------------------
# set-order
# ----------------------------------------------------------------------
#: Order-insensitive consumers a set may feed directly.
_ORDER_FREE_CONSUMERS = frozenset({
    "sorted", "len", "sum", "min", "max", "any", "all", "set", "frozenset",
})


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


@register_rule
class SetOrderRule(LintRule):
    """Sets must not feed ordered output directly.

    Set iteration order depends on insertion history and, for strings,
    on ``PYTHONHASHSEED`` — iterating one into anything ordered (a loop
    body with side effects, ``list``/``tuple``/``enumerate``) breaks the
    cross-process determinism the sweep dispatch relies on.  Wrap the
    set in ``sorted(...)`` first; order-insensitive reducers (``len``,
    ``sum``, ``min``, ``any``, …) stay allowed.
    """

    name = "set-order"
    description = "iterating a set into ordered output is hash-order UB"

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if _is_set_expr(node.iter):
                    yield module.finding(
                        node.iter, self.name,
                        "for-loop over a set has hash-dependent order; "
                        "iterate sorted(...) instead",
                    )
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp,
                                   ast.DictComp, ast.SetComp)):
                for gen in node.generators:
                    # A set comprehension re-hashes its elements, so a
                    # set *source* is harmless there; ordered outputs
                    # (list/dict/generator) are not.
                    if isinstance(node, ast.SetComp):
                        continue
                    if _is_set_expr(gen.iter):
                        yield module.finding(
                            gen.iter, self.name,
                            "comprehension over a set has hash-dependent "
                            "order; iterate sorted(...) instead",
                        )
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Name)
                    and func.id in ("list", "tuple", "enumerate", "iter")
                    and node.args
                    and _is_set_expr(node.args[0])
                ):
                    yield module.finding(
                        node, self.name,
                        f"{func.id}(set) materialises hash-dependent "
                        "order; use sorted(...)",
                    )


# ----------------------------------------------------------------------
# spec-purity
# ----------------------------------------------------------------------
#: Annotation atoms allowed in a frozen spec (hashable, picklable, and
#: stable across processes).  Nested specs/configs are allowed by name
#: pattern: anything ending in "Spec" plus the frozen config types.
_PURE_ATOMS = frozenset({
    "int", "float", "str", "bool", "bytes", "complex", "None",
    "Optional", "Union", "Tuple", "tuple", "FrozenSet", "frozenset",
    "Literal", "ModelConfig",
})

_MUTABLE_FACTORIES = frozenset({"list", "dict", "set", "bytearray"})


def _annotation_ok(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant):
        # String annotations and the `None` atom.
        if node.value is None:
            return True
        if isinstance(node.value, str):
            try:
                return _annotation_ok(
                    ast.parse(node.value, mode="eval").body
                )
            except SyntaxError:
                return False
        return True  # Literal[...] members
    if isinstance(node, ast.Name):
        return node.id in _PURE_ATOMS or node.id.endswith("Spec")
    if isinstance(node, ast.Attribute):
        return node.attr in _PURE_ATOMS or node.attr.endswith("Spec")
    if isinstance(node, ast.Subscript):
        return _annotation_ok(node.value) and _annotation_ok(node.slice)
    if isinstance(node, ast.Tuple):
        return all(_annotation_ok(e) for e in node.elts)
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        return _annotation_ok(node.left) and _annotation_ok(node.right)
    if isinstance(node, ast.Index):  # pragma: no cover - py<3.9 AST
        return _annotation_ok(node.value)
    return False


def _frozen_dataclass(node: ast.ClassDef) -> bool:
    for deco in node.decorator_list:
        if not isinstance(deco, ast.Call):
            continue
        name = deco.func.id if isinstance(deco.func, ast.Name) else getattr(
            deco.func, "attr", "")
        if name != "dataclass":
            continue
        for kw in deco.keywords:
            if kw.arg == "frozen" and getattr(kw.value, "value", None) is True:
                return True
    return False


@register_rule
class SpecPurityRule(LintRule):
    """Frozen ``*Spec`` dataclasses must be pure dispatch currency.

    Specs are what crosses process boundaries: ``run_grid`` ships specs,
    never systems or traces, and checkpoint keys hash spec reprs.  That
    only works if every spec is deeply hashable/picklable (no list/dict/
    ndarray fields), carries no mutable defaults, and validates eagerly
    in ``__post_init__`` so a bad value fails at construction in the
    parent — not mid-grid in a worker.
    """

    name = "spec-purity"
    description = (
        "frozen *Spec dataclasses must be hashable, mutable-default-free, "
        "and eagerly validated"
    )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not node.name.endswith("Spec") or not _frozen_dataclass(node):
                continue
            has_post_init = any(
                isinstance(b, ast.FunctionDef) and b.name == "__post_init__"
                for b in node.body
            )
            if not has_post_init:
                yield module.finding(
                    node, self.name,
                    f"{node.name} needs an eager-validating __post_init__ "
                    "(bad values must fail at construction, not mid-grid)",
                )
            for stmt in node.body:
                if not isinstance(stmt, ast.AnnAssign) or not isinstance(
                    stmt.target, ast.Name
                ):
                    continue
                field_name = stmt.target.id
                if field_name.startswith("_"):
                    continue
                if not _annotation_ok(stmt.annotation):
                    yield module.finding(
                        stmt, self.name,
                        f"{node.name}.{field_name} is annotated "
                        f"{ast.unparse(stmt.annotation)!r}, which is not "
                        "hashable/picklable-safe spec currency",
                    )
                if stmt.value is not None:
                    yield from self._default_findings(
                        module, node.name, field_name, stmt
                    )

    def _default_findings(
        self,
        module: SourceModule,
        cls: str,
        field_name: str,
        stmt: ast.AnnAssign,
    ) -> Iterator[Finding]:
        value = stmt.value
        if isinstance(value, (ast.List, ast.Dict, ast.Set)):
            yield module.finding(
                stmt, self.name,
                f"{cls}.{field_name} has a mutable default",
            )
        elif isinstance(value, ast.Call):
            callee = value.func
            callee_name = (
                callee.id if isinstance(callee, ast.Name)
                else getattr(callee, "attr", "")
            )
            if callee_name in _MUTABLE_FACTORIES:
                yield module.finding(
                    stmt, self.name,
                    f"{cls}.{field_name} has a mutable default",
                )
            elif callee_name == "field":
                for kw in value.keywords:
                    if (
                        kw.arg == "default_factory"
                        and isinstance(kw.value, ast.Name)
                        and kw.value.id in _MUTABLE_FACTORIES
                    ):
                        yield module.finding(
                            stmt, self.name,
                            f"{cls}.{field_name} has a mutable "
                            "default_factory",
                        )


# ----------------------------------------------------------------------
# error-taxonomy
# ----------------------------------------------------------------------
_BARE_ERRORS = frozenset({"ValueError", "RuntimeError", "KeyError"})


@register_rule
class ErrorTaxonomyRule(LintRule):
    """Raises must use the named error hierarchy, not bare builtins.

    Every failure in ``src/repro`` has a named class (the
    ``InvalidSystemSpecError`` / ``InvalidZipfExponentError`` /
    ``SweepGridError`` pattern; the shared tail lives in
    :mod:`repro.errors`), each subclassing the builtin it refines so
    callers keep working.  A bare ``ValueError`` is uncatchable-precisely
    and unreportable by the CLI failure report.  ``TypeError`` for
    interface misuse and ``NotImplementedError`` stay allowed.
    """

    name = "error-taxonomy"
    description = (
        "raise named taxonomy errors (repro.errors), not bare "
        "ValueError/RuntimeError/KeyError"
    )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            if isinstance(exc, ast.Call):
                exc = exc.func
            if isinstance(exc, ast.Name) and exc.id in _BARE_ERRORS:
                yield module.finding(
                    node, self.name,
                    f"bare {exc.id} — raise a named {exc.id} subclass "
                    "from repro.errors (message naming the offending "
                    "value)",
                )


# ----------------------------------------------------------------------
# shm-discipline
# ----------------------------------------------------------------------
@register_rule
class ShmDisciplineRule(LintRule):
    """``multiprocessing.shared_memory`` only in the segment manager.

    Raw segments leak on any exit path that is not exception-safe; PR 7
    concentrated the entire create/attach/close/unlink lifecycle (and
    the spawn-vs-fork resource-tracker dance) in
    ``repro/analysis/shm.py`` — the ``_PublishedTraces`` manager module —
    with a ``/dev/shm``-snapshot leak test over it.  Everything else
    publishes through that seam.
    """

    name = "shm-discipline"
    description = (
        "multiprocessing.shared_memory only inside repro/analysis/shm.py"
    )

    allowed_modules: Tuple[str, ...] = ("repro/analysis/shm.py",)

    def check(self, module: SourceModule) -> Iterator[Finding]:
        if _allowed_path(module.rel, self.allowed_modules):
            return
        aliases = _import_aliases(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for name in node.names:
                    if name.name.startswith("multiprocessing.shared_memory"):
                        yield module.finding(
                            node, self.name,
                            "import of multiprocessing.shared_memory "
                            "outside the _PublishedTraces manager module "
                            "(repro/analysis/shm.py)",
                        )
            elif isinstance(node, ast.ImportFrom) and node.module:
                if node.module == "multiprocessing.shared_memory" or (
                    node.module == "multiprocessing"
                    and any(n.name == "shared_memory" for n in node.names)
                ):
                    yield module.finding(
                        node, self.name,
                        "import of multiprocessing.shared_memory outside "
                        "the _PublishedTraces manager module "
                        "(repro/analysis/shm.py)",
                    )
            elif isinstance(node, ast.Attribute):
                dotted = _dotted_name(node, aliases)
                if dotted and dotted.startswith(
                    "multiprocessing.shared_memory"
                ):
                    yield module.finding(
                        node, self.name,
                        "direct multiprocessing.shared_memory use outside "
                        "the _PublishedTraces manager module "
                        "(repro/analysis/shm.py)",
                    )


# ----------------------------------------------------------------------
# process-discipline
# ----------------------------------------------------------------------
#: The ``multiprocessing`` surfaces that *spawn* processes.  Inspection
#: helpers (``get_start_method``, ``current_process``,
#: ``get_all_start_methods``, ``resource_tracker``) stay allowed
#: everywhere — they observe process state, they don't create it.
_SPAWN_PRIMITIVES = frozenset({"Process", "get_context", "Pool", "Manager"})


@register_rule
class ProcessDisciplineRule(LintRule):
    """Raw ``multiprocessing`` process spawning only in the executor.

    Worker processes need the full lifecycle treatment the overlapped
    executor implements — liveness polling against a dead child,
    terminate+join on every exit path, queue teardown that cannot
    deadlock on the feeder thread.  A stray ``mp.Process`` elsewhere gets
    none of that and hangs CI on the first crashed child.  Process
    creation (``Process``, ``get_context``, ``Pool``, ``Manager``) is
    confined to ``repro/core/executor.py``; pool-shaped parallelism goes
    through ``concurrent.futures`` (which owns its worker lifecycle), and
    introspection calls like ``get_start_method`` remain free.
    """

    name = "process-discipline"
    description = (
        "multiprocessing process spawning (Process/get_context/Pool/"
        "Manager) only inside repro/core/executor.py"
    )

    allowed_modules: Tuple[str, ...] = ("repro/core/executor.py",)

    def check(self, module: SourceModule) -> Iterator[Finding]:
        if _allowed_path(module.rel, self.allowed_modules):
            return
        aliases = _import_aliases(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom):
                if node.module in ("multiprocessing",
                                   "multiprocessing.context"):
                    for name in node.names:
                        if name.name in _SPAWN_PRIMITIVES:
                            yield module.finding(
                                node, self.name,
                                f"importing multiprocessing.{name.name} "
                                "outside the executor module "
                                "(repro/core/executor.py); spawn workers "
                                "through an Executor backend or "
                                "concurrent.futures",
                            )
            elif isinstance(node, ast.Attribute):
                dotted = _dotted_name(node, aliases)
                if dotted is None:
                    continue
                head, _, tail = dotted.rpartition(".")
                if (
                    head in ("multiprocessing", "multiprocessing.context")
                    and tail in _SPAWN_PRIMITIVES
                ):
                    yield module.finding(
                        node, self.name,
                        f"direct {dotted} use outside the executor module "
                        "(repro/core/executor.py); spawn workers through "
                        "an Executor backend or concurrent.futures",
                    )


# ----------------------------------------------------------------------
# env-discipline
# ----------------------------------------------------------------------
_ENV_SURFACES = frozenset({"os.environ", "os.getenv", "os.putenv"})


@register_rule
class EnvDisciplineRule(LintRule):
    """``os.environ`` only through the ``repro._env`` accessor module.

    Scattered environment reads are invisible configuration: they skew
    parent/worker behaviour (a worker spawned before a late ``environ``
    write sees different config) and make the knob surface unauditable.
    ``repro/_env.py`` is the single seam; ``grep read_env`` is the
    complete knob inventory.
    """

    name = "env-discipline"
    description = "os.environ access only through repro/_env.py"

    allowed_modules: Tuple[str, ...] = ("repro/_env.py",)

    def check(self, module: SourceModule) -> Iterator[Finding]:
        if _allowed_path(module.rel, self.allowed_modules):
            return
        aliases = _import_aliases(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "os":
                for name in node.names:
                    if name.name in ("environ", "getenv", "putenv"):
                        yield module.finding(
                            node, self.name,
                            f"importing os.{name.name} bypasses the "
                            "repro._env accessor module",
                        )
            elif isinstance(node, ast.Attribute):
                dotted = _dotted_name(node, aliases)
                if dotted in _ENV_SURFACES:
                    yield module.finding(
                        node, self.name,
                        f"direct {dotted} access; read through "
                        "repro._env (read_env/read_env_flag/write_env)",
                    )


# ----------------------------------------------------------------------
# worker-capture
# ----------------------------------------------------------------------
_EMPTY_FACTORIES = frozenset({
    "dict", "list", "set", "deque", "defaultdict", "Counter", "OrderedDict",
})

_MUTATOR_METHODS = frozenset({
    "append", "add", "update", "setdefault", "extend", "insert", "remove",
    "discard", "clear", "pop", "popleft", "appendleft",
})


def _empty_container_binding(stmt: ast.stmt) -> Optional[str]:
    """Name bound at module level to an empty mutable container, if any."""
    if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
        target, value = stmt.targets[0], stmt.value
    elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
        target, value = stmt.target, stmt.value
    else:
        return None
    if not isinstance(target, ast.Name):
        return None
    if isinstance(value, (ast.Dict, ast.List, ast.Set)) and not getattr(
        value, "keys", getattr(value, "elts", None)
    ):
        return target.id
    if isinstance(value, ast.Call):
        callee = value.func
        name = (
            callee.id if isinstance(callee, ast.Name)
            else getattr(callee, "attr", "")
        )
        if name in _EMPTY_FACTORIES:
            return target.id
    return None


@register_rule
class WorkerCaptureRule(LintRule):
    """Module-level mutable state mutated from functions needs a contract.

    ``run_grid`` dispatches functions into fork/spawn workers.  A
    module-level dict/list/set (or a ``global``-rebound flag) populated
    in the parent is silently *shadowed* in workers: fork snapshots it
    mid-state, spawn resets it — the classic source of workers=1 vs N
    divergence.  Flags (a) module-level empty-container bindings mutated
    inside functions of the same module and (b) ``global`` rebinds.
    Legitimate uses — import-time registries, process-local caches with a
    worker-init reset — must carry a justified inline suppression, which
    is exactly the documented contract the reviewer should see.
    """

    name = "worker-capture"
    description = (
        "module-level mutable state mutated from functions is fork/spawn "
        "shadowed"
    )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        bindings: Dict[str, ast.stmt] = {}
        for stmt in module.tree.body:
            name = _empty_container_binding(stmt)
            if name is not None:
                bindings[name] = stmt
        if not bindings:
            globals_seen = self._global_rebinds(module)
            yield from self._report_globals(module, globals_seen, {})
            return
        mutated: Dict[str, Set[str]] = {}
        for func in self._functions(module.tree):
            for name in self._mutations_in(func, set(bindings)):
                mutated.setdefault(name, set()).add(func.name)
        for name in sorted(mutated):
            stmt = bindings[name]
            funcs = ", ".join(sorted(mutated[name]))
            yield module.finding(
                stmt, self.name,
                f"module-level mutable {name!r} is mutated by {funcs}(); "
                "parent-populated state is shadowed in fork/spawn workers "
                "— make the contract explicit (worker-init reset + "
                "justified suppression) or restructure",
            )
        globals_seen = self._global_rebinds(module)
        yield from self._report_globals(module, globals_seen, bindings)

    @staticmethod
    def _functions(tree: ast.Module) -> List[ast.FunctionDef]:
        out = []
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                out.append(node)
        return out

    @staticmethod
    def _mutations_in(
        func: ast.FunctionDef, names: Set[str]
    ) -> Set[str]:
        found: Set[str] = set()
        for node in ast.walk(func):
            # x.append(...) / x.update(...) style mutator calls
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _MUTATOR_METHODS
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in names
            ):
                found.add(node.func.value.id)
            # x[k] = v / del x[k] / x[k] += v
            targets: List[ast.AST] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            elif isinstance(node, ast.Delete):
                targets = list(node.targets)
            for target in targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in names
                ):
                    found.add(target.value.id)
        return found

    def _global_rebinds(
        self, module: SourceModule
    ) -> Dict[str, List[str]]:
        """Names rebound through ``global`` statements, per function."""
        rebinds: Dict[str, List[str]] = {}
        for func in self._functions(module.tree):
            declared: Set[str] = set()
            for node in ast.walk(func):
                if isinstance(node, ast.Global):
                    declared.update(node.names)
            if not declared:
                continue
            assigned: Set[str] = set()
            for node in ast.walk(func):
                if isinstance(node, ast.Assign):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            assigned.add(target.id)
                elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                    if isinstance(node.target, ast.Name):
                        assigned.add(node.target.id)
            for name in sorted(declared & assigned):
                rebinds.setdefault(name, []).append(func.name)
        return rebinds

    def _report_globals(
        self,
        module: SourceModule,
        rebinds: Dict[str, List[str]],
        container_bindings: Dict[str, ast.stmt],
    ) -> Iterator[Finding]:
        if not rebinds:
            return
        module_bindings: Dict[str, ast.stmt] = {}
        for stmt in module.tree.body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        module_bindings[target.id] = stmt
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                module_bindings[stmt.target.id] = stmt
        for name in sorted(rebinds):
            if name in container_bindings:
                continue  # already reported as a container mutation
            anchor = module_bindings.get(name)
            if anchor is None:
                continue
            funcs = ", ".join(sorted(set(rebinds[name])))
            yield module.finding(
                anchor, self.name,
                f"module-level {name!r} is rebound via 'global' by "
                f"{funcs}(); parent-set state is shadowed in fork/spawn "
                "workers — make the contract explicit (justified "
                "suppression) or restructure",
            )

"""The lint engine: parse, dispatch rules, apply suppressions + baseline.

One :class:`SourceModule` is built per file (source text, split lines,
AST, and a posix-normalised path for allowlist matching); every selected
rule's ``check`` runs over it, and the engine then applies the two
filtering layers:

- **Inline suppressions** — ``# repro-lint: disable=<rules> -- <why>``
  silences the named rules on its own line (trailing comment) or on the
  next code line (standalone comment).  A suppression without the
  ``-- <why>`` justification is itself reported under the
  ``suppression-justification`` pseudo-rule: silencing an invariant
  requires saying why, and the reviewer sees the why in the diff.
- **Baseline** — a committed JSON file of fingerprinted legacy findings
  (see :mod:`repro.lint.baseline`).  Baselined findings are reported
  separately and do not fail the run, so new violations fail while
  legacy ones burn down.  This repo's baseline is empty and the CI job
  keeps it that way.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import LintUsageError
from repro.lint.findings import Finding, Suppression
from repro.lint.registry import LintRule, registered_rules, rule_class

__all__ = [
    "SUPPRESSION_RULE",
    "SourceModule",
    "LintRun",
    "parse_module",
    "lint_paths",
]

#: Pseudo-rule reporting unjustified ``# repro-lint: disable`` directives.
SUPPRESSION_RULE = "suppression-justification"

_DIRECTIVE_RE = re.compile(
    r"#\s*repro-lint:\s*disable=(?P<rules>[\w*,-]+)(?P<rest>.*)$"
)


@dataclass
class SourceModule:
    """One parsed source file handed to every rule."""

    path: Path
    rel: str
    text: str
    lines: List[str]
    tree: ast.Module
    suppressions: List[Suppression] = field(default_factory=list)

    def line_text(self, line: int) -> str:
        """1-indexed physical line (empty string when out of range)."""
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1]
        return ""

    def finding(
        self, node: ast.AST, rule: str, message: str
    ) -> Finding:
        """Build a finding anchored at an AST node."""
        return Finding(
            path=self.rel,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=rule,
            message=message,
        )


def _parse_suppressions(lines: Sequence[str]) -> List[Suppression]:
    """Extract every ``repro-lint: disable`` directive from one file.

    A standalone directive (comment-only line) applies to the next
    non-blank, non-comment line; later comment-only lines extend its
    justification.  A trailing directive applies to its own line.
    """
    out: List[Suppression] = []
    for i, raw in enumerate(lines, start=1):
        match = _DIRECTIVE_RE.search(raw)
        if match is None:
            continue
        rules = tuple(
            r for r in match.group("rules").split(",") if r
        )
        rest = match.group("rest").strip()
        justification = ""
        if rest.startswith("--"):
            justification = rest[2:].strip()
        standalone = raw.strip().startswith("#")
        applies_to = i
        if standalone:
            j = i + 1
            while j <= len(lines):
                stripped = lines[j - 1].strip()
                if not stripped:
                    break
                if stripped.startswith("#"):
                    if _DIRECTIVE_RE.search(lines[j - 1]):
                        break
                    # Continuation comment lines extend the justification.
                    justification = (
                        justification + " " + stripped.lstrip("#").strip()
                    ).strip()
                    j += 1
                    continue
                applies_to = j
                break
        out.append(
            Suppression(
                line=i,
                applies_to=applies_to,
                rules=rules,
                justification=justification,
            )
        )
    return out


def parse_module(path: Path, root: Optional[Path] = None) -> SourceModule:
    """Read + parse one file into the record rules consume."""
    text = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(text, filename=str(path))
    except SyntaxError as exc:
        raise LintUsageError(
            f"cannot lint {path}: {exc.msg} (line {exc.lineno})"
        ) from exc
    rel = path.as_posix()
    if root is not None:
        try:
            rel = path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            rel = path.as_posix()
    lines = text.split("\n")
    module = SourceModule(
        path=path, rel=rel, text=text, lines=lines, tree=tree
    )
    module.suppressions = _parse_suppressions(lines)
    return module


def _iter_python_files(paths: Sequence[Path]) -> List[Path]:
    files: List[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
        else:
            raise LintUsageError(
                f"cannot lint {path}: not a python file or directory"
            )
    if not files:
        raise LintUsageError(
            "no python files found under: "
            + ", ".join(str(p) for p in paths)
        )
    return files


@dataclass
class LintRun:
    """Everything one engine pass produced, pre-reporting.

    Attributes:
        findings: Active findings (not suppressed, not baselined).
        baselined: Findings matched by the baseline (burn-down backlog).
        suppressed: Findings silenced by a justified inline directive.
        files: Number of files linted.
        rules: Names of the rules that ran.
    """

    findings: List[Finding]
    baselined: List[Finding]
    suppressed: List[Finding]
    files: int
    rules: Tuple[str, ...]

    @property
    def clean(self) -> bool:
        """Whether the run is free of active findings."""
        return not self.findings


def _select_rules(select: Optional[Sequence[str]]) -> List[LintRule]:
    if select is None:
        return [cls() for cls in registered_rules()]
    instances = [rule_class(name)() for name in select]
    if not instances:
        raise LintUsageError("--select produced an empty rule set")
    return instances


def lint_paths(
    paths: Sequence[Path],
    *,
    select: Optional[Sequence[str]] = None,
    baseline: Optional[Iterable[str]] = None,
    root: Optional[Path] = None,
) -> LintRun:
    """Lint files/directories and return the partitioned findings.

    Args:
        paths: Files or directories (searched recursively for ``*.py``).
        select: Rule names to run (default: every registered rule).
        baseline: Fingerprints of accepted legacy findings (see
            :func:`repro.lint.baseline.fingerprint`).
        root: Directory findings' paths are reported relative to.
    """
    from repro.lint.baseline import fingerprint

    rules = _select_rules(select)
    raw: List[Finding] = []
    suppressed: List[Finding] = []
    lines_by_rel: Dict[str, List[str]] = {}
    files = _iter_python_files(paths)
    for file_path in files:
        module = parse_module(file_path, root=root)
        lines_by_rel[module.rel] = module.lines
        module_findings: List[Finding] = []
        for rule in rules:
            module_findings.extend(rule.check(module))
        for suppression in module.suppressions:
            if not suppression.justification:
                module_findings.append(
                    Finding(
                        path=module.rel,
                        line=suppression.line,
                        col=1,
                        rule=SUPPRESSION_RULE,
                        message=(
                            "suppression needs a justification: "
                            "# repro-lint: disable=<rule> -- <why>"
                        ),
                    )
                )
        for found in module_findings:
            silenced = found.rule != SUPPRESSION_RULE and any(
                s.justification and s.covers(found.rule, found.line)
                for s in module.suppressions
            )
            if silenced:
                suppressed.append(found)
            else:
                raw.append(found)
    raw.sort()
    suppressed.sort()
    baseline_set = set(baseline or ())
    active: List[Finding] = []
    baselined: List[Finding] = []
    seen: Dict[str, int] = {}
    for found in raw:
        file_lines = lines_by_rel.get(found.path, [])
        text = ""
        if 1 <= found.line <= len(file_lines):
            text = file_lines[found.line - 1]
        print_key = fingerprint(found, seen, text)
        if print_key in baseline_set:
            baselined.append(found)
        else:
            active.append(found)
    return LintRun(
        findings=active,
        baselined=baselined,
        suppressed=suppressed,
        files=len(files),
        rules=tuple(sorted({r.name for r in rules})),
    )

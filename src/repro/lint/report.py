"""Human and JSON reporters over one :class:`~repro.lint.engine.LintRun`."""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from repro.lint.engine import LintRun
from repro.lint.findings import Finding

__all__ = ["render_human", "render_json"]


def _group_by_rule(findings: Sequence[Finding]) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for found in findings:
        counts[found.rule] = counts.get(found.rule, 0) + 1
    return counts


def render_human(run: LintRun, *, stale: Sequence[str] = ()) -> str:
    """The terminal report: one ``path:line:col rule message`` per finding."""
    lines: List[str] = []
    for found in run.findings:
        lines.append(f"{found.location()}: [{found.rule}] {found.message}")
    if run.findings:
        lines.append("")
        counts = _group_by_rule(run.findings)
        breakdown = ", ".join(
            f"{rule}={counts[rule]}" for rule in sorted(counts)
        )
        lines.append(
            f"{len(run.findings)} finding"
            f"{'s' if len(run.findings) != 1 else ''} ({breakdown}) "
            f"in {run.files} file{'s' if run.files != 1 else ''}"
        )
    else:
        lines.append(
            f"clean: {run.files} file{'s' if run.files != 1 else ''}, "
            f"{len(run.rules)} rule{'s' if len(run.rules) != 1 else ''}"
        )
    if run.baselined:
        lines.append(
            f"{len(run.baselined)} baselined (legacy burn-down backlog)"
        )
    if run.suppressed:
        lines.append(
            f"{len(run.suppressed)} suppressed by justified inline "
            "directives"
        )
    if stale:
        lines.append(
            f"{len(stale)} stale baseline entr"
            f"{'ies' if len(stale) != 1 else 'y'} (fixed code still "
            "listed; refresh with --update-baseline)"
        )
    return "\n".join(lines)


def render_json(run: LintRun, *, stale: Sequence[str] = ()) -> str:
    """Machine-readable report (stable key order, sorted findings)."""
    payload = {
        "files": run.files,
        "rules": list(run.rules),
        "findings": [f.to_json() for f in run.findings],
        "baselined": [f.to_json() for f in run.baselined],
        "suppressed": [f.to_json() for f in run.suppressed],
        "stale_baseline": sorted(stale),
        "clean": run.clean,
    }
    return json.dumps(payload, indent=2)

"""Finding and suppression records shared by the lint engine and rules."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = ["Finding", "Suppression"]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Sort order (path, line, col, rule) is the report order, so runs are
    reproducible regardless of rule registration order.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str

    def location(self) -> str:
        """``path:line:col`` — the clickable prefix of every report line."""
        return f"{self.path}:{self.line}:{self.col}"

    def to_json(self) -> dict:
        """JSON-reporter record (stable key order)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }


@dataclass(frozen=True)
class Suppression:
    """One parsed ``# repro-lint: disable=...`` directive.

    Attributes:
        line: Physical line carrying the directive.
        applies_to: Line the directive suppresses — the directive's own
            line, or the next code line for a standalone comment.
        rules: Rule names disabled (``("*",)`` disables every rule).
        justification: Text after ``--``; suppressions without one are
            themselves reported (the ``suppression-justification`` rule).
    """

    line: int
    applies_to: int
    rules: Tuple[str, ...]
    justification: str

    def covers(self, rule: str, line: int) -> bool:
        """Whether this directive silences ``rule`` findings on ``line``."""
        if line != self.applies_to:
            return False
        return "*" in self.rules or rule in self.rules

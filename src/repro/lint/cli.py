"""``python -m repro.lint`` — the invariant linter's command line.

Exit codes: 0 clean, 1 findings (or, under ``--strict``, stale baseline
entries), 2 usage error.  ``repro.cli lint`` forwards here so the main
CLI and the module entry point behave identically.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.errors import LintBaselineError, LintUsageError
from repro.lint.baseline import fingerprint, load_baseline, write_baseline
from repro.lint.engine import lint_paths
from repro.lint.registry import registered_rules
from repro.lint.report import render_human, render_json

__all__ = ["build_parser", "main"]

#: Default baseline filename, resolved against ``--root``.
DEFAULT_BASELINE = "lint-baseline.json"


def build_parser(
    parser: Optional[argparse.ArgumentParser] = None,
) -> argparse.ArgumentParser:
    """Build (or extend, for ``repro.cli lint``) the argument parser."""
    if parser is None:
        parser = argparse.ArgumentParser(
            prog="repro.lint",
            description=(
                "AST invariant linter: determinism, spec-purity, "
                "error-taxonomy, shm/env discipline, worker-capture"
            ),
        )
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--root", type=Path, default=None,
        help="directory paths are reported relative to (default: cwd)",
    )
    parser.add_argument(
        "--baseline", type=Path, default=None,
        help=f"baseline file (default: <root>/{DEFAULT_BASELINE} if present)",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline to exactly the current findings",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="also fail on stale baseline entries (the file can only shrink)",
    )
    parser.add_argument(
        "--select", action="append", metavar="RULE", default=None,
        help="run only this rule (repeatable)",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the machine-readable report",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list registered rules (builtins + entry-point plugins)",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point shared by ``__main__`` and ``repro.cli lint``."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return run_lint(args)


def run_lint(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation (also called by repro.cli)."""
    if args.list_rules:
        for cls in registered_rules():
            print(f"{cls.name:24s} {cls.description}")
        return 0

    root = args.root if args.root is not None else Path.cwd()
    paths = list(args.paths) or [Path("src/repro")]

    baseline_path = args.baseline
    if baseline_path is None:
        candidate = root / DEFAULT_BASELINE
        baseline_path = candidate if candidate.exists() else None
    baseline: List[str] = []
    try:
        if baseline_path is not None and baseline_path.exists():
            baseline = load_baseline(baseline_path)
        run = lint_paths(
            paths, select=args.select, baseline=baseline, root=root
        )
    except (LintUsageError, LintBaselineError) as exc:
        print(f"repro.lint: error: {exc}", file=sys.stderr)
        return 2

    # Stale entries: baseline fingerprints no finding consumed this run.
    # Recompute fingerprints of everything the engine saw (active +
    # baselined, in engine order) to learn which entries matched.
    all_seen: List[str] = []
    seen: Dict[str, int] = {}
    ordered = sorted(run.findings + run.baselined)
    lines_cache: Dict[str, List[str]] = {}
    for found in ordered:
        if found.path not in lines_cache:
            candidate = root / found.path
            source = candidate if candidate.exists() else Path(found.path)
            try:
                lines_cache[found.path] = source.read_text(
                    encoding="utf-8"
                ).split("\n")
            except OSError:
                lines_cache[found.path] = []
        file_lines = lines_cache[found.path]
        text = ""
        if 1 <= found.line <= len(file_lines):
            text = file_lines[found.line - 1]
        all_seen.append(fingerprint(found, seen, text))
    stale = sorted(set(baseline) - set(all_seen))

    if args.update_baseline:
        target = baseline_path or (root / DEFAULT_BASELINE)
        # The refreshed baseline is exactly the current findings plus
        # still-matching legacy entries: stale ones drop out.
        keep = [fp for fp in all_seen]
        write_baseline(target, keep)
        print(
            f"baseline updated: {target} ({len(keep)} finding"
            f"{'s' if len(keep) != 1 else ''}, {len(stale)} stale removed)"
        )
        return 0

    if args.as_json:
        print(render_json(run, stale=stale))
    else:
        print(render_human(run, stale=stale))

    if not run.clean:
        return 1
    if args.strict and stale:
        return 1
    return 0

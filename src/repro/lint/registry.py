"""The lint-rule registry: the ``@register_system`` pattern for rules.

Rules register with the :func:`register_rule` class decorator::

    from repro.lint import LintRule, register_rule

    @register_rule
    class NoSleepRule(LintRule):
        name = "no-sleep"
        description = "time.sleep does not belong in pure functions"

        def check(self, module):
            ...yield Finding(...)

and are then enforced by ``python -m repro.lint`` (and ``repro.cli
lint``).  Re-registering an existing name with a different class raises
:class:`~repro.errors.LintRuleError` — plugins cannot silently shadow
builtins.  Third-party packages can auto-register via entry points in
group ``"repro.lint_rules"``, each entry loading a module (or rule
class) whose import performs the registration; discovery runs lazily and
never fails the host process — a broken plugin is skipped, mirroring
:mod:`repro.api.registry`.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Type

from repro.errors import LintRuleError
from repro.lint.findings import Finding

__all__ = [
    "LINT_ENTRY_POINT_GROUP",
    "LintRule",
    "register_rule",
    "registered_rules",
    "rule_class",
    "discover_plugins",
]

#: Entry-point group scanned for third-party rules.
LINT_ENTRY_POINT_GROUP = "repro.lint_rules"


class LintRule:
    """Base class of one AST invariant check.

    Subclasses set ``name`` (the id used in reports, ``--select`` and
    ``# repro-lint: disable=``) and ``description`` (one line, shown by
    ``--list-rules``), then implement :meth:`check` as a generator of
    :class:`Finding` records for one parsed module.  Rules hold no
    per-run state — the engine instantiates each rule once per run.
    """

    name: str = ""
    description: str = ""

    def check(self, module) -> Iterator[Finding]:
        """Yield findings for one :class:`repro.lint.engine.SourceModule`."""
        raise NotImplementedError


# repro-lint: disable=worker-capture -- rule registry is populated at
# import time (builtins + entry points); identical in every process.
_RULES: Dict[str, Type[LintRule]] = {}
# repro-lint: disable=worker-capture -- one-shot import-time discovery
# latch; set before any worker dispatch can observe the registry.
_discovered = False


def register_rule(cls: Type[LintRule]) -> Type[LintRule]:
    """Class decorator registering a rule under ``cls.name``."""
    name = getattr(cls, "name", "")
    if not name or not isinstance(name, str):
        raise LintRuleError(
            f"{cls.__name__} needs a non-empty 'name' class attribute"
        )
    existing = _RULES.get(name)
    if existing is not None and existing is not cls:
        raise LintRuleError(
            f"lint rule {name!r} is already registered to "
            f"{existing.__name__}"
        )
    _RULES[name] = cls
    return cls


def discover_plugins() -> None:
    """Load builtin + entry-point rules once (failure-tolerant)."""
    global _discovered
    if _discovered:
        return
    _discovered = True
    # Builtins register on import; importing here (not at module top)
    # keeps registry -> rules -> registry import order acyclic.
    from repro.lint import rules as _builtin_rules  # noqa: F401
    try:
        from importlib import metadata
    except ImportError:  # pragma: no cover - py<3.8 has no importlib.metadata
        return
    try:
        entries = metadata.entry_points()
    except Exception:  # pragma: no cover - defensive
        return
    if hasattr(entries, "select"):
        selected = entries.select(group=LINT_ENTRY_POINT_GROUP)
    else:  # pragma: no cover - py<3.10 dict API
        selected = entries.get(LINT_ENTRY_POINT_GROUP, [])
    for entry in selected:
        try:
            loaded = entry.load()
        except Exception:  # pragma: no cover - broken plugin is skipped
            continue
        if isinstance(loaded, type) and issubclass(loaded, LintRule):
            try:
                register_rule(loaded)
            except LintRuleError:
                pass


def registered_rules() -> List[Type[LintRule]]:
    """Every registered rule class, sorted by name (triggers discovery)."""
    discover_plugins()
    return [_RULES[name] for name in sorted(_RULES)]


def rule_class(name: str) -> Type[LintRule]:
    """Look up one registered rule (triggers discovery)."""
    discover_plugins()
    try:
        return _RULES[name]
    except KeyError:
        known = ", ".join(sorted(_RULES))
        raise LintRuleError(
            f"unknown lint rule {name!r}; registered rules: {known}"
        ) from None

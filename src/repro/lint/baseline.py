"""Baseline files: accepted legacy findings that burn down over time.

A baseline is a committed JSON file listing fingerprints of findings
that predate a rule.  New violations fail the run immediately; matched
legacy ones are reported separately (``N baselined``) until the code is
fixed and ``--update-baseline`` shrinks the file.  Fingerprints hash the
finding's rule, path, and *stripped source line text* (plus a
disambiguating occurrence index for identical lines) rather than the
line number, so unrelated edits above a legacy violation do not churn
the baseline.

This repository's committed baseline (``lint-baseline.json``) is empty —
every pre-existing violation was fixed, not grandfathered — and the CI
``static-analysis`` job runs ``--strict``, which additionally fails on
stale baseline entries so the file can only shrink.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Sequence

from repro.errors import LintBaselineError
from repro.lint.findings import Finding

__all__ = [
    "BASELINE_VERSION",
    "fingerprint",
    "load_baseline",
    "write_baseline",
]

BASELINE_VERSION = 1


def fingerprint(
    finding: Finding, seen: Dict[str, int], line_text: str = ""
) -> str:
    """Stable content key for one finding.

    ``line_text`` is the stripped source text of the finding's line (the
    engine supplies it; line *numbers* are deliberately excluded so edits
    above a legacy violation do not churn the baseline).  ``seen``
    carries occurrence counts across one run so two identical violations
    on identical line text get distinct keys; pass the same dict for
    every finding of a run, in report order.
    """
    base = "|".join((finding.rule, finding.path, line_text.strip()))
    index = seen.get(base, 0)
    seen[base] = index + 1
    digest = hashlib.sha256(f"{base}|{index}".encode("utf-8")).hexdigest()
    return f"{finding.rule}:{digest[:16]}"


def load_baseline(path: Path) -> List[str]:
    """Read one baseline file into its fingerprint list."""
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise LintBaselineError(
            f"cannot read baseline {path}: {exc}"
        ) from exc
    except json.JSONDecodeError as exc:
        raise LintBaselineError(
            f"baseline {path} is not valid JSON: {exc}"
        ) from exc
    if (
        not isinstance(payload, dict)
        or payload.get("version") != BASELINE_VERSION
        or not isinstance(payload.get("findings"), list)
        or not all(isinstance(f, str) for f in payload["findings"])
    ):
        raise LintBaselineError(
            f"baseline {path} must be "
            '{"version": 1, "findings": ["<fingerprint>", ...]}'
        )
    return list(payload["findings"])


def write_baseline(path: Path, fingerprints: Sequence[str]) -> None:
    """Write a baseline file (sorted, trailing newline, stable diffs)."""
    payload = {
        "version": BASELINE_VERSION,
        "findings": sorted(fingerprints),
    }
    path.write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )

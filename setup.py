"""Setup shim enabling legacy editable installs where the ``wheel``
package is unavailable (offline environments):

    pip install -e . --no-build-isolation --no-use-pep517
"""

from setuptools import setup

setup()

"""build_system(uniform spec) must be bit-identical to the legacy
positional constructors, for every registered builtin system.

Hypothesis property test over random uniform specs (the acceptance
criterion), plus targeted equivalence runs per system and the
heterogeneous path's internal consistency.
"""

import warnings

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.api import CacheSpec, PipelineSpec, SystemSpec, build_system
from repro.data.trace import MaterialisedDataset, make_dataset
from repro.hardware.spec import DEFAULT_HARDWARE
from repro.model.config import tiny_config
from repro.systems import (
    HybridSystem,
    MultiGpuSystem,
    OverlappedHybridSystem,
    ScratchPipeSystem,
    StaticCacheSystem,
    StrawmanSystem,
)
from repro.systems.multigpu_scratchpipe import MultiGpuScratchPipeSystem

CFG = tiny_config(
    rows_per_table=4000, batch_size=8, lookups_per_table=3, num_tables=2
)
TRACE = MaterialisedDataset(make_dataset(CFG, "medium", seed=3,
                                         num_batches=14))


def results_equal(a, b):
    assert a.iteration_times == b.iteration_times
    assert a.energies == b.energies
    for x, y in zip(a.breakdowns, b.breakdowns):
        assert x.by_stage() == y.by_stage()
    return True


def legacy(cls, *args, **kwargs):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        return cls(CFG, DEFAULT_HARDWARE, *args, **kwargs)


uniform_params = st.fixed_dictionaries({
    "fraction": st.sampled_from([0.05, 0.11, 0.4, 1.0]),
    "policy": st.sampled_from(["lru", "lfu", "random"]),
    "future_window": st.integers(min_value=0, max_value=3),
})


class TestUniformSpecEquivalence:
    @settings(max_examples=12, deadline=None)
    @given(params=uniform_params)
    def test_scratchpipe_bit_identical(self, params):
        spec = SystemSpec(
            system="scratchpipe",
            cache=CacheSpec(fraction=params["fraction"],
                            policy=params["policy"]),
            pipeline=PipelineSpec(future_window=params["future_window"]),
        )
        via_spec = build_system(spec, CFG, DEFAULT_HARDWARE).run_trace(TRACE)
        via_legacy = legacy(
            ScratchPipeSystem, params["fraction"],
            policy_name=params["policy"],
            future_window=params["future_window"],
        ).run_trace(TRACE)
        assert results_equal(via_spec, via_legacy)

    @settings(max_examples=8, deadline=None)
    @given(params=uniform_params)
    def test_strawman_bit_identical(self, params):
        spec = SystemSpec(
            system="strawman",
            cache=CacheSpec(fraction=params["fraction"],
                            policy=params["policy"]),
        )
        via_spec = build_system(spec, CFG, DEFAULT_HARDWARE).run_trace(TRACE)
        via_legacy = legacy(
            StrawmanSystem, params["fraction"], policy_name=params["policy"]
        ).run_trace(TRACE)
        assert results_equal(via_spec, via_legacy)

    @settings(max_examples=8, deadline=None)
    @given(fraction=st.sampled_from([0.05, 0.11, 0.4, 1.0]))
    def test_static_cache_bit_identical(self, fraction):
        spec = SystemSpec(system="static_cache",
                          cache=CacheSpec(fraction=fraction))
        via_spec = build_system(spec, CFG, DEFAULT_HARDWARE).run_trace(TRACE)
        via_legacy = legacy(StaticCacheSystem, fraction).run_trace(TRACE)
        assert results_equal(via_spec, via_legacy)

    def test_hybrid_bit_identical(self):
        via_spec = build_system("hybrid", CFG, DEFAULT_HARDWARE).run_trace(TRACE)
        assert results_equal(
            via_spec, HybridSystem(CFG, DEFAULT_HARDWARE).run_trace(TRACE)
        )

    def test_overlapped_hybrid_bit_identical(self):
        via_spec = build_system(
            "overlapped_hybrid", CFG, DEFAULT_HARDWARE
        ).run_trace(TRACE)
        assert results_equal(
            via_spec,
            OverlappedHybridSystem(CFG, DEFAULT_HARDWARE).run_trace(TRACE),
        )

    @pytest.mark.parametrize("num_gpus", [1, 2, 8])
    def test_multi_gpu_bit_identical(self, num_gpus):
        spec = SystemSpec(system="multi_gpu", num_gpus=num_gpus)
        via_spec = build_system(spec, CFG, DEFAULT_HARDWARE).run_trace(TRACE)
        via_legacy = MultiGpuSystem(
            CFG, DEFAULT_HARDWARE, num_gpus=num_gpus
        ).run_trace(TRACE)
        assert results_equal(via_spec, via_legacy)

    @pytest.mark.parametrize("num_gpus", [1, 2])
    def test_multi_gpu_scratchpipe_bit_identical(self, num_gpus):
        spec = SystemSpec(
            system="multi_gpu_scratchpipe",
            cache=CacheSpec(fraction=0.1),
            num_gpus=num_gpus,
        )
        via_spec = build_system(spec, CFG, DEFAULT_HARDWARE).run_trace(TRACE)
        via_legacy = legacy(
            MultiGpuScratchPipeSystem, 0.1, num_gpus=num_gpus
        ).run_trace(TRACE)
        assert results_equal(via_spec, via_legacy)


class TestDeprecationShims:
    def test_legacy_constructor_warns(self, tiny_cfg, hardware):
        with pytest.warns(DeprecationWarning, match="build_system"):
            ScratchPipeSystem(tiny_cfg, hardware, 0.05)

    def test_legacy_constructor_synthesizes_uniform_spec(self, tiny_cfg,
                                                         hardware):
        with pytest.warns(DeprecationWarning):
            system = ScratchPipeSystem(tiny_cfg, hardware, 0.05,
                                       policy_name="lfu", future_window=1)
        assert system.spec == SystemSpec(
            system="scratchpipe",
            cache=CacheSpec(fraction=0.05, policy="lfu"),
            pipeline=PipelineSpec(future_window=1),
        )

    def test_spec_construction_does_not_warn(self, tiny_cfg, hardware):
        # 0.3 clears the hazard-window floor at tiny geometry (0.256).
        spec = SystemSpec(system="scratchpipe",
                          cache=CacheSpec(fraction=0.3))
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            build_system(spec, tiny_cfg, hardware)


class TestHeterogeneousPath:
    def heterogeneous_system(self):
        spec = SystemSpec(
            system="scratchpipe",
            cache=CacheSpec(
                fraction=0.05, policy="lru",
                tables={0: CacheSpec(fraction=0.25, policy="lfu")},
            ),
        )
        return build_system(spec, CFG, DEFAULT_HARDWARE)

    def test_per_table_index_structures_sized_independently(self):
        system = self.heterogeneous_system()
        assert system.table_slots == (1000, 200)
        assert system.table_policies == ("lfu", "lru")
        system.simulate_cache(TRACE, 4)
        pads = system._scratchpads
        assert [pad.num_slots for pad in pads] == [1000, 200]
        assert [pad.hold_mask.num_slots for pad in pads] == [1000, 200]
        assert [pad.policy.num_slots for pad in pads] == [1000, 200]
        assert [type(pad.policy).__name__ for pad in pads] == [
            "LfuPolicy", "LruPolicy",
        ]

    def test_per_table_stats_roll_up(self):
        system = self.heterogeneous_system()
        aggregate = system.aggregate_cache_stats(TRACE)
        assert sum(aggregate.per_table_hits) == aggregate.hits
        assert sum(aggregate.per_table_unique) == aggregate.unique_ids
        assert sum(aggregate.per_table_misses) == aggregate.misses
        rates = aggregate.per_table_hit_rates()
        assert len(rates) == CFG.num_tables
        assert all(0.0 <= rate <= 1.0 for rate in rates)

    def test_per_batch_stats_carry_per_table_hits(self):
        system = self.heterogeneous_system()
        for stats in system.simulate_cache(TRACE, 6):
            assert sum(stats.per_table_hits) == stats.hits
            assert sum(stats.per_table_unique) == stats.unique_ids

    def test_uniform_override_equals_flat_spec(self):
        """An override identical to the rest entry changes nothing."""
        flat = SystemSpec(system="scratchpipe",
                          cache=CacheSpec(fraction=0.05))
        padded = SystemSpec(
            system="scratchpipe",
            cache=CacheSpec(fraction=0.05,
                            tables={1: CacheSpec(fraction=0.05)}),
        )
        a = build_system(flat, CFG, DEFAULT_HARDWARE).run_trace(TRACE)
        b = build_system(padded, CFG, DEFAULT_HARDWARE).run_trace(TRACE)
        assert results_equal(a, b)

    def test_static_cache_heterogeneous_hot_rows(self):
        spec = SystemSpec(
            system="static_cache",
            cache=CacheSpec(fraction=0.01,
                            tables={0: CacheSpec(fraction=0.5)}),
        )
        system = build_system(spec, CFG, DEFAULT_HARDWARE)
        assert system.table_hot_rows == (2000, 40)
        result = system.run_trace(TRACE)
        assert len(result.iteration_times) == len(TRACE)

    def test_scratchpad_spec_fields_are_honored(self):
        from repro.api import ScratchpadSpec

        spec = SystemSpec(
            system="scratchpipe",
            cache=CacheSpec(fraction=0.05),
            scratchpad=ScratchpadSpec(past_window=4, with_storage=True,
                                      legacy_select=True),
        )
        system = build_system(spec, CFG, DEFAULT_HARDWARE)
        system.simulate_cache(TRACE, 4)
        for pad in system._scratchpads:
            assert pad.storage is not None
            assert pad.past_window == 4
            assert pad.policy.legacy is True

    def test_strawman_legacy_select_honored(self):
        from repro.api import ScratchpadSpec

        spec = SystemSpec(
            system="strawman",
            cache=CacheSpec(fraction=0.05),
            scratchpad=ScratchpadSpec(legacy_select=True),
        )
        system = build_system(spec, CFG, DEFAULT_HARDWARE)
        system.run_trace(TRACE, 2)
        for pad in system._scratchpads:
            assert pad.policy.legacy is True
            # Sequential execution fixes the past window at 0 regardless
            # of the spec (documented on ScratchpadSpec).
            assert pad.past_window == 0

    def test_strawman_heterogeneous(self):
        spec = SystemSpec(
            system="strawman",
            cache=CacheSpec(fraction=0.05,
                            tables={0: CacheSpec(fraction=0.25)}),
        )
        system = build_system(spec, CFG, DEFAULT_HARDWARE)
        assert system.table_slots == (1000, 200)
        system.run_trace(TRACE)
        assert [pad.num_slots for pad in system._scratchpads] == [1000, 200]

    def test_bigger_table_cache_improves_that_table(self):
        """End-to-end: giving table 0 a much bigger cache must not hurt it.

        Uses a long high-locality trace where the small cache evicts; the
        boosted table's hit rate must be at least the small-cache one.
        """
        cfg = tiny_config(
            rows_per_table=20_000, batch_size=16, lookups_per_table=4,
            num_tables=2,
        )
        trace = MaterialisedDataset(
            make_dataset(cfg, "high", seed=1, num_batches=120)
        )
        boosted = build_system(
            SystemSpec(system="scratchpipe",
                       cache=CacheSpec(fraction=0.03,
                                       tables={0: CacheSpec(fraction=0.2)})),
            cfg, DEFAULT_HARDWARE,
        ).aggregate_cache_stats(trace)
        rates = boosted.per_table_hit_rates()
        assert rates[0] > rates[1]

"""Build-time hazard-window floor enforcement (the ROADMAP-warned bug).

A dynamic cache sized below the hold-mask hazard window used to die
mid-run with ``CachePressureError``; ``build_system`` now rejects such
specs at construction with a named ``InvalidSystemSpecError`` — uniform
and per-table splits alike.
"""

import pytest

from repro.api import (
    CacheSpec,
    InvalidSystemSpecError,
    SystemSpec,
    build_system,
    parse_cache_spec,
)
from repro.api.specs import ScratchpadSpec
from repro.core.scratchpad import hazard_floor_slots, required_slots
from repro.hardware.spec import DEFAULT_HARDWARE
from repro.model.config import ModelConfig, tiny_config

PAPER = ModelConfig()

#: (past_window + 1) * lookups * batch at paper defaults = 163840 slots.
PAPER_FLOOR = hazard_floor_slots(PAPER)


class TestFloorFunction:
    def test_paper_geometry_floor(self):
        assert PAPER_FLOOR == 4 * 20 * 2048
        # The floor sits below the paper's smallest evaluated fraction...
        assert PAPER_FLOOR <= 0.02 * PAPER.rows_per_table
        # ...and above the 1% split ROADMAP warns about.
        assert PAPER_FLOOR > 0.01 * PAPER.rows_per_table

    def test_is_the_hold_mask_window_of_required_slots(self):
        assert hazard_floor_slots(PAPER, past_window=3) == required_slots(
            PAPER, window_batches=4
        )
        assert hazard_floor_slots(PAPER, past_window=0) == required_slots(
            PAPER, window_batches=1
        )

    def test_clamped_by_table_rows(self):
        cfg = tiny_config(rows_per_table=50, batch_size=64,
                          lookups_per_table=4)
        assert hazard_floor_slots(cfg) == 50


class TestBuildTimeRejection:
    def test_roadmap_warned_split_fails_at_build_time(self):
        """The exact table0=0.01,rest=0.02-style split ROADMAP warns about."""
        spec = SystemSpec(
            system="scratchpipe",
            cache=parse_cache_spec("table0=0.01,rest=0.02"),
        )
        with pytest.raises(InvalidSystemSpecError) as excinfo:
            build_system(spec, PAPER, DEFAULT_HARDWARE)
        message = str(excinfo.value)
        assert "table 0" in message            # names the table
        assert "100000" in message             # the requested slots
        assert str(PAPER_FLOOR) in message     # the floor
        assert "CachePressureError".lower() not in message.lower()

    def test_undersized_uniform_fraction_rejected(self):
        spec = SystemSpec(system="scratchpipe",
                          cache=CacheSpec(fraction=0.01))
        with pytest.raises(InvalidSystemSpecError, match="hazard-window"):
            build_system(spec, PAPER, DEFAULT_HARDWARE)

    def test_undersized_absolute_slots_rejected(self):
        spec = SystemSpec(system="scratchpipe",
                          cache=CacheSpec(slots=PAPER_FLOOR - 1))
        with pytest.raises(InvalidSystemSpecError, match="hazard-window"):
            build_system(spec, PAPER, DEFAULT_HARDWARE)

    def test_floor_exactly_met_passes(self):
        spec = SystemSpec(system="scratchpipe",
                          cache=CacheSpec(slots=PAPER_FLOOR))
        system = build_system(spec, PAPER, DEFAULT_HARDWARE)
        assert system.num_slots == PAPER_FLOOR

    def test_paper_default_two_percent_passes(self):
        spec = SystemSpec(system="scratchpipe",
                          cache=CacheSpec(fraction=0.02))
        assert build_system(spec, PAPER, DEFAULT_HARDWARE).num_slots == 200000

    def test_hazard_safe_hetero_split_passes(self):
        spec = SystemSpec(
            system="scratchpipe",
            cache=parse_cache_spec("table0=0.04,rest=0.02"),
        )
        system = build_system(spec, PAPER, DEFAULT_HARDWARE)
        assert system.table_slots[0] == 400000
        assert system.table_slots[1] == 200000

    def test_floor_tracks_past_window(self):
        # A shallower hold mask lowers the floor proportionally.
        shallow = SystemSpec(
            system="scratchpipe",
            cache=CacheSpec(fraction=0.01),
            scratchpad=ScratchpadSpec(past_window=1),
        )
        assert (
            build_system(shallow, PAPER, DEFAULT_HARDWARE).num_slots == 100000
        )

    def test_error_is_a_value_error_subclass(self):
        spec = SystemSpec(system="scratchpipe",
                          cache=CacheSpec(fraction=0.001))
        with pytest.raises(ValueError):
            build_system(spec, PAPER, DEFAULT_HARDWARE)


class TestPerSystemFloors:
    def test_strawman_floor_is_one_batch(self):
        # Sequential design: only the current batch's misses must fit.
        one_batch = required_slots(PAPER, window_batches=1)
        ok = SystemSpec(system="strawman", cache=CacheSpec(slots=one_batch))
        build_system(ok, PAPER, DEFAULT_HARDWARE)
        too_small = SystemSpec(system="strawman",
                               cache=CacheSpec(slots=one_batch - 1))
        with pytest.raises(InvalidSystemSpecError, match="hazard-window"):
            build_system(too_small, PAPER, DEFAULT_HARDWARE)

    def test_static_cache_has_no_floor(self):
        # The static cache never evicts — any sliver of a cache is valid.
        spec = SystemSpec(system="static_cache",
                          cache=CacheSpec(fraction=0.001))
        build_system(spec, PAPER, DEFAULT_HARDWARE)

    def test_tiny_geometry_floor(self):
        cfg = tiny_config()  # 4 lookups x 16 batch x 1000 rows
        floor = hazard_floor_slots(cfg)
        assert floor == 4 * 4 * 16  # 256 slots = 25.6% of the table
        bad = SystemSpec(system="scratchpipe", cache=CacheSpec(fraction=0.1))
        with pytest.raises(InvalidSystemSpecError, match="256"):
            build_system(bad, cfg, DEFAULT_HARDWARE)
        good = SystemSpec(system="scratchpipe", cache=CacheSpec(fraction=0.3))
        build_system(good, cfg, DEFAULT_HARDWARE)

"""Spec validation + round-trip tests for repro.api.

The satellite contract: every spec field validates up front in
``__post_init__`` with a named :class:`InvalidSystemSpecError` (the
``InvalidZipfExponentError`` pattern), and SystemSpec <-> JSON <-> CLI
string forms are lossless, hash/eq-stable, and pickle small.
"""

import json
import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro.api import (
    CacheSpec,
    InvalidSystemSpecError,
    PipelineSpec,
    ScratchpadSpec,
    SystemSpec,
    format_cache_spec,
    parse_cache_spec,
    uniform_system_spec,
)


class TestCacheSpecValidation:
    def test_needs_exactly_one_size(self):
        with pytest.raises(InvalidSystemSpecError, match="exactly one"):
            CacheSpec()
        with pytest.raises(InvalidSystemSpecError, match="exactly one"):
            CacheSpec(fraction=0.02, slots=100)

    @pytest.mark.parametrize("fraction", [0.0, -0.5, 1.5, float("nan")])
    def test_bad_fraction(self, fraction):
        with pytest.raises(InvalidSystemSpecError, match="cache_fraction"):
            CacheSpec(fraction=fraction)

    @pytest.mark.parametrize("slots", [0, -1, 0.5, "10"])
    def test_bad_slots(self, slots):
        with pytest.raises(InvalidSystemSpecError):
            CacheSpec(slots=slots)

    def test_unknown_policy_fails_at_construction(self):
        with pytest.raises(InvalidSystemSpecError, match="unknown policy"):
            CacheSpec(fraction=0.02, policy="mru")

    def test_policy_normalised_to_lowercase(self):
        upper = CacheSpec(fraction=0.02, policy="LRU")
        assert upper.policy == "lru"
        assert upper == CacheSpec(fraction=0.02, policy="lru")
        assert hash(upper) == hash(CacheSpec(fraction=0.02, policy="lru"))

    def test_duplicate_table_override(self):
        with pytest.raises(InvalidSystemSpecError, match="duplicate"):
            CacheSpec(
                fraction=0.02,
                tables=((0, CacheSpec(fraction=0.1)),
                        (0, CacheSpec(fraction=0.2))),
            )

    def test_nested_overrides_rejected(self):
        nested = CacheSpec(
            fraction=0.1, tables=((1, CacheSpec(fraction=0.2)),)
        )
        with pytest.raises(InvalidSystemSpecError, match="uniform"):
            CacheSpec(fraction=0.02, tables=((0, nested),))

    def test_negative_table_index(self):
        with pytest.raises(InvalidSystemSpecError, match=">= 0"):
            CacheSpec(fraction=0.02, tables=((-1, CacheSpec(fraction=0.1)),))

    def test_mapping_normalised_to_sorted_tuple(self):
        a = CacheSpec(fraction=0.02, tables={3: CacheSpec(fraction=0.1),
                                             1: CacheSpec(fraction=0.2)})
        b = CacheSpec(fraction=0.02, tables=((1, CacheSpec(fraction=0.2)),
                                             (3, CacheSpec(fraction=0.1))))
        assert a == b
        assert hash(a) == hash(b)
        assert [index for index, _ in a.tables] == [1, 3]

    def test_out_of_range_override_fails_at_resolve(self):
        spec = CacheSpec(fraction=0.02, tables={4: CacheSpec(fraction=0.1)})
        with pytest.raises(InvalidSystemSpecError, match="only 2 tables"):
            spec.resolve(num_tables=2, rows_per_table=1000)

    def test_resolve_matches_legacy_slot_formula(self):
        spec = CacheSpec(fraction=0.013)
        resolved = spec.resolve(num_tables=3, rows_per_table=12345)
        assert all(r.slots == max(1, int(0.013 * 12345)) for r in resolved)

    def test_resolve_heterogeneous(self):
        spec = CacheSpec(
            fraction=0.005, policy="random",
            tables={0: CacheSpec(fraction=0.04, policy="lfu"),
                    2: CacheSpec(slots=77)},
        )
        resolved = spec.resolve(num_tables=3, rows_per_table=10_000)
        assert [(r.slots, r.policy) for r in resolved] == [
            (400, "lfu"), (50, "random"), (77, "lru"),
        ]


class TestOtherSpecValidation:
    def test_scratchpad_past_window(self):
        with pytest.raises(InvalidSystemSpecError, match="past_window"):
            ScratchpadSpec(past_window=-1)

    def test_pipeline_future_window(self):
        with pytest.raises(InvalidSystemSpecError, match="future_window"):
            PipelineSpec(future_window=-1)

    def test_system_name_shape(self):
        for bad in ("", "Has Spaces", "UPPER", 7, "7starts_with_digit"):
            with pytest.raises(InvalidSystemSpecError, match="system name"):
                SystemSpec(system=bad)

    def test_num_gpus(self):
        with pytest.raises(InvalidSystemSpecError, match="num_gpus"):
            SystemSpec(num_gpus=0)

    def test_wrong_component_types(self):
        with pytest.raises(InvalidSystemSpecError, match="CacheSpec"):
            SystemSpec(cache=0.02)
        with pytest.raises(InvalidSystemSpecError, match="PipelineSpec"):
            SystemSpec(pipeline={"future_window": 2})


class TestUpFrontSystemValidation:
    """Regression: the legacy constructors validated cache_fraction but let
    a bad policy_name/future_window fail deep in construction; the spec
    shim now fails them immediately with named errors."""

    def test_scratchpipe_bad_policy_up_front(self, tiny_cfg, hardware):
        from repro.systems import ScratchPipeSystem

        with pytest.warns(DeprecationWarning):
            with pytest.raises(InvalidSystemSpecError, match="unknown policy"):
                ScratchPipeSystem(tiny_cfg, hardware, 0.05, policy_name="mru")

    def test_scratchpipe_bad_future_window_up_front(self, tiny_cfg, hardware):
        from repro.systems import ScratchPipeSystem

        with pytest.warns(DeprecationWarning):
            with pytest.raises(InvalidSystemSpecError, match="future_window"):
                ScratchPipeSystem(tiny_cfg, hardware, 0.05, future_window=-2)

    def test_scratchpipe_bad_fraction_still_valueerror(self, tiny_cfg, hardware):
        from repro.systems import ScratchPipeSystem

        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError, match="cache_fraction"):
                ScratchPipeSystem(tiny_cfg, hardware, 1.5)

    def test_strawman_bad_policy_up_front(self, tiny_cfg, hardware):
        from repro.systems import StrawmanSystem

        with pytest.warns(DeprecationWarning):
            with pytest.raises(InvalidSystemSpecError, match="unknown policy"):
                StrawmanSystem(tiny_cfg, hardware, 0.05, policy_name="fifo")

    def test_spec_and_positional_args_conflict(self, tiny_cfg, hardware):
        from repro.systems import ScratchPipeSystem

        spec = SystemSpec(system="scratchpipe",
                          cache=CacheSpec(fraction=0.05))
        with pytest.raises(TypeError, match="not both"):
            ScratchPipeSystem(tiny_cfg, hardware, 0.05, spec=spec)


# ----------------------------------------------------------------------
# Round-trips
# ----------------------------------------------------------------------
policies = st.sampled_from(["lru", "lfu", "random"])


def cache_entries(**kwargs):
    return st.one_of(
        st.builds(
            CacheSpec,
            fraction=st.floats(min_value=0.001, max_value=1.0,
                               allow_nan=False),
            policy=policies,
            **kwargs,
        ),
        st.builds(
            CacheSpec,
            slots=st.integers(min_value=1, max_value=10_000),
            policy=policies,
            **kwargs,
        ),
    )


cache_specs = cache_entries(
    tables=st.dictionaries(
        st.integers(min_value=0, max_value=7), cache_entries(), max_size=3
    )
)

system_specs = st.builds(
    SystemSpec,
    system=st.sampled_from(
        ["scratchpipe", "strawman", "static_cache", "multi_gpu_scratchpipe"]
    ),
    cache=cache_specs,
    scratchpad=st.builds(
        ScratchpadSpec,
        past_window=st.integers(min_value=0, max_value=5),
        with_storage=st.booleans(),
        legacy_select=st.sampled_from([None, True, False]),
    ),
    pipeline=st.builds(
        PipelineSpec,
        future_window=st.integers(min_value=0, max_value=4),
        unique_cache=st.booleans(),
    ),
    num_gpus=st.integers(min_value=1, max_value=8),
)


class TestRoundTrips:
    @settings(max_examples=50, deadline=None)
    @given(spec=system_specs)
    def test_json_round_trip_lossless(self, spec):
        assert SystemSpec.from_json(spec.to_json()) == spec

    @settings(max_examples=50, deadline=None)
    @given(spec=cache_specs)
    def test_cli_string_round_trip_lossless(self, spec):
        assert parse_cache_spec(format_cache_spec(spec)) == spec

    @settings(max_examples=50, deadline=None)
    @given(spec=system_specs)
    def test_hash_eq_stable_across_rebuild(self, spec):
        clone = SystemSpec.from_dict(json.loads(spec.to_json()))
        assert clone == spec
        assert hash(clone) == hash(spec)

    @settings(max_examples=50, deadline=None)
    @given(spec=system_specs)
    def test_pickle_round_trip_small(self, spec):
        payload = pickle.dumps(spec)
        assert len(payload) < 4096
        assert pickle.loads(payload) == spec

    def test_json_is_plain_data(self):
        spec = SystemSpec(
            system="scratchpipe",
            cache=CacheSpec(fraction=0.005,
                            tables={0: CacheSpec(fraction=0.04)}),
        )
        data = json.loads(spec.to_json())
        assert data["cache"]["tables"]["0"]["fraction"] == 0.04

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(InvalidSystemSpecError, match="unknown system spec"):
            SystemSpec.from_dict({"system": "scratchpipe", "turbo": True})
        with pytest.raises(InvalidSystemSpecError, match="unknown cache"):
            CacheSpec.from_dict({"fraction": 0.02, "rows": 10})


class TestCacheSpecParsing:
    def test_bare_fraction(self):
        assert parse_cache_spec("0.02") == CacheSpec(fraction=0.02)

    def test_policy_suffix(self):
        assert parse_cache_spec("0.02:random") == CacheSpec(
            fraction=0.02, policy="random"
        )

    def test_issue_example(self):
        spec = parse_cache_spec("table0=0.04,rest=0.005")
        assert spec.fraction == 0.005
        assert dict(spec.tables) == {0: CacheSpec(fraction=0.04)}

    def test_slots_form(self):
        spec = parse_cache_spec("0=4096s:lfu,rest=0.01")
        assert dict(spec.tables) == {0: CacheSpec(slots=4096, policy="lfu")}

    def test_missing_rest_rejected(self):
        with pytest.raises(InvalidSystemSpecError, match="rest="):
            parse_cache_spec("table0=0.04")

    def test_garbage_rejected(self):
        with pytest.raises(InvalidSystemSpecError):
            parse_cache_spec("tableX=0.04,rest=0.01")
        with pytest.raises(InvalidSystemSpecError):
            parse_cache_spec("")


class TestUniformSystemSpec:
    def test_cacheless(self):
        spec = uniform_system_spec("hybrid")
        assert spec.cache is None

    def test_cached(self):
        spec = uniform_system_spec("scratchpipe", 0.05, policy="lfu",
                                   future_window=3)
        assert spec.cache == CacheSpec(fraction=0.05, policy="lfu")
        assert spec.pipeline.future_window == 3

"""Registry + factory tests: builtins, plugins, entry-point discovery."""

import pytest

from repro.api import (
    CacheSpec,
    InvalidSystemSpecError,
    RegistryError,
    SystemSpec,
    build_system,
    register_policy,
    register_system,
    registered_policies,
    registered_systems,
    system_entry,
)
from repro.api import registry as registry_module
from repro.systems.base import SystemRunResult, TrainingSystem


BUILTIN_SYSTEMS = {
    "hybrid", "overlapped_hybrid", "multi_gpu", "multi_gpu_scratchpipe",
    "scratchpipe", "static_cache", "strawman",
}


class TestBuiltins:
    def test_all_builtin_systems_registered(self):
        assert BUILTIN_SYSTEMS <= set(registered_systems())

    def test_builtin_policies_registered(self):
        assert {"lru", "lfu", "random"} <= set(registered_policies())

    def test_entry_metadata(self):
        entry = system_entry("scratchpipe")
        assert entry.requires_cache
        assert "ScratchPipe" in entry.description
        assert not system_entry("hybrid").requires_cache

    def test_unknown_system_lookup(self):
        with pytest.raises(RegistryError, match="unknown system"):
            system_entry("warp_drive")


class TestFactoryValidation:
    def test_unknown_system_is_named_error(self, tiny_cfg, hardware):
        with pytest.raises(InvalidSystemSpecError, match="unknown system"):
            build_system(SystemSpec(system="warp_drive"), tiny_cfg, hardware)

    def test_missing_cache_is_named_error(self, tiny_cfg, hardware):
        with pytest.raises(InvalidSystemSpecError, match="requires a cache"):
            build_system(SystemSpec(system="scratchpipe"), tiny_cfg, hardware)

    def test_spurious_cache_is_named_error(self, tiny_cfg, hardware):
        spec = SystemSpec(system="hybrid", cache=CacheSpec(fraction=0.02))
        with pytest.raises(InvalidSystemSpecError, match="takes no cache"):
            build_system(spec, tiny_cfg, hardware)

    def test_build_by_name(self, tiny_cfg, hardware):
        system = build_system("hybrid", tiny_cfg, hardware)
        assert system.name == "hybrid"
        assert system.spec == SystemSpec(system="hybrid")

    def test_build_by_json(self, tiny_cfg, hardware):
        spec = SystemSpec(system="static_cache",
                          cache=CacheSpec(fraction=0.1))
        system = build_system(spec.to_json(), tiny_cfg, hardware)
        assert system.name == "static_cache"
        assert system.spec == spec

    def test_num_gpus_rejected_for_single_gpu_systems(self, tiny_cfg,
                                                      hardware):
        spec = SystemSpec(system="scratchpipe",
                          cache=CacheSpec(fraction=0.05), num_gpus=8)
        with pytest.raises(InvalidSystemSpecError, match="single-GPU"):
            build_system(spec, tiny_cfg, hardware)

    def test_num_gpus_accepted_for_multi_gpu_systems(self, tiny_cfg,
                                                     hardware):
        system = build_system(
            SystemSpec(system="multi_gpu", num_gpus=4), tiny_cfg, hardware
        )
        assert system.num_gpus == 4

    def test_whitespace_docstring_registers_fine(self):
        class Undocumented(TrainingSystem):
            name = "test_undocumented_system"

        Undocumented.__doc__ = "\n   "
        try:
            register_system("test_undocumented_system")(Undocumented)
            assert system_entry("test_undocumented_system").description == ""
        finally:
            registry_module._SYSTEMS.pop("test_undocumented_system", None)

    def test_built_system_carries_spec(self, tiny_cfg, hardware):
        # 0.3 clears the hazard-window floor at tiny geometry (0.256).
        spec = SystemSpec(system="scratchpipe",
                          cache=CacheSpec(fraction=0.3))
        assert build_system(spec, tiny_cfg, hardware).spec is spec


class TestPluginRegistration:
    def test_register_and_build_custom_system(self, tiny_cfg, hardware,
                                              id_only_dataset):
        @register_system("test_constant_system",
                         description="fixed-latency test double")
        class ConstantSystem(TrainingSystem):
            name = "test_constant_system"

            def run_trace(self, dataset_batches, num_batches=None):
                total = len(dataset_batches)
                num_batches = total if num_batches is None else num_batches
                result = SystemRunResult(system=self.name)
                result.iteration_times = [1e-3] * num_batches
                result.energies = [0.0] * num_batches
                return result

        try:
            assert "test_constant_system" in registered_systems()
            system = build_system("test_constant_system", tiny_cfg, hardware)
            out = system.run_trace(id_only_dataset, 4)
            assert out.iteration_times == [1e-3] * 4
        finally:
            registry_module._SYSTEMS.pop("test_constant_system", None)

    def test_duplicate_system_name_rejected(self):
        with pytest.raises(RegistryError, match="already registered"):
            @register_system("scratchpipe")
            class Impostor(TrainingSystem):
                name = "scratchpipe"

    def test_duplicate_policy_name_rejected(self):
        from repro.core.replacement import LruPolicy

        class ImpostorPolicy(LruPolicy):
            pass

        with pytest.raises(ValueError, match="already registered"):
            register_policy("lru")(ImpostorPolicy)

    def test_registered_policy_usable_in_cache_spec(self):
        from repro.core import replacement
        from repro.core.replacement import LruPolicy

        class ClockishPolicy(LruPolicy):
            pass

        register_policy("test_clockish")(ClockishPolicy)
        try:
            spec = CacheSpec(fraction=0.02, policy="test_clockish")
            assert spec.policy == "test_clockish"
            policy = replacement.make_policy("test_clockish", 16)
            assert isinstance(policy, ClockishPolicy)
        finally:
            replacement._POLICIES.pop("test_clockish", None)


class TestEntryPointDiscovery:
    def test_discovery_registers_loaded_class(self, monkeypatch):
        class FakeEntryPoint:
            name = "fake"

            @staticmethod
            def load():
                class EntryPointSystem(TrainingSystem):
                    name = "test_entry_point_system"

                return EntryPointSystem

        class FakeEntryPoints:
            @staticmethod
            def select(group):
                if group == registry_module.SYSTEM_ENTRY_POINT_GROUP:
                    return [FakeEntryPoint()]
                return []

        from importlib import metadata

        monkeypatch.setattr(metadata, "entry_points",
                            lambda: FakeEntryPoints())
        monkeypatch.setattr(registry_module, "_discovered", False)
        try:
            assert "test_entry_point_system" in registered_systems()
        finally:
            registry_module._SYSTEMS.pop("test_entry_point_system", None)
            registry_module._discovered = True

    def test_entry_point_policy_valid_in_cache_spec(self, monkeypatch):
        """A policy shipped only via the repro.policies entry-point group
        must validate in CacheSpec before any registry query ran."""
        from repro.core import replacement
        from repro.core.replacement import LruPolicy

        class PluginPolicy(LruPolicy):
            name = "test_plugin_policy"

        class FakeEntryPoint:
            name = "test_plugin_policy"

            @staticmethod
            def load():
                return PluginPolicy

        class FakeEntryPoints:
            @staticmethod
            def select(group):
                if group == registry_module.POLICY_ENTRY_POINT_GROUP:
                    return [FakeEntryPoint()]
                return []

        from importlib import metadata

        monkeypatch.setattr(metadata, "entry_points",
                            lambda: FakeEntryPoints())
        monkeypatch.setattr(registry_module, "_discovered", False)
        try:
            spec = CacheSpec(fraction=0.02, policy="test_plugin_policy")
            assert spec.policy == "test_plugin_policy"
        finally:
            replacement._POLICIES.pop("test_plugin_policy", None)
            registry_module._discovered = True

    def test_broken_plugin_is_skipped(self, monkeypatch):
        class BrokenEntryPoint:
            name = "broken"

            @staticmethod
            def load():
                raise ImportError("plugin import exploded")

        class FakeEntryPoints:
            @staticmethod
            def select(group):
                return [BrokenEntryPoint()]

        from importlib import metadata

        monkeypatch.setattr(metadata, "entry_points",
                            lambda: FakeEntryPoints())
        monkeypatch.setattr(registry_module, "_discovered", False)
        try:
            # Discovery must not raise, and builtins stay intact.
            assert BUILTIN_SYSTEMS <= set(registered_systems())
        finally:
            registry_module._discovered = True

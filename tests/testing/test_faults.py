"""The fault injector itself: determinism, budgets, scoping, kill mode."""

import json
import os
import subprocess
import sys

import pytest

from repro.testing import faults
from repro.testing.faults import (
    FAULT_PLAN_ENV,
    FaultPlan,
    FaultSpec,
    InjectedFaultError,
    fault_point,
    injected_faults,
    injection_count,
)


class TestSpecValidation:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown fault mode"):
            FaultSpec(site="sweep.point", mode="explode")

    def test_nonpositive_times_rejected(self):
        with pytest.raises(ValueError, match="times"):
            FaultSpec(site="sweep.point", mode="raise", times=0)

    def test_probability_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="probability"):
            FaultSpec(site="sweep.point", mode="raise", probability=1.5)

    def test_plan_round_trips_through_json(self, tmp_path):
        plan = FaultPlan(
            faults=(
                FaultSpec(site="a", mode="raise", times=2, after=1),
                FaultSpec(site="b", mode="stall", stall_s=0.25),
            ),
            state_dir=str(tmp_path),
        )
        assert FaultPlan.from_json(plan.to_json()) == plan


class TestFaultPoint:
    def test_noop_without_plan(self, monkeypatch):
        monkeypatch.delenv(FAULT_PLAN_ENV, raising=False)
        fault_point("sweep.point")  # must not raise

    def test_raise_mode_fires_once(self, tmp_path):
        spec = FaultSpec(site="s", mode="raise", times=1)
        with injected_faults(spec, state_dir=tmp_path):
            with pytest.raises(InjectedFaultError):
                fault_point("s")
            fault_point("s")  # budget spent: second arrival passes
        assert injection_count(str(tmp_path)) == 1

    def test_times_budget_spans_arrivals(self, tmp_path):
        spec = FaultSpec(site="s", mode="raise", times=3)
        fired = 0
        with injected_faults(spec, state_dir=tmp_path):
            for _ in range(10):
                try:
                    fault_point("s")
                except InjectedFaultError:
                    fired += 1
        assert fired == 3
        assert injection_count(str(tmp_path)) == 3

    def test_after_skips_early_arrivals(self, tmp_path):
        spec = FaultSpec(site="s", mode="raise", after=2)
        with injected_faults(spec, state_dir=tmp_path):
            fault_point("s")
            fault_point("s")
            with pytest.raises(InjectedFaultError):
                fault_point("s")

    def test_match_scopes_by_detail(self, tmp_path):
        spec = FaultSpec(site="s", mode="raise", match="target")
        with injected_faults(spec, state_dir=tmp_path):
            fault_point("s", detail="innocent")
            with pytest.raises(InjectedFaultError):
                fault_point("s", detail="the target point")

    def test_sites_are_independent(self, tmp_path):
        spec = FaultSpec(site="s", mode="raise")
        with injected_faults(spec, state_dir=tmp_path):
            fault_point("other.site")
            with pytest.raises(InjectedFaultError):
                fault_point("s")

    def test_error_mode_raises_urlerror(self, tmp_path):
        import urllib.error

        spec = FaultSpec(site="s", mode="error")
        with injected_faults(spec, state_dir=tmp_path):
            with pytest.raises(urllib.error.URLError):
                fault_point("s")

    def test_plan_restored_after_context(self, tmp_path, monkeypatch):
        monkeypatch.setenv(FAULT_PLAN_ENV, "")
        with injected_faults(
            FaultSpec(site="s", mode="raise"), state_dir=tmp_path
        ):
            assert os.environ[FAULT_PLAN_ENV]
        assert os.environ[FAULT_PLAN_ENV] == ""


class TestDeterminism:
    def test_probability_gate_is_pure(self):
        spec = FaultSpec(site="s", mode="raise", probability=0.5, seed=7)
        first = [faults._fires(spec, arrival) for arrival in range(64)]
        second = [faults._fires(spec, arrival) for arrival in range(64)]
        assert first == second
        assert any(first) and not all(first)

    def test_probability_replays_across_plan_reinstalls(self, tmp_path):
        spec = FaultSpec(site="s", mode="raise", probability=0.5, seed=3)

        def run(state_dir):
            outcomes = []
            with injected_faults(spec, state_dir=state_dir):
                for _ in range(32):
                    try:
                        fault_point("s")
                        outcomes.append(False)
                    except InjectedFaultError:
                        outcomes.append(True)
            return outcomes

        assert run(tmp_path / "a") == run(tmp_path / "b")


class TestKillMode:
    def test_kill_sigkills_the_process(self, tmp_path):
        """mode="kill" takes the whole process down with SIGKILL."""
        plan = FaultPlan(
            faults=(FaultSpec(site="s", mode="kill"),),
            state_dir=str(tmp_path),
        )
        code = (
            "from repro.testing.faults import fault_point\n"
            "fault_point('s')\n"
            "print('survived')\n"
        )
        env = dict(os.environ, **{FAULT_PLAN_ENV: plan.to_json()})
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in ("src", env.get("PYTHONPATH", "")) if p
        )
        proc = subprocess.run(
            [sys.executable, "-c", code],
            env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
            capture_output=True,
            text=True,
        )
        assert proc.returncode == -9
        assert "survived" not in proc.stdout
        assert injection_count(str(tmp_path)) == 1

"""Deliberately violating fixture: the linter must catch this file.

Linted only by tests/lint/test_self_check.py — never imported, never on
the CI lint path.  If the determinism rule regresses, the self-check
fails here before any real violation lands in src/repro.
"""

import random
import time

import numpy as np


def jitter():
    return np.random.rand() + random.random() + time.time()

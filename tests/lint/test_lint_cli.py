"""CLI surfaces: python -m repro.lint and the repro.cli lint subcommand."""

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent.parent

VIOLATION = """\
def f(x):
    raise ValueError(x)
"""

CLEAN = "x = 1\n"


def run_lint_cli(args, cwd, module="repro.lint"):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return subprocess.run(
        [sys.executable, "-m", module, *args],
        cwd=cwd, env=env, capture_output=True, text=True, timeout=120,
    )


@pytest.fixture
def project(tmp_path):
    (tmp_path / "bad.py").write_text(textwrap.dedent(VIOLATION))
    (tmp_path / "good.py").write_text(CLEAN)
    return tmp_path


class TestModuleEntryPoint:
    def test_findings_exit_1_with_location(self, project):
        proc = run_lint_cli(["bad.py"], cwd=project)
        assert proc.returncode == 1
        assert "bad.py:2:5: [error-taxonomy]" in proc.stdout

    def test_clean_exit_0(self, project):
        proc = run_lint_cli(["good.py"], cwd=project)
        assert proc.returncode == 0
        assert "clean" in proc.stdout

    def test_json_report(self, project):
        proc = run_lint_cli(["bad.py", "--json"], cwd=project)
        payload = json.loads(proc.stdout)
        assert payload["clean"] is False
        assert payload["findings"][0]["rule"] == "error-taxonomy"

    def test_list_rules_names_all_builtins(self, project):
        proc = run_lint_cli(["--list-rules"], cwd=project)
        assert proc.returncode == 0
        for name in ("determinism", "set-order", "spec-purity",
                     "error-taxonomy", "shm-discipline",
                     "process-discipline", "env-discipline",
                     "worker-capture"):
            assert name in proc.stdout

    def test_select_narrows_rules(self, project):
        proc = run_lint_cli(
            ["bad.py", "--select", "determinism"], cwd=project
        )
        assert proc.returncode == 0  # the bare raise is not determinism

    def test_usage_error_exit_2(self, project):
        (project / "notes.txt").write_text("hi")
        proc = run_lint_cli(["notes.txt"], cwd=project)
        assert proc.returncode == 2
        assert "error" in proc.stderr


class TestBaselineWorkflow:
    def test_update_baseline_then_clean_then_stale(self, project):
        # 1. Grandfather the existing violation.
        proc = run_lint_cli(["bad.py", "--update-baseline"], cwd=project)
        assert proc.returncode == 0
        baseline = project / "lint-baseline.json"
        assert baseline.exists()
        listed = json.loads(baseline.read_text())["findings"]
        assert len(listed) == 1

        # 2. The baselined violation no longer fails the run.
        proc = run_lint_cli(["bad.py"], cwd=project)
        assert proc.returncode == 0
        assert "1 baselined" in proc.stdout

        # 3. Fix the code: plain run still 0, strict flags the stale entry.
        (project / "bad.py").write_text(CLEAN)
        proc = run_lint_cli(["bad.py"], cwd=project)
        assert proc.returncode == 0
        assert "stale baseline entry" in proc.stdout
        proc = run_lint_cli(["bad.py", "--strict"], cwd=project)
        assert proc.returncode == 1

        # 4. --update-baseline burns the stale entry down to empty.
        proc = run_lint_cli(["bad.py", "--update-baseline"], cwd=project)
        assert proc.returncode == 0
        assert json.loads(baseline.read_text())["findings"] == []
        proc = run_lint_cli(["bad.py", "--strict"], cwd=project)
        assert proc.returncode == 0


class TestReproCliSubcommand:
    def test_lint_subcommand_reports_and_fails(self, project):
        proc = run_lint_cli(["lint", "bad.py"], cwd=project,
                            module="repro.cli")
        assert proc.returncode == 1
        assert "bad.py:2:5: [error-taxonomy]" in proc.stdout

    def test_lint_subcommand_clean_and_json(self, project):
        proc = run_lint_cli(["lint", "good.py", "--json"], cwd=project,
                            module="repro.cli")
        assert proc.returncode == 0
        assert json.loads(proc.stdout)["clean"] is True

    def test_repo_tree_passes_strict_via_subcommand(self):
        proc = run_lint_cli(
            ["lint", "src/repro", "--strict"], cwd=REPO,
            module="repro.cli",
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr

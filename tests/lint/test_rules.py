"""Paired violating/clean fixtures for every builtin lint rule."""

import textwrap

import pytest

from repro.lint import lint_paths


def lint_source(tmp_path, source, select, rel="mod.py"):
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return lint_paths([path], select=[select], root=tmp_path)


def rules_found(run):
    return [f.rule for f in run.findings]


class TestDeterminism:
    def test_legacy_numpy_global_rng_flagged(self, tmp_path):
        run = lint_source(tmp_path, """\
            import numpy as np
            x = np.random.rand(3)
            """, "determinism")
        assert rules_found(run) == ["determinism"]
        assert "numpy.random.rand" in run.findings[0].message

    def test_random_module_global_fns_flagged(self, tmp_path):
        run = lint_source(tmp_path, """\
            import random
            random.seed(0)
            v = random.random()
            """, "determinism")
        assert len(run.findings) == 2

    def test_wall_clock_and_uuid_flagged(self, tmp_path):
        run = lint_source(tmp_path, """\
            import time, uuid, os
            t = time.time()
            n = uuid.uuid4()
            b = os.urandom(8)
            """, "determinism")
        assert len(run.findings) == 3

    def test_unseeded_default_rng_flagged(self, tmp_path):
        run = lint_source(tmp_path, """\
            import numpy as np
            from random import Random
            rng = np.random.default_rng()
            r = Random()
            """, "determinism")
        assert len(run.findings) == 2

    def test_seeded_and_injectable_clocks_clean(self, tmp_path):
        run = lint_source(tmp_path, """\
            import time
            import random
            import numpy as np
            rng = np.random.default_rng(7)
            r = random.Random(3)
            x = rng.random()
            t = time.monotonic()
            time.sleep(0.01)
            """, "determinism")
        assert run.clean

    def test_unrelated_attribute_chains_clean(self, tmp_path):
        run = lint_source(tmp_path, """\
            class Sim:
                def step(self):
                    return self.rng.random() + self.clock.time()
            """, "determinism")
        assert run.clean


class TestSetOrder:
    def test_for_loop_over_set_flagged(self, tmp_path):
        run = lint_source(tmp_path, """\
            def f(items):
                for x in set(items):
                    print(x)
            """, "set-order")
        assert rules_found(run) == ["set-order"]

    def test_list_of_set_flagged(self, tmp_path):
        run = lint_source(tmp_path, """\
            def f(a, b):
                return list({*a, *b})
            """, "set-order")
        assert rules_found(run) == ["set-order"]

    def test_comprehension_over_set_flagged(self, tmp_path):
        run = lint_source(tmp_path, """\
            def f(items):
                return [x + 1 for x in frozenset(items)]
            """, "set-order")
        assert rules_found(run) == ["set-order"]

    def test_sorted_and_reducers_clean(self, tmp_path):
        run = lint_source(tmp_path, """\
            def f(items):
                for x in sorted(set(items)):
                    print(x)
                total = sum({len(i) for i in items})
                n = len(set(items))
                return total, n, max({1, 2})
            """, "set-order")
        assert run.clean

    def test_set_comprehension_from_set_clean(self, tmp_path):
        # A set output re-hashes anyway; only ordered outputs matter.
        run = lint_source(tmp_path, """\
            def f(items):
                return {x for x in set(items)}
            """, "set-order")
        assert run.clean


class TestSpecPurity:
    def test_mutable_default_and_annotation_flagged(self, tmp_path):
        run = lint_source(tmp_path, """\
            from dataclasses import dataclass, field

            @dataclass(frozen=True)
            class BadSpec:
                items: list = field(default_factory=list)

                def __post_init__(self):
                    pass
            """, "spec-purity")
        messages = " ".join(f.message for f in run.findings)
        assert "default_factory" in messages
        assert "not hashable" in messages

    def test_missing_post_init_flagged(self, tmp_path):
        run = lint_source(tmp_path, """\
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class LazySpec:
                n: int = 1
            """, "spec-purity")
        assert any("__post_init__" in f.message for f in run.findings)

    def test_dict_literal_default_flagged(self, tmp_path):
        run = lint_source(tmp_path, """\
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class MapSpec:
                table: dict = {}

                def __post_init__(self):
                    pass
            """, "spec-purity")
        assert any("mutable default" in f.message for f in run.findings)

    def test_pure_spec_clean(self, tmp_path):
        run = lint_source(tmp_path, """\
            from dataclasses import dataclass
            from typing import Optional, Tuple

            @dataclass(frozen=True)
            class CacheSpec:
                fraction: float = 0.05
                policy: str = "lru"
                tiers: Tuple[int, ...] = ()
                parent: Optional["CacheSpec"] = None

                def __post_init__(self):
                    if self.fraction < 0:
                        raise ValueError(self.fraction)
            """, "spec-purity")
        assert run.clean

    def test_non_spec_and_unfrozen_classes_ignored(self, tmp_path):
        run = lint_source(tmp_path, """\
            from dataclasses import dataclass

            @dataclass
            class MutableSpec:
                items: list = None

            @dataclass(frozen=True)
            class NotACurrency:
                items: list = None
            """, "spec-purity")
        assert run.clean


class TestErrorTaxonomy:
    def test_bare_builtins_flagged(self, tmp_path):
        run = lint_source(tmp_path, """\
            def f(x):
                if x < 0:
                    raise ValueError("negative")
                if x > 10:
                    raise RuntimeError("too big")
                raise KeyError(x)
            """, "error-taxonomy")
        assert len(run.findings) == 3

    def test_named_subclasses_and_reraise_clean(self, tmp_path):
        run = lint_source(tmp_path, """\
            class LoaderConfigError(ValueError):
                pass

            def f(x):
                if x is None:
                    raise TypeError("x must be an int")
                if x < 0:
                    raise LoaderConfigError(x)
                try:
                    return 1 / x
                except ZeroDivisionError:
                    raise
            """, "error-taxonomy")
        assert run.clean


class TestShmDiscipline:
    @pytest.mark.parametrize("stmt", [
        "from multiprocessing import shared_memory",
        "import multiprocessing.shared_memory",
        "from multiprocessing.shared_memory import SharedMemory",
    ])
    def test_imports_flagged(self, tmp_path, stmt):
        run = lint_source(tmp_path, stmt + "\n", "shm-discipline")
        assert "shm-discipline" in rules_found(run)

    def test_attribute_use_flagged(self, tmp_path):
        run = lint_source(tmp_path, """\
            import multiprocessing as mp

            def grab(name):
                return mp.shared_memory.SharedMemory(name=name)
            """, "shm-discipline")
        assert "shm-discipline" in rules_found(run)

    def test_manager_module_allowed(self, tmp_path):
        run = lint_source(tmp_path, """\
            from multiprocessing import shared_memory

            def publish(name, size):
                return shared_memory.SharedMemory(name, create=True, size=size)
            """, "shm-discipline", rel="repro/analysis/shm.py")
        assert run.clean


class TestProcessDiscipline:
    @pytest.mark.parametrize("stmt", [
        "from multiprocessing import Process",
        "from multiprocessing import get_context",
        "from multiprocessing import Pool, Manager",
    ])
    def test_spawn_imports_flagged(self, tmp_path, stmt):
        run = lint_source(tmp_path, stmt + "\n", "process-discipline")
        assert "process-discipline" in rules_found(run)

    def test_attribute_spawn_flagged(self, tmp_path):
        run = lint_source(tmp_path, """\
            import multiprocessing as mp

            def launch(fn):
                worker = mp.Process(target=fn)
                worker.start()
                return mp.get_context("fork")
            """, "process-discipline")
        assert len(run.findings) == 2

    def test_introspection_allowed(self, tmp_path):
        # shm.py's resource-tracker dance must stay clean: observing
        # process state is fine, creating processes is not.
        run = lint_source(tmp_path, """\
            import multiprocessing

            def tracked():
                if multiprocessing.get_start_method(allow_none=True) != "fork":
                    from multiprocessing import resource_tracker
                    return resource_tracker
                return multiprocessing.current_process().daemon
            """, "process-discipline")
        assert run.clean

    def test_executor_module_allowed(self, tmp_path):
        run = lint_source(tmp_path, """\
            import multiprocessing

            def spawn(fn):
                context = multiprocessing.get_context("fork")
                return context.Process(target=fn, daemon=True)
            """, "process-discipline", rel="repro/core/executor.py")
        assert run.clean


class TestEnvDiscipline:
    def test_environ_and_getenv_flagged(self, tmp_path):
        run = lint_source(tmp_path, """\
            import os
            a = os.environ["HOME"]
            b = os.getenv("SHELL")
            """, "env-discipline")
        assert len(run.findings) == 2

    def test_from_import_flagged(self, tmp_path):
        run = lint_source(tmp_path, "from os import environ\n",
                          "env-discipline")
        assert rules_found(run) == ["env-discipline"]

    def test_accessor_module_allowed(self, tmp_path):
        run = lint_source(tmp_path, """\
            import os

            def read_env(name, default=None):
                return os.environ.get(name, default)
            """, "env-discipline", rel="repro/_env.py")
        assert run.clean


class TestWorkerCapture:
    def test_module_cache_mutated_in_function_flagged(self, tmp_path):
        run = lint_source(tmp_path, """\
            _CACHE = {}

            def put(key, value):
                _CACHE[key] = value
            """, "worker-capture")
        assert rules_found(run) == ["worker-capture"]
        assert run.findings[0].line == 1
        assert "_CACHE" in run.findings[0].message

    def test_global_rebind_flagged(self, tmp_path):
        run = lint_source(tmp_path, """\
            _INITIALISED = False

            def init():
                global _INITIALISED
                _INITIALISED = True
            """, "worker-capture")
        assert rules_found(run) == ["worker-capture"]

    def test_mutator_methods_flagged(self, tmp_path):
        run = lint_source(tmp_path, """\
            from collections import Counter

            _ARRIVALS = Counter()

            def bump(site):
                _ARRIVALS.update([site])
            """, "worker-capture")
        assert rules_found(run) == ["worker-capture"]

    def test_read_only_and_constants_clean(self, tmp_path):
        run = lint_source(tmp_path, """\
            _TABLE = {}
            _NAMES = ("a", "b")

            def get(key):
                return _TABLE.get(key)

            def local_state():
                cache = {}
                cache["x"] = 1
                return cache
            """, "worker-capture")
        assert run.clean

    def test_justified_suppression_silences(self, tmp_path):
        run = lint_source(tmp_path, """\
            # repro-lint: disable=worker-capture -- import-time registry,
            # rebuilt identically in every process.
            _RULES = {}

            def register(name, cls):
                _RULES[name] = cls
            """, "worker-capture")
        assert run.clean
        assert len(run.suppressed) == 1

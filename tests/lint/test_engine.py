"""Engine behaviour: suppressions, baseline, registry, reporters."""

import json
import textwrap

import pytest

from repro.errors import LintBaselineError, LintRuleError, LintUsageError
from repro.lint import (
    SUPPRESSION_RULE,
    Finding,
    LintRule,
    fingerprint,
    lint_paths,
    load_baseline,
    register_rule,
    registered_rules,
    rule_class,
    write_baseline,
)
from repro.lint.registry import _RULES
from repro.lint.report import render_human, render_json

VIOLATION = """\
def f(x):
    raise ValueError(x)
"""


def write(tmp_path, source, name="mod.py"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source))
    return path


class TestSuppressions:
    def test_trailing_justified_directive_silences_own_line(self, tmp_path):
        path = write(tmp_path, """\
            def f(x):
                raise ValueError(x)  # repro-lint: disable=error-taxonomy -- doc example
            """)
        run = lint_paths([path], select=["error-taxonomy"], root=tmp_path)
        assert run.clean
        assert len(run.suppressed) == 1

    def test_standalone_directive_applies_to_next_code_line(self, tmp_path):
        path = write(tmp_path, """\
            def f(x):
                # repro-lint: disable=error-taxonomy -- continuation lines
                # below extend this justification.
                raise ValueError(x)
            """)
        run = lint_paths([path], select=["error-taxonomy"], root=tmp_path)
        assert run.clean and len(run.suppressed) == 1

    def test_unjustified_directive_is_itself_reported(self, tmp_path):
        path = write(tmp_path, """\
            def f(x):
                raise ValueError(x)  # repro-lint: disable=error-taxonomy
            """)
        run = lint_paths([path], select=["error-taxonomy"], root=tmp_path)
        rules = {f.rule for f in run.findings}
        # The violation stays active AND the naked directive is flagged.
        assert rules == {"error-taxonomy", SUPPRESSION_RULE}

    def test_suppression_finding_cannot_be_suppressed(self, tmp_path):
        path = write(tmp_path, """\
            def f(x):
                raise ValueError(x)  # repro-lint: disable=error-taxonomy,suppression-justification
            """)
        run = lint_paths([path], select=["error-taxonomy"], root=tmp_path)
        assert any(f.rule == SUPPRESSION_RULE for f in run.findings)

    def test_star_disables_every_rule_on_the_line(self, tmp_path):
        path = write(tmp_path, """\
            import os
            # repro-lint: disable=* -- demo line needs both violations
            x = os.environ.get("X", os.getenv("Y"))
            """)
        run = lint_paths([path], select=["env-discipline"], root=tmp_path)
        assert run.clean and len(run.suppressed) == 2

    def test_directive_names_only_its_rule(self, tmp_path):
        path = write(tmp_path, """\
            import os
            def f(x):
                # repro-lint: disable=error-taxonomy -- wrong rule named
                v = os.environ["X"]
            """)
        run = lint_paths([path], select=["env-discipline"], root=tmp_path)
        assert [f.rule for f in run.findings] == ["env-discipline"]


class TestBaseline:
    def test_baselined_findings_partition_separately(self, tmp_path):
        path = write(tmp_path, VIOLATION)
        first = lint_paths([path], select=["error-taxonomy"], root=tmp_path)
        assert len(first.findings) == 1
        seen = {}
        prints = [
            fingerprint(f, seen, "    raise ValueError(x)")
            for f in first.findings
        ]
        second = lint_paths(
            [path], select=["error-taxonomy"], baseline=prints,
            root=tmp_path,
        )
        assert second.clean
        assert len(second.baselined) == 1

    def test_fingerprints_survive_edits_above(self, tmp_path):
        path = write(tmp_path, VIOLATION)
        run = lint_paths([path], select=["error-taxonomy"], root=tmp_path)
        fp1 = fingerprint(run.findings[0], {}, "    raise ValueError(x)")
        shifted = write(
            tmp_path, "import sys\n\n\n" + VIOLATION, name="shifted.py"
        )
        run2 = lint_paths(
            [shifted], select=["error-taxonomy"], root=tmp_path
        )
        fp2 = fingerprint(run2.findings[0], {}, "    raise ValueError(x)")
        # Same rule + stripped line text; only the path differs.
        assert fp1.split(":")[0] == fp2.split(":")[0]
        assert run.findings[0].line != run2.findings[0].line

    def test_identical_lines_get_distinct_fingerprints(self):
        seen = {}
        a = Finding("m.py", 2, 5, "error-taxonomy", "bare ValueError")
        b = Finding("m.py", 9, 5, "error-taxonomy", "bare ValueError")
        fp_a = fingerprint(a, seen, "raise ValueError(x)")
        fp_b = fingerprint(b, seen, "raise ValueError(x)")
        assert fp_a != fp_b

    def test_roundtrip(self, tmp_path):
        target = tmp_path / "baseline.json"
        write_baseline(target, ["rule:bbb", "rule:aaa"])
        assert load_baseline(target) == ["rule:aaa", "rule:bbb"]

    @pytest.mark.parametrize("payload", [
        "[]",
        '{"version": 2, "findings": []}',
        '{"version": 1, "findings": [1, 2]}',
        '{"version": 1}',
        "not json",
    ])
    def test_malformed_baseline_rejected(self, tmp_path, payload):
        target = tmp_path / "baseline.json"
        target.write_text(payload)
        with pytest.raises(LintBaselineError):
            load_baseline(target)


class TestUsageErrors:
    def test_non_python_path_rejected(self, tmp_path):
        target = tmp_path / "notes.txt"
        target.write_text("hello")
        with pytest.raises(LintUsageError, match="not a python file"):
            lint_paths([target], root=tmp_path)

    def test_empty_directory_rejected(self, tmp_path):
        with pytest.raises(LintUsageError, match="no python files"):
            lint_paths([tmp_path], root=tmp_path)

    def test_syntax_error_named_with_line(self, tmp_path):
        path = write(tmp_path, "def broken(:\n")
        with pytest.raises(LintUsageError, match="line 1"):
            lint_paths([path], root=tmp_path)

    def test_unknown_select_rule_rejected(self, tmp_path):
        path = write(tmp_path, "x = 1\n")
        with pytest.raises(LintRuleError, match="unknown lint rule"):
            lint_paths([path], select=["no-such-rule"], root=tmp_path)


class TestRegistry:
    def test_builtins_registered(self):
        names = {cls.name for cls in registered_rules()}
        assert names >= {
            "determinism", "set-order", "spec-purity", "error-taxonomy",
            "shm-discipline", "process-discipline", "env-discipline",
            "worker-capture",
        }

    def test_rule_class_lookup(self):
        assert rule_class("determinism").name == "determinism"

    def test_custom_rule_runs_via_select(self, tmp_path):
        @register_rule
        class NoPrintRule(LintRule):
            name = "test-no-print"
            description = "print() is for humans, not libraries"

            def check(self, module):
                import ast
                for node in ast.walk(module.tree):
                    if (
                        isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Name)
                        and node.func.id == "print"
                    ):
                        yield module.finding(
                            node, self.name, "print() call"
                        )

        try:
            path = write(tmp_path, "print('hi')\n")
            run = lint_paths(
                [path], select=["test-no-print"], root=tmp_path
            )
            assert [f.rule for f in run.findings] == ["test-no-print"]
        finally:
            _RULES.pop("test-no-print", None)

    def test_conflicting_name_rejected(self):
        class Impostor(LintRule):
            name = "determinism"
            description = "shadow"

            def check(self, module):
                return iter(())

        with pytest.raises(LintRuleError, match="already registered"):
            register_rule(Impostor)

    def test_nameless_rule_rejected(self):
        class Nameless(LintRule):
            description = "no name"

        with pytest.raises(LintRuleError, match="non-empty 'name'"):
            register_rule(Nameless)


class TestReporters:
    def _run(self, tmp_path):
        path = write(tmp_path, VIOLATION)
        return lint_paths([path], select=["error-taxonomy"], root=tmp_path)

    def test_human_report_has_location_and_summary(self, tmp_path):
        text = render_human(self._run(tmp_path))
        assert "mod.py:2:5: [error-taxonomy]" in text
        assert "1 finding (error-taxonomy=1) in 1 file" in text

    def test_human_report_clean_line(self, tmp_path):
        path = write(tmp_path, "x = 1\n")
        run = lint_paths([path], select=["error-taxonomy"], root=tmp_path)
        assert "clean: 1 file, 1 rule" in render_human(run)

    def test_json_report_parses(self, tmp_path):
        payload = json.loads(render_json(self._run(tmp_path)))
        assert payload["clean"] is False
        assert payload["findings"][0]["rule"] == "error-taxonomy"
        assert payload["findings"][0]["path"] == "mod.py"
        assert payload["stale_baseline"] == []

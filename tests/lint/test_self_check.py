"""The linter's own acceptance gates.

``src/repro`` must lint clean with the committed (empty) baseline, every
inline suppression in the tree must be justified, and a planted
unseeded-RNG fixture must be caught — proving a clean run means the
rules fired, not that they silently skipped everything.
"""

from pathlib import Path

from repro.lint import lint_paths, load_baseline

REPO = Path(__file__).resolve().parent.parent.parent
SRC = REPO / "src" / "repro"
FIXTURES = Path(__file__).resolve().parent / "fixtures"


class TestSelfCheck:
    def test_src_repro_lints_clean(self):
        run = lint_paths([SRC], root=REPO)
        assert run.clean, "\n".join(
            f"{f.location()}: [{f.rule}] {f.message}" for f in run.findings
        )

    def test_committed_baseline_is_empty(self):
        assert load_baseline(REPO / "lint-baseline.json") == []

    def test_every_suppression_in_tree_is_justified(self):
        # lint_paths reports unjustified directives as findings; a clean
        # run therefore implies every suppression carries its why.  Spot
        # check the partition too: the tree does use suppressions.
        run = lint_paths([SRC], root=REPO)
        assert run.suppressed, "expected justified suppressions in tree"
        assert all(
            f.rule != "suppression-justification" for f in run.findings
        )

    def test_planted_unseeded_rng_fixture_is_caught(self):
        run = lint_paths(
            [FIXTURES / "planted_unseeded_rng.py"],
            select=["determinism"],
            root=FIXTURES,
        )
        flagged = {f.message.split("(")[0].strip() for f in run.findings}
        assert len(run.findings) == 3, flagged
        messages = " ".join(f.message for f in run.findings)
        assert "numpy.random.rand" in messages
        assert "random.random" in messages
        assert "time.time" in messages

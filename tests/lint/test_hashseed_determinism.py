"""Cross-process key stability under differing ``PYTHONHASHSEED``.

The determinism/set-order lint rules exist to protect one concrete
contract: every cross-process key — ``point_key`` (the checkpoint-journal
key), ``SweepPoint.trace_key`` (the shared-memory manifest key), and the
journal file a resumed run reads — is a pure function of spec values,
never of a process's string-hash randomisation.  This test runs the same
derivation in two interpreters with different ``PYTHONHASHSEED`` values
and requires byte-identical output.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent.parent

DERIVE = """\
import json
import sys
from pathlib import Path

from repro.analysis.experiments import ExperimentSetup
from repro.analysis.sweep import CheckpointJournal, point_key, run_grid
from repro.model.config import tiny_config

cfg = tiny_config(
    rows_per_table=5_000, batch_size=8, lookups_per_table=2, num_tables=2
)
setup = ExperimentSetup(config=cfg, num_batches=4, seed=3)
points = [
    setup.point("hybrid", "random", 0.0, 0),
    setup.point("scratchpipe", "high", 0.05, 1),
    setup.point("static_cache", "low", 0.1, 2),
]

journal_path = Path(sys.argv[1]) / "journal.jsonl"
run_grid(points, workers=1, checkpoint=journal_path)

out = {
    "point_keys": [point_key(p) for p in points],
    "trace_keys": [repr(p.trace_key) for p in points],
    "journal_keys": sorted(CheckpointJournal(journal_path).load()),
}
print(json.dumps(out, sort_keys=True))
"""


def derive_keys(tmp_path, hashseed):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    env["PYTHONHASHSEED"] = hashseed
    workdir = tmp_path / f"seed-{hashseed}"
    workdir.mkdir()
    proc = subprocess.run(
        [sys.executable, "-c", DERIVE, str(workdir)],
        env=env, capture_output=True, text=True, timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


class TestHashSeedStability:
    def test_point_trace_and_journal_keys_identical(self, tmp_path):
        a = derive_keys(tmp_path, "0")
        b = derive_keys(tmp_path, "1")
        assert a == b
        payload = json.loads(a)
        # The journal holds exactly the grid's point keys — resuming
        # under any hash seed finds every completed point.
        assert payload["journal_keys"] == sorted(payload["point_keys"])
        assert len(set(payload["point_keys"])) == 3

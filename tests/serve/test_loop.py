"""Tests for the virtual-clock replay loop (repro.serve.loop)."""

import pytest

from repro.data.trace import make_dataset
from repro.hardware.spec import DEFAULT_HARDWARE
from repro.model.config import tiny_config
from repro.serve import (
    AdmissionRejectedError,
    ArrivalSpec,
    ServeSpec,
    format_serve_report,
    replay,
)
from repro.serve.loop import SERVE_STAGES
from repro.systems.base import InsufficientSteadyStateError
from repro.systems.scratchpipe_system import ScratchPipeSystem
from repro.systems.strawman_system import StrawmanSystem


@pytest.fixture
def cfg():
    return tiny_config(rows_per_table=300, batch_size=6, lookups_per_table=2,
                       num_tables=2)


@pytest.fixture
def system(cfg):
    return ScratchPipeSystem(cfg, DEFAULT_HARDWARE, 0.2)


@pytest.fixture
def trace(cfg):
    return make_dataset(cfg, "medium", seed=7, num_batches=24)


def _spec(rate, **kwargs):
    return ServeSpec(arrivals=ArrivalSpec(rate=rate), **kwargs)


class TestReplayBasics:
    def test_bit_identical_reruns(self, system, trace):
        spec = _spec(50.0)
        first = replay(system, trace, spec, warmup=4)
        second = replay(system, trace, spec, warmup=4)
        assert first == second

    def test_accounting_under_queue_policy(self, system, trace):
        report = replay(system, trace, _spec(50.0), warmup=4)
        assert report.offered == len(trace)
        assert report.admitted == report.offered  # queue admits everything
        assert report.rejected == 0
        assert report.completed == report.admitted
        assert report.measured == report.admitted - report.warmup

    def test_stage_axis_is_the_priced_pipeline(self, system, trace):
        report = replay(system, trace, _spec(50.0))
        assert tuple(report.stage_percentiles) == SERVE_STAGES
        assert SERVE_STAGES == ("plan", "collect", "exchange", "insert",
                                "train")

    def test_percentiles_are_ordered(self, system, trace):
        report = replay(system, trace, _spec(2000.0), warmup=4)
        p50, p95, p99 = report.end_to_end
        assert 0 < p50 <= p95 <= p99
        for percentiles in report.stage_percentiles.values():
            assert percentiles[0] <= percentiles[1] <= percentiles[2]

    def test_serve_argument_forms_agree(self, system, trace):
        arrivals = ArrivalSpec(rate=80.0)
        bare = replay(system, trace, arrivals)
        wrapped = replay(system, trace, ServeSpec(arrivals=arrivals))
        assert bare == wrapped
        assert replay(system, trace).offered == len(trace)  # all defaults

    def test_num_batches_prefix(self, system, trace):
        report = replay(system, trace, _spec(50.0), num_batches=10)
        assert report.offered == 10

    def test_input_validation(self, system, trace):
        with pytest.raises(ValueError, match="num_batches"):
            replay(system, trace, num_batches=0)
        with pytest.raises(ValueError, match="warmup"):
            replay(system, trace, warmup=-1)

    def test_non_streaming_system_is_a_type_error(self, cfg, trace):
        sequential = StrawmanSystem(cfg, DEFAULT_HARDWARE, 0.2)
        with pytest.raises(TypeError, match="stream cache statistics"):
            replay(sequential, trace)


class TestQueueing:
    def test_idle_traffic_sees_pure_service_time(self, system, trace):
        """At a trickle rate every batch finds an empty pipeline, so the
        end-to-end latency is exactly the summed stage residence."""
        report = replay(system, trace, _spec(0.01), warmup=0)
        stage_p50_sum = sum(p[0] for p in report.stage_percentiles.values())
        assert report.end_to_end[0] == pytest.approx(stage_p50_sum, rel=0.2)
        assert report.sla_violation_rate == 0.0

    def test_overload_inflates_latency(self, system, trace):
        idle = replay(system, trace, _spec(0.01), warmup=0)
        slammed = replay(system, trace, _spec(1e6), warmup=0)
        assert slammed.mean_latency > 2.0 * idle.mean_latency
        assert slammed.sla_violation_rate > 0.5

    def test_smaller_buffers_never_speed_things_up(self, system, trace):
        """Blocking-after-service monotonicity: shrinking the inter-stage
        buffers can only delay departures."""
        tight = replay(system, trace, _spec(1e6, queue_depth=1), warmup=0)
        roomy = replay(system, trace, _spec(1e6, queue_depth=8), warmup=0)
        for t, r in zip(tight.end_to_end, roomy.end_to_end):
            assert t >= r
        # And backpressure really engaged: with one buffer slot a batch
        # finishing Insert blocks in place until Train drains, so Insert
        # residence inflates relative to the roomy configuration.
        assert (tight.stage_percentiles["insert"][2]
                > roomy.stage_percentiles["insert"][2])


class TestAdmission:
    def test_reject_policy_drops_and_accounts(self, system, trace):
        report = replay(
            system, trace,
            _spec(1e6, admission="reject", admission_depth=2), warmup=0,
        )
        assert report.rejected > 0
        assert report.admitted + report.rejected == report.offered
        assert report.completed == report.admitted

    def test_queue_policy_never_rejects(self, system, trace):
        report = replay(system, trace, _spec(1e6), warmup=0)
        assert report.rejected == 0

    def test_rejection_caps_the_tail(self, system, trace):
        """Shedding load is the whole point: the reject policy's p99 sits
        below the unbounded queue's under the same overload."""
        queued = replay(system, trace, _spec(1e6), warmup=0)
        shed = replay(
            system, trace,
            _spec(1e6, admission="reject", admission_depth=2), warmup=0,
        )
        assert shed.end_to_end[2] < queued.end_to_end[2]

    def test_error_carries_context(self):
        err = AdmissionRejectedError(batch_index=7, arrival_s=1.25, depth=16)
        assert err.batch_index == 7
        assert err.arrival_s == 1.25
        assert err.depth == 16
        assert "batch 7" in str(err) and "16 waiting" in str(err)


class TestWarmupContract:
    def test_warmup_at_or_above_admitted_raises(self, system, trace):
        with pytest.raises(InsufficientSteadyStateError, match="warmup=10"):
            replay(system, trace, _spec(50.0), num_batches=10, warmup=10)

    def test_warmup_excludes_exactly_the_prefix(self, system, trace):
        report = replay(system, trace, _spec(50.0), warmup=6)
        assert report.measured == report.admitted - 6


class TestSla:
    def test_absolute_sla_respected(self, system, trace):
        report = replay(system, trace, _spec(50.0, sla_seconds=123.0))
        assert report.sla_seconds == 123.0
        assert report.sla_violation_rate == 0.0  # absurdly generous

    def test_derived_sla_scales_with_factor(self, system, trace):
        loose = replay(system, trace, _spec(50.0, sla_factor=6.0))
        tight = replay(system, trace, _spec(50.0, sla_factor=3.0))
        assert loose.sla_seconds == pytest.approx(2.0 * tight.sla_seconds)


class TestReportRendering:
    def test_format_renders_every_headline_number(self, system, trace):
        report = replay(system, trace, _spec(50.0), warmup=4)
        text = format_serve_report(report)
        for token in ("p50 ms", "p95 ms", "p99 ms", "end_to_end",
                      "SLA violations", "mean_latency ms", "warmup=4",
                      *SERVE_STAGES):
            assert token in text

"""Serve metric through the sweep runner: parallelism, checkpoint, codec."""

import json

import pytest

from repro.analysis.experiments import ExperimentSetup, serve_latency_grid
from repro.analysis.sweep import (
    CheckpointJournal,
    _decode_result,
    _encode_result,
    point_key,
    run_grid,
    run_point,
)
from repro.model.config import tiny_config
from repro.serve import ArrivalSpec, ServeReport, ServeSpec
from repro.testing.faults import FaultSpec, injected_faults


@pytest.fixture
def setup():
    cfg = tiny_config(
        rows_per_table=20_000, batch_size=8, lookups_per_table=2, num_tables=2
    )
    return ExperimentSetup(config=cfg, num_batches=10, seed=1)


def serve_grid(setup):
    points = []
    for rate in (5.0, 5000.0):
        for locality in ("random", "high"):
            points.append(
                setup.point(
                    "scratchpipe", locality, 0.05, 2, metric="serve",
                    arrivals=ArrivalSpec(rate=rate),
                )
            )
    return points


class TestPointValidation:
    def test_serve_metric_needs_arrivals(self, setup):
        with pytest.raises(ValueError, match="needs an arrival process"):
            setup.point("scratchpipe", "random", 0.05, 2, metric="serve")

    def test_arrivals_forbidden_on_scalar_metrics(self, setup):
        with pytest.raises(ValueError, match="only apply to the 'serve'"):
            setup.point("scratchpipe", "random", 0.05, 2,
                        metric="mean_latency", arrivals=ArrivalSpec())

    def test_serve_metric_is_scratchpipe_only(self, setup):
        with pytest.raises(ValueError, match="not defined for 'hybrid'"):
            setup.point("hybrid", "random", 0.0, 2, metric="serve",
                        arrivals=ArrivalSpec())

    def test_full_serve_spec_takes_precedence(self, setup):
        spec = ServeSpec(arrivals=ArrivalSpec(rate=7.0), queue_depth=2)
        point = setup.point("scratchpipe", "random", 0.05, 2, metric="serve",
                            arrivals=ArrivalSpec(rate=99.0), serve=spec)
        assert point.resolved_serve == spec


class TestExecution:
    def test_run_point_returns_a_report(self, setup):
        report = run_point(serve_grid(setup)[0])
        assert isinstance(report, ServeReport)
        assert report.measured == report.admitted - 2
        assert report.end_to_end[0] > 0

    def test_workers_bit_identical(self, setup, shm_leak_check):
        points = serve_grid(setup)
        serial = run_grid(points, workers=1)
        parallel = run_grid(points, workers=2)
        assert serial == parallel

    def test_rate_actually_changes_the_tail(self, setup):
        points = serve_grid(setup)
        idle, slammed = run_grid([points[0], points[2]], workers=1)
        assert slammed.end_to_end[2] > idle.end_to_end[2]


class TestCheckpoint:
    def test_report_codec_round_trips_exactly(self, setup):
        report = run_point(serve_grid(setup)[0])
        wire = json.loads(json.dumps(_encode_result(report)))
        assert _decode_result(wire) == report

    def test_resume_is_bit_identical(self, setup, tmp_path):
        points = serve_grid(setup)
        expected = run_grid(points, workers=1)
        journal_path = tmp_path / "serve.jsonl"
        run_grid(points, workers=1, checkpoint=journal_path)
        assert set(CheckpointJournal(journal_path).load()) == {
            point_key(p) for p in points
        }
        report = run_grid(points, workers=1, checkpoint=journal_path,
                          report=True)
        assert report.resumed == len(points)
        assert report.completed == 0
        assert report.results == expected

    def test_interrupted_run_resumes_identically(self, setup, tmp_path,
                                                 shm_leak_check):
        """PR 7's acceptance criterion holds for the serve metric too:
        interrupt mid-grid, resume, bit-identical reports."""
        points = serve_grid(setup)
        expected = run_grid(points, workers=1)
        journal_path = tmp_path / "serve.jsonl"
        with injected_faults(
            FaultSpec(site="sweep.point", mode="raise", after=2),
            state_dir=tmp_path / "faults",
        ):
            with pytest.raises(Exception, match="injected fault"):
                run_grid(points, workers=1, checkpoint=journal_path)
            assert len(CheckpointJournal(journal_path).load()) == 2
            report = run_grid(points, workers=1, checkpoint=journal_path,
                              report=True)
        assert report.resumed == 2
        assert report.results == expected


class TestServeLatencyGrid:
    def test_grid_axes_and_cell_types(self, setup):
        grid = serve_latency_grid(
            ArrivalSpec(rate=5.0),
            setup=setup,
            cache_fractions=(0.02, 0.05),
            rates=(5.0, 5000.0),
            locality="random",
        )
        assert set(grid) == {(0.02, 5.0), (0.02, 5000.0),
                             (0.05, 5.0), (0.05, 5000.0)}
        for (_, rate), report in grid.items():
            assert isinstance(report, ServeReport)
        # The rate axis is real: same fraction, higher rate, fatter tail.
        assert (grid[(0.05, 5000.0)].end_to_end[2]
                > grid[(0.05, 5.0)].end_to_end[2])

    def test_default_rate_axis_is_the_base_rate(self, setup):
        grid = serve_latency_grid(ArrivalSpec(rate=5.0), setup=setup,
                                  locality="random")
        assert set(grid) == {(0.02, 5.0)}

"""Tests for seeded arrival processes (repro.serve.arrivals).

Conformance follows the repo-wide generator contract: every seeded
process ships with a goodness-of-fit test (chi-squared + KS at
``alpha=1e-6``) against its configured model, plus a *power* check
proving the test would catch a mis-scaled rate.
"""

import pickle

import numpy as np
import pytest

from repro.data.conformance import chi_squared_gof, ks_gof
from repro.serve.arrivals import (
    ARRIVAL_KINDS,
    ArrivalSpec,
    ArrivalSpecError,
    ServeSpec,
    arrival_times,
    parse_arrivals,
    unit_gaps,
)

#: Bins for the probability-integral-transform conformance tests.
_BINS = 50


def _uniform_bins(samples: np.ndarray) -> np.ndarray:
    """Map Exp(1) samples onto integer bins of a uniform histogram."""
    u = 1.0 - np.exp(-samples)
    return np.minimum((u * _BINS).astype(np.int64), _BINS - 1)


class TestArrivalSpecValidation:
    def test_defaults_valid(self):
        spec = ArrivalSpec()
        assert spec.kind == "poisson"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"kind": "adversarial"},
            {"rate": 0.0},
            {"rate": -5.0},
            {"rate": float("inf")},
            {"kind": "bursty", "burst_factor": 0.5},
            {"kind": "bursty", "burst_period": 0},
            {"kind": "bursty", "burst_duration": 0},
            {"kind": "bursty", "burst_period": 4, "burst_duration": 5},
            {"kind": "diurnal", "amplitude": 1.0},
            {"kind": "diurnal", "amplitude": -0.1},
            {"kind": "diurnal", "diurnal_period": 1},
        ],
    )
    def test_bad_fields_raise_named_error(self, kwargs):
        with pytest.raises(ArrivalSpecError):
            ArrivalSpec(**kwargs)

    def test_error_is_a_value_error(self):
        with pytest.raises(ValueError):
            ArrivalSpec(rate=-1.0)

    def test_hashable_and_picklable(self):
        for kind in ARRIVAL_KINDS:
            spec = ArrivalSpec(kind=kind, rate=42.0)
            assert hash(spec) == hash(ArrivalSpec(kind=kind, rate=42.0))
            assert pickle.loads(pickle.dumps(spec)) == spec


class TestServeSpecValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"queue_depth": 0},
            {"admission_depth": 0},
            {"admission": "drop_all"},
            {"sla_seconds": 0.0},
            {"sla_factor": 0.0},
        ],
    )
    def test_bad_fields_raise_named_error(self, kwargs):
        with pytest.raises(ArrivalSpecError):
            ServeSpec(**kwargs)

    def test_hashable_and_picklable(self):
        spec = ServeSpec(arrivals=ArrivalSpec(rate=10.0), admission="reject")
        assert pickle.loads(pickle.dumps(spec)) == spec
        assert hash(spec) == hash(
            ServeSpec(arrivals=ArrivalSpec(rate=10.0), admission="reject")
        )


class TestParse:
    def test_poisson(self):
        assert parse_arrivals("poisson:250") == ArrivalSpec(
            kind="poisson", rate=250.0
        )

    def test_bursty_positional_fields(self):
        assert parse_arrivals("bursty:100:8:32:4") == ArrivalSpec(
            kind="bursty", rate=100.0, burst_factor=8.0, burst_period=32,
            burst_duration=4,
        )

    def test_diurnal_positional_fields(self):
        assert parse_arrivals("diurnal:100:0.25:128") == ArrivalSpec(
            kind="diurnal", rate=100.0, amplitude=0.25, diurnal_period=128
        )

    @pytest.mark.parametrize(
        "text",
        ["gaussian:10", "poisson", "poisson:abc", "poisson:10:3",
         "bursty:10:2:4:1:9", "diurnal:10:0.5:64:9", "bursty:-3"],
    )
    def test_bad_strings_raise(self, text):
        with pytest.raises(ArrivalSpecError):
            parse_arrivals(text)


class TestDeterminism:
    def test_same_seed_same_stream(self):
        assert np.array_equal(unit_gaps(3, 100), unit_gaps(3, 100))

    def test_different_seed_different_stream(self):
        assert not np.array_equal(unit_gaps(3, 100), unit_gaps(4, 100))

    @pytest.mark.parametrize("kind", ARRIVAL_KINDS)
    def test_prefix_property(self, kind):
        """The first k arrivals never depend on how many are generated."""
        spec = ArrivalSpec(kind=kind, rate=100.0)
        long = arrival_times(spec, seed=5, n=64)
        short = arrival_times(spec, seed=5, n=16)
        assert np.array_equal(long[:16], short)

    def test_times_strictly_increase(self):
        times = arrival_times(ArrivalSpec(rate=1000.0), seed=2, n=512)
        assert np.all(np.diff(times) > 0)

    def test_mean_gap_tracks_rate(self):
        times = arrival_times(ArrivalSpec(rate=200.0), seed=0, n=20_000)
        mean_gap = float(times[-1]) / 20_000
        assert mean_gap == pytest.approx(1.0 / 200.0, rel=0.05)


class TestConformance:
    def test_unit_gaps_are_exponential(self):
        bins = _uniform_bins(unit_gaps(11, 20_000))
        counts = np.bincount(bins, minlength=_BINS)
        probs = np.full(_BINS, 1.0 / _BINS)
        assert chi_squared_gof(counts, probs).ok
        assert ks_gof(bins, np.arange(1, _BINS + 1) / _BINS).ok

    @pytest.mark.parametrize("kind", ARRIVAL_KINDS)
    def test_rate_inversion_recovers_unit_exponential(self, kind):
        """Gaps times the per-index rate must be Exp(1) for every kind."""
        spec = ArrivalSpec(kind=kind, rate=300.0)
        n = 20_000
        times = arrival_times(spec, seed=9, n=n)
        gaps = np.diff(times, prepend=0.0)
        bins = _uniform_bins(gaps * spec.rates(np.arange(n)))
        assert ks_gof(bins, np.arange(1, _BINS + 1) / _BINS).ok

    def test_power_wrong_poisson_rate_fails_ks(self):
        """The test has teeth: a 30% rate mis-scale is rejected."""
        n = 20_000
        times = arrival_times(ArrivalSpec(rate=300.0), seed=9, n=n)
        gaps = np.diff(times, prepend=0.0)
        bins = _uniform_bins(gaps * 390.0)  # wrong rate: 1.3x
        assert not ks_gof(bins, np.arange(1, _BINS + 1) / _BINS).ok

    def test_bursty_bursts_are_actually_faster(self):
        spec = ArrivalSpec(kind="bursty", rate=100.0, burst_factor=10.0,
                           burst_period=16, burst_duration=8)
        n = 16_000
        times = arrival_times(spec, seed=1, n=n)
        gaps = np.diff(times, prepend=0.0)
        in_burst = (np.arange(n) % 16) < 8
        assert gaps[in_burst].mean() < 0.2 * gaps[~in_burst].mean()

"""Shared fixtures for the test suite: laptop-scale configs and traces."""

import numpy as np
import pytest

from repro.data.trace import SyntheticDataset, make_dataset
from repro.hardware.spec import DEFAULT_HARDWARE
from repro.model.config import ModelConfig, tiny_config


@pytest.fixture
def rng():
    """Deterministic RNG for tests."""
    return np.random.default_rng(1234)


@pytest.fixture
def tiny_cfg() -> ModelConfig:
    """Structurally complete, laptop-scale model config."""
    return tiny_config()


@pytest.fixture
def small_cfg() -> ModelConfig:
    """Slightly larger functional config exercising duplicates and misses."""
    return tiny_config(
        rows_per_table=400, batch_size=8, lookups_per_table=3, num_tables=2
    )


@pytest.fixture
def hardware():
    """Default (paper) hardware spec."""
    return DEFAULT_HARDWARE


@pytest.fixture
def small_dataset(small_cfg) -> SyntheticDataset:
    """Medium-locality functional dataset with dense features and labels."""
    return make_dataset(small_cfg, "medium", seed=7, num_batches=24, with_dense=True)


@pytest.fixture
def id_only_dataset(small_cfg) -> SyntheticDataset:
    """Medium-locality ID-only dataset for cache-behaviour tests."""
    return make_dataset(small_cfg, "medium", seed=7, num_batches=24)

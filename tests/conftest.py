"""Shared fixtures for the test suite: laptop-scale configs and traces."""

import os
import sys

import numpy as np
import pytest

from repro.data.trace import SyntheticDataset, make_dataset
from repro.hardware.spec import DEFAULT_HARDWARE
from repro.model.config import ModelConfig, tiny_config

_DEV_SHM = "/dev/shm"


def _shm_segments() -> set:
    """Names of the POSIX shared-memory segments currently alive."""
    try:
        return set(os.listdir(_DEV_SHM))
    except OSError:
        return set()


@pytest.fixture
def shm_leak_check():
    """Assert the test leaks no shared-memory segments.

    Snapshots ``/dev/shm`` before the test and fails if new ``psm_``
    segments (Python's ``multiprocessing.shared_memory`` prefix) survive
    it — the acceptance check for crash/mid-publish cleanup.  Skips where
    ``/dev/shm`` is unavailable (non-Linux).
    """
    if not (sys.platform.startswith("linux") and os.path.isdir(_DEV_SHM)):
        pytest.skip("shared-memory leak check requires /dev/shm")
    before = _shm_segments()
    yield
    leaked = {
        name
        for name in _shm_segments() - before
        if name.startswith("psm_")
    }
    assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"


@pytest.fixture
def rng():
    """Deterministic RNG for tests."""
    return np.random.default_rng(1234)


@pytest.fixture
def tiny_cfg() -> ModelConfig:
    """Structurally complete, laptop-scale model config."""
    return tiny_config()


@pytest.fixture
def small_cfg() -> ModelConfig:
    """Slightly larger functional config exercising duplicates and misses."""
    return tiny_config(
        rows_per_table=400, batch_size=8, lookups_per_table=3, num_tables=2
    )


@pytest.fixture
def hardware():
    """Default (paper) hardware spec."""
    return DEFAULT_HARDWARE


@pytest.fixture
def small_dataset(small_cfg) -> SyntheticDataset:
    """Medium-locality functional dataset with dense features and labels."""
    return make_dataset(small_cfg, "medium", seed=7, num_batches=24, with_dense=True)


@pytest.fixture
def id_only_dataset(small_cfg) -> SyntheticDataset:
    """Medium-locality ID-only dataset for cache-behaviour tests."""
    return make_dataset(small_cfg, "medium", seed=7, num_batches=24)

"""Smoke tests for the runnable examples.

The fast examples run end-to-end (their assertions double as integration
checks); the minute-scale sweeps are validated at the argument-parsing
level only, since the benchmark suite already exercises their code paths.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, argv=None):
    old_argv = sys.argv
    sys.argv = [name] + (argv or [])
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv


class TestFastExamples:
    def test_quickstart(self, capsys):
        run_example("quickstart.py")
        out = capsys.readouterr().out
        assert "bit-identical to sequential SGD:  True" in out
        assert "always-hit" in out

    def test_trace_replay(self, capsys):
        run_example("trace_replay.py")
        out = capsys.readouterr().out
        assert "trained 20 batches from the file" in out
        assert "hazards: none" in out

    def test_workload_analysis(self, capsys):
        run_example("workload_analysis.py", ["--locality", "high"])
        out = capsys.readouterr().out
        assert "single-use rows" in out
        assert "headroom" in out

    def test_real_trace_quickstart(self, capsys):
        run_example("real_trace_quickstart.py", ["--batches", "8"])
        out = capsys.readouterr().out
        assert "verified" in out
        assert "bit-identical to the TSV parse" in out
        assert "Plan-stage hit rate on the real trace" in out

    def test_drift_sweep(self, capsys):
        run_example("drift_sweep.py", ["--rates", "0", "64"])
        out = capsys.readouterr().out
        assert "hit rate vs hot-set drift rate" in out
        assert "Scenario matrix" in out
        assert "hit rate falls" in out

    def test_heterogeneous_caches(self, capsys):
        run_example("heterogeneous_caches.py", ["--rhos", "0", "0.5"])
        out = capsys.readouterr().out
        assert "per-table hit rates" in out
        assert "allocation knob works" in out

    def test_adagrad_training(self, capsys):
        run_example("adagrad_training.py")
        out = capsys.readouterr().out
        assert "weights bit-identical to reference:      True" in out
        assert "accumulators bit-identical to reference: True" in out

    def test_live_replay(self, capsys):
        run_example("live_replay.py", ["--batches", "16"])
        out = capsys.readouterr().out
        assert "p50 ms" in out and "p99 ms" in out
        assert "end_to_end" in out
        assert "replay deterministic (rerun identical): True" in out
        assert "load shedding bounds the tail" in out

    def test_locality_study(self, capsys):
        run_example("locality_study.py")
        out = capsys.readouterr().out
        assert "Criteo" in out and "Alibaba" in out
        assert "anchor points" in out

    def test_lint_custom_rule(self, capsys):
        from repro.lint.registry import _RULES

        # runpy re-executes the module, so drop any registration left by
        # an earlier run and clean up after: the demo rule must not leak
        # into the self-check tests, which run every registered rule.
        _RULES.pop("example-no-print", None)
        try:
            run_example("lint_custom_rule.py")
            out = capsys.readouterr().out
            assert "custom rule enforced:  True" in out
            assert "sim.py:5:9: [example-no-print]" in out
            assert "suppressed with justification" in out
        finally:
            _RULES.pop("example-no-print", None)


class TestExampleFilesPresent:
    @pytest.mark.parametrize("name", [
        "quickstart.py",
        "locality_study.py",
        "system_comparison.py",
        "cost_planner.py",
        "trace_replay.py",
        "pipeline_timeline.py",
        "adagrad_training.py",
        "workload_analysis.py",
        "heterogeneous_caches.py",
        "live_replay.py",
    ])
    def test_exists_and_has_docstring(self, name):
        path = EXAMPLES / name
        assert path.exists(), name
        text = path.read_text()
        assert '"""' in text.split("\n", 2)[-1] or text.startswith("#!"), name
        assert "def main()" in text, name

"""API-surface snapshot: accidental breaks of repro.api fail tier-1.

The snapshot pins (a) ``repro.api.__all__``, (b) the builtin registry
contents, and (c) that every advertised name actually imports.  Growing
the surface is a conscious act: update the snapshot in the same PR that
changes the API.
"""

import repro
import repro.api as api

EXPECTED_API = {
    # specs
    "CacheSpec",
    "InvalidSystemSpecError",
    "PipelineSpec",
    "ResolvedTableCache",
    "ScratchpadSpec",
    "SystemSpec",
    "format_cache_spec",
    "parse_cache_spec",
    "uniform_system_spec",
    # factory
    "as_system_spec",
    "build_system",
    # registry
    "POLICY_ENTRY_POINT_GROUP",
    "SYSTEM_ENTRY_POINT_GROUP",
    "RegistryError",
    "SystemEntry",
    "discover_plugins",
    "register_policy",
    "register_system",
    "registered_policies",
    "registered_systems",
    "system_entries",
    "system_entry",
}

EXPECTED_SYSTEMS = {
    "hybrid",
    "overlapped_hybrid",
    "multi_gpu",
    "multi_gpu_scratchpipe",
    "scratchpipe",
    "static_cache",
    "strawman",
}

EXPECTED_POLICIES = {"lru", "lfu", "random"}


def test_api_all_matches_snapshot():
    assert set(api.__all__) == EXPECTED_API


def test_every_advertised_name_importable():
    for name in api.__all__:
        assert getattr(api, name) is not None, name


def test_builtin_system_registry_snapshot():
    # >= rather than ==: a test module may have registered a plugin in
    # this process; the builtins must all be present under their names.
    registered = set(api.registered_systems())
    assert EXPECTED_SYSTEMS <= registered
    for name in EXPECTED_SYSTEMS:
        assert api.system_entry(name).cls.name == name


def test_builtin_policy_registry_snapshot():
    assert EXPECTED_POLICIES <= set(api.registered_policies())


def test_cache_requirements_snapshot():
    requires = {
        entry.name: entry.requires_cache
        for entry in api.system_entries()
        if entry.name in EXPECTED_SYSTEMS
    }
    assert requires == {
        "hybrid": False,
        "overlapped_hybrid": False,
        "multi_gpu": False,
        "multi_gpu_scratchpipe": True,
        "scratchpipe": True,
        "static_cache": True,
        "strawman": True,
    }


def test_top_level_reexports():
    """The repro package itself advertises the spec-driven door."""
    for name in ("SystemSpec", "CacheSpec", "build_system"):
        assert name in repro.__all__
        assert getattr(repro, name) is getattr(api, name)

"""Tests for the interconnect cost model (repro.hardware.interconnect)."""

import pytest

from repro.hardware.interconnect import Link
from repro.hardware.spec import LinkSpec


def make_link(full_duplex=True, bandwidth=10e9, latency=1e-6, efficiency=1.0):
    return Link(
        LinkSpec(
            name="test",
            bandwidth_per_direction=bandwidth,
            latency_s=latency,
            full_duplex=full_duplex,
            efficiency=efficiency,
        )
    )


class TestTransferTime:
    def test_zero_bytes_free(self):
        assert make_link().transfer_time(0) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            make_link().transfer_time(-5)

    def test_bandwidth_term(self):
        link = make_link(bandwidth=10e9, latency=0.0)
        assert link.transfer_time(10e9) == pytest.approx(1.0)

    def test_latency_added(self):
        link = make_link(latency=5e-6)
        assert link.transfer_time(1.0) == pytest.approx(5e-6, rel=1e-3)

    def test_efficiency_slows_transfer(self):
        fast = make_link(efficiency=1.0).transfer_time(1e9)
        slow = make_link(efficiency=0.5).transfer_time(1e9)
        assert slow == pytest.approx(2 * fast, rel=1e-3)


class TestExchangeTime:
    def test_full_duplex_is_max(self):
        link = make_link(full_duplex=True, latency=0.0)
        t = link.exchange_time(10e9, 5e9)
        assert t == pytest.approx(link.transfer_time(10e9))

    def test_half_duplex_is_sum(self):
        link = make_link(full_duplex=False, latency=0.0)
        t = link.exchange_time(10e9, 5e9)
        expected = link.transfer_time(10e9) + link.transfer_time(5e9)
        assert t == pytest.approx(expected)

    def test_one_sided_exchange(self):
        link = make_link()
        assert link.exchange_time(1e9, 0) == pytest.approx(link.transfer_time(1e9))


class TestCollectives:
    def test_single_gpu_is_free(self):
        link = make_link()
        assert link.allto_all_time(1e9, 1) == 0.0
        assert link.allreduce_time(1e9, 1) == 0.0

    def test_invalid_gpu_count(self):
        link = make_link()
        with pytest.raises(ValueError):
            link.allto_all_time(1e9, 0)
        with pytest.raises(ValueError):
            link.allreduce_time(1e9, 0)

    def test_alltoall_remote_fraction(self):
        link = make_link(latency=0.0)
        # With 4 GPUs, 3/4 of the payload crosses the link.
        assert link.allto_all_time(4e9, 4) == pytest.approx(
            link.transfer_time(3e9)
        )

    def test_allreduce_ring_volume(self):
        link = make_link(latency=0.0)
        # Ring all-reduce of N bytes moves 2*(g-1)/g * N per GPU.
        assert link.allreduce_time(8e9, 8) == pytest.approx(
            link.transfer_time(2 * 8e9 * 7 / 8)
        )

    def test_allreduce_grows_with_gpus(self):
        link = make_link(latency=0.0)
        assert link.allreduce_time(1e9, 8) > link.allreduce_time(1e9, 2)

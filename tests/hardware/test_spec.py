"""Tests for hardware specifications (repro.hardware.spec)."""

import dataclasses

import pytest

from repro.hardware.spec import (
    DEFAULT_HARDWARE,
    GB,
    GiB,
    P3_2XLARGE,
    P3_16XLARGE,
    ComputeSpec,
    HardwareSpec,
    LinkSpec,
    MemorySpec,
)


class TestMemorySpec:
    def test_paper_cpu_bandwidth(self):
        assert DEFAULT_HARDWARE.cpu_memory.peak_bandwidth == pytest.approx(76.8 * GB)

    def test_paper_gpu_bandwidth(self):
        assert DEFAULT_HARDWARE.gpu_memory.peak_bandwidth == pytest.approx(900.0 * GB)

    def test_paper_capacities(self):
        assert DEFAULT_HARDWARE.cpu_memory.capacity_bytes == 256 * GiB
        assert DEFAULT_HARDWARE.gpu_memory.capacity_bytes == 32 * GiB

    def test_random_bandwidth_below_sequential(self):
        for mem in (DEFAULT_HARDWARE.cpu_memory, DEFAULT_HARDWARE.gpu_memory):
            assert mem.random_bandwidth < mem.sequential_bandwidth

    def test_effective_bandwidths_positive(self):
        mem = DEFAULT_HARDWARE.cpu_memory
        assert mem.random_bandwidth > 0
        assert mem.sequential_bandwidth > 0

    def test_gpu_random_bandwidth_exceeds_cpu(self):
        # The whole premise of the paper: GPU memory is far faster for the
        # sparse embedding operations.
        ratio = (
            DEFAULT_HARDWARE.gpu_memory.random_bandwidth
            / DEFAULT_HARDWARE.cpu_memory.random_bandwidth
        )
        assert ratio > 10


class TestLinkSpec:
    def test_paper_pcie_bandwidth(self):
        assert DEFAULT_HARDWARE.pcie.bandwidth_per_direction == pytest.approx(16.0 * GB)

    def test_pcie_full_duplex(self):
        assert DEFAULT_HARDWARE.pcie.full_duplex

    def test_effective_below_nominal(self):
        link = DEFAULT_HARDWARE.pcie
        assert link.effective_bandwidth < link.bandwidth_per_direction

    def test_nvlink_faster_than_pcie(self):
        assert (
            DEFAULT_HARDWARE.nvlink.effective_bandwidth
            > DEFAULT_HARDWARE.pcie.effective_bandwidth
        )


class TestComputeSpec:
    def test_effective_flops(self):
        spec = ComputeSpec(name="x", peak_flops=10e12, mlp_efficiency=0.1,
                           kernel_launch_s=1e-6)
        assert spec.effective_flops == pytest.approx(1e12)

    def test_gpu_compute_faster_than_cpu(self):
        assert (
            DEFAULT_HARDWARE.gpu_compute.effective_flops
            > DEFAULT_HARDWARE.cpu_compute.effective_flops
        )


class TestHardwareSpec:
    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            DEFAULT_HARDWARE.stage_sync_s = 0.0

    def test_default_is_hardware_spec(self):
        assert isinstance(DEFAULT_HARDWARE, HardwareSpec)

    def test_power_active_exceeds_idle(self):
        power = DEFAULT_HARDWARE.power
        assert power.cpu_active_w > power.cpu_idle_w
        assert power.gpu_active_w > power.gpu_idle_w


class TestAwsInstances:
    def test_table1_prices(self):
        # Exactly the prices quoted in Table I.
        assert P3_2XLARGE.price_per_hour == pytest.approx(3.06)
        assert P3_16XLARGE.price_per_hour == pytest.approx(24.48)

    def test_gpu_counts(self):
        assert P3_2XLARGE.num_gpus == 1
        assert P3_16XLARGE.num_gpus == 8

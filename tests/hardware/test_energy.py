"""Tests for the energy model (repro.hardware.energy)."""

import pytest

from repro.hardware.energy import CPU, GPU, EnergyModel, EnergySlice
from repro.hardware.spec import DEFAULT_HARDWARE


@pytest.fixture
def model():
    return EnergyModel()


class TestEnergySlice:
    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            EnergySlice(seconds=-1.0, busy=(CPU,))

    def test_unknown_device_rejected(self):
        with pytest.raises(ValueError, match="unknown device"):
            EnergySlice(seconds=1.0, busy=("npu",))

    def test_empty_busy_allowed(self):
        EnergySlice(seconds=1.0, busy=())


class TestSliceEnergy:
    def test_idle_slice(self, model):
        power = DEFAULT_HARDWARE.power
        joules = model.slice_energy(EnergySlice(seconds=2.0, busy=()))
        assert joules == pytest.approx(2.0 * (power.cpu_idle_w + power.gpu_idle_w))

    def test_both_busy(self, model):
        power = DEFAULT_HARDWARE.power
        joules = model.slice_energy(EnergySlice(seconds=1.0, busy=(CPU, GPU)))
        assert joules == pytest.approx(power.cpu_active_w + power.gpu_active_w)

    def test_cpu_only(self, model):
        power = DEFAULT_HARDWARE.power
        joules = model.slice_energy(EnergySlice(seconds=1.0, busy=(CPU,)))
        assert joules == pytest.approx(power.cpu_active_w + power.gpu_idle_w)

    def test_busy_exceeds_idle(self, model):
        busy = model.slice_energy(EnergySlice(seconds=1.0, busy=(CPU, GPU)))
        idle = model.slice_energy(EnergySlice(seconds=1.0, busy=()))
        assert busy > idle


class TestAggregation:
    def test_total_energy_sums(self, model):
        slices = [
            EnergySlice(seconds=1.0, busy=(CPU,)),
            EnergySlice(seconds=2.0, busy=(GPU,)),
        ]
        total = model.total_energy(slices)
        assert total == pytest.approx(sum(model.slice_energy(s) for s in slices))

    def test_breakdown_keys(self, model):
        named = {
            "plan": EnergySlice(seconds=0.5, busy=(GPU,)),
            "collect": EnergySlice(seconds=1.5, busy=(CPU, GPU)),
        }
        out = model.breakdown(named)
        assert set(out) == {"plan", "collect"}
        assert out["collect"] > out["plan"]

    def test_faster_iteration_uses_less_energy(self, model):
        # The mechanism behind Figure 14: ScratchPipe's shorter iterations
        # translate directly into lower energy even with both devices busy.
        slow = model.total_energy([EnergySlice(seconds=0.150, busy=(CPU, GPU))])
        fast = model.total_energy([EnergySlice(seconds=0.040, busy=(CPU, GPU))])
        assert fast < slow / 3

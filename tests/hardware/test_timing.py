"""Tests for the per-primitive latency model (repro.hardware.timing)."""

import pytest

from repro.hardware.timing import CostModel, ID_BYTES
from repro.model.config import ModelConfig


@pytest.fixture
def cost():
    return CostModel()


class TestDeviceRouting:
    def test_unknown_device_rejected(self, cost):
        with pytest.raises(ValueError, match="unknown device"):
            cost.embedding_gather(10, "tpu")

    def test_gpu_gather_faster_than_cpu(self, cost):
        rows = 100_000
        assert cost.embedding_gather(rows, "gpu") < cost.embedding_gather(rows, "cpu")

    def test_gpu_scatter_faster_than_cpu(self, cost):
        rows = 100_000
        assert cost.gradient_scatter(rows, "gpu") < cost.gradient_scatter(rows, "cpu")


class TestEmbeddingPrimitives:
    def test_gather_scales_with_rows(self, cost):
        assert cost.embedding_gather(2000, "cpu") > cost.embedding_gather(1000, "cpu")

    def test_backward_is_sum_of_parts(self, cost):
        rows, unique = 10_000, 8_000
        total = cost.embedding_backward(rows, unique, "cpu")
        parts = (
            cost.gradient_duplicate(rows, "cpu")
            + cost.gradient_coalesce(rows, "cpu")
            + cost.gradient_scatter(unique, "cpu")
        )
        assert total == pytest.approx(parts)

    def test_zero_rows_free(self, cost):
        assert cost.embedding_gather(0, "cpu") == 0.0
        assert cost.gradient_scatter(0, "gpu") == 0.0

    def test_backward_heavier_than_forward(self, cost):
        # The paper: backpropagation (duplicate + coalesce + scatter) costs
        # more than the forward gather+reduce (Figure 5's breakdown).
        rows = 300_000
        forward = cost.embedding_gather(rows, "cpu") + cost.embedding_reduce(
            rows, "cpu"
        )
        backward = cost.embedding_backward(rows, rows, "cpu")
        assert backward > forward


class TestTransfers:
    def test_id_transfer_uses_id_bytes(self, cost):
        n = 1_000_000
        direct = cost.pcie.transfer_time(n * ID_BYTES)
        assert cost.id_transfer(n) == pytest.approx(direct)

    def test_row_exchange_full_duplex(self, cost):
        one_way = cost.row_transfer(10_000)
        both = cost.row_exchange(10_000, 10_000)
        assert both == pytest.approx(one_way)

    def test_pooled_transfer_positive(self, cost):
        assert cost.pooled_transfer() > 0


class TestCacheManagementPrimitives:
    def test_hitmap_query_scales(self, cost):
        assert cost.hitmap_query(2e6) > cost.hitmap_query(1e6)

    def test_cpu_table_read_dominates_gpu_fill(self, cost):
        # The Collect stage's CPU side is the bottleneck — the core premise
        # behind hiding it with pipelining.
        rows = 100_000
        assert cost.cpu_table_read(rows) > cost.cache_fill(rows) * 5


class TestDenseCost:
    def test_backward_is_double_forward(self, cost):
        assert cost.dense_backward("gpu") == pytest.approx(
            2.0 * cost.dense_forward("gpu")
        )

    def test_train_is_forward_plus_backward(self, cost):
        assert cost.dense_train("gpu") == pytest.approx(
            cost.dense_forward("gpu") + cost.dense_backward("gpu")
        )

    def test_gpu_dense_faster_than_cpu(self, cost):
        assert cost.dense_train("gpu") < cost.dense_train("cpu")

    def test_dense_time_in_paper_range(self, cost):
        # Table I's 8-GPU numbers (16-19 ms/iter) are dominated by the
        # dense segment; the calibrated model must land near that range.
        assert 0.010 < cost.dense_train("gpu") < 0.025


class TestFullScaleCalibration:
    """Assert the calibrated model lands in the paper's reported ranges."""

    def test_hybrid_iteration_scale(self, cost):
        cfg = cost.config
        rows = cfg.lookups_per_batch
        total = (
            cost.embedding_gather(rows, "cpu")
            + cost.embedding_reduce(rows, "cpu")
            + 2 * cost.pooled_transfer()
            + cost.dense_train("gpu")
            + cost.embedding_backward(rows, rows, "cpu")
        )
        # Figure 5: the hybrid baseline takes roughly 150-200 ms/iteration.
        assert 0.120 < total < 0.260

    def test_cpu_collect_of_full_miss_near_table1_random(self, cost):
        # Table I Random: 47.82 ms — dominated by collecting ~all lookups
        # from CPU memory.
        t = cost.cpu_table_read(cost.config.lookups_per_batch)
        assert 0.030 < t < 0.070


class TestConfigScaling:
    def test_larger_dim_costs_more(self):
        small = CostModel(config=ModelConfig(embedding_dim=64,
                                             bottom_mlp=(512, 256, 64)))
        large = CostModel(config=ModelConfig(embedding_dim=256,
                                             bottom_mlp=(512, 256, 256)))
        rows = 100_000
        assert large.embedding_gather(rows, "cpu") > small.embedding_gather(
            rows, "cpu"
        )

"""Tests for the memory-device cost model (repro.hardware.memory)."""

import pytest

from repro.hardware.memory import RANDOM, SEQUENTIAL, MemoryDevice
from repro.hardware.spec import MemorySpec


@pytest.fixture
def device():
    spec = MemorySpec(
        name="test",
        capacity_bytes=1 << 30,
        peak_bandwidth=100e9,
        random_access_efficiency=0.1,
        sequential_efficiency=0.5,
        access_latency_s=1e-6,
    )
    return MemoryDevice(spec)


class TestAccessTime:
    def test_zero_bytes_is_free(self, device):
        assert device.access_time(0) == 0.0
        assert device.read_modify_write_time(0) == 0.0

    def test_negative_bytes_rejected(self, device):
        with pytest.raises(ValueError):
            device.access_time(-1)
        with pytest.raises(ValueError):
            device.read_modify_write_time(-1)

    def test_random_access_time(self, device):
        # 10 GB/s effective random bandwidth.
        assert device.access_time(10e9, RANDOM) == pytest.approx(1.0 + 1e-6)

    def test_sequential_access_time(self, device):
        # 50 GB/s effective sequential bandwidth.
        assert device.access_time(50e9, SEQUENTIAL) == pytest.approx(1.0 + 1e-6)

    def test_random_slower_than_sequential(self, device):
        n = 1e9
        assert device.access_time(n, RANDOM) > device.access_time(n, SEQUENTIAL)

    def test_unknown_pattern_rejected(self, device):
        with pytest.raises(ValueError, match="unknown access pattern"):
            device.access_time(1.0, "strided")

    def test_linear_in_bytes(self, device):
        lat = device.spec.access_latency_s
        t1 = device.access_time(1e9) - lat
        t2 = device.access_time(2e9) - lat
        assert t2 == pytest.approx(2 * t1)

    def test_read_write_aliases(self, device):
        assert device.read_time(1e6) == device.access_time(1e6)
        assert device.write_time(1e6, SEQUENTIAL) == device.access_time(
            1e6, SEQUENTIAL
        )


class TestReadModifyWrite:
    def test_rmw_moves_payload_twice(self, device):
        lat = device.spec.access_latency_s
        single = device.access_time(1e9) - lat
        rmw = device.read_modify_write_time(1e9) - lat
        assert rmw == pytest.approx(2 * single)

    def test_rmw_charges_latency_once(self, device):
        tiny = device.read_modify_write_time(1.0)
        assert tiny == pytest.approx(device.spec.access_latency_s, rel=1e-3)


class TestScatteredWrite:
    def test_pattern_recognised(self):
        from repro.hardware.memory import SCATTERED_WRITE
        from repro.hardware.spec import DEFAULT_HARDWARE

        device = MemoryDevice(DEFAULT_HARDWARE.cpu_memory)
        assert device.access_time(1e9, SCATTERED_WRITE) > 0

    def test_between_random_and_sequential(self):
        # Write combining: scattered full-row writes beat dependent random
        # reads but cannot beat pure streaming.
        from repro.hardware.memory import SCATTERED_WRITE
        from repro.hardware.spec import DEFAULT_HARDWARE

        for spec in (DEFAULT_HARDWARE.cpu_memory, DEFAULT_HARDWARE.gpu_memory):
            device = MemoryDevice(spec)
            n = 1e8
            assert (
                device.access_time(n, SEQUENTIAL)
                < device.access_time(n, SCATTERED_WRITE)
                < device.access_time(n, RANDOM)
            )

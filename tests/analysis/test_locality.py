"""Tests for locality analysis (repro.analysis.locality)."""

import numpy as np
import pytest

from repro.analysis.locality import (
    access_count_curve,
    dataset_hit_rate_curves,
    empirical_access_counts,
    empirical_hit_rate,
    static_hit_rate_curve,
)
from repro.data.datasets import ALIBABA, CRITEO
from repro.data.distributions import UniformDistribution, ZipfDistribution
from repro.data.trace import make_dataset
from repro.model.config import tiny_config


class TestAccessCountCurve:
    def test_descending_for_power_law(self):
        dist = ZipfDistribution(num_rows=10_000, exponent=0.8)
        curve = access_count_curve(dist, total_accesses=10**6, n_points=100)
        assert np.all(np.diff(curve) <= 0)
        assert curve[0] > curve[-1] * 10

    def test_flat_for_uniform(self):
        dist = UniformDistribution(num_rows=10_000)
        curve = access_count_curve(dist, total_accesses=10**6, n_points=100)
        assert np.allclose(curve, curve[0])

    def test_invalid_total(self):
        with pytest.raises(ValueError):
            access_count_curve(UniformDistribution(10), total_accesses=0)


class TestHitRateCurves:
    def test_monotone_nondecreasing(self):
        fractions = np.linspace(0.01, 1.0, 20)
        curves = dataset_hit_rate_curves(fractions, num_rows=10**6)
        assert set(curves) == {"Alibaba", "Kaggle Anime", "MovieLens", "Criteo"}
        for curve in curves.values():
            assert np.all(np.diff(curve) >= -1e-12)
            assert curve[-1] == pytest.approx(1.0)

    def test_figure6_ordering(self):
        # At small cache sizes Criteo >> MovieLens/Anime >> Alibaba.
        fractions = [0.02]
        curves = dataset_hit_rate_curves(fractions, num_rows=10**7)
        assert curves["Criteo"][0] > curves["Kaggle Anime"][0]
        assert curves["Kaggle Anime"][0] > curves["MovieLens"][0]
        assert curves["MovieLens"][0] > curves["Alibaba"][0]

    def test_static_curve_matches_distribution(self):
        dist = CRITEO.distribution(10**6)
        curve = static_hit_rate_curve(dist, [0.02, 0.5])
        assert curve[0] == pytest.approx(dist.hit_rate(0.02))


class TestEmpirical:
    @pytest.fixture
    def cfg(self):
        return tiny_config(rows_per_table=5000, batch_size=64,
                           lookups_per_table=4, num_tables=1)

    def test_empirical_matches_analytic(self, cfg):
        dataset = make_dataset(cfg, "high", seed=1, num_batches=8)
        measured = empirical_hit_rate(dataset, 0.02, num_batches=8)
        expected = CRITEO.distribution(cfg.rows_per_table).hit_rate(0.02)
        assert measured == pytest.approx(expected, abs=0.08)

    def test_empirical_random_trace(self, cfg):
        dataset = make_dataset(cfg, "random", seed=1, num_batches=8)
        measured = empirical_hit_rate(dataset, 0.10, num_batches=8)
        assert measured == pytest.approx(0.10, abs=0.05)

    def test_fraction_validated(self, cfg):
        dataset = make_dataset(cfg, "random", seed=1, num_batches=2)
        with pytest.raises(ValueError):
            empirical_hit_rate(dataset, 1.5)

    def test_empirical_access_counts_sorted(self, cfg):
        dataset = make_dataset(cfg, "high", seed=1, num_batches=4)
        counts = empirical_access_counts(dataset, num_batches=4)
        assert np.all(np.diff(counts) <= 0)
        assert counts.sum() == 4 * cfg.batch_size * cfg.lookups_per_table

"""Tests for analytic-vs-simulated cross-validation (repro.analysis.validation)."""

import dataclasses

import pytest

from repro.analysis.validation import (
    ValidationReport,
    run_validation_suite,
    validate_capacity_bound,
    validate_random_dynamic_hit_rate,
    validate_static_hit_rate,
)
from repro.hardware.spec import DEFAULT_HARDWARE
from repro.model.config import ModelConfig


@pytest.fixture(scope="module")
def cfg():
    return ModelConfig(
        num_tables=2,
        rows_per_table=400_000,
        embedding_dim=32,
        lookups_per_table=4,
        batch_size=256,
        bottom_mlp=(64, 32),
        top_mlp=(64, 1),
    )


class TestValidationReport:
    def test_error_and_within(self):
        report = ValidationReport("x", predicted=0.5, measured=0.47)
        assert report.absolute_error == pytest.approx(0.03)
        assert report.within(0.05)
        assert not report.within(0.01)


class TestStaticHitRate:
    @pytest.mark.parametrize("locality", ["high", "medium", "low"])
    def test_analytic_matches_sampled(self, cfg, locality):
        report = validate_static_hit_rate(cfg, locality, 0.02)
        assert report.within(0.05), (locality, report)

    def test_random_trace(self, cfg):
        report = validate_static_hit_rate(cfg, "random", 0.10)
        assert report.within(0.03)


class TestDynamicHitRate:
    def test_random_trace_capacity_limited(self, cfg):
        report = validate_random_dynamic_hit_rate(
            cfg, 0.10, DEFAULT_HARDWARE
        )
        # The dynamic cache cannot exceed capacity on uniform traffic and
        # should approach it once warm.
        assert report.measured <= report.predicted + 0.03
        assert report.measured >= report.predicted - 0.06


class TestCapacityBound:
    @pytest.mark.parametrize("locality", ["random", "high"])
    def test_bound_dominates_live_set(self, cfg, locality):
        report = validate_capacity_bound(cfg, locality)
        assert report.measured <= report.predicted


class TestSuite:
    def test_all_reports_pass_tolerance(self, cfg):
        reports = run_validation_suite(cfg, DEFAULT_HARDWARE)
        assert len(reports) == 4
        for name, report in reports.items():
            if "hit rate" in name:
                assert report.within(0.08), (name, report)

"""Tests for report formatting (repro.analysis.report)."""

import pytest

from repro.analysis.report import banner, format_breakdown, format_series, format_table


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["a", "bbb"], [["x", "1"], ["yy", "22"]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a ")
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_cell_count_validated(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_non_string_cells(self):
        out = format_table(["n"], [[42], [3.5]])
        assert "42" in out and "3.5" in out


class TestFormatSeries:
    def test_pairs(self):
        out = format_series("hit", [2, 4], [0.5, 0.75], y_format="{:.2f}")
        assert out == "hit: 2=0.50, 4=0.75"

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            format_series("x", [1], [1.0, 2.0])


class TestFormatBreakdown:
    def test_includes_total(self):
        out = format_breakdown("hybrid", {"fwd": 0.010, "bwd": 0.020})
        assert "fwd=10.00ms" in out
        assert "total=30.00ms" in out


class TestBanner:
    def test_contains_title(self):
        out = banner("Figure 13")
        assert "Figure 13" in out
        assert "=" in out

"""File-backed sweep points: spec-only dispatch for real traces."""

import pickle

import pytest

from repro.analysis.experiments import ExperimentSetup
from repro.analysis.sweep import SweepPoint, run_grid
from repro.data.fetch import generate_sample_tsv
from repro.data.io import TraceFileSpec, compile_trace, sha256_file
from repro.data.scenarios import DriftSpec, ScenarioSpec
from repro.data.tsv import TsvTraceSource
from repro.hardware.spec import DEFAULT_HARDWARE
from repro.model.config import tiny_config


@pytest.fixture(scope="module")
def compiled_trace(tmp_path_factory):
    cfg = tiny_config(rows_per_table=400, batch_size=8, lookups_per_table=2,
                      num_tables=2)
    tmp = tmp_path_factory.mktemp("trace-sweep")
    tsv = generate_sample_tsv(tmp / "t.tsv", num_lines=200)
    source = TsvTraceSource(
        tsv, cfg, num_dense_columns=13,
    )
    path = compile_trace(source, tmp / "t.rtrc")
    spec = TraceFileSpec(
        path=str(path), sha256=sha256_file(path),
        batch_size=8, num_tables=2, lookups_per_table=2, rows_per_table=400,
    )
    return cfg, spec


def _points(cfg, spec, metric="mean_latency"):
    setup = ExperimentSetup(config=cfg, num_batches=12, trace_file=spec)
    return [
        setup.point(system, "trace", fraction, 4, metric)
        for system in ("static_cache", "scratchpipe")
        for fraction in (0.5, 0.8)
    ]


class TestFileBackedDispatch:
    def test_workers_bit_identical(self, compiled_trace):
        cfg, spec = compiled_trace
        serial = run_grid(_points(cfg, spec), workers=1)
        parallel = run_grid(_points(cfg, spec), workers=2)
        assert serial == parallel

    def test_point_pickles_small(self, compiled_trace):
        """The spec — never the trace — crosses the process boundary."""
        cfg, spec = compiled_trace
        for point in _points(cfg, spec):
            assert len(pickle.dumps(point)) < 4096

    def test_trace_key_distinguishes_files(self, compiled_trace):
        cfg, spec = compiled_trace
        setup = ExperimentSetup(config=cfg, num_batches=12, trace_file=spec)
        a = setup.point("scratchpipe", "trace", 0.5, 0)
        no_file = ExperimentSetup(config=cfg, num_batches=12)
        b = no_file.point("scratchpipe", "medium", 0.5, 0)
        assert a.trace_key != b.trace_key
        assert a.trace_key[-1] == spec

    def test_locality_label_does_not_fork_trace_key(self, compiled_trace):
        # The file is authoritative: different labels over one file must
        # share a shared-memory segment, not duplicate it.
        cfg, spec = compiled_trace
        setup = ExperimentSetup(config=cfg, num_batches=12, trace_file=spec)
        a = setup.point("scratchpipe", "trace", 0.5, 0)
        b = setup.point("scratchpipe", "high", 0.5, 0)
        assert a.trace_key == b.trace_key

    def test_scenario_combo_rejected(self, compiled_trace):
        cfg, spec = compiled_trace
        drifting = ScenarioSpec(drift=DriftSpec(rate=4.0))
        with pytest.raises(ValueError, match="scenario"):
            SweepPoint(
                system="scratchpipe", locality="trace", cache_fraction=0.5,
                seed=0, num_batches=12, config=cfg,
                hardware=DEFAULT_HARDWARE, scenario=drifting,
                trace_file=spec,
            )
        with pytest.raises(ValueError, match="scenario"):
            ExperimentSetup(config=cfg, scenario=drifting, trace_file=spec)

    def test_geometry_sweeps_reject_file_traces(self, compiled_trace):
        from repro.analysis.experiments import fig15a_dim_sensitivity

        cfg, spec = compiled_trace
        setup = ExperimentSetup(config=cfg, num_batches=12, trace_file=spec)
        with pytest.raises(ValueError, match="fixed geometry"):
            fig15a_dim_sensitivity(dims=(8,), base=setup)

    def test_stationary_scenario_allowed(self, compiled_trace):
        cfg, spec = compiled_trace
        setup = ExperimentSetup(
            config=cfg, num_batches=12, scenario=ScenarioSpec(),
            trace_file=spec,
        )
        assert len(setup.trace("trace")) == 12

"""Crash recovery, checkpoint/resume and shm-cleanup tests for run_grid.

The acceptance contract of the resilience layer:

* a grid whose worker is SIGKILLed mid-run completes with results
  bit-identical to the uninterrupted ``workers=1`` run;
* an interrupted checkpointed grid resumes to identical results;
* induced crashes and mid-publish failures leak no shared-memory
  segments (the ``shm_leak_check`` fixture).
"""

import json

import pytest

from repro.analysis import sweep
from repro.analysis.experiments import ExperimentSetup
from repro.analysis.sweep import (
    CheckpointJournal,
    GridReport,
    SweepGridError,
    SweepPointTimeoutError,
    SweepWorkerCrashError,
    _PublishedTraces,
    _decode_result,
    _encode_result,
    grid_options,
    point_key,
    run_grid,
    run_point,
)
from repro.model.config import tiny_config
from repro.testing.faults import FaultSpec, injected_faults, injection_count


@pytest.fixture
def setup():
    cfg = tiny_config(
        rows_per_table=20_000, batch_size=8, lookups_per_table=2, num_tables=2
    )
    return ExperimentSetup(config=cfg, num_batches=10, seed=1)


def small_grid(setup):
    points = []
    for locality in ("random", "high"):
        points.append(setup.point("hybrid", locality, 0.0, 0))
        points.append(setup.point("static_cache", locality, 0.05, 0))
        points.append(setup.point("strawman", locality, 0.05, 2))
        points.append(setup.point("scratchpipe", locality, 0.05, 2))
    return points


class FakeClock:
    """Clock/sleep pair for deterministic backoff-schedule tests."""

    def __init__(self):
        self.now = 0.0
        self.sleeps = []

    def clock(self):
        return self.now

    def sleep(self, seconds):
        self.sleeps.append(seconds)
        self.now += seconds


class TestCrashRecovery:
    def test_sigkilled_worker_matches_serial(self, setup, tmp_path,
                                             shm_leak_check):
        """The acceptance criterion: SIGKILL mid-grid, identical results."""
        points = small_grid(setup)
        expected = run_grid(points, workers=1)
        victim = points[3].label()
        with injected_faults(
            FaultSpec(site="sweep.point", mode="kill", match=victim),
            state_dir=tmp_path / "faults",
        ):
            report = run_grid(points, workers=2, report=True)
        assert injection_count(str(tmp_path / "faults")) == 1
        assert isinstance(report, GridReport)
        assert report.ok
        assert report.retries >= 1  # the victim (at least) was re-dispatched
        assert report.results == expected

    def test_raise_in_pipeline_stage_recovers(self, setup, tmp_path,
                                              shm_leak_check):
        """A fault *inside* a running evaluation is retried cleanly."""
        points = small_grid(setup)
        expected = run_grid(points, workers=1)
        with injected_faults(
            FaultSpec(site="pipeline.stage", mode="raise", match="plan:4"),
            state_dir=tmp_path / "faults",
        ):
            report = run_grid(points, workers=2, report=True)
        assert report.ok
        assert report.retries >= 1
        assert report.results == expected

    def test_repeated_failure_quarantines(self, setup, tmp_path):
        points = small_grid(setup)[:3]
        victim = points[1].label()
        fake = FakeClock()
        with injected_faults(
            FaultSpec(site="sweep.point", mode="raise", match=victim,
                      times=5),
            state_dir=tmp_path / "faults",
        ):
            with pytest.raises(SweepGridError) as excinfo:
                run_grid(points, workers=2, max_retries=1,
                         clock=fake.clock, sleep=fake.sleep)
        report = excinfo.value.report
        assert [f.index for f in report.failures] == [1]
        assert report.failures[0].error_type == "InjectedFaultError"
        assert report.failures[0].attempts == 2  # 1 try + 1 retry
        assert report.results[1] is None
        assert report.results[0] is not None and report.results[2] is not None
        assert victim in report.format()

    def test_backoff_schedule_is_deterministic(self, setup, tmp_path):
        """With jitter=0 the retry delays are exactly base * 2**k."""
        points = small_grid(setup)[:2]
        victim = points[0].label()
        fake = FakeClock()
        with injected_faults(
            FaultSpec(site="sweep.point", mode="raise", match=victim,
                      times=2),
            state_dir=tmp_path / "faults",
        ):
            report = run_grid(
                points, workers=2, report=True, max_retries=2,
                backoff_base=0.25, jitter=0.0,
                clock=fake.clock, sleep=fake.sleep,
            )
        assert report.ok
        assert report.retries == 2
        assert fake.sleeps == [0.25, 0.5]
        assert report.results == run_grid(points, workers=1)

    def test_stalled_point_times_out_and_quarantines(self, setup, tmp_path,
                                                     shm_leak_check):
        points = small_grid(setup)[:2]
        victim = points[0].label()
        expected_other = run_point(points[1])
        with injected_faults(
            FaultSpec(site="sweep.point", mode="stall", stall_s=60.0,
                      match=victim),
            state_dir=tmp_path / "faults",
        ):
            report = run_grid(
                points, workers=2, report=True, timeout=1.0, max_retries=0,
            )
        assert [f.index for f in report.failures] == [0]
        assert report.failures[0].error_type == "SweepPointTimeoutError"
        assert "per-point budget" in report.failures[0].message
        assert report.results[0] is None
        assert report.results[1] == expected_other

    def test_error_taxonomy(self):
        assert issubclass(SweepPointTimeoutError, sweep.SweepError)
        assert issubclass(SweepWorkerCrashError, sweep.SweepError)
        assert issubclass(SweepGridError, RuntimeError)


class TestCheckpointResume:
    def test_interrupted_serial_run_resumes_identically(self, setup,
                                                        tmp_path):
        """The acceptance criterion: interrupt, resume, identical output."""
        points = small_grid(setup)
        expected = run_grid(points, workers=1)
        journal_path = tmp_path / "grid.jsonl"
        with injected_faults(
            FaultSpec(site="sweep.point", mode="raise", after=3),
            state_dir=tmp_path / "faults",
        ):
            with pytest.raises(Exception, match="injected fault"):
                run_grid(points, workers=1, checkpoint=journal_path)
            # The journal holds exactly the points completed pre-interrupt.
            assert len(CheckpointJournal(journal_path).load()) == 3
            # The injection budget is spent; the resumed run is clean.
            report = run_grid(
                points, workers=1, checkpoint=journal_path, report=True
            )
        assert report.resumed == 3
        assert report.completed == len(points) - 3
        assert report.results == expected

    def test_parallel_resume_skips_journaled_points(self, setup, tmp_path,
                                                    monkeypatch):
        points = small_grid(setup)
        expected = run_grid(points, workers=1)
        journal_path = tmp_path / "grid.jsonl"
        assert run_grid(points, workers=2,
                        checkpoint=journal_path) == expected
        # A fully-journaled grid re-runs without computing anything.
        monkeypatch.setattr(
            sweep, "run_point",
            lambda point: pytest.fail("resume recomputed a journaled point"),
        )
        report = run_grid(points, workers=2, checkpoint=journal_path,
                          report=True)
        assert report.resumed == len(points)
        assert report.completed == 0
        assert report.results == expected

    def test_journal_keys_are_content_hashes(self, setup, tmp_path):
        points = small_grid(setup)[:2]
        journal_path = tmp_path / "grid.jsonl"
        run_grid(points, workers=1, checkpoint=journal_path)
        recorded = set(CheckpointJournal(journal_path).load())
        assert recorded == {point_key(p) for p in points}

    def test_journal_tolerates_truncated_tail(self, setup, tmp_path):
        points = small_grid(setup)[:3]
        expected = run_grid(points, workers=1)
        journal_path = tmp_path / "grid.jsonl"
        journal = CheckpointJournal(journal_path)
        journal.record(point_key(points[0]), expected[0])
        journal.close()
        with open(journal_path, "a", encoding="utf-8") as fh:
            fh.write('{"v":1,"key":"abc","resu')  # interrupt mid-append
        loaded = CheckpointJournal(journal_path).load()
        assert loaded == {point_key(points[0]): expected[0]}
        report = run_grid(points, workers=1, checkpoint=journal_path,
                          report=True)
        assert report.resumed == 1
        assert report.results == expected

    def test_every_metric_shape_round_trips(self, setup, tmp_path):
        """float / dict / tuple / AggregateCacheStats all journal exactly."""
        points = [
            setup.point("scratchpipe", "high", 0.05, 2, metric)
            for metric in ("mean_latency", "stage_means",
                           "per_table_hit_rates", "cache_stats", "hit_rate")
        ]
        expected = run_grid(points, workers=1)
        journal_path = tmp_path / "grid.jsonl"
        run_grid(points, workers=1, checkpoint=journal_path)
        report = run_grid(points, workers=1, checkpoint=journal_path,
                          report=True)
        assert report.resumed == len(points)
        assert report.results == expected
        for value in expected:
            encoded = json.loads(json.dumps(_encode_result(value)))
            assert _decode_result(encoded) == value

    def test_unjournalable_result_is_a_clear_error(self):
        with pytest.raises(TypeError, match="cannot journal"):
            _encode_result(object())

    def test_ambient_grid_options_reach_run_grid(self, setup, tmp_path):
        points = small_grid(setup)[:2]
        journal_path = tmp_path / "ambient.jsonl"
        with grid_options(checkpoint=journal_path):
            run_grid(points, workers=1)
        assert len(CheckpointJournal(journal_path).load()) == 2
        # Restored on exit: no journaling outside the block.
        journal_path.unlink()
        run_grid(points, workers=1)
        assert not journal_path.exists()


class TestShmCleanup:
    def test_mid_publish_failure_releases_segments(self, setup, monkeypatch,
                                                   shm_leak_check):
        """Satellite regression: a failure during trace publication used to
        orphan the segments created before it."""
        points = small_grid(setup)  # two localities -> two unique traces
        real = sweep._cached_trace
        calls = {"n": 0}

        def flaky(key):
            calls["n"] += 1
            if calls["n"] >= 2:
                raise RuntimeError("induced mid-publish failure")
            return real(key)

        flaky.cache_clear = real.cache_clear
        monkeypatch.setattr(sweep, "_cached_trace", flaky)
        with pytest.raises(RuntimeError, match="mid-publish"):
            run_grid(points, workers=2)
        assert calls["n"] >= 2  # the first segment really was published

    def test_release_survives_failing_segment(self):
        class Segment:
            def __init__(self, fail_close=False):
                self.fail_close = fail_close
                self.closed = False
                self.unlinked = False

            def close(self):
                if self.fail_close:
                    raise BufferError("memoryview still exported")
                self.closed = True

            def unlink(self):
                self.unlinked = True

        bad, good = Segment(fail_close=True), Segment()
        published = _PublishedTraces()
        published.segments.extend([bad, good])
        published.release()
        # The failing close neither aborted the loop nor skipped unlinks.
        assert bad.unlinked
        assert good.closed and good.unlinked
        assert published.segments == []

    def test_quarantined_grid_releases_segments(self, setup, tmp_path,
                                                shm_leak_check):
        points = small_grid(setup)[:2]
        fake = FakeClock()
        with injected_faults(
            FaultSpec(site="sweep.point", mode="raise",
                      match=points[0].label(), times=5),
            state_dir=tmp_path / "faults",
        ):
            with pytest.raises(SweepGridError):
                run_grid(points, workers=2, max_retries=0,
                         clock=fake.clock, sleep=fake.sleep)

"""Executor equivalence through the analysis stack (PR 10 satellite).

The determinism contract — ``overlapped`` is bit-identical to ``serial``
— is proven core-side in ``tests/core/test_executor.py``; here it is
pinned where users consume it: figure full dumps, sweep grids with
worker pools, and random (SystemSpec, ScenarioSpec) draws.  Also covers
the thread-pooled parent-side trace publication.
"""

import io
import contextlib
import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import sweep
from repro.analysis.experiments import (
    ExperimentSetup,
    fig12a_baseline_latency,
    fig13_speedup,
)
from repro.analysis.sweep import run_grid, run_point
from repro.api.specs import CacheSpec, PipelineSpec, SystemSpec
from repro.data.scenarios import ChurnSpec, DriftSpec, ScenarioSpec
from repro.errors import ExperimentConfigError, SweepConfigError
from repro.model.config import tiny_config


@pytest.fixture
def cfg():
    return tiny_config(
        rows_per_table=20_000, batch_size=8, lookups_per_table=2, num_tables=2
    )


@pytest.fixture(autouse=True)
def two_planners(monkeypatch):
    monkeypatch.setenv("REPRO_EXECUTOR_WORKERS", "2")


def setup_for(cfg, executor, scenario=None):
    return ExperimentSetup(
        config=cfg, num_batches=10, seed=2, scenario=scenario,
        executor=executor,
    )


class TestSetupExecutor:
    def test_unknown_executor_rejected_eagerly(self, cfg):
        with pytest.raises(ExperimentConfigError, match="warp-drive"):
            setup_for(cfg, "warp-drive")

    def test_nonserial_setup_attaches_spec(self, cfg):
        point = setup_for(cfg, "overlapped").point(
            "scratchpipe", "high", 0.05, 2
        )
        assert point.system_spec is not None
        assert point.system_spec.pipeline.executor == "overlapped"

    def test_serial_setup_keeps_specless_points(self, cfg):
        point = setup_for(cfg, "serial").point("scratchpipe", "high", 0.05, 2)
        assert point.system_spec is None

    def test_executor_overrides_given_spec(self, cfg):
        spec = SystemSpec(system="scratchpipe", cache=CacheSpec(fraction=0.05))
        point = setup_for(cfg, "overlapped").point(
            "scratchpipe", "high", 0.05, 2, system_spec=spec
        )
        assert point.system_spec.pipeline.executor == "overlapped"


class TestFigureDumps:
    def test_fig12a_full_dump_identical(self, cfg):
        dumps = {}
        for executor in ("serial", "overlapped"):
            out = fig12a_baseline_latency(
                setup_for(cfg, executor), cache_fractions=(0.02,)
            )
            dumps[executor] = json.dumps(out, sort_keys=True)
        assert dumps["overlapped"] == dumps["serial"]

    def test_fig13_full_dump_identical(self, cfg):
        dumps = {}
        for executor in ("serial", "overlapped"):
            points = fig13_speedup(
                setup_for(cfg, executor),
                cache_fractions=(0.05,),
                localities=("high",),
            )
            dumps[executor] = repr(points)
        assert dumps["overlapped"] == dumps["serial"]

    def test_fig13_cli_bytes_identical(self):
        from repro.cli import main

        def run(argv):
            buf = io.StringIO()
            with contextlib.redirect_stdout(buf):
                main(argv)
            return buf.getvalue()

        base = ["--batches", "8", "fig13", "--fractions", "0.02"]
        assert run(["--executor", "overlapped"] + base) == run(base)

    def test_cli_rejects_unknown_executor(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="invalid --executor"):
            main(["--executor", "warp-drive", "--batches", "8", "fig13"])


class TestOverlappedSweepCell:
    def test_workers2_overlapped_matches_serial_reference(self, cfg):
        """The satellite's acceptance cell: a workers=2 pool whose points
        themselves run the overlapped executor equals the workers=1
        serial-executor reference."""
        grids = {}
        for executor in ("serial", "overlapped"):
            setup = setup_for(cfg, executor)
            points = [
                setup.point("scratchpipe", locality, 0.05, 2,
                            metric=metric)
                for locality in ("random", "high")
                for metric in ("hit_rate", "cache_stats")
            ]
            grids[executor] = points
        reference = run_grid(grids["serial"], workers=1)
        assert run_grid(grids["overlapped"], workers=1) == reference
        assert run_grid(grids["overlapped"], workers=2) == reference


class TestRandomSpecProperty:
    @given(
        policy=st.sampled_from(["lru", "lfu", "random"]),
        fraction=st.sampled_from([0.03, 0.05]),
        future_window=st.sampled_from([1, 2, 3]),
        unique_cache=st.booleans(),
        process=st.sampled_from(["none", "drift", "churn"]),
        locality=st.sampled_from(["high", "medium"]),
    )
    @settings(max_examples=5, deadline=None)
    def test_overlapped_matches_serial_for_random_specs(
        self, policy, fraction, future_window, unique_cache, process, locality
    ):
        cfg = tiny_config(
            rows_per_table=20_000, batch_size=8, lookups_per_table=2,
            num_tables=2,
        )
        scenario = ScenarioSpec(
            drift=DriftSpec(rate=8.0) if process == "drift" else None,
            churn=ChurnSpec(hot_fraction=0.05, period=4)
            if process == "churn" else None,
        )
        results = {}
        for executor in ("serial", "overlapped"):
            spec = SystemSpec(
                system="scratchpipe",
                cache=CacheSpec(fraction=fraction, policy=policy),
                pipeline=PipelineSpec(
                    future_window=future_window,
                    unique_cache=unique_cache,
                    executor=executor,
                ),
            )
            setup = ExperimentSetup(
                config=cfg, num_batches=10, seed=4, scenario=scenario
            )
            point = setup.point(
                "scratchpipe", locality, fraction, 2,
                metric="cache_stats", system_spec=spec,
            )
            results[executor] = run_point(point)
        assert results["overlapped"] == results["serial"]


class TestThreadedPublication:
    def grid_points(self, cfg):
        points = []
        for scenario in (None, ScenarioSpec(drift=DriftSpec(rate=8.0))):
            setup = ExperimentSetup(
                config=cfg, num_batches=10, seed=1, scenario=scenario
            )
            for locality in ("random", "medium", "high"):
                points.append(
                    setup.point("scratchpipe", locality, 0.05, 2,
                                metric="hit_rate")
                )
        return points

    def test_threaded_publication_bit_identical(self, cfg, tmp_path,
                                                monkeypatch):
        """Segments published through the thread pool carry byte-identical
        traces, in the same deterministic point order."""
        monkeypatch.setenv(sweep.PUBLISH_THREADS_ENV, "3")
        points = self.grid_points(cfg)
        sweep._cached_trace.cache_clear()
        manifest, segments = {}, []
        try:
            sweep._publish_shared_traces(
                points, manifest, segments, skip_disk_cacheable=False
            )
            assert list(manifest) == [
                key for key in dict.fromkeys(p.trace_key for p in points)
            ]
            sweep._cached_trace.cache_clear()
            sweep._SHM_MANIFEST.update(manifest)
            for point in points:
                attached = sweep._attach_shared_trace(point.trace_key)
                reference = sweep._generate_trace(point.trace_key)
                for i in range(len(reference)):
                    assert np.array_equal(
                        attached.batch(i).sparse_ids,
                        reference.batch(i).sparse_ids,
                    )
        finally:
            sweep._SHM_MANIFEST.clear()
            for name in list(sweep._SHM_ATTACHED):
                sweep._SHM_ATTACHED.pop(name).close()
            sweep._cached_trace.cache_clear()
            for segment in segments:
                segment.close()
                segment.unlink()

    def test_grid_results_unchanged_under_threading(self, cfg, monkeypatch):
        points = self.grid_points(cfg)
        monkeypatch.setenv(sweep.PUBLISH_THREADS_ENV, "1")
        sweep._cached_trace.cache_clear()
        sequential = run_grid(points, workers=2)
        monkeypatch.setenv(sweep.PUBLISH_THREADS_ENV, "3")
        sweep._cached_trace.cache_clear()
        assert run_grid(points, workers=2) == sequential

    @pytest.mark.parametrize("raw", ["many", "0", "-2"])
    def test_thread_env_validated(self, cfg, monkeypatch, raw):
        monkeypatch.setenv(sweep.PUBLISH_THREADS_ENV, raw)
        with pytest.raises(SweepConfigError, match="REPRO_PUBLISH_THREADS"):
            sweep._publish_threads(4)

    def test_leak_free_publication(self, cfg, monkeypatch, shm_leak_check):
        monkeypatch.setenv(sweep.PUBLISH_THREADS_ENV, "3")
        sweep._cached_trace.cache_clear()
        run_grid(self.grid_points(cfg), workers=2)

"""Tests for the experiment entry points (repro.analysis.experiments).

Runs every figure/table generator at reduced scale and asserts the *shape*
properties the paper reports (orderings, monotonicity, ranges), keeping the
full-scale sweeps to the benchmark harness.
"""

import numpy as np
import pytest

from repro.analysis.experiments import (
    ExperimentSetup,
    batch_size_sensitivity,
    fig3_access_counts,
    fig5_breakdown,
    fig6_hit_rate,
    fig12a_baseline_latency,
    fig12b_scratchpipe_latency,
    fig13_speedup,
    fig14_energy,
    fig15a_dim_sensitivity,
    fig15b_lookup_sensitivity,
    overhead_vi_d,
    replacement_policy_sensitivity,
    table1_cost,
)
from repro.model.config import ModelConfig


@pytest.fixture(scope="module")
def setup():
    """Reduced-scale setup: same structure, ~100x less work.

    Sized so a 2% cache satisfies the Section VI-D sliding-window bound
    (0.02 * rows >= ~5x the per-batch unique IDs), and with the per-cycle
    sync overhead scaled down along with the workload so the reduced-scale
    run stays in the memory-bound regime the paper's shapes come from.
    """
    import dataclasses

    from repro.hardware.spec import DEFAULT_HARDWARE

    config = ModelConfig(
        num_tables=2,
        rows_per_table=1_200_000,
        embedding_dim=64,
        lookups_per_table=8,
        batch_size=512,
        bottom_mlp=(128, 64),
        top_mlp=(128, 64, 1),
    )
    hardware = dataclasses.replace(DEFAULT_HARDWARE, stage_sync_s=5e-5)
    return ExperimentSetup(config=config, hardware=hardware, num_batches=14)


class TestFig3:
    def test_curves_descend(self):
        curves = fig3_access_counts(num_rows=10**5, total_accesses=10**6,
                                    n_points=50)
        assert set(curves) == {"Alibaba", "Kaggle Anime", "MovieLens", "Criteo"}
        for curve in curves.values():
            assert np.all(np.diff(curve) <= 0)

    def test_criteo_steepest(self):
        curves = fig3_access_counts(num_rows=10**5, total_accesses=10**6,
                                    n_points=50)
        criteo_ratio = curves["Criteo"][0] / curves["Criteo"][-1]
        alibaba_ratio = curves["Alibaba"][0] / curves["Alibaba"][-1]
        assert criteo_ratio > alibaba_ratio


class TestFig5:
    def test_structure_and_caching_helps(self, setup):
        out = fig5_breakdown(setup, cache_fractions=(0.02,))
        assert set(out) == {"random", "low", "medium", "high"}
        for locality, designs in out.items():
            assert "hybrid" in designs and "static_2%" in designs
        # For high locality the static cache must cut CPU time noticeably.
        hybrid_cpu = (
            out["high"]["hybrid"]["cpu_embedding_forward"]
            + out["high"]["hybrid"]["cpu_embedding_backward"]
        )
        static_cpu = (
            out["high"]["static_2%"]["cpu_embedding_forward"]
            + out["high"]["static_2%"]["cpu_embedding_backward"]
        )
        assert static_cpu < hybrid_cpu


class TestFig6:
    def test_full_cache_always_hits(self):
        fractions, curves = fig6_hit_rate(cache_fractions=[0.02, 0.5, 1.0])
        for curve in curves.values():
            assert curve[-1] == pytest.approx(1.0)

    def test_criteo_knee(self):
        fractions, curves = fig6_hit_rate(cache_fractions=[0.02])
        assert curves["Criteo"][0] > 0.8


class TestFig12:
    def test_12a_static_reduces_cpu_share(self, setup):
        out = fig12a_baseline_latency(setup, cache_fractions=(0.02, 0.10))
        high = out["high"]
        total_0 = sum(high["0%"].values())
        total_10 = sum(high["10%"].values())
        assert total_10 < total_0

    def test_12b_stage_structure(self, setup):
        out = fig12b_scratchpipe_latency(setup, cache_fractions=(0.02,))
        stages = out["medium"]["2%"]
        assert set(stages) == {"plan", "collect", "exchange", "insert", "train"}
        assert all(v >= 0 for v in stages.values())

    def test_12b_collect_shrinks_with_locality(self, setup):
        out = fig12b_scratchpipe_latency(setup, cache_fractions=(0.02,))
        assert out["high"]["2%"]["collect"] < out["random"]["2%"]["collect"]


class TestFig13:
    def test_scratchpipe_always_fastest(self, setup):
        points = fig13_speedup(setup, cache_fractions=(0.02,))
        assert len(points) == 4
        for point in points:
            speedups = point.speedups()
            assert speedups["scratchpipe"] > speedups["strawman"] > 0
            assert speedups["scratchpipe"] > 1.0
            assert speedups["static_cache"] == 1.0

    def test_speedup_shrinks_with_locality(self, setup):
        points = {
            p.locality: p.speedups()["scratchpipe"]
            for p in fig13_speedup(setup, cache_fractions=(0.02,))
        }
        assert points["random"] > points["high"]


class TestFig14:
    def test_scratchpipe_uses_less_energy(self, setup):
        out = fig14_energy(setup)
        for locality, energies in out.items():
            assert energies["scratchpipe"] < energies["static_cache"]


class TestFig15:
    def test_dim_sensitivity_runs(self, setup):
        points = fig15a_dim_sensitivity(dims=(64, 128), base=setup)
        assert len(points) == 8
        assert all(p.speedups()["scratchpipe"] > 0.5 for p in points)

    def test_lookup_sensitivity_speedup_grows(self, setup):
        points = fig15b_lookup_sensitivity(lookups=(1, 8), base=setup)
        by_key = {p.locality: p.speedups()["scratchpipe"] for p in points}
        # More lookups -> heavier embedding traffic -> bigger win (Fig 15b).
        assert by_key["random/lookups=8"] > by_key["random/lookups=1"]


class TestSensitivityExtras:
    def test_replacement_policies_run(self, setup):
        out = replacement_policy_sensitivity(setup, cache_fraction=0.02,
                                             policies=("lru", "random"))
        for locality, results in out.items():
            assert set(results) == {"lru", "random"}
            assert all(v > 0 for v in results.values())

    def test_batch_size_sensitivity_runs(self, setup):
        points = batch_size_sensitivity(batch_sizes=(128, 256), base=setup)
        assert len(points) == 2


class TestTable1:
    def test_rows_and_savings(self, setup):
        rows = table1_cost(setup)
        assert len(rows) == 4
        for sp_row, mg_row in rows:
            assert sp_row.instance.name == "p3.2xlarge"
            assert mg_row.instance.name == "p3.16xlarge"
            # ScratchPipe must always be the cheaper option (Table I).
            assert sp_row.cost < mg_row.cost


class TestOverhead:
    def test_paper_bounds(self):
        out = overhead_vi_d()
        # Section VI-D: 960 MB worst-case Storage, < 4 GB total.
        assert out["storage_worst_case_bytes"] == pytest.approx(1.0066e9, rel=0.01)
        assert out["total_bytes"] < 4e9
        assert out["hitmap_bytes"] < 1e9


class TestMlpIntensity:
    def test_runs_and_positive(self, setup):
        from repro.analysis.experiments import mlp_intensity_sensitivity

        points = mlp_intensity_sensitivity(
            width_multipliers=(1, 2), base=setup
        )
        assert len(points) == 2
        for p in points:
            assert p.scratchpipe_s > 0
            assert p.speedups()["scratchpipe"] > 0.5

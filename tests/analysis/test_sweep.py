"""Tests for the parallel sweep grid runner (repro.analysis.sweep)."""

import pytest

from repro.analysis.experiments import ExperimentSetup
from repro.analysis.sweep import METRICS, SYSTEMS, SweepPoint, run_grid, run_point
from repro.model.config import tiny_config


@pytest.fixture
def setup():
    cfg = tiny_config(
        rows_per_table=20_000, batch_size=8, lookups_per_table=2, num_tables=2
    )
    return ExperimentSetup(config=cfg, num_batches=10, seed=1)


def small_grid(setup):
    points = []
    for locality in ("random", "high"):
        points.append(setup.point("hybrid", locality, 0.0, 0))
        points.append(setup.point("static_cache", locality, 0.05, 0))
        points.append(setup.point("strawman", locality, 0.05, 2))
        points.append(setup.point("scratchpipe", locality, 0.05, 2))
    return points


class TestValidation:
    def test_unknown_system_rejected(self, setup):
        with pytest.raises(ValueError, match="unknown system"):
            setup.point("warp_drive", "random", 0.05, 0)

    def test_unknown_metric_rejected(self, setup):
        with pytest.raises(ValueError, match="unknown metric"):
            setup.point("hybrid", "random", 0.0, 0, metric="p99")

    def test_zero_workers_rejected(self, setup):
        with pytest.raises(ValueError, match="workers"):
            run_grid(small_grid(setup), workers=0)

    def test_enums_cover_api(self):
        assert set(SYSTEMS) == {"hybrid", "static_cache", "strawman", "scratchpipe"}
        assert "mean_latency" in METRICS and "stage_means" in METRICS


class TestExecution:
    def test_run_point_metrics(self, setup):
        latency = run_point(setup.point("scratchpipe", "random", 0.05, 2))
        assert latency > 0
        stages = run_point(
            setup.point("scratchpipe", "random", 0.05, 2, "stage_means")
        )
        assert set(stages) >= {"plan", "collect", "train"}

    def test_grid_preserves_order(self, setup):
        points = small_grid(setup)
        results = run_grid(points, workers=1)
        assert len(results) == len(points)
        for point, value in zip(points, results):
            assert value == run_point(point)

    def test_parallel_matches_serial(self, setup):
        points = small_grid(setup)
        serial = run_grid(points, workers=1)
        parallel = run_grid(points, workers=2)
        assert serial == parallel

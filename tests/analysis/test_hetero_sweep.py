"""Spec-shipping dispatch for heterogeneous system grids.

PR 3 proved sweep workers receive *scenario* specs, never traces; this
extends the contract to *system* specs: a grid point carries a
``(SystemSpec, ScenarioSpec)`` pair, pickles small, and a heterogeneous
per-table cache grid runs through ``run_grid(workers>1)`` bit-identically
to the serial reference.
"""

import pickle

import pytest

from repro.analysis.experiments import (
    ExperimentSetup,
    default_heterogeneous_splits,
    heterogeneous_cache,
)
from repro.analysis.sweep import SweepPoint, run_grid, run_point
from repro.api import CacheSpec, SystemSpec, parse_cache_spec
from repro.data.scenarios import CorrelationSpec, ScenarioSpec
from repro.model.config import tiny_config


@pytest.fixture
def cfg():
    return tiny_config(
        rows_per_table=20_000, batch_size=16, lookups_per_table=4,
        num_tables=2,
    )


@pytest.fixture
def setup(cfg):
    return ExperimentSetup(config=cfg, num_batches=150, seed=1)


HETERO = SystemSpec(
    system="scratchpipe",
    cache=parse_cache_spec("table0=0.2,rest=0.05"),
)


def hetero_grid(setup):
    points = []
    for rho in (0.0, 0.5):
        scenario = ScenarioSpec(
            correlation=CorrelationSpec(rho=rho) if rho else None
        )
        point_setup = ExperimentSetup(
            config=setup.config, num_batches=setup.num_batches,
            seed=setup.seed, scenario=scenario,
        )
        for metric in ("hit_rate", "per_table_hit_rates", "mean_latency"):
            points.append(point_setup.point(
                "scratchpipe", "high", 0.05, 2, metric=metric,
                system_spec=HETERO,
            ))
    return points


class TestSpecPoints:
    def test_point_derives_system_from_spec(self, setup):
        point = setup.point("ignored", "high", 0.0, 2, system_spec=HETERO)
        assert point.system == "scratchpipe"
        assert point.resolved_system_spec is HETERO

    def test_mismatched_names_rejected(self, cfg, hardware):
        with pytest.raises(ValueError, match="spec"):
            SweepPoint(
                system="strawman", locality="high", cache_fraction=0.05,
                seed=1, num_batches=10, config=cfg, hardware=hardware,
                system_spec=HETERO,
            )

    def test_specless_point_synthesizes_uniform_spec(self, setup):
        point = setup.point("scratchpipe", "high", 0.05, 2,
                            policy_name="lfu")
        spec = point.resolved_system_spec
        assert spec.cache == CacheSpec(fraction=0.05, policy="lfu")

    def test_hybrid_synthesized_spec_is_cacheless(self, setup):
        spec = setup.point("hybrid", "high", 0.0, 0).resolved_system_spec
        assert spec.cache is None

    def test_hetero_points_pickle_small(self, setup):
        """The (SystemSpec, ScenarioSpec) pair keeps dispatch spec-sized."""
        for point in hetero_grid(setup):
            assert len(pickle.dumps(point)) < 4096

    def test_per_table_metric_scratchpipe_only(self, setup):
        with pytest.raises(ValueError, match="per_table_hit_rates"):
            setup.point("hybrid", "high", 0.0, 0,
                        metric="per_table_hit_rates")


class TestHeterogeneousGridDispatch:
    def test_parallel_matches_serial(self, setup):
        points = hetero_grid(setup)
        serial = run_grid(points, workers=1)
        parallel = run_grid(points, workers=2)
        assert serial == parallel

    def test_grid_results_are_per_spec(self, setup):
        """Heterogeneous and uniform specs at one grid point differ."""
        hetero_point = setup.point(
            "scratchpipe", "high", 0.0, 2, metric="per_table_hit_rates",
            system_spec=HETERO,
        )
        uniform_point = setup.point(
            "scratchpipe", "high", 0.0, 2, metric="per_table_hit_rates",
            system_spec=SystemSpec(system="scratchpipe",
                                   cache=CacheSpec(fraction=0.125)),
        )
        hetero_rates, uniform_rates = run_grid(
            [hetero_point, uniform_point], workers=1
        )
        assert len(hetero_rates) == setup.config.num_tables
        assert hetero_rates != uniform_rates

    def test_run_point_per_table_metric(self, setup):
        rates = run_point(setup.point(
            "scratchpipe", "high", 0.0, 2, metric="per_table_hit_rates",
            system_spec=HETERO,
        ))
        assert isinstance(rates, tuple)
        assert all(0.0 <= rate <= 1.0 for rate in rates)


class TestHeterogeneousCacheStudy:
    def splits(self):
        # Small enough that the 150-batch high-locality trace evicts.
        return {
            "uniform": CacheSpec(fraction=0.065),
            "hetero": parse_cache_spec("table0=0.1,rest=0.03"),
        }

    def test_study_shape(self, setup):
        out = heterogeneous_cache(
            setup, rhos=(0.0, 0.5), cache_specs=self.splits(),
            locality="high",
        )
        assert set(out) == {"uniform", "hetero"}
        for cells in out.values():
            assert set(cells) == {0.0, 0.5}
            for cell in cells.values():
                assert 0.0 <= cell["hit_rate"] <= 1.0
                assert len(cell["per_table"]) == setup.config.num_tables

    def test_study_parallel_matches_serial(self, setup):
        kwargs = dict(rhos=(0.0, 0.5), cache_specs=self.splits(),
                      locality="high")
        assert (heterogeneous_cache(setup, workers=1, **kwargs)
                == heterogeneous_cache(setup, workers=2, **kwargs))

    def test_default_splits_are_budget_matched(self):
        splits = default_heterogeneous_splits(num_tables=8)
        assert len(splits) == 2
        (uniform, hetero) = splits.values()
        uniform_total = 8 * uniform.fraction
        hetero_total = sum(
            hetero.table_spec(t).fraction for t in range(8)
        )
        assert uniform_total == pytest.approx(hetero_total)

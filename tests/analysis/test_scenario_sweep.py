"""Spec-shipping sweep tests: scenarios, shared memory, worker equivalence.

Extends the PR 2 oracle tests (workers>1 == workers=1, bit-identical) to
scenario-driven traces, and pins the new dispatch contract: what crosses
the process boundary is a few-hundred-byte spec — never a pickled trace —
and each unique trace is generated exactly once, in the parent, with
workers mapping shared memory.
"""

import os
import pickle

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import sweep
from repro.analysis.experiments import ExperimentSetup, fig13_speedup
from repro.analysis.sweep import SweepPoint, run_grid, run_point
from repro.data.scenarios import (
    BurstSpec,
    ChurnSpec,
    CorrelationSpec,
    DriftSpec,
    ScenarioSpec,
)
from repro.model.config import tiny_config


@pytest.fixture
def cfg():
    return tiny_config(
        rows_per_table=20_000, batch_size=8, lookups_per_table=2, num_tables=2
    )


def scenario_setup(cfg, spec):
    return ExperimentSetup(config=cfg, num_batches=10, seed=1, scenario=spec)


DRIFT = ScenarioSpec(drift=DriftSpec(rate=8.0))


class TestScenarioPoints:
    def test_point_carries_scenario(self, cfg):
        point = scenario_setup(cfg, DRIFT).point("scratchpipe", "high", 0.05, 2)
        assert point.scenario == DRIFT

    def test_trace_key_folds_locality_into_scenario(self, cfg):
        point = scenario_setup(cfg, DRIFT).point("scratchpipe", "high", 0.05, 2)
        *_, scenario, trace_file = point.trace_key
        assert scenario.locality == "high"
        assert scenario.drift == DRIFT.drift
        assert trace_file is None

    def test_hit_rate_metric_scratchpipe_only(self, cfg):
        setup = scenario_setup(cfg, None)
        with pytest.raises(ValueError, match="hit_rate"):
            setup.point("hybrid", "high", 0.0, 0, metric="hit_rate")

    def test_points_pickle_small(self, cfg):
        """Dispatch ships specs: a point is kilobytes, never a trace.

        10 batches x 2 tables x 8 x 2 lookups alone would be ~2.5 KB of
        int64 per trace at *this* toy scale and megabytes at paper scale;
        the descriptor must stay spec-sized regardless.
        """
        for spec in (None, DRIFT):
            point = scenario_setup(cfg, spec).point(
                "scratchpipe", "high", 0.05, 2
            )
            assert len(pickle.dumps(point)) < 4096

    def test_scenario_changes_the_result(self, cfg):
        stationary = run_point(
            scenario_setup(cfg, None).point(
                "scratchpipe", "high", 0.05, 2, metric="hit_rate"
            )
        )
        drifted = run_point(
            scenario_setup(cfg, DRIFT).point(
                "scratchpipe", "high", 0.05, 2, metric="hit_rate"
            )
        )
        # Fast drift destroys cross-batch reuse: the study the paper
        # motivates but could not previously express.
        assert drifted < stationary


class TestSharedMemoryDispatch:
    def grid(self, cfg):
        points = []
        for spec in (None, DRIFT):
            setup = scenario_setup(cfg, spec)
            for locality in ("random", "high"):
                points.append(setup.point("scratchpipe", locality, 0.05, 2))
                points.append(
                    setup.point(
                        "scratchpipe", locality, 0.05, 2, metric="hit_rate"
                    )
                )
        return points

    def test_parallel_matches_serial_under_scenarios(self, cfg):
        points = self.grid(cfg)
        assert run_grid(points, workers=1) == run_grid(points, workers=2)

    def test_each_trace_generated_once_in_parent(self, cfg, tmp_path,
                                                 monkeypatch):
        """Regeneration counting: pool start-up neither pickles traces nor
        regenerates them per worker — the parent generates each unique
        trace exactly once and publishes shared memory."""
        gen_dir = tmp_path / "gens"
        gen_dir.mkdir()
        monkeypatch.setenv(sweep.TRACE_GEN_LOG_ENV, str(gen_dir))
        sweep._cached_trace.cache_clear()
        points = self.grid(cfg)
        unique_keys = {p.trace_key for p in points}
        run_grid(points, workers=2)
        markers = os.listdir(gen_dir)
        assert len(markers) == len(unique_keys)
        parent = str(os.getpid())
        assert all(m.split("-")[1] == parent for m in markers)

    def test_workers_regenerate_without_shared_memory(self, cfg, tmp_path,
                                                      monkeypatch):
        """With an explicit on-disk cache the legacy path still works."""
        cache_dir = tmp_path / "cache"
        cache_dir.mkdir()
        monkeypatch.setenv(sweep.TRACE_CACHE_ENV, str(cache_dir))
        sweep._cached_trace.cache_clear()
        points = [
            scenario_setup(cfg, None).point("scratchpipe", "high", 0.05, 2),
            scenario_setup(cfg, None).point("scratchpipe", "random", 0.05, 2),
        ]
        serial = run_grid(points, workers=1)
        assert run_grid(points, workers=2) == serial
        assert any(p.suffix == ".npz" for p in cache_dir.iterdir())

    def test_disk_cache_still_publishes_scenario_traces(
        self, cfg, tmp_path, monkeypatch
    ):
        """Regression: an explicit REPRO_TRACE_CACHE must not disable
        shared memory for the scenario traces the disk cache cannot key —
        they would otherwise be regenerated per worker."""
        cache_dir = tmp_path / "cache"
        cache_dir.mkdir()
        gen_dir = tmp_path / "gens"
        gen_dir.mkdir()
        monkeypatch.setenv(sweep.TRACE_CACHE_ENV, str(cache_dir))
        monkeypatch.setenv(sweep.TRACE_GEN_LOG_ENV, str(gen_dir))
        sweep._cached_trace.cache_clear()
        points = [
            scenario_setup(cfg, DRIFT).point("scratchpipe", loc, 0.05, 2)
            for loc in ("random", "high")
        ]
        serial = run_grid(points, workers=1)
        serial_gens = len(os.listdir(gen_dir))
        assert run_grid(points, workers=2) == serial
        markers = os.listdir(gen_dir)
        # The parallel run added no generations anywhere: the parent's
        # memoised traces were published via shared memory and mapped.
        assert len(markers) == serial_gens
        parent = str(os.getpid())
        assert all(m.split("-")[1] == parent for m in markers)

    def test_shared_trace_attach_is_bit_identical(self, cfg):
        """A worker-side shm attachment reproduces the parent's trace."""
        from multiprocessing import shared_memory

        point = scenario_setup(cfg, DRIFT).point("scratchpipe", "high", 0.05, 2)
        key = point.trace_key
        manifest, segments = {}, []
        sweep._publish_shared_traces(
            [point], manifest, segments, skip_disk_cacheable=False
        )
        try:
            # Simulate a fresh worker: empty caches, manifest installed.
            sweep._cached_trace.cache_clear()
            sweep._SHM_MANIFEST.update(manifest)
            attached = sweep._attach_shared_trace(key)
            reference = sweep._generate_trace(key)
            assert len(attached) == len(reference)
            for i in range(len(attached)):
                assert np.array_equal(
                    attached.batch(i).sparse_ids,
                    reference.batch(i).sparse_ids,
                )
        finally:
            sweep._SHM_MANIFEST.clear()
            for name in list(sweep._SHM_ATTACHED):
                sweep._SHM_ATTACHED.pop(name).close()
            sweep._cached_trace.cache_clear()
            for segment in segments:
                segment.close()
                segment.unlink()


class TestWorkerEquivalenceProperty:
    @given(
        drift_rate=st.sampled_from([0.0, 2.0, 32.0]),
        process=st.sampled_from(["churn", "burst", "correlation", "none"]),
        locality=st.sampled_from(["high", "medium"]),
    )
    @settings(max_examples=4, deadline=None)
    def test_fig13_bit_identical_across_workers(
        self, drift_rate, process, locality
    ):
        """Figure outputs are bit-identical between workers=1 and
        workers>1 for arbitrary scenario-driven traces."""
        cfg = tiny_config(
            rows_per_table=20_000, batch_size=8, lookups_per_table=2,
            num_tables=2,
        )
        spec = ScenarioSpec(
            drift=DriftSpec(rate=drift_rate) if drift_rate else None,
            churn=ChurnSpec(hot_fraction=0.05, period=4)
            if process == "churn" else None,
            burst=BurstSpec(period=6, duration=2, share=0.4, rows=8)
            if process == "burst" else None,
            correlation=CorrelationSpec(rho=0.5)
            if process == "correlation" else None,
        )
        setup = ExperimentSetup(
            config=cfg, num_batches=10, seed=2, scenario=spec
        )
        serial = fig13_speedup(
            setup, cache_fractions=(0.05,), localities=(locality,), workers=1
        )
        parallel = fig13_speedup(
            setup, cache_fractions=(0.05,), localities=(locality,), workers=2
        )
        assert serial == parallel

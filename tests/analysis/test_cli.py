"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for command in ("fig6", "fig12b", "fig13", "fig14", "table1",
                        "overhead", "compare"):
            args = parser.parse_args([command])
            assert args.command == command
            assert callable(args.func)

    def test_fraction_arguments(self):
        args = build_parser().parse_args(
            ["fig13", "--fractions", "0.02", "0.1"]
        )
        assert args.fractions == [0.02, 0.1]

    def test_batches_argument(self):
        args = build_parser().parse_args(["--batches", "10", "overhead"])
        assert args.batches == 10


class TestCommands:
    def test_overhead_output(self, capsys):
        main(["overhead"])
        out = capsys.readouterr().out
        assert "Section VI-D" in out
        assert "storage_worst_case_bytes" in out

    def test_fig6_output(self, capsys):
        main(["fig6", "--points", "10"])
        out = capsys.readouterr().out
        assert "Criteo" in out
        assert "Alibaba" in out

    def test_compare_rejects_unknown_locality(self):
        with pytest.raises(SystemExit):
            main(["compare", "--locality", "extreme"])


class TestNewCommands:
    def test_validate_in_parser(self):
        args = build_parser().parse_args(["validate"])
        assert args.command == "validate"

    def test_timeline_in_parser(self):
        args = build_parser().parse_args(
            ["timeline", "--locality", "high", "--cache", "0.05"]
        )
        assert args.locality == "high"
        assert args.cache == 0.05

    def test_validate_output(self, capsys):
        main(["validate"])
        out = capsys.readouterr().out
        assert "predicted" in out and "measured" in out

    def test_timeline_rejects_unknown_locality(self):
        with pytest.raises(SystemExit):
            main(["timeline", "--locality", "nope"])

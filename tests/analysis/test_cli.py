"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for command in ("fig6", "fig12b", "fig13", "fig14", "table1",
                        "overhead", "compare"):
            args = parser.parse_args([command])
            assert args.command == command
            assert callable(args.func)

    def test_fraction_arguments(self):
        args = build_parser().parse_args(
            ["fig13", "--fractions", "0.02", "0.1"]
        )
        assert args.fractions == [0.02, 0.1]

    def test_batches_argument(self):
        args = build_parser().parse_args(["--batches", "10", "overhead"])
        assert args.batches == 10


class TestCommands:
    def test_overhead_output(self, capsys):
        main(["overhead"])
        out = capsys.readouterr().out
        assert "Section VI-D" in out
        assert "storage_worst_case_bytes" in out

    def test_fig6_output(self, capsys):
        main(["fig6", "--points", "10"])
        out = capsys.readouterr().out
        assert "Criteo" in out
        assert "Alibaba" in out

    def test_compare_rejects_unknown_locality(self):
        with pytest.raises(SystemExit):
            main(["compare", "--locality", "extreme"])


class TestSpecFlags:
    def test_systems_listing(self, capsys):
        main(["systems"])
        out = capsys.readouterr().out
        assert "scratchpipe" in out and "static_cache" in out
        assert "lru" in out and "random" in out

    def test_cache_spec_on_compare(self, capsys):
        main(["--batches", "8", "--cache-spec", "table0=0.2,rest=0.05",
              "compare", "--locality", "medium"])
        out = capsys.readouterr().out
        assert "table0=0.2" in out
        assert "scratchpipe" in out

    def test_system_json_adds_compare_row(self, capsys):
        import json

        spec = json.dumps({
            "system": "strawman",
            "cache": {"fraction": 0.05, "policy": "random"},
        })
        main(["--batches", "8", "--system", spec, "compare"])
        out = capsys.readouterr().out
        assert "custom (strawman)" in out

    def test_bad_cache_spec_is_clean_error(self):
        with pytest.raises(SystemExit, match="invalid --cache-spec"):
            main(["--cache-spec", "nonsense=,", "compare"])

    def test_cacheless_system_row_on_compare(self, capsys):
        main(["--batches", "8", "--system", "multi_gpu", "compare"])
        out = capsys.readouterr().out
        assert "custom (multi_gpu)" in out

    def test_cache_spec_rejected_for_cacheless_system(self):
        with pytest.raises(SystemExit, match="takes no cache"):
            main(["--batches", "8", "--system", "hybrid",
                  "--cache-spec", "0.05", "compare"])

    def test_unknown_system_is_clean_error(self):
        with pytest.raises(SystemExit, match="invalid system spec"):
            main(["--batches", "8", "--system", "warp_drive", "compare"])

    def test_flags_rejected_where_not_applicable(self):
        with pytest.raises(SystemExit, match="--system does not apply"):
            main(["--system", "scratchpipe", "fig13"])
        with pytest.raises(SystemExit, match="--cache-spec does not apply"):
            main(["--cache-spec", "0.02", "fig13"])

    def test_hetero_in_parser(self):
        args = build_parser().parse_args(
            ["hetero", "--rhos", "0", "0.5", "--splits", "0.02"]
        )
        assert args.command == "hetero"
        assert args.rhos == [0.0, 0.5]


class TestNewCommands:
    def test_validate_in_parser(self):
        args = build_parser().parse_args(["validate"])
        assert args.command == "validate"

    def test_timeline_in_parser(self):
        args = build_parser().parse_args(
            ["timeline", "--locality", "high", "--cache", "0.05"]
        )
        assert args.locality == "high"
        assert args.cache == 0.05

    def test_validate_output(self, capsys):
        main(["validate"])
        out = capsys.readouterr().out
        assert "predicted" in out and "measured" in out

    def test_timeline_rejects_unknown_locality(self):
        with pytest.raises(SystemExit):
            main(["timeline", "--locality", "nope"])


class TestRealTraceFlow:
    """The fetch -> ingest -> --trace quickstart, end to end."""

    @pytest.fixture
    def sample_tsv(self, tmp_path):
        from repro.data.fetch import generate_sample_tsv

        # A short regeneration of the checked-in fixture: same layout,
        # fewer lines, so CLI runs stay fast.
        return generate_sample_tsv(tmp_path / "sample.tsv", num_lines=600)

    @pytest.fixture
    def compiled(self, sample_tsv, tmp_path, capsys):
        out = tmp_path / "sample.rtrc"
        main(["ingest", str(sample_tsv), "--out", str(out)])
        capsys.readouterr()
        return out

    def test_trace_listing(self, capsys):
        main(["trace"])
        out = capsys.readouterr().out
        assert "criteo-sample" in out and "criteo-kaggle" in out

    def test_trace_info_verifies_sample(self, capsys):
        main(["trace", "criteo-sample"])
        out = capsys.readouterr().out
        assert "verified" in out
        assert "8 tables x 128 batch x 3 lookups" in out
        assert "15" in out  # batches

    def test_ingest_prints_sha_and_geometry(self, sample_tsv, tmp_path,
                                            capsys):
        out_path = tmp_path / "out.rtrc"
        main(["ingest", str(sample_tsv), "--out", str(out_path)])
        out = capsys.readouterr().out
        assert out_path.exists()
        assert "sha256" in out
        assert "8 tables x 128 batch x 3 lookups" in out

    def test_fig13_trace_tsv_and_compiled_byte_identical(
        self, sample_tsv, compiled, capsys
    ):
        main(["--batches", "4", "--trace", str(compiled),
              "fig13", "--fractions", "0.1"])
        from_compiled = capsys.readouterr().out
        main(["--batches", "4", "--trace", str(sample_tsv),
              "fig13", "--fractions", "0.1"])
        from_tsv = capsys.readouterr().out
        assert from_compiled == from_tsv
        assert "trace" in from_compiled

    def test_compare_on_trace(self, compiled, capsys):
        main(["--batches", "4", "--trace", str(compiled), "compare",
              "--cache", "0.1"])
        out = capsys.readouterr().out
        assert "scratchpipe" in out and "static_cache" in out

    def test_trace_rejects_scenario_combo(self, compiled):
        with pytest.raises(SystemExit, match="--scenario"):
            main(["--trace", str(compiled), "--scenario", "fast-drift",
                  "fig13"])

    def test_trace_rejected_where_not_applicable(self, compiled):
        with pytest.raises(SystemExit, match="--trace does not apply"):
            main(["--trace", str(compiled), "fig6"])
        with pytest.raises(SystemExit, match="--trace does not apply"):
            main(["--trace", str(compiled), "driftsweep"])

    def test_unknown_trace_is_clean_error(self):
        with pytest.raises(SystemExit, match="invalid --trace"):
            main(["--trace", "warp-dataset", "fig13"])

    def test_undersized_cache_on_trace_is_spec_error(self, compiled):
        # floor at sample geometry: 4 * 128 * 3 = 1536 slots of 50000 rows
        with pytest.raises(Exception, match="hazard-window"):
            main(["--batches", "4", "--trace", str(compiled),
                  "fig13", "--fractions", "0.01"])


class TestLongRunningSweeps:
    """The --checkpoint/--resume/--point-* resilience flags."""

    def test_checkpoint_then_resume_byte_identical(self, tmp_path, capsys):
        """Acceptance: a resumed checkpointed run reprints the same bytes."""
        journal = tmp_path / "fig13.jsonl"
        argv = ["--batches", "6", "--checkpoint", str(journal),
                "fig13", "--fractions", "0.05"]
        main(argv)
        first = capsys.readouterr().out
        assert journal.exists() and journal.stat().st_size > 0
        # Second run resumes every point from the journal; output is
        # byte-identical to the uninterrupted run.
        main(["--resume"] + argv)
        assert capsys.readouterr().out == first

    def test_resume_requires_checkpoint(self):
        with pytest.raises(SystemExit, match="--resume requires"):
            main(["--resume", "fig13"])

    def test_resume_requires_existing_journal(self, tmp_path):
        with pytest.raises(SystemExit, match="does not exist"):
            main(["--resume", "--checkpoint", str(tmp_path / "none.jsonl"),
                  "fig13"])

    def test_point_flags_parse(self):
        args = build_parser().parse_args(
            ["--point-timeout", "30", "--point-retries", "5", "fig13"]
        )
        assert args.point_timeout == 30.0
        assert args.point_retries == 5

    def test_quarantine_renders_failure_report(self, monkeypatch, capsys):
        from repro.analysis import experiments
        from repro.analysis.sweep import (
            GridReport, PointFailure, SweepGridError, SweepPoint,
        )
        from repro.model.config import tiny_config

        point = SweepPoint(
            system="scratchpipe", locality="high", cache_fraction=0.05,
            seed=2, num_batches=6, config=tiny_config(),
            hardware=experiments.DEFAULT_HARDWARE,
        )
        report = GridReport(results=[None], failures=[PointFailure(
            index=0, point=point, error_type="SweepWorkerCrashError",
            message="worker crashed", attempts=3,
        )], retries=2)

        def doomed(points, workers=1, **kwargs):
            raise SweepGridError(report)

        monkeypatch.setattr(experiments, "run_grid", doomed)
        with pytest.raises(SystemExit) as excinfo:
            main(["--batches", "6", "fig13", "--fractions", "0.05"])
        assert excinfo.value.code == 1
        err = capsys.readouterr().err
        assert "sweep failure report" in err
        assert "SweepWorkerCrashError" in err
        assert "scratchpipe:high" in err

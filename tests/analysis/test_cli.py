"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for command in ("fig6", "fig12b", "fig13", "fig14", "table1",
                        "overhead", "compare"):
            args = parser.parse_args([command])
            assert args.command == command
            assert callable(args.func)

    def test_fraction_arguments(self):
        args = build_parser().parse_args(
            ["fig13", "--fractions", "0.02", "0.1"]
        )
        assert args.fractions == [0.02, 0.1]

    def test_batches_argument(self):
        args = build_parser().parse_args(["--batches", "10", "overhead"])
        assert args.batches == 10


class TestCommands:
    def test_overhead_output(self, capsys):
        main(["overhead"])
        out = capsys.readouterr().out
        assert "Section VI-D" in out
        assert "storage_worst_case_bytes" in out

    def test_fig6_output(self, capsys):
        main(["fig6", "--points", "10"])
        out = capsys.readouterr().out
        assert "Criteo" in out
        assert "Alibaba" in out

    def test_compare_rejects_unknown_locality(self):
        with pytest.raises(SystemExit):
            main(["compare", "--locality", "extreme"])


class TestSpecFlags:
    def test_systems_listing(self, capsys):
        main(["systems"])
        out = capsys.readouterr().out
        assert "scratchpipe" in out and "static_cache" in out
        assert "lru" in out and "random" in out

    def test_cache_spec_on_compare(self, capsys):
        main(["--batches", "8", "--cache-spec", "table0=0.2,rest=0.05",
              "compare", "--locality", "medium"])
        out = capsys.readouterr().out
        assert "table0=0.2" in out
        assert "scratchpipe" in out

    def test_system_json_adds_compare_row(self, capsys):
        import json

        spec = json.dumps({
            "system": "strawman",
            "cache": {"fraction": 0.05, "policy": "random"},
        })
        main(["--batches", "8", "--system", spec, "compare"])
        out = capsys.readouterr().out
        assert "custom (strawman)" in out

    def test_bad_cache_spec_is_clean_error(self):
        with pytest.raises(SystemExit, match="invalid --cache-spec"):
            main(["--cache-spec", "nonsense=,", "compare"])

    def test_cacheless_system_row_on_compare(self, capsys):
        main(["--batches", "8", "--system", "multi_gpu", "compare"])
        out = capsys.readouterr().out
        assert "custom (multi_gpu)" in out

    def test_cache_spec_rejected_for_cacheless_system(self):
        with pytest.raises(SystemExit, match="takes no cache"):
            main(["--batches", "8", "--system", "hybrid",
                  "--cache-spec", "0.05", "compare"])

    def test_unknown_system_is_clean_error(self):
        with pytest.raises(SystemExit, match="invalid system spec"):
            main(["--batches", "8", "--system", "warp_drive", "compare"])

    def test_flags_rejected_where_not_applicable(self):
        with pytest.raises(SystemExit, match="--system does not apply"):
            main(["--system", "scratchpipe", "fig13"])
        with pytest.raises(SystemExit, match="--cache-spec does not apply"):
            main(["--cache-spec", "0.02", "fig13"])

    def test_hetero_in_parser(self):
        args = build_parser().parse_args(
            ["hetero", "--rhos", "0", "0.5", "--splits", "0.02"]
        )
        assert args.command == "hetero"
        assert args.rhos == [0.0, 0.5]


class TestNewCommands:
    def test_validate_in_parser(self):
        args = build_parser().parse_args(["validate"])
        assert args.command == "validate"

    def test_timeline_in_parser(self):
        args = build_parser().parse_args(
            ["timeline", "--locality", "high", "--cache", "0.05"]
        )
        assert args.locality == "high"
        assert args.cache == 0.05

    def test_validate_output(self, capsys):
        main(["validate"])
        out = capsys.readouterr().out
        assert "predicted" in out and "measured" in out

    def test_timeline_rejects_unknown_locality(self):
        with pytest.raises(SystemExit):
            main(["timeline", "--locality", "nope"])

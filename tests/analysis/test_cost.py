"""Tests for the AWS cost model (repro.analysis.cost)."""

import pytest

from repro.analysis.cost import (
    CostRow,
    cost_saving,
    multi_gpu_row,
    scratchpipe_row,
    training_cost,
)
from repro.hardware.spec import P3_2XLARGE, P3_16XLARGE


class TestTrainingCost:
    def test_paper_scratchpipe_random_row(self):
        # Table I: ScratchPipe Random — 47.82 ms/iter => $40.64 for 1M iters
        # on a $3.06/hr p3.2xlarge.
        cost = training_cost(P3_2XLARGE, 47.82e-3)
        assert cost == pytest.approx(40.64, abs=0.05)

    def test_paper_8gpu_random_row(self):
        # Table I: 8 GPU Random — 16.22 ms/iter => $110.3 on p3.16xlarge.
        cost = training_cost(P3_16XLARGE, 16.22e-3)
        assert cost == pytest.approx(110.3, abs=0.2)

    def test_linear_in_time(self):
        assert training_cost(P3_2XLARGE, 0.040) == pytest.approx(
            2 * training_cost(P3_2XLARGE, 0.020)
        )

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            training_cost(P3_2XLARGE, 0.0)
        with pytest.raises(ValueError):
            training_cost(P3_2XLARGE, 0.01, iterations=0)


class TestCostRow:
    def test_formatted_cells(self):
        row = scratchpipe_row("Random", 47.82e-3)
        cells = row.formatted()
        assert cells[0] == "Random"
        assert cells[1] == "ScratchPipe"
        assert cells[2] == "p3.2xlarge"
        assert "47.82 ms" in cells[4]

    def test_cost_saving_paper_magnitude(self):
        # Table I High row: $22.39 vs $126.6 => 5.7x (the paper's max).
        sp = scratchpipe_row("High", 26.34e-3)
        mg = multi_gpu_row("High", 18.61e-3)
        assert cost_saving(sp, mg) == pytest.approx(5.65, abs=0.1)

    def test_multi_gpu_row_instance(self):
        row = multi_gpu_row("Low", 16.12e-3)
        assert row.instance is P3_16XLARGE
        assert row.system == "8 GPU"

"""Regression tests for the named error taxonomy (repro.errors).

Two guarantees: every taxonomy class subclasses the builtin it refines
(so ``except ValueError`` call sites written before the conversion keep
working), and representative converted raise sites across the layers
actually produce their named class.
"""

import pytest

from repro import errors
from repro.analysis.sweep import run_grid
from repro.core.hitmap import HitMap
from repro.data.distributions import ZipfDistribution
from repro.hardware.spec import MemorySpec
from repro.model.config import ModelConfig
from repro.testing.faults import FaultSpec


class TestHierarchy:
    def test_every_taxonomy_class_refines_a_builtin(self):
        for name in errors.__all__:
            cls = getattr(errors, name)
            assert issubclass(
                cls, (ValueError, RuntimeError, KeyError)
            ), f"{name} must refine the builtin it replaced"

    def test_state_errors_are_runtime_errors(self):
        for cls in (errors.ModelStateError, errors.ScratchpadStateError,
                    errors.ReplacementStateError):
            assert issubclass(cls, RuntimeError)
            assert not issubclass(cls, ValueError)

    def test_lookup_errors_are_key_errors(self):
        for cls in (errors.UncachedKeyError, errors.PlanCoverageError):
            assert issubclass(cls, KeyError)

    def test_all_exports_match_module_contents(self):
        exported = set(errors.__all__)
        defined = {
            name for name, obj in vars(errors).items()
            if isinstance(obj, type) and issubclass(obj, Exception)
        }
        assert exported == defined


class TestConvertedSites:
    """One representative converted raise per layer.

    Each assertion is doubled: the named class fires, and the pre-
    conversion builtin still catches it.
    """

    def test_model_layer(self):
        with pytest.raises(errors.ModelConfigError):
            ModelConfig(num_tables=0, rows_per_table=10,
                        embedding_dim=4, lookups_per_table=1, batch_size=2)
        with pytest.raises(ValueError):
            ModelConfig(num_tables=0, rows_per_table=10,
                        embedding_dim=4, lookups_per_table=1, batch_size=2)

    def test_core_layer(self):
        with pytest.raises(errors.HitMapConfigError):
            HitMap(num_slots=-1, num_rows=10)

    def test_data_layer(self):
        with pytest.raises(errors.DistributionConfigError):
            ZipfDistribution(num_rows=0, exponent=1.0)

    def test_hardware_layer_validates_eagerly(self):
        # __post_init__ (the spec-purity contract): construction fails,
        # not first use.
        with pytest.raises(errors.HardwareSpecError):
            MemorySpec("hbm", 0, 1.0, 0.5, 0.5)
        with pytest.raises(errors.HardwareSpecError):
            MemorySpec("hbm", 1024, 1.0, 1.5, 0.5)

    def test_analysis_layer(self):
        with pytest.raises(errors.SweepConfigError):
            run_grid([], workers=0)

    def test_testing_layer(self):
        with pytest.raises(errors.FaultSpecError):
            FaultSpec(site="x", mode="nope")

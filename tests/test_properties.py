"""Property-based tests (hypothesis) on the core data structures.

These encode the invariants DESIGN.md Section 5 commits to:

* Hit-Map bijectivity under arbitrary assign/displace traffic,
* Hold-mask lifetime exactness for arbitrary windows and hold patterns,
* Plan-stage conservation laws over random batch streams,
* coalesce/duplicate gradient-mass conservation,
* pipelined-vs-sequential equivalence over random tiny workloads.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.hitmap import EMPTY, HitMap
from repro.core.holdmask import HoldMask
from repro.core.pipeline import HazardMonitor, ScratchPipePipeline
from repro.core.scratchpad import GpuScratchpad, required_slots
from repro.data.trace import make_dataset
from repro.model.config import tiny_config
from repro.model.dlrm import DLRMModel
from repro.model.embedding import coalesce_gradients, duplicate_gradients
from repro.model.optimizer import SGD
from repro.systems.scratchpipe_system import ScratchPipeTrainingRun


class TestHitMapProperties:
    @given(
        ops=st.lists(
            st.tuples(st.integers(0, 49), st.integers(0, 7)),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_bijectivity_under_arbitrary_traffic(self, ops):
        hitmap = HitMap(num_slots=8, num_rows=50)
        for key, slot in ops:
            if key in hitmap:
                continue  # assign requires uncached keys, like [Plan] does
            hitmap.assign(key, slot)
            # Invariants after every operation:
            keys = hitmap.keys()
            assert len(set(keys.tolist())) == len(keys) == len(hitmap)
            for k in keys:
                s = hitmap.slot_of(int(k))
                assert hitmap.key_of(s) == int(k)
        # Occupancy can never exceed the slot count.
        assert len(hitmap) <= 8

    @given(
        keys=st.lists(st.integers(0, 99), min_size=1, max_size=10, unique=True)
    )
    @settings(max_examples=50, deadline=None)
    def test_query_consistency(self, keys):
        hitmap = HitMap(num_slots=16, num_rows=100)
        arr = np.array(keys, dtype=np.int64)
        hitmap.assign_many(arr, np.arange(len(keys), dtype=np.int64))
        slots, hits = hitmap.query(arr)
        assert hits.all()
        assert np.array_equal(np.sort(slots), np.arange(len(keys)))


class TestHoldMaskProperties:
    @given(window=st.integers(0, 10), extra=st.integers(1, 5))
    @settings(max_examples=40, deadline=None)
    def test_lifetime_exact(self, window, extra):
        mask = HoldMask(num_slots=4, past_window=window)
        mask.hold(np.array([2]))
        for _ in range(window):
            mask.advance()
            assert mask.is_held(np.array([2]))[0]
        for _ in range(extra):
            mask.advance()
            assert not mask.is_held(np.array([2]))[0]

    @given(
        holds=st.lists(
            st.lists(st.integers(0, 9), max_size=4), min_size=1, max_size=12
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_held_iff_within_window(self, holds):
        window = 3
        mask = HoldMask(num_slots=10, past_window=window)
        history = []
        for batch in holds:
            mask.advance()
            slots = np.array(sorted(set(batch)), dtype=np.int64)
            mask.hold(slots)
            history.append(set(slots.tolist()))
            recent = set().union(*history[-(window + 1):])
            for slot in range(10):
                assert mask.is_held(np.array([slot]))[0] == (slot in recent)


class TestPlanProperties:
    @given(seed=st.integers(0, 1000), data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_plan_conservation_laws(self, seed, data):
        rng = np.random.default_rng(seed)
        pad = GpuScratchpad(num_slots=40, num_rows=60, past_window=2)
        for _ in range(6):
            ids = rng.integers(0, 60, size=8)
            plan = pad.plan_batch(ids)
            # Conservation: hits + misses == unique; all IDs get slots;
            # slots are distinct; displaced keys are no longer cached.
            assert plan.num_hits + plan.num_misses == plan.num_unique
            assert len(set(plan.slots.tolist())) == plan.num_unique
            for evicted in plan.evicted_ids:
                if evicted != EMPTY:
                    assert int(evicted) not in pad.hit_map
            for uid, slot in zip(plan.unique_ids, plan.slots):
                assert pad.hit_map.slot_of(int(uid)) == int(slot)


class TestGradientProperties:
    @given(
        seed=st.integers(0, 10_000),
        batch=st.integers(1, 6),
        lookups=st.integers(1, 5),
        dim=st.integers(1, 6),
    )
    @settings(max_examples=50, deadline=None)
    def test_duplicate_coalesce_mass_conservation(self, seed, batch, lookups, dim):
        rng = np.random.default_rng(seed)
        pooled = rng.standard_normal((batch, dim)).astype(np.float32)
        ids = rng.integers(0, 8, size=(batch, lookups))
        duplicated = duplicate_gradients(pooled, lookups)
        unique, coalesced = coalesce_gradients(
            ids.reshape(-1), duplicated.reshape(-1, dim)
        )
        # Total gradient mass is conserved by coalescing.
        assert np.allclose(
            coalesced.sum(axis=0), duplicated.reshape(-1, dim).sum(axis=0),
            atol=1e-4,
        )
        # Every unique ID appears exactly once, sorted.
        assert np.array_equal(unique, np.unique(ids))


class TestEndToEndEquivalenceProperty:
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=8, deadline=None)
    def test_pipelined_training_equals_sequential(self, seed):
        cfg = tiny_config(
            rows_per_table=150, batch_size=4, lookups_per_table=2, num_tables=2
        )
        dataset = make_dataset(cfg, "medium", seed=seed, num_batches=10,
                               with_dense=True)
        reference = DLRMModel.initialise(cfg, seed=seed + 1,
                                         optimizer=SGD(lr=0.02))
        ref_tables_init = [t.weights.copy() for t in reference.tables]
        for i in range(10):
            reference.train_step(dataset.batch(i))

        init = DLRMModel.initialise(cfg, seed=seed + 1)
        run = ScratchPipeTrainingRun(
            config=cfg,
            cpu_tables=[t.weights.copy() for t in init.tables],
            dense_network=init.dense_network,
            num_slots=required_slots(cfg),
            optimizer=SGD(lr=0.02),
            monitor=HazardMonitor(strict=True),
        )
        run.run(dataset)
        final = run.final_tables()
        for t in range(cfg.num_tables):
            assert np.array_equal(final[t], reference.tables[t].weights)
            # And training actually changed something.
            assert not np.array_equal(final[t], ref_tables_init[t])


class TestPipelineInvariants:
    @given(
        seed=st.integers(0, 10_000),
        num_slots=st.integers(30, 120),
        locality=st.sampled_from(["random", "medium", "high"]),
    )
    @settings(max_examples=15, deadline=None)
    def test_metadata_conservation_laws(self, seed, num_slots, locality):
        """Over arbitrary traces and (adequately sized) caches, per-batch
        cache statistics obey the conservation laws."""
        from repro.systems.scratchpipe_system import make_scratchpads

        cfg = tiny_config(
            rows_per_table=200, batch_size=3, lookups_per_table=2, num_tables=1
        )
        dataset = make_dataset(cfg, locality, seed=seed, num_batches=12)
        pipeline = ScratchPipePipeline(
            config=cfg,
            scratchpads=make_scratchpads(cfg, num_slots),
            dataset_batches=dataset,
            monitor=HazardMonitor(strict=True),
        )
        result = pipeline.run()
        cached = 0
        for stats in result.cache_stats:
            assert stats.hits + stats.misses == stats.unique_ids
            assert stats.unique_ids <= stats.total_lookups
            # A write-back requires a displaced entry: never more
            # write-backs than misses.
            assert stats.writebacks <= stats.misses
            # The cache can never hold more keys than slots.
            cached = cached + stats.misses - stats.writebacks
            assert cached <= num_slots

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_hit_rate_never_decreases_capacity(self, seed):
        """A strictly larger cache never produces more misses in total
        (LRU inclusion property holds for our vectorised variant on these
        traces)."""
        from repro.systems.scratchpipe_system import make_scratchpads

        cfg = tiny_config(
            rows_per_table=150, batch_size=3, lookups_per_table=2, num_tables=1
        )
        dataset = make_dataset(cfg, "high", seed=seed, num_batches=10)

        def total_misses(slots):
            pipeline = ScratchPipePipeline(
                config=cfg,
                scratchpads=make_scratchpads(cfg, slots),
                dataset_batches=dataset,
            )
            return sum(s.misses for s in pipeline.run().cache_stats)

        assert total_misses(150) <= total_misses(60)

"""Tests for the 6-stage pipeline executor (repro.core.pipeline)."""

import numpy as np
import pytest

from repro.core.pipeline import (
    BatchCacheStats,
    HazardMonitor,
    ScratchPipePipeline,
    STAGES,
)
from repro.core.scratchpad import required_slots
from repro.data.trace import make_dataset
from repro.model.config import tiny_config
from repro.systems.scratchpipe_system import make_scratchpads


@pytest.fixture
def cfg():
    return tiny_config(rows_per_table=300, batch_size=6, lookups_per_table=2,
                       num_tables=2)


@pytest.fixture
def dataset(cfg):
    return make_dataset(cfg, "medium", seed=5, num_batches=12)


def build_pipeline(cfg, dataset, **kwargs):
    slots = kwargs.pop("num_slots", required_slots(cfg))
    pads = make_scratchpads(cfg, slots, with_storage=kwargs.pop("with_storage", False))
    cpu_tables = kwargs.pop("cpu_tables", None)
    return ScratchPipePipeline(
        config=cfg,
        scratchpads=pads,
        dataset_batches=dataset,
        cpu_tables=cpu_tables,
        **kwargs,
    )


class TestConstruction:
    def test_scratchpad_count_validated(self, cfg, dataset):
        pads = make_scratchpads(cfg, 16)[:1]
        with pytest.raises(ValueError, match="one scratchpad per table"):
            ScratchPipePipeline(config=cfg, scratchpads=pads,
                                dataset_batches=dataset)

    def test_cpu_table_count_validated(self, cfg, dataset):
        pads = make_scratchpads(cfg, 16)
        with pytest.raises(ValueError, match="one array per table"):
            ScratchPipePipeline(
                config=cfg, scratchpads=pads, dataset_batches=dataset,
                cpu_tables=[np.zeros((10, 4), np.float32)],
            )

    def test_negative_future_window_rejected(self, cfg, dataset):
        with pytest.raises(ValueError):
            build_pipeline(cfg, dataset, future_window=-1)

    def test_stage_names(self):
        assert STAGES == ("load", "plan", "collect", "exchange", "insert", "train")


class TestMetadataRun:
    def test_stats_per_batch_in_order(self, cfg, dataset):
        result = build_pipeline(cfg, dataset).run()
        assert [s.batch_index for s in result.cache_stats] == list(range(12))

    def test_first_batch_all_miss(self, cfg, dataset):
        result = build_pipeline(cfg, dataset).run()
        first = result.cache_stats[0]
        assert first.hits == 0
        assert first.misses == first.unique_ids

    def test_hit_rate_improves_after_warmup(self, cfg, dataset):
        result = build_pipeline(cfg, dataset).run()
        warm = result.cache_stats[6:]
        assert np.mean([s.hit_rate for s in warm]) > 0.0

    def test_lookup_totals(self, cfg, dataset):
        result = build_pipeline(cfg, dataset).run()
        for stats in result.cache_stats:
            assert stats.total_lookups == cfg.lookups_per_batch
            assert stats.unique_ids <= stats.total_lookups
            assert stats.hits + stats.misses == stats.unique_ids
            assert len(stats.per_table_misses) == cfg.num_tables
            assert sum(stats.per_table_misses) == stats.misses

    def test_partial_run(self, cfg, dataset):
        result = build_pipeline(cfg, dataset).run(num_batches=5)
        assert len(result.cache_stats) == 5

    def test_invalid_num_batches(self, cfg, dataset):
        pipeline = build_pipeline(cfg, dataset)
        with pytest.raises(ValueError):
            pipeline.run(num_batches=0)
        with pytest.raises(ValueError):
            pipeline.run(num_batches=99)

    def test_no_losses_without_trainer(self, cfg, dataset):
        result = build_pipeline(cfg, dataset).run()
        assert result.losses == []

    def test_writebacks_zero_with_ample_capacity(self, cfg, dataset):
        # A scratchpad big enough to never displace has zero write-backs.
        pipeline = build_pipeline(cfg, dataset, num_slots=cfg.rows_per_table)
        result = pipeline.run()
        assert all(s.writebacks == 0 for s in result.cache_stats)

    def test_monitor_clean_with_default_windows(self, cfg, dataset):
        monitor = HazardMonitor(strict=True)
        build_pipeline(cfg, dataset, monitor=monitor).run()
        assert monitor.violations == []


class TestFunctionalDataMovement:
    def test_rows_migrate_cpu_to_storage(self, cfg, dataset):
        rng = np.random.default_rng(0)
        cpu_tables = [
            rng.standard_normal((cfg.rows_per_table, cfg.embedding_dim)).astype(
                np.float32
            )
            for _ in range(cfg.num_tables)
        ]
        originals = [t.copy() for t in cpu_tables]
        pipeline = build_pipeline(
            cfg, dataset, with_storage=True, cpu_tables=cpu_tables
        )
        pipeline.run()
        # Without training, no value may change anywhere: fills copy rows in,
        # evictions copy identical values back.
        for t in range(cfg.num_tables):
            assert np.array_equal(cpu_tables[t], originals[t])
        # But the scratchpads must now cache real rows.
        for t, pad in enumerate(pipeline.scratchpads):
            keys = pad.hit_map.keys()
            assert keys.size > 0
            slots = pad.hit_map.slots_of_keys(keys)
            assert np.array_equal(pad.storage[slots], originals[t][keys])


class TestBatchCacheStats:
    def test_hit_rate_empty(self):
        stats = BatchCacheStats(
            batch_index=0, total_lookups=0, unique_ids=0, hits=0, misses=0,
            writebacks=0, per_table_misses=(),
        )
        assert stats.hit_rate == 1.0

    def test_hit_rate_fraction(self):
        stats = BatchCacheStats(
            batch_index=0, total_lookups=10, unique_ids=4, hits=3, misses=1,
            writebacks=0, per_table_misses=(1,),
        )
        assert stats.hit_rate == pytest.approx(0.75)
